"""Figs. 7 and 8: paradigm (comp/MPI/OpenMP/idle) splits per clock.

Paper narrative:

* MiniFE-2 tsc: most time in idle threads (58 %T), 39 %T computation.
* lt_1: "shows no effort in the worker threads (93 %T idle threads)".
* lt_loop: MPI time explains almost all idle time; serial-region idling
  is invisible, so its idle share is far *below* tsc's.
* LULESH-1 tsc: 78 %T computation, OpenMP noticeable, lt_1 strongly
  overestimates OpenMP.
"""

from conftest import run_report

from repro.experiments import reports


def test_fig7_minife2_paradigms(benchmark, seed):
    data = run_report(benchmark, reports.fig7_minife2_paradigms, seed)

    # tsc: idle dominates (paper 58 %T, comp 39 %T)
    assert data["tsc"]["idle_threads"] > data["tsc"]["comp"]
    assert data["tsc"]["idle_threads"] > 40

    # lt_1: worker threads appear almost completely idle (paper: 93 %T)
    assert data["lt_1"]["idle_threads"] > 85

    # lt_loop cannot see idling caused by serial regions -> far below tsc
    assert data["lt_loop"]["idle_threads"] < data["tsc"]["idle_threads"] - 20
    # ...but its small MPI share matches the paper's ~2 %T
    assert 0.5 < data["lt_loop"]["mpi"] < 6.0

    # every mode agrees MPI itself is small (paper: ~2 %T)
    for mode, g in data.items():
        assert g["mpi"] < 8.0, mode


def test_fig8_lulesh1_paradigms(benchmark, seed):
    data = run_report(benchmark, reports.fig8_lulesh1_paradigms, seed)

    # tsc: computation dominates (paper 78 %T)
    assert data["tsc"]["comp"] > 60
    # OpenMP time is noticeable in tsc (paper 7 %T)
    assert 2 < data["tsc"]["omp"] < 15

    # lt_1 strongly overestimates the OpenMP runtime (paper's wording)
    assert data["lt_1"]["omp"] > data["tsc"]["omp"] * 3

    # lt_loop reports essentially no OpenMP time ("cannot measure time
    # inside the OpenMP runtime")
    assert data["lt_loop"]["omp"] < 1.0

    # lt_hwctr is the logical mode closest to tsc overall
    closest = min(
        ("lt_loop", "lt_bb", "lt_1", "lt_hwctr"),
        key=lambda m: abs(data[m]["comp"] - data["tsc"]["comp"]),
    )
    assert closest in ("lt_hwctr", "lt_bb")
