"""Table I: measurement overheads per clock mode.

Paper values for reference (percent):

    mode      MiniFE-2 init/solve/total   LULESH-1   TeaLeaf-2
    tsc         -14.3 / 0.3 / -6.5           3.1        41.5
    lt_1        -12.2 / 0.3 / -5.3           3.6        40.5
    lt_loop     -15.7 / 0.2 / -6.9           4.3        42.5
    lt_bb        97.8 / 0.2 / 47.9          23.5        48.0
    lt_stmt      94.5 / 0.2 / 46.6          23.9        43.7
    lt_hwctr     89.9 / 0.4 / 41.5          14.7        56.5

Shape assertions check the paper's qualitative findings, not absolute
numbers (the substrate is a simulator).
"""

from conftest import run_report

from repro.experiments import reports


def test_table1_overheads(benchmark, seed):
    data = run_report(benchmark, reports.table1_overheads, seed)

    cheap = ("tsc", "lt1", "ltloop")
    heavy = ("ltbb", "ltstmt", "lthwctr")

    # MiniFE init: cheap modes show the (negative) desynchronisation
    # effect, counting/counter modes pay heavily (paper: -16..-12 vs +90..98).
    for m in cheap:
        assert data[m]["minife2_init"] < 5.0, m
    for m in heavy:
        assert data[m]["minife2_init"] > 40.0, m

    # The memory-bound solve phase hides every overhead (paper: <= 0.4 %).
    for m in data:
        assert abs(data[m]["minife2_solve"]) < 5.0, m

    # LULESH-1: counting modes cost notably more than tsc; lt_hwctr in
    # between (paper 3.1 vs 23.5/23.9 vs 14.7; our hwctr gap is smaller,
    # see EXPERIMENTS.md).
    assert data["ltbb"]["lulesh1"] > data["tsc"]["lulesh1"] + 10
    assert data["ltstmt"]["lulesh1"] > data["tsc"]["lulesh1"] + 10
    assert data["lthwctr"]["lulesh1"] > data["tsc"]["lulesh1"] + 2

    # TeaLeaf-2: every mode pays the large team-size-driven overhead and
    # lt_hwctr pays the most (paper 40.5..56.5, max at lt_hwctr).
    for m in data:
        assert data[m]["tealeaf2"] > 15.0, m
    assert data["lthwctr"]["tealeaf2"] == max(d["tealeaf2"] for d in data.values())
