"""Ablation benches for design choices called out in DESIGN.md.

* Fitting the OpenMP external-effort constants X/Y (the paper fitted
  X = 100 bb / Y = 4300 stmt to LULESH; we refit to our count scale with
  the same procedure).
* Counter-synchronisation mechanism: the paper's extra-message choice vs
  the two piggyback schemes of Schulz et al. -- overhead differs, logical
  timestamps do not.
* LULESH-2 narrative: only tsc and (mislocated) lt_hwctr see the uneven
  NUMA-occupancy late senders.
"""

import numpy as np
import pytest

from repro.analysis import MPI_P2P_LATESENDER
from repro.experiments import fit_omp_effort_constants, run_experiment
from repro.util.tables import format_table


def test_fit_omp_effort_constants(benchmark, seed):
    fit = benchmark.pedantic(
        fit_omp_effort_constants, kwargs=dict(experiment="LULESH-1", seed=seed),
        rounds=1, iterations=1,
    )
    print()
    print(format_table(
        ["quantity", "value"],
        [[k, v] for k, v in fit.items()],
        title="Fitted OpenMP external-effort constants (paper procedure, our count scale)",
        floatfmt=".4f",
    ))
    # the fit converges onto the tsc OpenMP share
    assert fit["x_omp_fraction"] == pytest.approx(fit["target_omp_fraction"], rel=0.35)
    assert fit["y_omp_fraction"] == pytest.approx(fit["target_omp_fraction"], rel=0.35)
    assert fit["x_bb"] > 0 and fit["y_stmt"] > 0
    # statement counts are ~3x denser than basic blocks in our kernels,
    # so the fitted Y/X ratio lands near 3 (the paper's 43 reflects their
    # LLVM pass's much denser statement counting)
    assert 1.0 < fit["y_stmt"] / fit["x_bb"] < 10.0


def test_sync_mechanism_ablation(benchmark, seed):
    """Extra-message vs piggyback synchronisation (paper Sec. II-B)."""
    from repro.clocks import SyncMechanism, overhead_for_mechanism, timestamp_trace
    from repro.machine import jureca_dc
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import Measurement
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.sim import CostModel, Engine

    def run_all():
        out = {}
        cluster = jureca_dc(1)
        for mech in SyncMechanism:
            app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, cg_iters=6))
            cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
            m = Measurement("ltbb", overhead=overhead_for_mechanism(mech))
            res = Engine(app, cluster, cost, measurement=m).run()
            out[mech] = (res.runtime, timestamp_trace(res.trace, "ltbb").times)
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[mech.value, rt] for mech, (rt, _ts) in out.items()]
    print()
    print(format_table(["mechanism", "runtime / s"], rows,
                       title="Counter-synchronisation mechanisms (lt_bb, MiniFE-tiny)",
                       floatfmt=".4f"))
    rts = {mech: rt for mech, (rt, _) in out.items()}
    assert rts[SyncMechanism.EXTRA_MESSAGE] >= rts[SyncMechanism.PIGGYBACK_PREPOSTED]
    # identical logical timestamps regardless of mechanism
    base = out[SyncMechanism.EXTRA_MESSAGE][1]
    for mech, (_rt, ts) in out.items():
        for a, b in zip(base, ts):
            assert np.array_equal(a, b)


def test_lulesh2_late_sender_narrative(benchmark, seed):
    """Sec. V-C4: only tsc sees the NUMA-contention late senders; lt_hwctr
    reports them too but in the wrong call paths; the counting clocks are
    blind to them."""
    res = benchmark.pedantic(run_experiment, args=("LULESH-2",),
                             kwargs=dict(seed=seed), rounds=1, iterations=1)
    ls = {m: res.mean_profile(m).percent_of_time(MPI_P2P_LATESENDER)
          for m in ("tsc", "ltloop", "ltbb", "ltstmt", "lthwctr")}
    print()
    print(format_table(["mode", "latesender %T"], list(ls.items()),
                       title="LULESH-2 late-sender severity per clock", floatfmt=".2f"))
    assert ls["tsc"] > 1.0  # paper: 3.3 %T, the dominant issue
    assert ls["lthwctr"] > 0.3  # the only logical mode that reports it
    for m in ("ltloop", "ltbb", "ltstmt"):
        assert ls[m] < ls["tsc"] / 3, m


def test_plain_vs_waitstate_noise_sensitivity(benchmark, seed):
    """Sec. V-B reconciliation with Ritter et al.: lt_hwctr's *plain*
    profiles are nearly noise-free run to run, while its wait-state
    profiles vary more -- "wait state analysis is influenced differently
    by noise than plain profiling"."""
    from repro.analysis import analyze_trace, plain_profile
    from repro.clocks import timestamp_trace
    from repro.scoring import min_pairwise_jaccard

    def collect():
        res = run_experiment("TeaLeaf-2", seed)
        return res

    res = benchmark.pedantic(collect, rounds=1, iterations=1)
    full_floor = min_pairwise_jaccard(res.profiles["lthwctr"])
    # rebuild plain profiles from scratch at tiny scale (the cached run
    # stores analysis profiles only), using the same trace both ways
    from repro.machine import jureca_dc
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import Measurement
    from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig
    from repro.sim import CostModel, Engine

    cluster = jureca_dc(1)
    plain, full = [], []
    for rep in range(3):
        app = TeaLeaf(TeaLeafConfig.tiny(grid=512, n_ranks=2, threads_per_rank=4,
                                         cg_iters=5, iter_compression=8.0))
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=100 + rep))
        r = Engine(app, cluster, cost, measurement=Measurement("lthwctr")).run()
        tt = timestamp_trace(r.trace, "lthwctr", counter_seed=100 + rep)
        plain.append(plain_profile(tt).normalized())
        full.append(analyze_trace(tt).normalized())
    plain_floor = min_pairwise_jaccard(plain)
    full_floor_small = min_pairwise_jaccard(full)
    print(f"\nlt_hwctr run-to-run J floor: plain profile {plain_floor:.3f}, "
          f"wait-state profile {full_floor_small:.3f} (cached TeaLeaf-2: {full_floor:.3f})")
    # plain profiling is at least as reproducible as wait-state analysis
    assert plain_floor >= full_floor_small - 1e-9
    assert plain_floor > 0.9
