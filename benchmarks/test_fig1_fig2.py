"""Fig. 1 (metric tree) and Fig. 2 (MiniFE-2 init run times)."""

import numpy as np
from conftest import run_report

from repro.experiments import reports


def test_fig1_metric_tree(benchmark):
    _data, text = benchmark.pedantic(reports.fig1_metric_tree, rounds=1, iterations=1)
    print()
    print(text)
    for token in ("comp", "latesender", "wait_nxn", "barrier_wait", "idle_threads"):
        assert token in text


def test_fig2_minife_init(benchmark, seed):
    data = run_report(benchmark, reports.fig2_minife_init, seed)
    ref = float(np.mean(data["ref"]))

    # Paper Fig. 2: tsc / lt_1 / lt_loop run *faster* than the reference
    # (negative overhead via desynchronisation)...
    for label in ("tsc", "lt_1", "lt_loop"):
        assert float(np.mean(data[label])) < ref

    # ...while lt_bb / lt_stmt / lt_hwctr pay on the order of 100 %.
    for label in ("lt_bb", "lt_stmt", "lt_hwctr"):
        assert float(np.mean(data[label])) > ref * 1.4

    # noisy methods were repeated five times
    assert len(data["ref"]) == 5 and len(data["tsc"]) == 5
    # run-to-run variation exists in the reference band
    assert max(data["ref"]) > min(data["ref"])
