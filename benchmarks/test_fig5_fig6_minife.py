"""Figs. 5 and 6: MiniFE call-path attribution per clock.

Paper narrative (Sec. V-C1/2):

* tsc: matrix assembly slightly over 50 %M of comp, matvec 37 %M;
  wait_nxn split make_local_matrix 44 / dot 31 / gen_structure 20 %M.
* lt_1 "highlights parts of the code that contain many inexpensive
  function calls, i.e., the matrix assembly".
* lt_loop "overemphasizes regions with many inexpensive loop iterations,
  i.e., the vector operations in the CG solver".
* lt_bb / lt_stmt / lt_hwctr "are in good agreement with tsc".
* MiniFE-2's logical values equal MiniFE-1's: the logical clocks cannot
  see the added memory contention.
"""

from conftest import run_report

from repro.experiments import reports

ASSEMBLY = ("generate_matrix_structure", "assemble_FE_data", "make_local_matrix")
VECTOR_OPS = ("dot", "waxpby")


def _agg(shares, keys):
    return sum(shares[k] for k in keys)


def test_fig5_minife_comp(benchmark, seed):
    data = run_report(benchmark, reports.fig5_minife_comp, seed)
    m1 = data["MiniFE-1"]

    # tsc: assembly ~50 %M, matvec largest single contributor
    assert 35 < _agg(m1["tsc"], ASSEMBLY) < 65
    assert 25 < m1["tsc"]["matvec"] < 55

    # lt_1: call-dense assembly dominates completely
    assert _agg(m1["lt_1"], ASSEMBLY) > 90

    # lt_loop: cheap vector iterations dominate, assembly nearly invisible
    assert _agg(m1["lt_loop"], VECTOR_OPS) + m1["lt_loop"]["matvec"] > 90
    assert _agg(m1["lt_loop"], ASSEMBLY) < 10

    # counting/counter modes agree with tsc on the ranking
    for mode in ("lt_bb", "lt_stmt", "lt_hwctr"):
        assert abs(m1[mode]["matvec"] - m1["tsc"]["matvec"]) < 20, mode

    # MiniFE-2: the *logical* attribution is unchanged (memory contention
    # is invisible); the tsc attribution shifts towards matvec.
    m2 = data["MiniFE-2"]
    for mode in ("lt_1", "lt_loop", "lt_bb", "lt_stmt"):
        for bucket in ASSEMBLY + ("matvec",):
            assert abs(m2[mode][bucket] - m1[mode][bucket]) < 3.0, (mode, bucket)
    assert m2["tsc"]["matvec"] > m1["tsc"]["matvec"] + 10  # paper: 37 -> 70 %M


def test_fig6_minife_waitnxn(benchmark, seed):
    data = run_report(benchmark, reports.fig6_minife_waitnxn, seed)
    m1 = data["MiniFE-1"]["tsc"]
    # paper split: make_local 44 / dot 31 / gen 20 %M -- assert the ranking
    # and rough magnitudes
    assert m1["make_local_matrix"] > m1["generate_matrix_structure"]
    assert 10 < m1["generate_matrix_structure"] < 35
    assert 25 < m1["make_local_matrix"] < 60
    assert 20 < m1["dot"] < 55
