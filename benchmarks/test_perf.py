"""Performance microbenchmarks of the toolchain itself.

These are conventional pytest-benchmark measurements (multiple rounds) of
the three hot paths: the discrete-event engine, the Lamport replay, and
the analyzer walk.
"""

import pytest

from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.miniapps.minife import MiniFE, MiniFEConfig
from repro.sim import CostModel, Engine


def _trace():
    cluster = jureca_dc(1)
    app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, threads_per_rank=4, cg_iters=8))
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
    return Engine(app, cluster, cost, measurement=Measurement("tsc")).run().trace


@pytest.fixture(scope="module")
def trace():
    return _trace()


def test_perf_engine_simulation(benchmark):
    def run():
        cluster = jureca_dc(1)
        app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, threads_per_rank=4, cg_iters=8))
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
        return Engine(app, cluster, cost, measurement=Measurement("tsc")).run().trace.n_events

    n_events = benchmark(run)
    assert n_events > 1000


def test_perf_engine_simulation_legacy(benchmark):
    """Per-event heapq drain, kept as the reference for the batch-drain
    speedup (the vectorized drain is the default above)."""
    from repro.sim.engine import EngineConfig

    def run():
        cluster = jureca_dc(1)
        app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, threads_per_rank=4, cg_iters=8))
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
        return Engine(app, cluster, cost, measurement=Measurement("tsc"),
                      config=EngineConfig(vectorized=False)).run().trace.n_events

    n_events = benchmark(run)
    assert n_events > 1000


def test_perf_lamport_replay(benchmark, trace):
    times = benchmark(lambda: timestamp_trace(trace, "ltbb"))
    assert len(times.times) == trace.n_locations


def test_perf_lamport_replay_legacy(benchmark, trace):
    """Per-event walk, kept as the reference point for the columnar speedup."""
    times = benchmark(lambda: timestamp_trace(trace, "ltbb", impl="legacy"))
    assert len(times.times) == trace.n_locations


def test_perf_hwctr_replay(benchmark, trace):
    times = benchmark(lambda: timestamp_trace(trace, "lthwctr", counter_seed=1))
    assert len(times.times) == trace.n_locations


def test_perf_replay_plan_compile(benchmark, trace):
    """One-time cost of compiling the static replay plan for a trace."""
    from repro.clocks.columnar import _build_replay_plan

    cols = trace.columns()
    records, _tails = benchmark(lambda: _build_replay_plan(cols))
    assert len(records) > 0


def test_perf_npz_write_read(benchmark, trace, tmp_path):
    from repro.measure import read_trace, write_trace

    path = tmp_path / "t.npz"

    def round_trip():
        write_trace(trace, path)
        return read_trace(path)

    back = benchmark(round_trip)
    assert back.n_events == trace.n_events


def test_perf_sharded_write(benchmark, trace, tmp_path):
    from repro.measure.shards import write_sharded_trace

    path = tmp_path / "t.shards"
    benchmark(lambda: write_sharded_trace(trace, path,
                                          shard_events=trace.n_events // 8))
    assert path.is_dir()


def test_perf_sharded_stream(benchmark, trace, tmp_path):
    """Full streamed merged() walk over a multi-shard archive."""
    from repro.measure.shards import open_sharded_trace, write_sharded_trace

    path = tmp_path / "t.shards"
    write_sharded_trace(trace, path, shard_events=trace.n_events // 8)

    def walk():
        n = 0
        for _loc, _ev in open_sharded_trace(path).merged():
            n += 1
        return n

    assert benchmark(walk) == trace.n_events


def test_perf_sharded_clock_replay(benchmark, trace, tmp_path):
    from repro.clocks.streaming import stream_clock_replay
    from repro.measure.shards import open_sharded_trace, write_sharded_trace

    path = tmp_path / "t.shards"
    write_sharded_trace(trace, path, shard_events=trace.n_events // 8)
    summary = benchmark(lambda: stream_clock_replay(open_sharded_trace(path), "lt1"))
    assert summary.max_clock > 0


def test_perf_analyzer(benchmark, trace):
    tt = timestamp_trace(trace, "tsc")
    profile = benchmark(lambda: analyze_trace(tt))
    assert profile.total_time() > 0


def test_perf_jaccard(benchmark, trace):
    from repro.scoring import jaccard_metric_callpath

    tt = timestamp_trace(trace, "tsc")
    a = analyze_trace(tt)
    b = analyze_trace(timestamp_trace(trace, "ltbb"))
    score = benchmark(lambda: jaccard_metric_callpath(a, b))
    assert 0.0 <= score <= 1.0
