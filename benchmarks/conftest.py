"""Benchmark-suite configuration.

The table/figure benchmarks reproduce the paper's full evaluation; the
underlying simulations are expensive, so results are cached on disk
(``.results_cache/``) by :mod:`repro.experiments.workflow`.  The first
``pytest benchmarks/ --benchmark-only`` run populates the cache (~10-15
minutes); subsequent runs are fast.

Every reproduction benchmark uses ``benchmark.pedantic(..., rounds=1)``:
the quantity of interest is the paper-shape of the *results*, not the
wall time of the harness.
"""

import pytest


@pytest.fixture(scope="session")
def seed():
    return 0


def run_report(benchmark, fn, seed):
    """Run a report function once under the benchmark fixture and print it."""
    data, text = benchmark.pedantic(fn, args=(seed,), rounds=1, iterations=1,
                                    warmup_rounds=0)
    print()
    print(text)
    return data
