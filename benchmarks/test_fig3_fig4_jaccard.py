"""Figs. 3 and 4: Jaccard similarity of logical measurements to tsc.

Paper findings encoded as assertions:

* lt_1 has the lowest J_(M,C) in (almost) all experiments; the counting
  and counter modes score much higher.
* The minimal run-to-run score is >= 0.9 for tsc everywhere; lt_hwctr's
  is generally lower (0.67 in TeaLeaf-2).
* All other logical measurements are exactly reproducible, so their
  run-to-run score is 1.0 by construction (asserted in the unit tests).
"""

from conftest import run_report

from repro.experiments import reports


def test_fig3_jaccard_minife_lulesh(benchmark, seed):
    data = run_report(benchmark, reports.fig3_jaccard_minife_lulesh, seed)

    for name, entry in data.items():
        scores = entry["scores"]
        assert 0.0 <= min(scores.values()) and max(scores.values()) <= 1.0
        # lt_1 is the weakest effort model (paper: "in almost all
        # experiments, lt_1 has the lowest score")
        assert scores["lt_1"] <= min(scores["lt_bb"], scores["lt_stmt"]) + 0.02, name
        # the advanced models beat the loop counter
        assert max(scores["lt_bb"], scores["lt_stmt"]) > scores["lt_loop"], name

    # MiniFE-1 is the easy case: the counting models agree strongly with tsc
    assert data["MiniFE-1"]["scores"]["lt_bb"] > 0.6
    # run-to-run floor: tsc stays >= 0.9 in the paper
    for name, entry in data.items():
        assert entry["min_run_to_run"]["tsc"] >= 0.85, name


def test_fig4_jaccard_tealeaf(benchmark, seed):
    data = run_report(benchmark, reports.fig4_jaccard_tealeaf, seed)
    for name, entry in data.items():
        scores = entry["scores"]
        assert scores["lt_1"] <= max(scores.values()), name
        assert entry["min_run_to_run"]["tsc"] >= 0.85, name
        # lt_hwctr is noisier than tsc (paper: down to 0.67 in TeaLeaf-2)
        assert entry["min_run_to_run"]["lt_hwctr"] <= entry["min_run_to_run"]["tsc"] + 0.05, name
