"""Fig. 9: LULESH-1 computation shares and all-to-all delay costs.

Paper narrative (Sec. V-C3):

* CalcForceForNodes is "responsible for most of the computation time"
  and, despite having no artificial imbalance, causes most of the
  all-to-all wait time under tsc ("minor imbalances in this function
  still cause most of the all-to-all wait time").
* lt_loop / lt_bb / lt_stmt: "delay costs point to the material update
  routine" -- the artificial imbalance is the only one they can see.
* lt_hwctr "points to an MPI_Waitall call": the nodal timing variations
  become spin instructions inside the halo-exchange wait.
"""

from conftest import run_report

from repro.experiments import reports


def test_fig9_lulesh1_comp_and_delay(benchmark, seed):
    data = run_report(benchmark, reports.fig9_lulesh1_comp_and_delay, seed)
    comp = data["comp"]
    delay = data["delay_n2n"]

    # 9a: nodal force work dominates computation under tsc...
    assert comp["tsc"]["CalcForceForNodes"] > 30
    # ...and the counting models reproduce the computation ranking
    for mode in ("lt_bb", "lt_stmt", "lt_hwctr"):
        assert comp[mode]["CalcForceForNodes"] == max(
            v for k, v in comp[mode].items() if k != "other"
        ), mode

    # 9b: tsc's delay costs point at the nodal force calculation
    assert delay["tsc"]["CalcForceForNodes"] > delay["tsc"]["ApplyMaterialPropertiesForElems"]

    # The counting models can only see the artificial material imbalance.
    # Part of it arrives *indirectly*: the laggard's late halo sends bump
    # its neighbours' logical clocks inside MPI_Waitall, and when such a
    # neighbour is the last to reach the allreduce the cost lands on its
    # halo-exchange call path (Scalasca's indirect-delay propagation).
    # The material update must still be the largest computational source.
    for mode in ("lt_loop", "lt_bb", "lt_stmt"):
        shares = delay[mode]
        assert shares["ApplyMaterialPropertiesForElems"] > 25, mode
        compute_buckets = {k: v for k, v in shares.items()
                           if k not in ("CalcForceForNodes", "other", "MPI_Waitall")}
        assert shares["ApplyMaterialPropertiesForElems"] == max(
            compute_buckets.values()
        ), mode
    assert delay["lt_loop"]["ApplyMaterialPropertiesForElems"] > 90

    # lt_hwctr attributes the nodal delay to the MPI_Waitall spin loop
    assert delay["lt_hwctr"]["MPI_Waitall"] > delay["tsc"]["MPI_Waitall"] + 10
    assert delay["lt_hwctr"]["MPI_Waitall"] > 30
