"""Table II: TeaLeaf run times and tsc overheads.

Paper values: TeaLeaf-1 58.8s/+42.8%, TeaLeaf-2 41.5s/+41.5% (optimal
reference), TeaLeaf-3 53.1s/+9.4%, TeaLeaf-4 54.2s/+14.9%.
"""

from conftest import run_report

from repro.experiments import reports


def test_table2_tealeaf(benchmark, seed):
    data = run_report(benchmark, reports.table2_tealeaf, seed)

    ref = {k: v["ref"] for k, v in data.items()}
    ov = {k: v["overhead"] for k, v in data.items()}

    # TeaLeaf-1 (cross-socket team) is clearly the slowest configuration
    # and TeaLeaf-2 stays within ~10 % of the fastest (the paper's
    # optimum; see EXPERIMENTS.md for the known TeaLeaf-3/4 deviation).
    assert ref["TeaLeaf-1"] == max(ref.values())
    assert ref["TeaLeaf-2"] <= min(ref.values()) * 1.12

    # Overhead shrinks dramatically with the OpenMP team size: the
    # 64-thread teams of TeaLeaf-2 pay far more than the 16-thread teams
    # of TeaLeaf-3 (paper: 41.5 % vs 9.4 %), and the large-team configs
    # pay heavily in absolute terms.
    assert ov["TeaLeaf-2"] > ov["TeaLeaf-3"] + 10
    assert ov["TeaLeaf-1"] > 20 and ov["TeaLeaf-2"] > 20
    assert ov["TeaLeaf-3"] < 25
