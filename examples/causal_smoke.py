"""Causal profiler smoke: blame, alignment and validated what-if.

Run by the CI ``causal-smoke`` job.  Simulates one mini-app
configuration under two noise seeds, then drives the whole
``repro.causal`` surface through the CLI and the API:

* ``repro-causal blame`` -- builds the DAG, writes the blame report and
  Cube blame profile; the critical-path fingerprint must be identical
  across the two noise seeds under a deterministic logical mode.
* ``repro-causal align`` -- overlays the two physical-timer runs on one
  Perfetto timeline; shared markers must land exactly.
* ``repro-causal whatif --validate`` -- the edited-replay prediction
  must match a full engine re-simulation **bit for bit** (the job's
  central assertion).
* ``repro-causal delayprop`` -- the injected-delay wavefront must be
  noise-invariant and ``drop_region`` must reproduce the delay-free
  baseline exactly.

Artifacts left for upload: ``causal_blame.json``,
``causal_blame.cube.json.gz``, ``causal_aligned.chrome.json``,
``causal_whatif.json``, ``causal_delayprop.json``.

Usage::

    PYTHONPATH=src python examples/causal_smoke.py
"""

import json
import sys

from repro.causal import build_dag
from repro.cli import main_causal, main_run
from repro.measure import read_trace


def run(argv, main=main_causal):
    print(f"$ {' '.join(argv)}")
    rc = main(argv)
    if rc != 0:
        print(f"command failed with exit status {rc}", file=sys.stderr)
        sys.exit(1)


def main_smoke() -> int:
    # two recordings of the same configuration, different noise seeds
    run(["MiniFE-1", "--mode", "tsc", "--seed", "1",
         "-o", "causal_s1.trace.json.gz"], main=main_run)
    run(["MiniFE-1", "--mode", "tsc", "--seed", "2",
         "-o", "causal_s2.trace.json.gz"], main=main_run)

    # blame: report + profile, and seed-invariance of the causal structure
    run(["blame", "causal_s1.trace.json.gz", "--mode", "ltbb",
         "-o", "causal_blame.json", "--profile", "causal_blame.cube.json.gz"])
    report = json.load(open("causal_blame.json"))
    assert report["critical_path_len"] > 0, "empty critical path"
    assert report["total_wait"] > 0.0, "no waits attributed"
    fp2 = build_dag(read_trace("causal_s2.trace.json.gz"),
                    "ltbb").critical_path_fingerprint()
    assert report["critical_path_fingerprint"] == fp2, (
        "critical path fingerprint differs across noise seeds under ltbb")
    print("critical path bit-identical across noise seeds: ok")

    # alignment: overlay the two physical runs on one timeline
    run(["align", "causal_s1.trace.json.gz", "causal_s2.trace.json.gz",
         "-o", "causal_aligned.chrome.json"])
    doc = json.load(open("causal_aligned.chrome.json"))
    assert doc["traceEvents"], "empty aligned export"

    # what-if: the central assertion -- prediction == engine re-simulation
    run(["whatif", "causal_s1.trace.json.gz", "--mode", "ltbb",
         "--scale", "matvec=0.5", "--validate", "MiniFE-1", "--seed", "1",
         "-o", "causal_whatif.json"])
    doc = json.load(open("causal_whatif.json"))
    assert doc["validation"]["ok"], "what-if diverged from re-simulation"
    assert doc["validation"]["max_abs_diff"] == 0.0
    print("what-if bit-identical to full engine re-simulation: ok")

    # delay propagation: noise-invariant wavefront + drop-delay identity
    run(["delayprop", "--mode", "ltbb", "--seeds", "1", "2", "--iters", "6",
         "-o", "causal_delayprop.json"])
    doc = json.load(open("causal_delayprop.json"))
    assert doc["seed_invariant"], "delay wavefront varies with noise"
    assert all(doc["whatif_ok"].values()), "drop-delay what-if mismatch"

    print("causal smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main_smoke())
