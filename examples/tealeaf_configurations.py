"""TeaLeaf configuration study (paper Table II, reduced scale).

Part 1 runs real implicit heat-conduction steps with the NumPy TeaLeaf
kernels.  Part 2 simulates the four paper configurations of the full
benchmark at reduced iteration counts and reports reference time, tsc
measurement overhead, and where the time goes -- reproducing the paper's
observation that measurement overhead grows with the OpenMP team size
while the 128-rank configuration shifts its cost into MPI waiting.

Run:  python examples/tealeaf_configurations.py
"""


from repro.analysis import MPI_COLL_WAIT_NXN, analyze_trace, group_totals
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.miniapps.tealeaf import HeatProblem, TeaLeaf, TeaLeafConfig, solve_step
from repro.sim import CostModel, Engine
from repro.util.tables import format_table


def real_heat() -> None:
    print("Part 1: real implicit heat conduction (96x96 grid)")
    problem = HeatProblem.benchmark(96)
    for step in range(3):
        iters = solve_step(problem)
        print(f"  step {step}: CG iterations {iters}, "
              f"peak temperature {problem.u.max():.3f}")
    print()


def simulate_configs() -> None:
    cluster = jureca_dc(1)
    rows = []
    for n in (1, 2, 3, 4):
        cfg = TeaLeafConfig.tealeaf(n, steps=1, cg_iters=8)
        app = TeaLeaf(cfg)
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
        ref = Engine(TeaLeaf(cfg), cluster,
                     CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=1))).run()
        res = Engine(app, cluster, cost, measurement=Measurement("tsc")).run()
        prof = analyze_trace(timestamp_trace(res.trace, "tsc"))
        g = group_totals(prof)
        rows.append([
            cfg.name,
            f"{cfg.n_ranks}x{cfg.threads_per_rank}",
            ref.runtime,
            100 * (res.runtime - ref.runtime) / ref.runtime,
            g["omp"],
            prof.percent_of_time(MPI_COLL_WAIT_NXN),
        ])
    print(format_table(
        ["Config", "ranks x threads", "ref / s", "tsc overhead %", "omp %T", "wait_nxn %T"],
        rows,
        title="Part 2: simulated TeaLeaf configurations (reduced scale)",
        floatfmt=".1f",
    ))
    print()
    print("Larger OpenMP teams -> larger measurement perturbation; many")
    print("single-threaded ranks -> the all-to-all exchanges dominate.")


if __name__ == "__main__":
    real_heat()
    simulate_configs()
