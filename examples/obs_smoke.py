"""Observability smoke: tiny observed campaign, validated end to end.

Run by the CI ``obs-smoke`` job with ``REPRO_OBS=1``.  Executes a
miniature parallel campaign under the environment-activated session,
then checks the whole observability surface: the archive written at
(simulated) exit, the Chrome trace-event export (required keys on every
event, at least one span per instrumented layer), the per-experiment
summary rendering, and that the provenance manifest hash is reproducible
across an identical re-run.

Usage::

    REPRO_OBS=1 REPRO_OBS_OUT=obs_smoke.json PYTHONPATH=src python examples/obs_smoke.py
"""

import json
import os
import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.cli import main_obs
from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec
from repro.obs import CHROME_REQUIRED_KEYS


def make_app():
    from repro.miniapps.minife import MiniFE, MiniFEConfig

    return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3,
                                    init_segments=2))


def main() -> int:
    session = obs.active()
    if session is None:
        print("REPRO_OBS is not set -- run with REPRO_OBS=1", file=sys.stderr)
        return 2

    C.EXPERIMENTS["Obs-Smoke"] = ExperimentSpec(
        "Obs-Smoke", make_app, nodes=1, reps_ref=1, reps_noisy=1,
        phases=("init", "solve"))
    W._CACHE_DIR = Path(tempfile.mkdtemp(prefix="obs-smoke-cache-"))

    result = W.run_experiment("Obs-Smoke", use_cache=False, workers=2)
    rerun = W.run_experiment("Obs-Smoke", use_cache=False, workers=1)
    assert result.manifest is not None, "campaign produced no manifest"
    assert result.manifest["hash"] == rerun.manifest["hash"], \
        "manifest hash not reproducible across identical runs"

    out = os.environ.get("REPRO_OBS_OUT", "obs_trace.json")
    session.save(out)

    doc = obs.load_archive(out)
    totals = session.metrics.totals("")
    for required in ("sim.events_emitted", "sim.scheduler_steps",
                     "clocks.replays", "noise.injections",
                     "workflow.runs_executed", "workflow.worker_runs"):
        assert totals.get(required, 0) > 0, f"metric {required} missing/zero"

    chrome_path = out + ".chrome.json"
    rc = main_obs(["export", out, "--chrome", "-o", chrome_path])
    assert rc == 0, f"repro-obs export failed with {rc}"
    chrome = json.loads(Path(chrome_path).read_text())
    events = chrome["traceEvents"]
    assert events, "chrome export has no events"
    for ev in events:
        for key in CHROME_REQUIRED_KEYS:
            assert key in ev, f"chrome event missing {key!r}: {ev}"
    span_names = {e["name"] for e in events if e["ph"] == "X"}
    for expected in ("experiment", "engine.run", "replay"):
        assert expected in span_names, f"span {expected!r} missing"
    assert len({e["pid"] for e in events if e["ph"] == "X"}) >= 2, \
        "expected spans from more than one process (parallel campaign)"

    rc = main_obs(["summary", out])
    assert rc == 0, f"repro-obs summary failed with {rc}"
    rc = main_obs(["diff", out, out])
    assert rc == 0, f"repro-obs diff (self) failed with {rc}"

    print(f"obs smoke OK: {len(events)} chrome events, "
          f"{len(doc['spans'])} spans, manifest {result.manifest['hash'][:12]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
