"""Fault-tolerance smoke: crash, recover, resume -- validated end to end.

Run by the CI ``fault-smoke`` job.  Exercises both halves of the
robustness surface (docs/robustness.md):

1. **Simulated-world faults** -- the fault sweep: a checkpointed ring
   application crashes and recovers through the simulated
   checkpoint/restart protocol under a fixed fault realization while the
   machine noise varies; every deterministic logical timer must produce
   bit-identical traces across the noise repetitions, and every
   recovered trace must sanitize cleanly.  Recovery itself must be
   reproducible: two identically-seeded recovered runs are bit-identical.
2. **Toolchain robustness** -- the campaign supervisor: a cached
   campaign result is deliberately corrupted on disk; the rerun must
   quarantine the corrupt cache (``*.corrupt-N``), recompute, and arrive
   at a bit-identical result.

Usage::

    PYTHONPATH=src python examples/fault_smoke.py
"""

import sys
import tempfile
from pathlib import Path

from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec
from repro.experiments.faultsweep import (
    CheckpointedRing,
    default_fault_config,
    run_fault_sweep,
    trace_fingerprint,
)
from repro.clocks import timestamp_trace
from repro.machine import FaultModel, NoiseConfig, NoiseModel, small_test_cluster
from repro.measure import Measurement
from repro.sim import CostModel, run_with_recovery

REPORT = Path("fault_smoke_report.txt")


def make_app():
    from repro.miniapps.minife import MiniFE, MiniFEConfig

    return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3,
                                    init_segments=2))


def recovered_fingerprint(fault_seed: int, noise_seed: int):
    cluster = small_test_cluster()
    faults = FaultModel(default_fault_config(), seed=fault_seed)
    measurement = Measurement("lt1")
    outcome = run_with_recovery(
        CheckpointedRing(), cluster,
        lambda: CostModel(cluster, noise=NoiseModel(NoiseConfig(),
                                                    seed=noise_seed)),
        faults, measurement=measurement,
    )
    tt = timestamp_trace(outcome.result.trace, "lt1")
    return trace_fingerprint(tt), outcome.n_restarts


def main() -> int:
    lines = []

    # -- 1a: the fault sweep ------------------------------------------------
    sweep = run_fault_sweep(reps=2)
    lines.append(sweep.report())
    assert sweep.deterministic_ok, "fault sweep failed (see report)"
    assert all(n > 0 for n in sweep.n_restarts["lt1"]), \
        "smoke expects the default fault seed to actually crash ranks"

    # -- 1b: recovery is reproducible --------------------------------------
    fp_a, restarts_a = recovered_fingerprint(99, 3)
    fp_b, restarts_b = recovered_fingerprint(99, 3)
    assert restarts_a == restarts_b and restarts_a > 0
    assert fp_a == fp_b, "identically-seeded recovered runs diverged"
    lines.append(f"recovery reproducible: {restarts_a} restarts, "
                 f"fingerprint {fp_a[:12]}")

    # -- 2: the campaign supervisor quarantines corruption ------------------
    C.EXPERIMENTS["Fault-Smoke"] = ExperimentSpec(
        "Fault-Smoke", make_app, nodes=1, reps_ref=1, reps_noisy=1,
        phases=("init", "solve"))
    W._CACHE_DIR = Path(tempfile.mkdtemp(prefix="fault-smoke-cache-"))

    first = W.run_experiment("Fault-Smoke", use_cache=True, workers=1)
    cache = W._cache_path("Fault-Smoke", 0)
    assert cache.exists(), "campaign stored no cache"
    (cache / "summary.json").write_text('{"truncated')  # simulate bit rot

    again = W.run_experiment("Fault-Smoke", use_cache=True, workers=1)
    quarantined = list(W._CACHE_DIR.glob("*.corrupt-*"))
    assert quarantined, "corrupt cache was not quarantined"
    assert again.ref_runtimes == first.ref_runtimes
    assert again.runtimes == first.runtimes
    assert again.phases == first.phases
    lines.append(f"supervisor: corrupt cache quarantined as "
                 f"{quarantined[0].name}, recomputed bit-identically")

    lines.append("fault smoke OK")
    REPORT.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
