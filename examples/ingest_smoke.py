"""Ingestion smoke: export, mutate, ingest, replay -- never crash.

Run by the CI ``ingest-smoke`` job.  Exercises the hardened
foreign-trace ingestion pipeline (docs/ingest.md) end to end:

* **round trip** -- a Chrome trace-event export with the lossless
  ``repro.raw`` sidecar re-ingests to a trace whose per-location clock
  finals are bit-identical to the original under every deterministic
  logical mode (lt1/ltloop/ltbb/ltstmt);
* **fuzz contract** -- >= 200 seeded corpus mutations *per format*
  (Chrome lossless + foreign, comm-op doc + JSON-lines) are ingested;
  every input must either parse clean, repair with an ING-diagnosed
  report, or reject with an ING error diagnostic.  No uncaught
  exception, no hang, and every accepted trace passes ``sanitize_raw``
  with zero errors;
* **replay** -- an ingested comm-op program replays through the
  simulator under all six clock modes with finite runtimes.

Artifacts left for upload: ``ingest_fuzz.json`` (per-corpus fuzz
stats + ING rule histogram) and ``ingest_roundtrip.json`` (the clock
finals driven both ways).

Usage::

    PYTHONPATH=src python examples/ingest_smoke.py [N_PER_CORPUS]
"""

import json
import sys

from repro.ingest import ingest_bytes
from repro.ingest.fuzz import FUZZ_LIMITS, build_corpus, run_fuzz
from repro.ingest.replay import replay_clock_finals, replay_program
from repro.measure.config import MODES

LOGICAL = ("lt1", "ltloop", "ltbb", "ltstmt")


def check(name, ok, detail=""):
    mark = "ok" if ok else "FAIL"
    print(f"  [{mark}] {name}" + (f"  ({detail})" if detail else ""))
    if not ok:
        raise SystemExit(f"ingest smoke failed: {name}")


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    n_per_corpus = int(argv[0]) if argv else 200

    corpus = build_corpus()
    by_name = dict(corpus)

    # -- round trip: chrome export -> ingest -> bit-identical finals ----
    print("round trip (lossless Chrome export):")
    result = ingest_bytes(by_name["chrome-lossless"], name="export.json")
    check("accepted without repairs",
          result.report.accepted and not result.report.repairs)
    roundtrip = {}
    from repro.ingest.fuzz import _engine_trace

    original = _engine_trace()
    for mode in LOGICAL:
        want = replay_clock_finals(original, mode=mode)
        got = replay_clock_finals(result.trace, mode=mode)
        roundtrip[mode] = {"original": want, "ingested": got}
        check(f"{mode} finals bit-identical", got == want,
              f"final={got[-1]:.6g}")

    # -- replay: comm-op program under all six clock modes --------------
    print("comm-op replay:")
    prog = ingest_bytes(by_name["commops-doc"], name="ops.json").program
    for mode in MODES:
        res = replay_program(prog, mode=mode, seed=1)
        check(f"{mode} replays", res.runtime >= 0.0,
              f"runtime={res.runtime:.3g}s")

    # -- fuzz: >= n mutations per corpus entry, contract holds ----------
    print(f"fuzz ({n_per_corpus} mutations x {len(corpus)} corpora):")
    stats = run_fuzz(n_per_corpus=n_per_corpus, seed=0,
                     limits=FUZZ_LIMITS, corpus=corpus)
    print("  " + stats.format().replace("\n", "\n  "))
    check("no contract violations", stats.ok,
          f"{len(stats.failures)} violations")
    check("rejections carry ING diagnostics", stats.rejected > 0)
    check("salvage layer exercised", stats.repaired > 0)

    with open("ingest_fuzz.json", "w") as fh:
        json.dump({
            "n_per_corpus": n_per_corpus,
            "corpora": [name for name, _ in corpus],
            "n_inputs": stats.n_inputs,
            "accepted": stats.accepted,
            "repaired": stats.repaired,
            "rejected": stats.rejected,
            "failures": len(stats.failures),
            "rule_counts": stats.rule_counts,
        }, fh, indent=2)
    with open("ingest_roundtrip.json", "w") as fh:
        json.dump(roundtrip, fh, indent=2)
    print("wrote ingest_fuzz.json, ingest_roundtrip.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
