"""LULESH root-cause analysis: who delays the all-to-all?

Part 1 runs the real simplified hydro step (Sedov blast on one domain).
Part 2 simulates a small LULESH job with the artificial material-update
imbalance and asks each clock's delay-cost analysis which call paths are
responsible for the waiting in TimeIncrement's MPI_Allreduce -- the
experiment behind the paper's Fig. 9b, where lt_loop/lt_bb/lt_stmt point
cleanly at ApplyMaterialPropertiesForElems while lt_hwctr blames the
spin-waiting inside MPI_Waitall.

Run:  python examples/lulesh_root_cause.py
"""

from repro.analysis import DELAY_N2N, analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import MODE_LABELS, Measurement
from repro.miniapps.lulesh import Lulesh, LuleshConfig, hydro_step, sedov_init, total_energy
from repro.sim import CostModel, Engine
from repro.util.tables import format_table

BUCKETS = ("CalcForceForNodes", "ApplyMaterialPropertiesForElems", "MPI_Waitall")


def real_hydro() -> None:
    print("Part 1: real hydro step (Sedov blast, 16^3 mesh)")
    state = sedov_init(16)
    for _ in range(10):
        dt = hydro_step(state)
    print(f"  reached t = {state.t:.4f} after {state.step} steps "
          f"(last dt {dt:.2e}); total energy {total_energy(state):.3f}\n")


def delay_study() -> None:
    cluster = jureca_dc(1)
    rows = []
    for mode in ("tsc", "ltloop", "ltbb", "lthwctr"):
        app = Lulesh(LuleshConfig.tiny(n_ranks=8, threads_per_rank=2,
                                       edge_elems=20, steps=6, imbalance=0.4))
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
        res = Engine(app, cluster, cost, measurement=Measurement(mode)).run()
        prof = analyze_trace(timestamp_trace(res.trace, mode))
        shares = prof.metric_selection_percent(DELAY_N2N)
        agg = {b: 0.0 for b in BUCKETS}
        for path, v in shares.items():
            for b in BUCKETS:
                if b in path:
                    agg[b] += v
                    break
        rows.append([MODE_LABELS[mode]] + [agg[b] for b in BUCKETS])
    print(format_table(
        ["Clock"] + list(BUCKETS),
        rows,
        title="Part 2: delay costs for the TimeIncrement all-to-all (%M)",
        floatfmt=".0f",
    ))
    print()
    print("The counting clocks isolate the *algorithmic* imbalance in the")
    print("material update; lt_hwctr additionally sees busy-wait")
    print("instructions inside MPI_Waitall, as in the paper's Fig. 9b.")


if __name__ == "__main__":
    real_hydro()
    delay_study()
