"""Quickstart: measure a small MPI+OpenMP program with every clock.

Builds a four-rank program with a deliberate load imbalance, measures it
with the physical clock (tsc) and all five logical clocks, runs the
Scalasca-style wait-state analysis and prints what each clock sees.

Run:  python examples/quickstart.py
"""

from repro import quick_measure, jureca_dc
from repro.analysis import COMP, MPI_COLL_WAIT_NXN, render_metric_tree
from repro.measure import MODES, MODE_LABELS
from repro.sim import Allreduce, Enter, KernelSpec, Leave, ParallelFor, Program
from repro.util.tables import format_table

# A compute kernel: flops/bytes drive the physical clock, the static
# counts (loop iterations, basic blocks, statements, instructions) drive
# the logical clocks -- exactly the paper's five effort models.
WORK = KernelSpec(
    name="work",
    flops_per_unit=2e5,
    bytes_per_unit=4e4,
    omp_iters_per_unit=1.0,
    bb_per_unit=60.0,
    stmt_per_unit=180.0,
    instr_per_unit=2.5e5,  # ~1.25 instructions per flop
)


class Imbalanced(Program):
    """Rank r does (1 + r) units of work, then everyone synchronises."""

    name = "quickstart"
    n_ranks = 4
    threads_per_rank = 2

    def make_rank(self, ctx):
        yield Enter("main")
        for _step in range(3):
            yield Enter("compute_phase")
            yield ParallelFor("work_loop", WORK, total_units=200.0 * (1 + ctx.rank))
            yield Leave("compute_phase")
            yield Enter("reduce_phase")
            yield Allreduce(nbytes=8.0)
            yield Leave("reduce_phase")
        yield Leave("main")


def main() -> None:
    print(render_metric_tree())
    print()

    rows = []
    for mode in MODES:
        profile = quick_measure(Imbalanced(), mode=mode, cluster=jureca_dc(1))
        rows.append([
            MODE_LABELS[mode],
            profile.percent_of_time(COMP),
            profile.percent_of_time(MPI_COLL_WAIT_NXN),
        ])
    print(format_table(
        ["Clock", "comp %T", "wait_nxn %T"],
        rows,
        title="What each clock reports for the same imbalanced program",
        floatfmt=".1f",
    ))
    print()
    print("The rank-level load imbalance is *algorithmic* (it exists in the")
    print("loop-iteration, basic-block and instruction counts), so every")
    print("clock, physical or logical, reports the Wait-at-NxN state.")


if __name__ == "__main__":
    main()
