"""Serving smoke: boot the service, drive cold/warm/coalesced load.

Run by the CI ``serve-smoke`` job.  Boots the ``repro-serve`` asyncio
service on an ephemeral port over a scratch cache, then asserts the
serving design's load-bearing claims end to end:

* **cold** -- the first request for an experiment computes through the
  process pool and carries ``X-Repro-Cache: miss``;
* **warm** -- the repeat answers from the content-addressed cache
  (``hit``) with bytes identical to the cold response, and the
  ``serve.jobs_executed`` counter proves the pool was not touched;
* **coalesced** -- K concurrent requests for one new key execute
  exactly one computation (``serve.coalesced`` == K-1);
* **bit-identity** -- the served bytes equal
  ``serialize_result(run_experiment(...))`` computed directly;
* **quota** -- a tenant with a tiny bucket gets ``429`` + Retry-After;
* **analysis** -- an uploaded trace answers blame/replay requests, warm
  on repeat.

Artifacts left for upload: ``serve_load.json`` (the load report) and
``serve_metrics.json`` (the service's obs snapshot).

Usage::

    PYTHONPATH=src python examples/serve_smoke.py
"""

import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec

EXPERIMENT = "Serve-Smoke"


def register_experiment():
    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3,
                                        init_segments=2))

    C.EXPERIMENTS[EXPERIMENT] = ExperimentSpec(
        EXPERIMENT, make, nodes=1, reps_ref=1, reps_noisy=1,
        phases=("init", "solve"))


def check(name, ok, detail=""):
    mark = "ok" if ok else "FAIL"
    print(f"  [{mark}] {name}" + (f"  ({detail})" if detail else ""))
    if not ok:
        raise SystemExit(f"serve smoke failed: {name}")


async def main() -> int:
    from repro.serve.client import ServeClient, format_load_report, run_load
    from repro.serve.service import AnalysisService, ServeConfig

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    cache = tmp / "cache"
    W._CACHE_DIR = cache
    session = obs.enable()

    service = AnalysisService(ServeConfig(
        port=0, workers=2, cache_dir=str(cache),
        tenant_rate=50.0, tenant_burst=100.0))
    await service.start()
    print(f"service on 127.0.0.1:{service.port}, store at {cache}")
    try:
        # -- cold / warm / coalesced load phases ---------------------------
        report = await run_load("127.0.0.1", service.port, EXPERIMENT,
                                seed=0, coalesce=4)
        print(format_load_report(report))
        check("cold request computed", report["cold_cache"] == "miss")
        check("warm request cached", report["warm_cache"] == "hit")
        check("warm bytes identical to cold", report["warm_identical"])
        check("coalesced burst all 200",
              report["coalesce_statuses"] == [200])
        check("coalesced bytes identical", report["coalesce_identical"])

        jobs = session.metrics.value("serve.jobs_executed",
                                     kind="experiment")
        check("exactly one job per unique key", jobs == 2.0,
              f"jobs_executed={jobs} for 2 unique keys")
        coalesced = session.metrics.value("serve.coalesced")
        check("single flight coalesced K-1 clients", coalesced == 3.0,
              f"coalesced={coalesced}")

        # -- served bytes == direct computation ----------------------------
        direct = W.run_experiment(EXPERIMENT, seed=0, use_cache=True,
                                  preflight=False, workers=1)
        client = ServeClient("127.0.0.1", service.port)
        served = await client.experiment(EXPERIMENT, 0)
        check("served bit-identical to run_experiment",
              served.body == W.serialize_result(direct))
        check("identity check stayed warm",
              served.headers.get("x-repro-cache") == "hit")

        # -- quota: a starved tenant gets 429 + Retry-After ----------------
        service.quotas.rate = 0.5
        starved = ServeClient("127.0.0.1", service.port, tenant="starved")
        service.quotas.bucket("starved").tokens = 0.0
        resp = await starved.experiment(EXPERIMENT, 0)
        check("starved tenant rejected", resp.status == 429)
        check("429 carries Retry-After",
              int(resp.headers.get("retry-after", "0")) >= 1)

        # -- analysis over an uploaded trace -------------------------------
        from repro.machine import small_test_cluster
        from repro.machine.noise import NoiseConfig, NoiseModel
        from repro.measure import Measurement, write_trace
        from repro.miniapps.minife import MiniFE, MiniFEConfig
        from repro.sim import CostModel, Engine

        cluster = small_test_cluster(cores_per_numa=4, numa_per_socket=2)
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=1))
        trace = Engine(MiniFE(MiniFEConfig.tiny(nx=48, cg_iters=2)),
                       cluster, cost,
                       measurement=Measurement("ltbb")).run().trace
        trace_file = tmp / "smoke.trace.json.gz"
        write_trace(trace, trace_file)
        up = await client.upload_trace(trace_file.read_bytes())
        blame = await client.analyze("blame", up["hash"])
        check("blame on uploaded trace", blame.status == 200,
              f"makespan={blame.json().get('makespan'):.3f}")
        again = await client.analyze("blame", up["hash"])
        check("repeated analysis warm",
              again.headers.get("x-repro-cache") == "hit")
        check("repeated analysis byte-identical", again.body == blame.body)

        # -- artifacts ------------------------------------------------------
        Path("serve_load.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        Path("serve_metrics.json").write_text(
            json.dumps(session.snapshot(), indent=1) + "\n")
        print("artifacts: serve_load.json serve_metrics.json")
    finally:
        await service.stop()
        obs.disable()
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    register_experiment()
    sys.exit(asyncio.run(main()))
