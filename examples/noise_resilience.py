"""The paper's headline property, demonstrated end to end.

Runs the same MiniFE configuration under five different noise
realizations and compares the resulting analysis profiles with the
generalized Jaccard score:

* tsc profiles vary run to run (noise leaks into every severity),
* lt_bb profiles are *bit-identical* -- logical timestamps depend only on
  the event structure and the deterministic work counts.

Run:  python examples/noise_resilience.py
"""

import numpy as np

from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.miniapps.minife import MiniFE, MiniFEConfig
from repro.scoring import min_pairwise_jaccard
from repro.sim import CostModel, Engine
from repro.util.tables import format_table

N_RUNS = 5


def measure(mode: str, seed: int):
    cluster = jureca_dc(1)
    app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, cg_iters=6))
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    result = Engine(app, cluster, cost, measurement=Measurement(mode)).run()
    tt = timestamp_trace(result.trace, mode, counter_seed=seed)
    return analyze_trace(tt).normalized(), result.runtime


def main() -> None:
    rows = []
    for mode in ("tsc", "ltbb", "lthwctr"):
        profiles, runtimes = [], []
        for seed in range(N_RUNS):
            prof, rt = measure(mode, seed)
            profiles.append(prof)
            runtimes.append(rt)
        min_j = min_pairwise_jaccard(profiles)
        spread = (max(runtimes) - min(runtimes)) / np.mean(runtimes)
        rows.append([mode, min_j, 100 * spread])

    print(format_table(
        ["Clock", "min pairwise J_(M,C)", "runtime spread %"],
        rows,
        title=f"Run-to-run similarity over {N_RUNS} noisy repetitions",
        floatfmt=".3f",
    ))
    print()
    print("A score of 1.000 means the five analysis results are IDENTICAL:")
    print("the logical measurement is immune to the injected CPU, OS,")
    print("memory and network noise.  tsc (and the counter-based lt_hwctr)")
    print("vary -- repeating them is the only way to gain confidence.")


if __name__ == "__main__":
    main()
