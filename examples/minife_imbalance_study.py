"""MiniFE imbalance study: real numerics + simulated measurement.

Part 1 solves a real 3-D Poisson problem with the NumPy MiniFE kernels
(structure generation, assembly, CG) -- the algorithm whose distributed
execution the simulation models.

Part 2 sweeps MiniFE's artificial imbalance option on the simulator and
shows how the Wait-at-NxN severity responds to it -- and that the logical
lt_bb clock tracks the trend just like tsc, because load imbalance is an
algorithmic property.

Run:  python examples/minife_imbalance_study.py
"""

from repro.analysis import MPI_COLL_WAIT_NXN, analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.miniapps.minife import MiniFE, MiniFEConfig, assemble_poisson_3d, cg_solve
from repro.sim import CostModel, Engine
from repro.util.tables import format_table


def real_solve() -> None:
    print("Part 1: real MiniFE-style numerics (16^3 Poisson problem)")
    a, b = assemble_poisson_3d(16)
    x, iters, res = cg_solve(a, b, tol=1e-8)
    print(f"  CG converged in {iters} iterations, final residual {res:.2e}")
    print(f"  matrix: {a.shape[0]} rows, {a.nnz} nonzeros\n")


def sweep() -> None:
    cluster = jureca_dc(1)
    rows = []
    for imbalance in (0.0, 0.25, 0.5):
        row = [f"{imbalance:.0%}"]
        for mode in ("tsc", "ltbb"):
            app = MiniFE(MiniFEConfig.tiny(nx=96, n_ranks=8, cg_iters=6,
                                           imbalance=imbalance))
            cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
            result = Engine(app, cluster, cost, measurement=Measurement(mode)).run()
            prof = analyze_trace(timestamp_trace(result.trace, mode))
            row.append(prof.percent_of_time(MPI_COLL_WAIT_NXN))
        rows.append(row)
    print(format_table(
        ["Imbalance", "wait_nxn %T (tsc)", "wait_nxn %T (lt_bb)"],
        rows,
        title="Part 2: Wait-at-NxN vs MiniFE's artificial imbalance",
        floatfmt=".1f",
    ))
    print()
    print("Both clocks agree, imbalance by imbalance: load imbalance is an")
    print("algorithmic property, so logical timers detect it reliably and")
    print("noise-free.  (Waits peak at 25% because fewer overloaded ranks")
    print("deviate further from the mean at constant total work.)")


if __name__ == "__main__":
    real_solve()
    sweep()
