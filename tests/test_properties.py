"""Property-based tests: engine and clock invariants on random programs.

Hypothesis generates random SPMD programs (compute blocks, parallel
loops, matched ring communication, collectives) and checks the global
invariants that every component of the pipeline relies on:

* the simulation terminates without deadlock and time never runs backwards,
* every clock's timestamps are strictly increasing per location,
* logical timestamps are invariant under the noise seed,
* the analyzer's time tree exactly partitions the measured execution,
* severities are non-negative and the Jaccard score stays in [0, 1].
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import TIME_LEAVES, analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.scoring import jaccard_metric_callpath
from repro.sim import (
    Allreduce,
    Barrier,
    CallBurst,
    Compute,
    CostModel,
    Engine,
    Enter,
    Irecv,
    Isend,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
    Waitall,
)

K = KernelSpec("k", flops_per_unit=1e5, bytes_per_unit=1e4, omp_iters_per_unit=1.0,
               bb_per_unit=4.0, stmt_per_unit=12.0, instr_per_unit=30.0)

# One program "step" is drawn from this vocabulary; communication steps
# are constructed to be globally matched (every rank executes them).
step_strategy = st.sampled_from(["compute", "burst", "pfor", "ring", "allreduce", "barrier"])
program_strategy = st.lists(step_strategy, min_size=1, max_size=8)


class RandomProgram(Program):
    name = "random"
    n_ranks = 3
    threads_per_rank = 2

    def __init__(self, steps):
        self.steps = list(steps)

    def make_rank(self, ctx):
        yield Enter("main")
        for i, step in enumerate(self.steps):
            region = f"step{i}_{step}"
            yield Enter(region)
            if step == "compute":
                yield Compute(K, 10 + 5 * ctx.rank)
            elif step == "burst":
                yield CallBurst("tiny()", calls=50, kernel=K, units=5)
            elif step == "pfor":
                yield ParallelFor("loop", K, total_units=40 + 10 * ctx.rank)
            elif step == "ring":
                right = (ctx.rank + 1) % ctx.n_ranks
                left = (ctx.rank - 1) % ctx.n_ranks
                r1 = yield Irecv(source=left, tag=i)
                r2 = yield Isend(dest=right, tag=i, nbytes=256)
                yield Waitall([r1, r2])
            elif step == "allreduce":
                yield Allreduce()
            elif step == "barrier":
                yield Barrier()
            yield Leave(region)
        yield Leave("main")


def _run(steps, seed, mode="tsc"):
    cluster = small_test_cluster(cores_per_numa=4, numa_per_socket=2)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    return Engine(RandomProgram(steps), cluster, cost, measurement=Measurement(mode)).run()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy, st.integers(min_value=0, max_value=100))
def test_no_deadlock_and_monotone_trace(steps, seed):
    res = _run(steps, seed)
    assert res.runtime >= 0
    res.trace.validate()  # per-location physical monotonicity


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_all_clocks_strictly_increasing(steps):
    res = _run(steps, seed=3)
    for mode in ("tsc", "lt1", "ltloop", "ltbb", "ltstmt", "lthwctr"):
        tt = timestamp_trace(res.trace, mode, counter_seed=1)
        for arr in tt.times:
            if len(arr) > 1:
                assert np.all(np.diff(arr) >= 0), mode


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy, st.integers(min_value=0, max_value=50),
       st.integers(min_value=51, max_value=100))
def test_logical_noise_invariance(steps, seed_a, seed_b):
    ta = timestamp_trace(_run(steps, seed_a).trace, "ltbb").times
    tb = timestamp_trace(_run(steps, seed_b).trace, "ltbb").times
    for a, b in zip(ta, tb):
        assert np.array_equal(a, b)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_time_tree_partitions_total(steps):
    res = _run(steps, seed=5)
    for mode in ("tsc", "ltstmt"):
        prof = analyze_trace(timestamp_trace(res.trace, mode))
        total = prof.total_time()
        leaves = sum(prof.metric_total(m) for m in TIME_LEAVES)
        assert leaves == pytest.approx(total, rel=1e-9)
        for metric in prof.metrics:
            for v in prof.cells(metric).values():
                assert v >= -1e-9, metric


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_jaccard_bounds_on_real_profiles(steps):
    res = _run(steps, seed=7)
    a = analyze_trace(timestamp_trace(res.trace, "tsc"))
    b = analyze_trace(timestamp_trace(res.trace, "lt1"))
    j = jaccard_metric_callpath(a, b)
    assert 0.0 <= j <= 1.0
    assert jaccard_metric_callpath(a, a) == pytest.approx(1.0)
