"""Tests for :mod:`repro.obs` and its wiring through the pipeline.

Covers the issue's acceptance points: disabled observability is free in
the engine hot loop (null singletons, no allocations), span
nesting/Chrome export round-trips, provenance manifests hash
deterministically, per-worker metric aggregation equals the serial
totals, worker failures surface their original traceback with the task
tag, trace archives embed manifests in both formats, and the
``repro-obs`` CLI exit codes.
"""

import json
import pickle
import tracemalloc

import pytest

from repro import obs
from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec


@pytest.fixture(autouse=True)
def _obs_disabled(monkeypatch):
    """Isolate every test from the process-global active session."""
    import repro.obs.session as S

    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.setattr(S, "_ACTIVE", None)
    monkeypatch.setattr(S, "_ENV_CHECKED", True)


def _tiny_spec(name):
    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3,
                                        init_segments=2))

    return ExperimentSpec(name, make, nodes=1, reps_ref=1, reps_noisy=1,
                          phases=("init", "solve"))


@pytest.fixture
def tiny_obs_experiment(monkeypatch, tmp_path):
    monkeypatch.setitem(C.EXPERIMENTS, "Tiny-Obs", _tiny_spec("Tiny-Obs"))
    monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
    return "Tiny-Obs"


# ---------------------------------------------------------------------------
# disabled = free
# ---------------------------------------------------------------------------


class TestDisabledIsFree:
    def test_helpers_return_shared_null_singletons(self):
        assert obs.counter("sim.scheduler_steps") is obs.NULL_COUNTER
        assert obs.gauge("workflow.workers") is obs.NULL_GAUGE
        assert obs.histogram("sim.message_bytes") is obs.NULL_HISTOGRAM
        assert obs.span("replay", mode="ltbb") is obs.NULL_SPAN

    def test_engine_binds_null_metrics_when_disabled(self, cluster, quiet_cost):
        from repro.miniapps.minife import MiniFE, MiniFEConfig
        from repro.sim import Engine

        eng = Engine(MiniFE(MiniFEConfig.tiny(nx=32, n_ranks=2)), cluster,
                     quiet_cost)
        assert eng._c_steps is obs.NULL_COUNTER
        assert eng._h_msg_bytes is obs.NULL_HISTOGRAM

    def test_null_metric_hot_loop_allocates_nothing(self):
        c = obs.counter("x")
        h = obs.histogram("y")
        g = obs.gauge("z")
        c.inc()  # warm up any lazy interpreter state outside the window
        h.observe(1.0)
        g.set(1.0)
        tracemalloc.start()
        before, _peak = tracemalloc.get_traced_memory()
        for i in range(10_000):
            c.inc()
            h.observe(3.5)
            g.set(2.0)
        i = None  # release the loop's last (traced) int before measuring
        after, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before == 0
        assert c.value == 0.0  # null counters never accumulate

    def test_null_span_is_reusable_noop(self):
        sp = obs.span("anything")
        with sp as inner:
            assert inner is sp
        assert sp.duration == 0.0


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_identity_and_label_keying(self):
        r = obs.MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", mode="ltbb") is not r.counter("a", mode="tsc")
        r.counter("a", mode="ltbb").inc(3)
        assert r.value("a", mode="ltbb") == 3.0
        assert r.value("a", mode="lt1") is None

    def test_totals_sum_over_label_sets(self):
        r = obs.MetricsRegistry()
        r.counter("noise.injections", kind="cpu").inc(2)
        r.counter("noise.injections", kind="os").inc(5)
        r.counter("other").inc()
        assert r.totals("noise.") == {"noise.injections": 7.0}

    def test_histogram_buckets(self):
        h = obs.Histogram(bounds=(10.0, 100.0))
        for x in (1, 10, 11, 1000):
            h.observe(x)
        assert h.counts == [2, 1, 1]
        assert h.count == 4 and h.sum == 1022.0

    def test_merge_adds_counters_and_histograms(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only_b", k="v").inc(4)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.histogram("h", bounds=(1.0,)).observe(2.5)
        a.merge(b.snapshot())
        assert a.value("c") == 3.0
        assert a.value("only_b", k="v") == 4.0
        assert a.value("g") == 9.0  # gauges: last write wins
        assert a.histogram("h", bounds=(1.0,)).counts == [1, 1]

    def test_merge_rejects_bucket_mismatch(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(5.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bounds mismatch"):
            a.merge(b.snapshot())

    def test_snapshot_json_roundtrip(self):
        r = obs.MetricsRegistry()
        r.counter("c", mode="ltbb").inc(2)
        r.histogram("h").observe(42.0)
        doc = json.loads(json.dumps(r.snapshot()))
        fresh = obs.MetricsRegistry()
        fresh.merge(doc)
        assert fresh.value("c", mode="ltbb") == 2.0


# ---------------------------------------------------------------------------
# spans + Chrome export
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_depth_and_parent(self):
        s = obs.ObsSession()
        with s.span("outer"):
            with s.span("inner", mode="ltbb"):
                pass
        outer, inner = s.spans.records
        assert (outer.depth, outer.parent) == (0, -1)
        assert (inner.depth, inner.parent) == (1, 0)
        assert inner.t0 >= outer.t0 and inner.t1 <= outer.t1
        assert inner.args == {"mode": "ltbb"}

    def test_merge_rebases_parent_links(self):
        parent, worker = obs.ObsSession(), obs.ObsSession()
        with parent.span("local"):
            pass
        with worker.span("w_outer"):
            with worker.span("w_inner"):
                pass
        parent.spans.merge(worker.spans.snapshot())
        names = [r.name for r in parent.spans.records]
        assert names == ["local", "w_outer", "w_inner"]
        assert parent.spans.records[2].parent == 1  # rebased past "local"

    def test_chrome_export_required_keys_and_units(self):
        s = obs.ObsSession()
        with s.span("replay", mode="ltbb"):
            with s.span("replay.fill"):
                pass
        s.counter("sim.runs").inc()
        doc = json.loads(json.dumps(s.snapshot()))  # archive round-trip
        chrome = obs.to_chrome(doc)
        events = chrome["traceEvents"]
        assert len(events) == 3  # two spans + one counter sample
        for ev in events:
            for key in obs.CHROME_REQUIRED_KEYS:
                assert key in ev
        span_evs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in span_evs} == {"replay", "replay.fill"}
        outer = next(e for e in span_evs if e["name"] == "replay")
        assert outer["dur"] == pytest.approx(
            (doc["spans"][0]["t1"] - doc["spans"][0]["t0"]) * 1e6)
        counter_evs = [e for e in events if e["ph"] == "C"]
        assert counter_evs[0]["args"]["value"] == 1.0

    def test_archive_save_load_roundtrip(self, tmp_path):
        s = obs.ObsSession()
        with s.span("phase"):
            s.counter("c").inc(2)
        path = tmp_path / "obs.json"
        s.save(path)
        doc = obs.load_archive(path)
        assert doc["format"] == obs.ARCHIVE_FORMAT
        assert doc["spans"][0]["name"] == "phase"
        with pytest.raises(ValueError, match="archive"):
            bad = tmp_path / "bad.json"
            bad.write_text("{}")
            obs.load_archive(bad)


# ---------------------------------------------------------------------------
# provenance manifests
# ---------------------------------------------------------------------------


class TestProvenance:
    CONFIG = {"experiment": "X", "seed": 3, "modes": ["tsc", "lt1"]}

    def test_hash_deterministic_and_order_independent(self):
        a = obs.build_manifest("experiment", self.CONFIG)
        b = obs.build_manifest(
            "experiment",
            {"modes": ["tsc", "lt1"], "seed": 3, "experiment": "X"},
        )
        assert a["hash"] == b["hash"]
        assert a["format"] == obs.MANIFEST_FORMAT

    def test_tuples_normalise_like_lists(self):
        a = obs.build_manifest("k", {"modes": ("tsc", "lt1")})
        b = obs.build_manifest("k", {"modes": ["tsc", "lt1"]})
        assert a["hash"] == b["hash"]

    def test_environment_is_hash_exempt(self):
        a = obs.build_manifest("k", self.CONFIG,
                               environment={"workers": 1})
        b = obs.build_manifest("k", self.CONFIG,
                               environment={"workers": 8})
        assert a["hash"] == b["hash"]
        assert obs.diff_manifests(a, b) == ["env: workers: 1 != 8"]

    def test_config_changes_change_hash_and_diff(self):
        a = obs.build_manifest("k", self.CONFIG)
        b = obs.build_manifest("k", {**self.CONFIG, "seed": 4})
        assert a["hash"] != b["hash"]
        assert obs.diff_manifests(a, b) == ["config.seed: 3 != 4"]
        assert obs.diff_manifests(a, a) == []


# ---------------------------------------------------------------------------
# workflow wiring: aggregation, manifests, failure transport
# ---------------------------------------------------------------------------


class TestWorkflowObs:
    def test_parallel_totals_equal_serial(self, tiny_obs_experiment):
        serial, parallel = obs.ObsSession(), obs.ObsSession()
        W.run_experiment(tiny_obs_experiment, use_cache=False, workers=1,
                         obs=serial)
        W.run_experiment(tiny_obs_experiment, use_cache=False, workers=2,
                         obs=parallel)
        for prefix in ("sim.", "noise.", "clocks.", "io."):
            assert serial.metrics.totals(prefix) == \
                parallel.metrics.totals(prefix), prefix
        assert serial.metrics.totals("sim.")["sim.runs"] == 7.0
        assert parallel.metrics.totals("workflow.")["workflow.worker_runs"] == 7.0

    def test_manifest_attached_and_reproducible(self, tiny_obs_experiment):
        r1 = W.run_experiment(tiny_obs_experiment, use_cache=False, workers=1)
        r2 = W.run_experiment(tiny_obs_experiment, use_cache=False, workers=2)
        assert r1.manifest is not None
        assert r1.manifest["hash"] == r2.manifest["hash"]
        assert r1.manifest["environment"]["workers"] == 1
        assert r2.manifest["environment"]["workers"] == 2

    def test_manifest_survives_result_cache(self, tiny_obs_experiment):
        first = W.run_experiment(tiny_obs_experiment, use_cache=True)
        cached = W.run_experiment(tiny_obs_experiment, use_cache=True)
        assert cached.manifest == first.manifest
        session = obs.ObsSession()
        W.run_experiment(tiny_obs_experiment, use_cache=True, obs=session)
        assert session.metrics.value("workflow.cache_hits",
                                     experiment=tiny_obs_experiment) == 1.0
        assert [m["hash"] for m in session.manifests] == \
            [first.manifest["hash"]]

    def test_worker_failure_carries_tag_and_traceback(self, monkeypatch,
                                                      tmp_path):
        def broken():
            raise ValueError("boom from the app factory")

        spec = ExperimentSpec("Tiny-Broken", broken, nodes=1, reps_ref=1,
                              reps_noisy=1, phases=("init",))
        monkeypatch.setitem(C.EXPERIMENTS, "Tiny-Broken", spec)
        monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
        with pytest.raises(W.CampaignTaskError) as exc_info:
            W.run_experiment("Tiny-Broken", use_cache=False, workers=2,
                             preflight=False)
        from repro.measure import MODES

        err = exc_info.value
        assert err.task[0] == "Tiny-Broken"
        assert err.task[1] in ("ref",) + tuple(MODES)
        assert "ValueError: boom from the app factory" in err.original_tb
        assert "boom from the app factory" in str(err)

    def test_campaign_task_error_pickles(self):
        err = W.CampaignTaskError("X", "ltbb", 0, 2, "Traceback: ...")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.task == ("X", "ltbb", 0, 2)
        assert clone.original_tb == "Traceback: ..."


# ---------------------------------------------------------------------------
# archive manifests (trace formats)
# ---------------------------------------------------------------------------


class TestTraceManifests:
    def _trace(self, cluster, quiet_cost):
        from repro.measure import Measurement
        from repro.miniapps.minife import MiniFE, MiniFEConfig
        from repro.sim import Engine

        return Engine(MiniFE(MiniFEConfig.tiny(nx=32, n_ranks=2)), cluster,
                      quiet_cost, measurement=Measurement("tsc")).run().trace

    @pytest.mark.parametrize("suffix", ["trace.json.gz", "npz"])
    def test_manifest_roundtrip(self, cluster, quiet_cost, tmp_path, suffix):
        from repro.measure import read_manifest, read_trace, write_trace

        trace = self._trace(cluster, quiet_cost)
        manifest = obs.build_manifest("trace", {"experiment": "t", "seed": 0})
        path = tmp_path / f"t.{suffix}"
        write_trace(trace, path, manifest=manifest)
        assert read_manifest(path) == manifest
        loaded = read_trace(path)
        assert loaded.provenance == manifest

    def test_no_manifest_reads_none(self, cluster, quiet_cost, tmp_path):
        from repro.measure import read_manifest, read_trace, write_trace

        path = tmp_path / "t.npz"
        write_trace(self._trace(cluster, quiet_cost), path)
        assert read_manifest(path) is None
        assert read_trace(path).provenance is None

    def test_io_counters_when_enabled(self, cluster, quiet_cost, tmp_path):
        from repro.measure import read_trace, write_trace

        trace = self._trace(cluster, quiet_cost)
        session = obs.ObsSession()
        with obs.scoped(session):
            write_trace(trace, tmp_path / "t.npz")
            read_trace(tmp_path / "t.npz")
        totals = session.metrics.totals("io.")
        assert totals["io.traces_written"] == 1.0
        assert totals["io.traces_read"] == 1.0
        assert totals["io.bytes_written"] > 0


# ---------------------------------------------------------------------------
# CLI + bench
# ---------------------------------------------------------------------------


class TestObsCli:
    @pytest.fixture
    def archive(self, tmp_path):
        s = obs.ObsSession()
        with s.span("experiment", experiment="X"):
            with s.labels(experiment="X"):
                s.counter("sim.runs").inc(3)
        s.add_manifest(obs.build_manifest(
            "experiment", {"experiment": "X", "seed": 0}))
        path = tmp_path / "obs.json"
        s.save(path)
        return path

    def test_summary(self, archive, capsys):
        from repro.cli import main_obs

        assert main_obs(["summary", str(archive)]) == 0
        out = capsys.readouterr().out
        assert "experiment X" in out
        assert "sim.runs" in out

    def test_export_chrome_validates(self, archive, tmp_path, capsys):
        from repro.cli import main_obs

        out_path = tmp_path / "chrome.json"
        assert main_obs(["export", str(archive), "--chrome",
                         "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            for key in obs.CHROME_REQUIRED_KEYS:
                assert key in ev

    def test_diff_exit_codes(self, archive, tmp_path):
        from repro.cli import main_obs

        same = obs.build_manifest("experiment", {"experiment": "X", "seed": 0})
        other = obs.build_manifest("experiment", {"experiment": "X", "seed": 1})
        (tmp_path / "same.json").write_text(json.dumps(same))
        (tmp_path / "other.json").write_text(json.dumps(other))
        assert main_obs(["diff", str(archive), str(tmp_path / "same.json")]) == 0
        assert main_obs(["diff", str(archive), str(tmp_path / "other.json")]) == 1

    def test_report_summary_block_per_experiment(self, tiny_obs_experiment):
        session = obs.enable()
        try:
            W.run_experiment(tiny_obs_experiment, use_cache=False, workers=1)
            text = session.summary_text()
        finally:
            obs.disable()
        assert f"experiment {tiny_obs_experiment}" in text
        assert "sim.events_emitted" in text
        assert "wall time per phase" in text


class TestBenchSpans:
    def test_timed_uses_span_durations(self):
        from repro.bench import _timed

        session = obs.ObsSession()
        best = _timed(session, "unit", lambda: None, 3)
        spans = [r for r in session.spans.records if r.name == "bench.unit"]
        assert len(spans) == 3
        assert best == pytest.approx(min(s.duration for s in spans))
        assert best >= 0.0


class TestEnvActivation:
    def test_repro_obs_env_enables_lazily(self, monkeypatch):
        import repro.obs.session as S

        monkeypatch.setenv("REPRO_OBS", "1")
        monkeypatch.setattr(S, "_ACTIVE", None)
        monkeypatch.setattr(S, "_ENV_CHECKED", False)
        session = obs.active()
        assert session is not None
        assert obs.counter("x") is session.counter("x")

    def test_falsy_env_stays_disabled(self, monkeypatch):
        import repro.obs.session as S

        monkeypatch.setenv("REPRO_OBS", "0")
        monkeypatch.setattr(S, "_ACTIVE", None)
        monkeypatch.setattr(S, "_ENV_CHECKED", False)
        assert obs.active() is None
        assert obs.counter("x") is obs.NULL_COUNTER
