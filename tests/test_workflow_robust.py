"""Campaign supervisor: retries, watchdog, checksums, kill-and-resume.

Complements test_workflow_parallel.py (determinism and resume) with the
robustness surface of docs/robustness.md: worker failures heal through
bounded retry, corrupt on-disk state is quarantined and recomputed, and
every error path is loud and specific.
"""

import json
import pickle
import zlib
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

import pytest

from repro import obs
from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec
from repro.experiments.workflow import (
    CampaignTaskError,
    resolve_workers,
    run_experiment,
)
from repro.measure import MODES
from repro.measure.io import atomic_write_bytes, atomic_write_text


@pytest.fixture
def tiny_experiment(monkeypatch, tmp_path):
    """Register a fast throwaway experiment and isolate the cache dir."""

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3,
                                        init_segments=2))

    spec = ExperimentSpec("Tiny-R", make, nodes=1, reps_ref=2, reps_noisy=2,
                          phases=("init", "solve"))
    monkeypatch.setitem(C.EXPERIMENTS, "Tiny-R", spec)
    monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
    return "Tiny-R"


class TestResolveWorkers:
    def test_env_var_non_integer_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        with pytest.raises(ValueError, match="REPRO_WORKERS.*'auto'"):
            resolve_workers(None)

    def test_env_var_nonpositive_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_WORKERS", "-3")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_explicit_argument_error_names_the_argument(self):
        with pytest.raises(ValueError, match="workers argument"):
            resolve_workers(0)

    def test_valid_values_still_resolve(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(2) == 2


def _raise_campaign_error():
    raise CampaignTaskError("Exp", "lt1", 3, 1, "Traceback: boom at line 9")


class TestCampaignTaskErrorPickling:
    def test_reduce_round_trip(self):
        err = CampaignTaskError("Exp", "ltbb", 7, 2, "tb text")
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, CampaignTaskError)
        assert clone.task == ("Exp", "ltbb", 7, 2)
        assert clone.original_tb == "tb text"
        assert "ltbb" in str(clone) and "tb text" in str(clone)

    def test_survives_a_real_process_pool_boundary(self):
        # The whole point of __reduce__: the exception must arrive intact
        # (tag + original traceback) after crossing an actual pool
        # boundary, where default pickling of RuntimeError subclasses
        # with custom __init__ signatures breaks.
        ctx = get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
            fut = pool.submit(_raise_campaign_error)
            with pytest.raises(CampaignTaskError) as exc:
                fut.result()
        assert exc.value.task == ("Exp", "lt1", 3, 1)
        assert "boom at line 9" in exc.value.original_tb
        assert "boom at line 9" in str(exc.value)


# Module-level so the fork-based pool can pickle the reference; fails on
# the first attempt of one specific task, then succeeds (via a sentinel
# file the forked child shares with the parent filesystem).
_FLAKY_SENTINEL = None


def _flaky_run_task(name, mode, seed, rep):
    if mode == "lt1" and rep == 0 and not _FLAKY_SENTINEL.exists():
        _FLAKY_SENTINEL.write_text("tripped")
        raise RuntimeError("transient worker failure (injected)")
    return _ORIG_RUN_TASK(name, mode, seed, rep)


_ORIG_RUN_TASK = W._run_task


class TestRetries:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_injected_failure_heals_and_result_is_bit_identical(
            self, tiny_experiment, tmp_path, monkeypatch, workers):
        baseline = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                  workers=1)

        global _FLAKY_SENTINEL
        _FLAKY_SENTINEL = tmp_path / f"tripped-{workers}"
        monkeypatch.setattr(W, "_run_task", _flaky_run_task)
        session = obs.ObsSession()
        healed = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                workers=workers, obs=session,
                                retry_backoff=0.01)
        assert _FLAKY_SENTINEL.exists()  # the failure really happened
        assert session.metrics.totals("").get("workflow.retries", 0) >= 1
        assert healed.ref_runtimes == baseline.ref_runtimes
        assert healed.runtimes == baseline.runtimes
        assert healed.phases == baseline.phases

    def test_persistent_failure_raises_after_max_attempts(
            self, tiny_experiment, monkeypatch):
        def always_fail(name, mode, seed, rep):
            raise RuntimeError("permanent failure (injected)")

        monkeypatch.setattr(W, "_run_task", always_fail)
        with pytest.raises(CampaignTaskError) as exc:
            run_experiment(tiny_experiment, seed=0, use_cache=False,
                           workers=1, max_task_attempts=2,
                           retry_backoff=0.0)
        assert "permanent failure" in exc.value.original_tb

    def test_max_attempts_validated(self, tiny_experiment):
        with pytest.raises(ValueError, match="max_task_attempts"):
            run_experiment(tiny_experiment, max_task_attempts=0)

    def test_retry_delay_is_deterministic_and_growing(self):
        d1 = W._retry_delay(0, "X", "lt1", 0, 1, 0.25)
        d1b = W._retry_delay(0, "X", "lt1", 0, 1, 0.25)
        d2 = W._retry_delay(0, "X", "lt1", 0, 2, 0.25)
        assert d1 == d1b
        assert 0.25 <= d1 <= 0.5
        assert 0.5 <= d2 <= 1.0


class TestCorruptionQuarantine:
    def test_kill_and_resume_with_corrupted_checkpoint(self, tiny_experiment):
        """Satellite: corrupt one per-run checkpoint of an interrupted
        campaign; the resume must quarantine it, recompute that run, and
        produce a result bit-identical to an uninterrupted campaign."""
        uninterrupted = run_experiment(tiny_experiment, seed=0,
                                       use_cache=False, workers=1)

        # Build the "killed mid-campaign" state: all per-run checkpoints
        # on disk, no aggregate cache.
        runs_dir = W._runs_dir(tiny_experiment, 0)
        tasks = [("ref", r) for r in range(2)] + \
            [(m, r) for m in MODES
             for r in range(len(uninterrupted.runtimes[m]))]
        for task in tasks:
            W._store_run(runs_dir, task, W._run_task(
                tiny_experiment, task[0], 0, task[1]))

        # Corrupt one instrumented run's profile (summary CRC still
        # valid -- the profile checksum must catch it).
        victim = runs_dir / "ltbb-r0-profile.json.gz"
        victim.write_bytes(victim.read_bytes()[:-7])

        session = obs.ObsSession()
        resumed = run_experiment(tiny_experiment, seed=0, use_cache=True,
                                 workers=1, obs=session)
        quarantined = list(runs_dir.glob("*.corrupt-*")) if runs_dir.exists() \
            else list(W._CACHE_DIR.glob("**/*.corrupt-*"))
        # The runs dir is dropped after assembly; corruption must still
        # have been observed and the run recomputed.
        totals = session.metrics.totals("")
        assert totals.get("workflow.checkpoint_corrupt", 0) == 1
        assert totals.get("workflow.runs_executed", 0) == 1  # just the victim
        assert resumed.ref_runtimes == uninterrupted.ref_runtimes
        assert resumed.runtimes == uninterrupted.runtimes
        assert resumed.phases == uninterrupted.phases
        for mode in MODES:
            assert resumed.mean_profiles[mode].as_mapping(per_location=True) \
                == uninterrupted.mean_profiles[mode].as_mapping(
                    per_location=True)
        del quarantined  # inspected via counters; dir is cleaned up

    def test_truncated_summary_is_quarantined_not_trusted(
            self, tiny_experiment, tmp_path):
        runs_dir = tmp_path / "runs"
        payload = W._run_task(tiny_experiment, "ref", 0, 0)
        W._store_run(runs_dir, ("ref", 0), payload)
        marker = runs_dir / "ref-r0.json"
        marker.write_text(marker.read_text()[:10])

        assert W._load_run(runs_dir, ("ref", 0)) is None
        assert not marker.exists()
        assert (runs_dir / "ref-r0.json.corrupt-0").exists()

    def test_checksum_mismatch_detected(self, tiny_experiment, tmp_path):
        runs_dir = tmp_path / "runs"
        payload = W._run_task(tiny_experiment, "ref", 0, 0)
        W._store_run(runs_dir, ("ref", 0), payload)
        marker = runs_dir / "ref-r0.json"
        wrapper = json.loads(marker.read_text())
        wrapper["doc"]["runtime"] = 42.0  # tamper without re-signing
        marker.write_text(json.dumps(wrapper))
        assert W._load_run(runs_dir, ("ref", 0)) is None

    def test_valid_checkpoint_round_trips(self, tiny_experiment, tmp_path):
        runs_dir = tmp_path / "runs"
        payload = W._run_task(tiny_experiment, "ltbb", 0, 0)
        W._store_run(runs_dir, ("ltbb", 0), payload)
        wrapper = json.loads((runs_dir / "ltbb-r0.json").read_text())
        body = json.dumps(wrapper["doc"], sort_keys=True)
        assert wrapper["crc32"] == zlib.crc32(body.encode("utf-8"))
        loaded = W._load_run(runs_dir, ("ltbb", 0))
        assert loaded[0] == payload[0]
        assert loaded[2].as_mapping(per_location=True) == \
            payload[2].as_mapping(per_location=True)

    def test_corrupt_aggregate_cache_quarantined_and_recomputed(
            self, tiny_experiment):
        first = run_experiment(tiny_experiment, seed=0, use_cache=True,
                               workers=1)
        cache = W._cache_path(tiny_experiment, 0)
        (cache / "summary.json").write_text("{definitely not json")

        session = obs.ObsSession()
        again = run_experiment(tiny_experiment, seed=0, use_cache=True,
                               workers=1, obs=session)
        assert session.metrics.totals("").get("workflow.cache_corrupt",
                                              0) == 1
        assert list(W._CACHE_DIR.glob("*.corrupt-*"))
        assert again.ref_runtimes == first.ref_runtimes
        assert again.runtimes == first.runtimes

    def test_quarantine_numbers_do_not_collide(self, tmp_path):
        for i in range(3):
            victim = tmp_path / "state.json"
            victim.write_text(f"garbage {i}")
            W._quarantine(victim)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["state.json.corrupt-0", "state.json.corrupt-1",
                         "state.json.corrupt-2"]

    def test_quarantine_missing_file_is_noop(self, tmp_path):
        assert W._quarantine(tmp_path / "never-existed") is None


class TestAtomicWrites:
    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"one")
        atomic_write_bytes(target, b"two")
        assert target.read_bytes() == b"two"
        atomic_write_text(target, "three")
        assert target.read_text() == "three"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_failed_write_preserves_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"precious")

        import repro.measure.io as MIO

        def boom(src, dst):
            raise OSError("simulated rename failure")

        monkeypatch.setattr(MIO.os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_bytes(target, b"clobber")
        assert target.read_bytes() == b"precious"
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestWatchdog:
    def test_task_timeout_abandons_stuck_worker_and_recovers(
            self, tiny_experiment, monkeypatch):
        # The first attempt of one task hangs far past the watchdog; the
        # supervisor must abandon the stuck worker, resubmit, and still
        # assemble a result bit-identical to the serial baseline.  The
        # hang is one-shot via a sentinel file because forked pool
        # children each inherit a copy of parent memory -- only a path
        # on the shared filesystem distinguishes attempt 1 from attempt 2.
        import time as _time

        baseline = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                  workers=1)
        hang_file = W._CACHE_DIR / "hang-once"
        hang_file.parent.mkdir(parents=True, exist_ok=True)

        def hang_once(name, mode, seed, rep):
            if mode == "lt1" and rep == 0 and not hang_file.exists():
                hang_file.write_text("hung")
                _time.sleep(60.0)
            return _ORIG_RUN_TASK(name, mode, seed, rep)

        monkeypatch.setattr(W, "_run_task", hang_once)
        session = obs.ObsSession()
        healed = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                workers=2, obs=session, task_timeout=15.0,
                                retry_backoff=0.01)
        assert session.metrics.totals("").get("workflow.task_timeouts",
                                              0) >= 1
        assert healed.ref_runtimes == baseline.ref_runtimes
        assert healed.runtimes == baseline.runtimes
