"""Out-of-core sharded trace archives: round-trip, streaming, bounded memory.

The contract under test (docs/performance.md): a trace larger than the
shard size round-trips through ``write -> stream -> sanitize -> race
replay -> clock replay -> analyze`` while never holding more than one
shard's rows in memory, and manifest reads never touch the event body.
"""

import tracemalloc

import pytest

from repro.analysis import analyze_trace
from repro.analysis.analyzer import analyze_stream
from repro.clocks import timestamp_trace
from repro.clocks.streaming import stream_clock_replay
from repro.machine import small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.measure.config import MODES
from repro.measure.io import read_manifest, read_trace, write_trace
from repro.measure.shards import (
    MANIFEST_NAME,
    open_sharded_trace,
    read_shard_manifest,
    write_sharded_trace,
)
from repro.miniapps import MiniFE, MiniFEConfig
from repro.sim import CostModel, Engine
from repro.sim.events import MPI_SEND
from repro.verify import sanitize_raw
from repro.verify.races import find_races
from repro.verify.sanitizer import sanitize_stream

SHARD_EVENTS = 256  # far below the fixture's ~1.7k events -> multi-shard


def _make_trace():
    cluster = small_test_cluster(cores_per_numa=8, numa_per_socket=2)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
    app = MiniFE(MiniFEConfig.tiny(nx=48, cg_iters=4))
    return Engine(app, cluster, cost, measurement=Measurement("tsc")).run().trace


@pytest.fixture(scope="module")
def trace():
    return _make_trace()


@pytest.fixture
def archive(trace, tmp_path):
    path = tmp_path / "trace.shards"
    write_sharded_trace(trace, path, shard_events=SHARD_EVENTS,
                        manifest={"kind": "test-run"})
    return path


def _sig(trace_like):
    return [(loc, ev.etype, ev.region, ev.t.hex(), ev.aux, ev.t_enter.hex(),
             ev.delta)
            for loc, ev in trace_like.merged()]


class TestRoundTrip:
    def test_multi_shard_round_trip_is_exact(self, trace, archive):
        st = open_sharded_trace(archive)
        assert st.n_shards > 3
        assert st.n_events == trace.n_events
        assert _sig(st) == _sig(trace)

    def test_io_dispatch_on_suffix(self, trace, tmp_path):
        path = tmp_path / "via_io.shards"
        write_trace(trace, path, manifest={"kind": "dispatch"})
        back = read_trace(path)
        assert _sig(back) == _sig(trace)
        assert back.provenance == {"kind": "dispatch"}
        assert read_manifest(path) == {"kind": "dispatch"}

    def test_metadata_surface_matches_raw(self, trace, archive):
        st = open_sharded_trace(archive)
        assert st.locations == trace.locations
        assert list(st.regions.names) == list(trace.regions.names)
        assert st.n_locations == trace.n_locations
        assert st.n_ranks == trace.n_ranks
        assert st.loc_id(*trace.locations[-1]) == trace.n_locations - 1
        assert st.master_locations() == trace.master_locations()

    def test_manifest_is_header_only(self, archive):
        # Destroy every shard body: manifest reads must still succeed
        # (nothing but manifest.json is opened), streaming must fail.
        for shard in archive.glob("shard-*.npy"):
            shard.write_bytes(b"garbage")
        header = read_shard_manifest(archive)
        assert header["n_events"] > 0
        assert read_manifest(archive) == {"kind": "test-run"}
        st = open_sharded_trace(archive)  # manifest-only: still fine
        with pytest.raises(Exception):
            list(st.merged())


class TestBoundedMemory:
    def test_peak_resident_rows_bounded_by_shard_size(self, archive):
        st = open_sharded_trace(archive)
        for _loc, _ev in st.merged():
            pass
        assert st.stats.shards_opened == st.n_shards
        assert st.stats.rows_streamed == st.n_events
        assert 0 < st.stats.peak_resident_rows <= SHARD_EVENTS

    def test_streaming_allocates_less_than_materializing(self, archive):
        st = open_sharded_trace(archive)
        tracemalloc.start()
        for _loc, _ev in st.merged():
            pass
        _cur, peak_stream = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        raw = open_sharded_trace(archive).to_raw()
        _cur, peak_materialize = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert raw.n_events == st.n_events
        # The full trace holds every Ev at once; the stream holds at most
        # one shard (256 of ~1.7k events) plus transient objects.
        assert peak_stream < peak_materialize / 2


class TestStreamingConsumers:
    def test_sanitize_stream_clean_trace(self, trace, archive):
        st = open_sharded_trace(archive)
        assert sanitize_stream(st) == sanitize_raw(trace) == []

    def test_sanitize_stream_finds_corruption(self, tmp_path):
        # Forge a duplicate MPI_SEND match id on a fresh trace (the
        # columnar snapshot is memoized, so corrupt before first write);
        # both entry points must report the same findings (streaming may
        # order them differently).
        corrupt = _make_trace()
        sends = [ev for evs in corrupt.events for ev in evs
                 if ev.etype == MPI_SEND]
        assert len(sends) >= 2
        sends[1].aux = (sends[0].aux[0],) + tuple(sends[1].aux[1:])
        path = tmp_path / "corrupt.shards"
        write_sharded_trace(corrupt, path, shard_events=SHARD_EVENTS)
        raw_fp = sorted((d.rule_id, d.message, d.location)
                        for d in sanitize_raw(corrupt))
        stream_fp = sorted((d.rule_id, d.message, d.location)
                           for d in sanitize_stream(open_sharded_trace(path)))
        assert raw_fp == stream_fp
        assert any(rule == "TRC002" for (rule, _m, _l) in raw_fp)

    def test_race_replay_accepts_sharded_trace(self, trace, archive):
        st = open_sharded_trace(archive)
        full = find_races(trace)
        streamed = find_races(st)
        assert streamed.n_events == full.n_events
        assert streamed.wildcard_sites == full.wildcard_sites
        assert ([(d.rule_id, d.message) for d in streamed.diagnostics]
                == [(d.rule_id, d.message) for d in full.diagnostics])

    @pytest.mark.parametrize("mode", MODES)
    def test_stream_clock_replay_matches_full_replay(self, trace, archive, mode):
        st = open_sharded_trace(archive)
        tt = timestamp_trace(trace, mode, counter_seed=2)
        summary = stream_clock_replay(st, mode, counter_seed=2)
        assert summary.n_events == [len(t) for t in tt.times]
        finals = [float(t[-1]) if len(t) else 0.0 for t in tt.times]
        assert summary.final == finals  # bit-identical, no tolerance
        assert summary.max_clock == max(finals)

    def test_analyze_stream_matches_analyze_trace(self, trace, archive):
        st = open_sharded_trace(archive)
        full = analyze_trace(timestamp_trace(trace, "tsc"))
        streamed = analyze_stream(
            ((loc, ev, ev.t) for loc, ev in st.merged()),
            mode="tsc", regions=st.regions, locations=st.locations)
        assert streamed.metrics == full.metrics
        for metric in full.metrics:
            assert streamed.cells(metric) == full.cells(metric), metric
        assert st.stats.peak_resident_rows <= SHARD_EVENTS
