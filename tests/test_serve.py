"""The analysis service and its content-addressed result store.

Covers the issue's acceptance points: N concurrent clients asking for
the same manifest hash trigger exactly one pool computation (asserted
via obs counters), served bytes are bit-identical to a direct
``run_experiment`` serialization, warm-cache requests never touch the
process pool, quota rejections answer 429 + Retry-After and recover,
the bounded queue sheds expensive requests before cheap ones with 503,
and the offline workflow shares the same store: max-bytes LRU eviction,
cross-process single-flight leases, staging-dir sweeping.
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro import obs
from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec
from repro.serve.store import ResultStore, resolve_cache_max_bytes


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache", max_bytes=None)


@pytest.fixture
def session():
    s = obs.enable()
    yield s
    obs.disable()


@pytest.fixture
def tiny_experiment(monkeypatch, tmp_path):
    """A fast registered experiment over an isolated cache dir."""

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=2,
                                        init_segments=2))

    spec = ExperimentSpec("Serve-T", make, nodes=1, reps_ref=1, reps_noisy=1,
                          phases=("init", "solve"))
    monkeypatch.setitem(C.EXPERIMENTS, "Serve-T", spec)
    monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
    return "Serve-T"


def _backdate(path, seconds):
    t = time.time() - seconds
    os.utime(path, (t, t))


def _total(session, name):
    """Counter total summed over label sets (campaign counters carry an
    ``experiment`` label from the workflow's label context)."""
    return session.metrics.totals(name).get(name, 0.0)


# ---------------------------------------------------------------------------
# store: CRC blobs, quarantine, LRU eviction
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_blob_round_trip_touches_on_hit(self, store):
        key = ResultStore.entry_name("a" * 64, "blob")
        store.put_bytes(key, b"payload-bytes")
        _backdate(store.entry_path(key), 500)
        before = store.entry_path(key).stat().st_mtime
        assert store.get_bytes(key) == b"payload-bytes"
        assert store.entry_path(key).stat().st_mtime > before

    def test_corrupt_blob_quarantined(self, store, session):
        key = ResultStore.entry_name("b" * 64, "blob")
        path = store.put_bytes(key, b"good-bytes")
        raw = path.read_bytes()
        path.write_bytes(raw[:-3] + b"XXX")
        assert store.get_bytes(key) is None
        assert not path.exists()
        assert list(store.root.glob("*.corrupt-*"))
        assert session.metrics.value("workflow.cache_corrupt") == 1.0

    def test_missing_key_is_none(self, store):
        assert store.get_bytes("cas-nope-blob") is None

    def test_lru_eviction_frees_oldest_first(self, tmp_path, session):
        # each entry is 1000 payload bytes + the CRC frame; a 3200-byte
        # budget over four entries forces exactly one eviction
        store = ResultStore(tmp_path / "cache", max_bytes=3200)
        keys = [ResultStore.entry_name(f"{i}" * 64, f"e{i}") for i in range(4)]
        for i, key in enumerate(keys):
            store.max_bytes = None      # fill without evicting
            store.put_bytes(key, bytes(1000))
            _backdate(store.entry_path(key), 1000 - i)
        store.max_bytes = 3200
        # oldest entry is keys[0]; an access promotes it over keys[1]
        store.touch(keys[0])
        freed = store.evict()
        assert freed > 0
        assert store.total_bytes() <= 3200
        assert not store.entry_path(keys[1]).exists()   # LRU victim
        assert store.entry_path(keys[0]).exists()       # promoted by touch
        assert session.metrics.value("workflow.cache_evictions") == 1.0

    def test_evict_spares_protected_and_foreign_files(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_bytes=0)
        store.root.mkdir(parents=True)
        foreign = store.root / "hang-once"
        foreign.write_bytes(bytes(500))
        key = ResultStore.entry_name("c" * 64, "keep")
        store.put_bytes(key, bytes(500))
        store.evict(protect=(key,))
        assert store.entry_path(key).exists()
        assert foreign.exists()
        store.evict()
        assert not store.entry_path(key).exists()
        assert foreign.exists()

    def test_max_bytes_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert resolve_cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1234")
        assert resolve_cache_max_bytes() == 1234
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValueError, match="REPRO_CACHE_MAX_BYTES"):
            resolve_cache_max_bytes()
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
        with pytest.raises(ValueError, match="must be >= 0"):
            resolve_cache_max_bytes()


# ---------------------------------------------------------------------------
# store: single-flight leases
# ---------------------------------------------------------------------------
class TestStoreLeases:
    def test_second_acquire_blocked_until_release(self, store):
        lease = store.acquire("cas-k")
        assert lease is not None
        assert store.acquire("cas-k") is None
        lease.release()
        lease2 = store.acquire("cas-k")
        assert lease2 is not None
        lease2.release()

    def test_stale_lease_taken_over(self, store, session):
        lease = store.acquire("cas-k")
        _backdate(lease.path, store.lease_ttl + 60)
        taken = store.acquire("cas-k")
        assert taken is not None
        assert session.metrics.value("workflow.cache_lock_takeovers") == 1.0
        taken.release()

    def test_refresh_keeps_lease_fresh(self, store):
        lease = store.acquire("cas-k")
        _backdate(lease.path, store.lease_ttl + 60)
        lease.refresh()
        assert store.acquire("cas-k") is None
        lease.release()

    def test_wait_for_sees_published_entry(self, store, session):
        lease = store.acquire("cas-k")

        def publish():
            time.sleep(0.1)
            store.put_bytes("cas-k", b"done")
            lease.release()

        t = threading.Thread(target=publish)
        t.start()
        assert store.wait_for("cas-k", timeout=10.0) is True
        t.join()
        assert session.metrics.value("workflow.cache_lock_waits") == 1.0

    def test_wait_for_gives_up_on_vanished_lock(self, store):
        lease = store.acquire("cas-k")
        lease.release()
        assert store.wait_for("cas-k", timeout=1.0) is False


# ---------------------------------------------------------------------------
# workflow integration: shared cache, eviction, leases, staging sweep
# ---------------------------------------------------------------------------
class TestWorkflowStore:
    def test_cache_budget_evicts_old_results(self, tiny_experiment,
                                             monkeypatch, session):
        W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                         preflight=False)
        _backdate(W._cache_path(tiny_experiment, 0), 5000)
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1")
        W.run_experiment(tiny_experiment, seed=1, use_cache=True,
                         preflight=False)
        # seed-0's result was LRU and over budget; seed-1 is protected
        assert not W._cache_path(tiny_experiment, 0).exists()
        assert W._cache_path(tiny_experiment, 1).exists()
        assert _total(session, "workflow.cache_evictions") >= 1.0

    def test_campaign_waits_for_concurrent_publisher(self, tiny_experiment,
                                                     session):
        direct = W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                                  preflight=False)
        cached = W._cache_path(tiny_experiment, 0)
        parked = cached.with_name(cached.name + ".parked")
        cached.rename(parked)

        store = W.cache_store()
        lease = store.acquire(cached.name)
        results = {}

        def campaign():
            results["r"] = W.run_experiment(tiny_experiment, seed=0,
                                            use_cache=True, preflight=False)

        t = threading.Thread(target=campaign)
        t.start()
        time.sleep(0.3)      # the thread is now parked in wait_for
        parked.rename(cached)    # "the other process" publishes
        lease.release()
        t.join(timeout=60)
        assert not t.is_alive()
        assert _total(session, "workflow.cache_lock_waits") >= 1.0
        assert W.serialize_result(results["r"]) == W.serialize_result(direct)

    def test_stale_lease_does_not_block_campaign(self, tiny_experiment,
                                                 session):
        store = W.cache_store()
        key = W.cache_key(tiny_experiment, 0)
        lease = store.acquire(key)
        _backdate(lease.path, store.lease_ttl + 60)
        result = W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                                  preflight=False)
        assert result.name == tiny_experiment
        assert _total(session, "workflow.cache_lock_takeovers") == 1.0

    def test_orphaned_staging_dirs_swept(self, tiny_experiment, session):
        W._CACHE_DIR.mkdir(parents=True, exist_ok=True)
        orphan = W._CACHE_DIR / "cas-dead.tmp-xyz"
        orphan.mkdir()
        (orphan / "partial.json").write_text("{}")
        _backdate(orphan, 4000)
        fresh = W._CACHE_DIR / "cas-live.tmp-abc"
        fresh.mkdir()
        W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                         preflight=False)
        assert not orphan.exists()
        assert fresh.exists()    # younger than the sweep age: spared
        assert _total(session, "workflow.staging_swept") == 1.0

    def test_serialize_round_trip(self, tiny_experiment):
        result = W.run_experiment(tiny_experiment, seed=0, use_cache=False,
                                  preflight=False)
        data = W.serialize_result(result)
        back = W.deserialize_result(data)
        assert W.serialize_result(back) == data


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------
def _service(tmp_path, **overrides):
    from repro.serve.service import AnalysisService, ServeConfig

    defaults = dict(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
    defaults.update(overrides)
    return AnalysisService(ServeConfig(**defaults))


def _client(svc, **kw):
    from repro.serve.client import ServeClient

    return ServeClient("127.0.0.1", svc.port, **kw)


class TestService:
    def test_concurrent_cold_requests_coalesce_to_one_job(
            self, tiny_experiment, tmp_path, session):
        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                burst = await asyncio.gather(
                    *(client.experiment(tiny_experiment, 0)
                      for _ in range(5)))
            finally:
                await svc.stop()
            return burst

        burst = asyncio.run(main())
        assert [r.status for r in burst] == [200] * 5
        assert len({r.body for r in burst}) == 1
        # exactly ONE pool computation for 5 identical requests
        assert session.metrics.value("serve.jobs_executed",
                                     kind="experiment") == 1.0
        assert session.metrics.value("serve.coalesced") == 4.0
        # and the served bytes are bit-identical to a direct computation
        direct = W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                                  preflight=False)
        assert burst[0].body == W.serialize_result(direct)

    def test_warm_request_never_touches_the_pool(self, tiny_experiment,
                                                 tmp_path, session):
        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                cold = await client.experiment(tiny_experiment, 0)
                warm = await client.experiment(tiny_experiment, 0)
            finally:
                await svc.stop()
            return cold, warm

        cold, warm = asyncio.run(main())
        assert cold.status == warm.status == 200
        assert cold.headers["x-repro-cache"] == "miss"
        assert warm.headers["x-repro-cache"] == "hit"
        assert warm.body == cold.body
        assert session.metrics.value("serve.jobs_executed",
                                     kind="experiment") == 1.0
        assert session.metrics.value("serve.cache_hits", tier="mem") == 1.0

    def test_offline_campaign_result_served_without_pool(
            self, tiny_experiment, tmp_path, session):
        direct = W.run_experiment(tiny_experiment, seed=0, use_cache=True,
                                  preflight=False)

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                return await _client(svc).experiment(tiny_experiment, 0)
            finally:
                await svc.stop()

        resp = asyncio.run(main())
        assert resp.status == 200
        assert resp.headers["x-repro-cache"] == "hit"
        assert resp.body == W.serialize_result(direct)
        assert session.metrics.value("serve.jobs_executed",
                                     kind="experiment") is None
        assert session.metrics.value("serve.cache_hits", tier="offline") == 1.0

    def test_quota_429_with_retry_after_then_recovery(
            self, tiny_experiment, tmp_path, session):
        clock = [0.0]

        async def main():
            svc = _service(tmp_path, tenant_rate=1.0, tenant_burst=2.0,
                           time_fn=lambda: clock[0])
            await svc.start()
            try:
                client = _client(svc, tenant="alice")
                ok1 = await client.experiment(tiny_experiment, 0)
                ok2 = await client.experiment(tiny_experiment, 0)
                rejected = await client.experiment(tiny_experiment, 0)
                clock[0] += 5.0      # bucket refills
                recovered = await client.experiment(tiny_experiment, 0)
            finally:
                await svc.stop()
            return ok1, ok2, rejected, recovered

        ok1, ok2, rejected, recovered = asyncio.run(main())
        assert ok1.status == ok2.status == 200
        assert rejected.status == 429
        assert int(rejected.headers["retry-after"]) >= 1
        assert recovered.status == 200
        assert session.metrics.value("serve.quota_rejections",
                                     tenant="alice") == 1.0

    def test_backpressure_sheds_expensive_before_cheap(
            self, tiny_experiment, tmp_path, session):
        from repro.measure import write_trace

        trace_file = tmp_path / "t.trace.json.gz"
        write_trace(_make_trace("ltbb"), trace_file)

        async def main():
            svc = _service(tmp_path, queue_limit=2, start_dispatcher=False)
            await svc.start()
            try:
                client = _client(svc)
                up = await client.upload_trace(trace_file.read_bytes())
                # expensive request occupies the queue (threshold 1) ...
                first = asyncio.create_task(
                    client.experiment(tiny_experiment, 0))
                await asyncio.sleep(0.2)
                # ... a second experiment sheds, a cheap analysis queues
                shed = await client.experiment(tiny_experiment, 1)
                queued = asyncio.create_task(
                    client.analyze("replay", up["hash"]))
                await asyncio.sleep(0.2)
                svc.resume_dispatcher()
                first_resp = await first
                queued_resp = await queued
            finally:
                await svc.stop()
            return shed, first_resp, queued_resp

        shed, first_resp, queued_resp = asyncio.run(main())
        assert shed.status == 503
        assert int(shed.headers["retry-after"]) >= 1
        assert first_resp.status == 200
        assert queued_resp.status == 200
        assert session.metrics.value("serve.shed", kind="experiment") == 1.0
        assert session.metrics.value("serve.shed", kind="analysis") is None

    def test_healthz_and_metrics_endpoints(self, tiny_experiment, tmp_path,
                                           session):
        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                health = await client.healthz()
                await client.experiment(tiny_experiment, 0)
                prom = await client.metrics()
                js = await client.metrics(fmt="json")
            finally:
                await svc.stop()
            return health, prom, js

        health, prom, js = asyncio.run(main())
        assert health["status"] == "ok"
        assert health["workers"] == 2
        text = prom.body.decode("utf-8")
        assert "# TYPE serve_requests counter" in text
        assert 'serve_jobs_executed{kind="experiment"} 1' in text
        doc = json.loads(js.body)
        names = {row["name"] for row in doc["metrics"]["counters"]}
        assert "serve.jobs_executed" in names

    def test_unknown_routes_and_bodies_rejected(self, tmp_path, session):
        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                from repro.serve.client import http_request

                host, port = "127.0.0.1", svc.port
                missing = await http_request(host, port, "GET", "/v1/nope")
                bad = await http_request(host, port, "POST",
                                         "/v1/experiment", body=b"not-json")
                unknown = await http_request(
                    host, port, "POST", "/v1/experiment",
                    body=json.dumps({"name": "No-Such"}).encode())
                wrong = await http_request(host, port, "POST", "/healthz")
            finally:
                await svc.stop()
            return missing, bad, unknown, wrong

        missing, bad, unknown, wrong = asyncio.run(main())
        assert missing.status == 404
        assert bad.status == 400
        assert unknown.status == 404
        assert wrong.status == 405


# ---------------------------------------------------------------------------
# analysis routes over uploaded traces
# ---------------------------------------------------------------------------
def _make_trace(mode="ltbb", seed=1):
    from repro.machine import small_test_cluster
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import Measurement
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.sim import CostModel, Engine

    cluster = small_test_cluster(cores_per_numa=4, numa_per_socket=2)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    app = MiniFE(MiniFEConfig.tiny(nx=48, cg_iters=2))
    return Engine(app, cluster, cost, measurement=Measurement(mode)).run().trace


class TestAnalysisRoutes:
    def test_upload_analyze_and_warm_hit(self, tmp_path, session):
        from repro.measure import write_trace

        f1 = tmp_path / "a.trace.json.gz"
        f2 = tmp_path / "b.trace.json.gz"
        write_trace(_make_trace("ltbb", seed=1), f1)
        write_trace(_make_trace("ltbb", seed=2), f2)

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                up1 = await client.upload_trace(f1.read_bytes())
                up2 = await client.upload_trace(f2.read_bytes())
                replay = await client.analyze("replay", up1["hash"])
                again = await client.analyze("replay", up1["hash"])
                blame = await client.analyze("blame", up1["hash"])
                score = await client.analyze("score", up1["hash"],
                                             trace_b=up2["hash"])
                whatif = await client.analyze(
                    "whatif", up1["hash"],
                    params={"scale": {"matvec": 0.5}})
                bad_op = await client.analyze("explode", up1["hash"])
                missing = await client.analyze("replay", "f" * 64)
            finally:
                await svc.stop()
            return up1, replay, again, blame, score, whatif, bad_op, missing

        (up1, replay, again, blame, score, whatif, bad_op,
         missing) = asyncio.run(main())
        assert len(up1["hash"]) == 64
        assert replay.status == 200
        doc = replay.json()
        assert doc["op"] == "replay"
        assert doc["makespan"] > 0
        assert doc["manifest"]["hash"]
        # identical request answers from cache, byte-identical
        assert again.headers["x-repro-cache"] == "hit"
        assert again.body == replay.body
        assert blame.json()["total_wait"] >= 0
        assert 0.0 <= score.json()["score"] <= 1.0
        assert whatif.status == 200
        assert bad_op.status == 400
        assert missing.status == 404
        assert session.metrics.value("serve.jobs_executed",
                                     kind="analysis") == 4.0

    def test_trace_round_trip(self, tmp_path, session):
        from repro.measure import write_trace

        f1 = tmp_path / "a.trace.json.gz"
        write_trace(_make_trace("ltbb", seed=1), f1)
        data = f1.read_bytes()

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                up = await client.upload_trace(data)
                from repro.serve.client import http_request

                got = await http_request("127.0.0.1", svc.port, "GET",
                                         f"/v1/traces/{up['hash']}")
                gone = await http_request("127.0.0.1", svc.port, "GET",
                                          "/v1/traces/" + "e" * 64)
            finally:
                await svc.stop()
            return got, gone

        got, gone = asyncio.run(main())
        assert got.status == 200
        assert got.body == data
        assert gone.status == 404


# ---------------------------------------------------------------------------
# hardened upload + ingest endpoints
# ---------------------------------------------------------------------------
class TestIngestHardening:
    def test_oversize_body_answers_413(self, tmp_path, session):
        async def main():
            svc = _service(tmp_path, max_body_bytes=1024)
            await svc.start()
            try:
                from repro.serve.client import http_request

                return await http_request(
                    "127.0.0.1", svc.port, "PUT", "/v1/traces",
                    body=b"x" * 5000,
                    headers={"X-Archive-Name": "big.trace.json.gz"})
            finally:
                await svc.stop()

        resp = asyncio.run(main())
        assert resp.status == 413
        assert "byte limit" in resp.json()["error"]

    def test_malformed_archive_upload_400_and_quarantined(
            self, tmp_path, session):
        from repro.measure import write_trace

        f1 = tmp_path / "a.trace.json.gz"
        write_trace(_make_trace("ltbb", seed=1), f1)
        data = bytearray(f1.read_bytes())
        data[len(data) // 2] ^= 0xFF          # corrupt the gzip stream

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                from repro.serve.client import http_request

                resp = await http_request(
                    "127.0.0.1", svc.port, "PUT", "/v1/traces",
                    body=bytes(data),
                    headers={"X-Archive-Name": "bad.trace.json.gz"})
                root = svc.store.root
            finally:
                await svc.stop()
            return resp, root

        resp, root = asyncio.run(main())
        assert resp.status == 400
        assert "malformed trace archive" in resp.json()["error"]
        assert resp.headers.get("x-repro-quarantine")
        assert list(root.glob("*.corrupt-*"))
        assert _total(session, "serve.upload_rejects") == 1.0

    def test_analyze_on_archive_corrupted_in_store_answers_400(
            self, tmp_path, session):
        from repro.measure import write_trace

        f1 = tmp_path / "a.trace.json.gz"
        write_trace(_make_trace("ltbb", seed=1), f1)

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                client = _client(svc)
                up = await client.upload_trace(f1.read_bytes())
                path = svc._trace_path(up["hash"])
                blob = bytearray(path.read_bytes())
                blob[len(blob) // 2] ^= 0xFF
                path.write_bytes(bytes(blob))
                return await client.analyze("replay", up["hash"])
            finally:
                await svc.stop()

        resp = asyncio.run(main())
        assert resp.status == 400
        assert "malformed trace archive" in resp.json()["error"]

    def test_ingest_accept_chrome_then_analyze(self, tmp_path, session):
        from repro.obs.export import trace_chrome_events
        from repro.serve.client import http_request

        trace = _make_trace("lt1", seed=1)
        events = list(trace_chrome_events(trace, embed_raw=True))
        payload = json.dumps({"traceEvents": events}).encode()

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                resp = await http_request(
                    "127.0.0.1", svc.port, "POST", "/v1/ingest",
                    body=payload,
                    headers={"X-Archive-Name": "export.json"})
                doc = resp.json()
                replay = await _client(svc).analyze("replay", doc["hash"])
            finally:
                await svc.stop()
            return resp, doc, replay

        resp, doc, replay = asyncio.run(main())
        assert resp.status == 201
        assert doc["kind"] == "trace"
        assert doc["report"]["accepted"]
        assert replay.status == 200
        assert replay.json()["makespan"] > 0

    def test_ingest_reject_garbage_400_with_report(self, tmp_path, session):
        from repro.serve.client import http_request

        async def main():
            svc = _service(tmp_path)
            await svc.start()
            try:
                resp = await http_request(
                    "127.0.0.1", svc.port, "POST", "/v1/ingest",
                    body=b"\x00\xffnot a trace at all",
                    headers={"X-Archive-Name": "junk.bin"})
                root = svc.store.root
            finally:
                await svc.stop()
            return resp, root

        resp, root = asyncio.run(main())
        assert resp.status == 400
        doc = resp.json()
        assert doc["error"] == "ingest rejected"
        assert not doc["report"]["accepted"]
        assert any(d["rule"].startswith("ING")
                   for d in doc["report"]["rejections"])
        assert list(root.glob("*.corrupt-*"))
