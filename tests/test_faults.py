"""Fault injection, checkpoint/restart recovery and the fault sweep.

The properties under test mirror docs/robustness.md:

* the fault seed fully determines the fault schedule;
* recovery produces sanitizer-clean traces indistinguishable from a
  continuous measurement, reproducibly;
* under a fixed fault realization, the deterministic logical clock
  modes are bit-identical across noise seeds (and the noisy modes are
  not forced to be);
* the new verifier rules (MPI009, TRC008, TRC009) fire on seeded bugs.
"""

import pytest

from repro.experiments.faultsweep import (
    CheckpointedRing,
    default_fault_config,
    run_fault_sweep,
    trace_fingerprint,
)
from repro.clocks import timestamp_trace
from repro.machine import small_test_cluster
from repro.machine.faults import CrashPoint, FaultConfig, FaultModel, ZeroFaults
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.measure.config import NOISY_MODES
from repro.sim import (
    Allreduce,
    Checkpoint,
    Compute,
    CostModel,
    Engine,
    Enter,
    ExcessiveRestartsError,
    Irecv,
    Isend,
    KernelSpec,
    Leave,
    Program,
    Recv,
    RecoveryConfig,
    Send,
    SimCrashError,
    Waitall,
    run_with_recovery,
)
from repro.sim.events import FAULT, RESTART
from repro.verify import Severity, lint_program, sanitize_raw

K = KernelSpec.balanced("k", flops_per_unit=1e5, bytes_per_unit=0.0,
                        memory_scope="none")


def _cluster():
    return small_test_cluster()


def _cost_factory(seed):
    cluster = _cluster()

    def make():
        return CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))

    return cluster, make


class TestFaultSchedules:
    def test_schedule_is_pure_function_of_seed(self):
        cfg = FaultConfig(crash_probability=0.5, crash_max_progress=60)
        a = FaultModel(cfg, seed=99).crash_schedule(8)
        b = FaultModel(cfg, seed=99).crash_schedule(8)
        c = FaultModel(cfg, seed=100).crash_schedule(8)
        assert a == b
        assert a != c
        assert all(isinstance(cp, CrashPoint) for cp in a.values())

    def test_zero_faults_draw_nothing(self):
        fm = FaultModel(ZeroFaults(), seed=1)
        assert fm.crash_schedule(64) == {}
        assert not fm.loss.lost(0, 1, 7, 0)
        assert not fm.duplication.duplicated(0, 1, 7, 0)
        assert fm.link.factor(0, 1) == 1.0
        assert fm.straggler.factor(0, 0) == 1.0
        assert not fm.config.any_enabled

    def test_draws_are_position_independent(self):
        # The ghost replay re-queries draws in arbitrary order and
        # multiplicity; the answers must not change.
        cfg = FaultConfig(message_loss_probability=0.3)
        fm = FaultModel(cfg, seed=7)
        first = [fm.loss.lost(0, 1, 7, k) for k in range(20)]
        again = [fm.loss.lost(0, 1, 7, k) for k in reversed(range(20))]
        assert first == list(reversed(again))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(crash_probability=1.5)
        with pytest.raises(ValueError):
            FaultConfig(crash_trigger="never")
        scaled = FaultConfig(crash_probability=0.4).scaled(2.0)
        assert scaled.crash_probability == 0.8
        assert FaultConfig(crash_probability=0.9).scaled(5.0) \
            .crash_probability == 1.0


class TestRecovery:
    def test_crash_without_recovery_raises(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(default_fault_config(), seed=99)
        engine = Engine(CheckpointedRing(), cluster, cost(),
                        measurement=Measurement("lt1"), faults=faults)
        with pytest.raises(SimCrashError) as exc:
            engine.run()
        assert exc.value.epoch >= 0
        assert exc.value.t_crash >= 0.0

    def test_recovered_trace_sanitizes_clean(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(default_fault_config(), seed=99)
        measurement = Measurement("lt1")
        outcome = run_with_recovery(CheckpointedRing(), cluster, cost,
                                    faults, measurement=measurement)
        assert outcome.n_restarts > 0
        trace = outcome.result.trace
        diags = sanitize_raw(trace)
        assert not any(d.severity == Severity.ERROR for d in diags), \
            [str(d) for d in diags]
        kinds = [ev.etype for evs in trace.events for ev in evs]
        assert RESTART in kinds

    def test_recovery_is_reproducible(self):
        fps = []
        for _ in range(2):
            cluster, cost = _cost_factory(3)
            faults = FaultModel(default_fault_config(), seed=99)
            measurement = Measurement("ltbb")
            outcome = run_with_recovery(CheckpointedRing(), cluster, cost,
                                        faults, measurement=measurement)
            fps.append(trace_fingerprint(
                timestamp_trace(outcome.result.trace, "ltbb")))
        assert fps[0] == fps[1]

    def test_restart_records_are_ordered_and_typed(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(default_fault_config(), seed=99)
        outcome = run_with_recovery(CheckpointedRing(), cluster, cost, faults,
                                    measurement=Measurement("lt1"))
        for rec in outcome.restarts:
            assert rec.trigger == "progress"
            assert rec.t_restart > rec.t_crash or rec.t_restart > 0.0
        assert [r.attempt for r in outcome.restarts] == \
            list(range(1, outcome.n_restarts + 1))

    def test_max_restarts_enforced(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(default_fault_config(), seed=99)
        with pytest.raises(ExcessiveRestartsError):
            run_with_recovery(CheckpointedRing(), cluster, cost, faults,
                              measurement=Measurement("lt1"),
                              recovery=RecoveryConfig(max_restarts=0))

    def test_no_faults_is_plain_run(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(ZeroFaults(), seed=1)
        measurement = Measurement("lt1")
        outcome = run_with_recovery(CheckpointedRing(), cluster, cost,
                                    faults, measurement=measurement)
        assert outcome.n_restarts == 0
        plain = Engine(CheckpointedRing(), cluster, cost(),
                       measurement=Measurement("lt1")).run()
        fp_fault = trace_fingerprint(
            timestamp_trace(outcome.result.trace, "lt1"))
        fp_plain = trace_fingerprint(timestamp_trace(plain.trace, "lt1"))
        # Checkpoints themselves appear in both traces; with every
        # injector off the fault machinery must be a strict no-op.
        assert fp_fault == fp_plain


class TestFaultEventsInTraces:
    def test_loss_and_duplication_emit_fault_events(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(
            FaultConfig(message_loss_probability=0.4,
                        message_duplication_probability=0.4),
            seed=5,
        )
        res = Engine(CheckpointedRing(), cluster, cost(),
                     measurement=Measurement("lt1"), faults=faults).run()
        trace = res.trace
        fault_evs = [ev for evs in trace.events for ev in evs
                     if ev.etype == FAULT]
        assert fault_evs, "expected some injected message faults"
        names = {trace.regions.names[ev.region] for ev in fault_evs}
        assert names <= {"fault_msg_loss", "fault_msg_dup"}
        diags = sanitize_raw(trace)
        assert not any(d.severity == Severity.ERROR for d in diags)

    def test_straggler_and_link_slow_the_run(self):
        cluster, cost = _cost_factory(3)
        base = Engine(CheckpointedRing(), cluster, cost()).run()
        cluster2, cost2 = _cost_factory(3)
        faults = FaultModel(
            FaultConfig(link_degradation_probability=1.0,
                        link_degradation_factor=20.0,
                        straggler_probability=1.0,
                        straggler_factor=3.0),
            seed=5,
        )
        slow = Engine(CheckpointedRing(), cluster2, cost2(),
                      faults=faults).run()
        assert slow.runtime > base.runtime


class TestFaultSweep:
    def test_sweep_deterministic_modes_bit_identical(self):
        sweep = run_fault_sweep(reps=2)
        assert sweep.deterministic_ok
        for mode in sweep.fingerprints:
            if mode not in NOISY_MODES:
                assert sweep.identical(mode), mode
        # Physical time is noisy by construction; if tsc ever became
        # bit-identical across noise seeds the sweep lost its contrast.
        assert not sweep.identical("tsc")
        assert all(n > 0 for ns in sweep.n_restarts.values() for n in ns)
        assert "PASS" in sweep.report()

    def test_sweep_different_fault_seeds_differ(self):
        a = run_fault_sweep(fault_seed=99, reps=1, modes=("lt1",))
        b = run_fault_sweep(fault_seed=123, reps=1, modes=("lt1",))
        assert a.fingerprints["lt1"] != b.fingerprints["lt1"]


class _CkptCrossing(Program):
    """Seeded-buggy fixture: a send initiated before a checkpoint is
    received after it (MPI009)."""

    name = "ckpt-crossing"
    n_ranks = 2
    threads_per_rank = 1

    def make_rank(self, ctx):
        yield Enter("main")
        if ctx.rank == 0:
            yield Send(dest=1, tag=3, nbytes=64.0)
            yield Checkpoint(nbytes=1e3)
        else:
            yield Checkpoint(nbytes=1e3)
            yield Recv(source=0, tag=3)
        yield Compute(K, 1)
        yield Leave("main")


class _CkptClean(Program):
    """Checkpoint placed at a quiescent point: no MPI009."""

    name = "ckpt-clean"
    n_ranks = 2
    threads_per_rank = 1

    def make_rank(self, ctx):
        peer = 1 - ctx.rank
        yield Enter("main")
        r1 = yield Isend(dest=peer, tag=3, nbytes=64.0)
        r2 = yield Irecv(source=peer, tag=3)
        yield Waitall([r1, r2])
        yield Checkpoint(nbytes=1e3)
        r3 = yield Isend(dest=peer, tag=4, nbytes=64.0)
        r4 = yield Irecv(source=peer, tag=4)
        yield Waitall([r3, r4])
        yield Allreduce(nbytes=8.0)
        yield Leave("main")


class TestVerifierRules:
    def test_mpi009_fires_on_checkpoint_crossing_message(self):
        report = lint_program(_CkptCrossing())
        assert "MPI009" in report.rule_ids()

    def test_mpi009_silent_on_quiescent_checkpoint(self):
        report = lint_program(_CkptClean())
        assert "MPI009" not in report.rule_ids()
        assert report.ok

    def test_trc008_fires_on_inconsistent_restart_group(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(default_fault_config(), seed=99)
        measurement = Measurement("lt1")
        outcome = run_with_recovery(CheckpointedRing(), cluster, cost,
                                    faults, measurement=measurement)
        trace = outcome.result.trace
        # Corrupt one rank's RESTART marker: claim a different group size.
        for evs in trace.events:
            for ev in evs:
                if ev.etype == RESTART:
                    ev.aux = (ev.aux[0], ev.aux[1] + 1)
                    break
            else:
                continue
            break
        diags = sanitize_raw(trace)
        assert any(d.rule_id == "TRC008" for d in diags)

    def test_trc009_fires_on_dangling_fault_reference(self):
        cluster, cost = _cost_factory(3)
        faults = FaultModel(
            FaultConfig(message_loss_probability=0.4), seed=5)
        res = Engine(CheckpointedRing(), cluster, cost(),
                     measurement=Measurement("lt1"), faults=faults).run()
        trace = res.trace
        for evs in trace.events:
            for ev in evs:
                if ev.etype == FAULT:
                    ev.aux = 10 ** 9  # no such match id
                    break
            else:
                continue
            break
        diags = sanitize_raw(trace)
        assert any(d.rule_id == "TRC009" for d in diags)


class TestClockModesHandleRestarts:
    @pytest.mark.parametrize("mode", ["tsc", "lt1", "ltloop", "ltbb",
                                      "ltstmt", "lthwctr"])
    def test_recovered_trace_monotone_and_repeatable(self, mode):
        # For a fixed fault realization (fault seed + noise seed), every
        # clock mode must yield monotone timestamps over the restart
        # discontinuities AND be bit-identical across repetitions of the
        # identical run -- the all-six-modes determinism guarantee.
        fps = []
        for _ in range(2):
            cluster, cost = _cost_factory(3)
            faults = FaultModel(default_fault_config(), seed=99)
            measurement = Measurement(mode)
            outcome = run_with_recovery(CheckpointedRing(), cluster, cost,
                                        faults, measurement=measurement)
            assert outcome.n_restarts > 0
            tt = timestamp_trace(outcome.result.trace, mode)
            tt.validate_monotone()
            fps.append(trace_fingerprint(tt))
        assert fps[0] == fps[1], mode
