"""Tests for plain profiling and the remaining collective operations."""

import pytest

from repro.analysis import MPI_COLL_WAIT_NXN, PLAIN_TIME, analyze_trace, plain_profile
from repro.clocks import timestamp_trace
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.scoring import min_pairwise_jaccard
from repro.sim import (
    Allgather,
    Allreduce,
    Alltoall,
    Bcast,
    Compute,
    CostModel,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
    Reduce,
)

K = KernelSpec("k", flops_per_unit=1e6, omp_iters_per_unit=1.0, bb_per_unit=5,
               stmt_per_unit=15, instr_per_unit=40, memory_scope="none")


def run(script, cost, n_ranks=2, threads=1, mode="tsc"):
    class P(Program):
        name = "t"

        def make_rank(self, ctx):
            yield Enter("main")
            yield from script(ctx)
            yield Leave("main")

    P.n_ranks = n_ranks
    P.threads_per_rank = threads
    return Engine(P(), cost.cluster, cost, measurement=Measurement(mode)).run()


class TestOtherCollectives:
    @pytest.mark.parametrize("action", [Alltoall(nbytes_per_pair=64.0),
                                        Allgather(nbytes_per_rank=64.0)])
    def test_nxn_family_waits(self, quiet_cost, action):
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield action

        prof = analyze_trace(timestamp_trace(run(script, quiet_cost).trace, "tsc"))
        assert prof.metric_total(MPI_COLL_WAIT_NXN) > 0

    @pytest.mark.parametrize("action", [Bcast(root=0, nbytes=256.0),
                                        Reduce(root=0, nbytes=256.0)])
    def test_rooted_collectives_complete(self, quiet_cost, action):
        def script(ctx):
            yield Compute(K, 10)
            yield action

        res = run(script, quiet_cost)
        # rooted collectives synchronize in our model; both ranks finish
        assert res.rank_end_times[0] == pytest.approx(res.rank_end_times[1], rel=1e-9)

    def test_alltoall_cost_grows_with_size(self, quiet_cost):
        def make(nbytes):
            def script(ctx):
                yield Alltoall(nbytes_per_pair=nbytes)

            return script

        small = run(make(64.0), quiet_cost).runtime
        big = run(make(64000.0), quiet_cost).runtime
        assert big > small


class TestPlainProfile:
    def _tt(self, cost, mode="tsc", seed=None):
        def script(ctx):
            yield Enter("f")
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Leave("f")
            yield Enter("g")
            yield ParallelFor("loop", K, total_units=100)
            yield Leave("g")
            yield Allreduce()

        res = run(script, cost, threads=2, mode=mode)
        return timestamp_trace(res.trace, mode, counter_seed=seed or 0)

    def test_single_metric(self, quiet_cost):
        prof = plain_profile(self._tt(quiet_cost))
        assert prof.metrics == [PLAIN_TIME]
        assert prof.total_time() > 0

    def test_callpaths_carry_region_names(self, quiet_cost):
        prof = plain_profile(self._tt(quiet_cost))
        paths = {"/".join(p) for p in prof.by_callpath(PLAIN_TIME)}
        assert any("f" in p for p in paths)
        assert any("omp_for_loop" in p for p in paths)

    def test_plain_total_close_to_analysis_total(self, quiet_cost):
        tt = self._tt(quiet_cost)
        plain = plain_profile(tt)
        full = analyze_trace(tt)
        # plain profiles skip worker idle gaps; totals agree within the
        # idle fraction
        assert plain.total_time() <= full.total_time() * 1.001
        assert plain.total_time() > full.total_time() * 0.3

    def test_plain_profile_all_modes(self, quiet_cost):
        for mode in ("tsc", "lt1", "ltbb", "lthwctr"):
            prof = plain_profile(self._tt(quiet_cost, mode=mode))
            assert prof.total_time() > 0, mode

    def test_hwctr_plain_more_stable_than_waitstate(self, cluster):
        """The Sec. V-B reconciliation with Ritter et al. at unit scale."""
        plain, full = [], []
        for rep in range(3):
            cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=40 + rep))
            tt = self._tt(cost, mode="lthwctr", seed=40 + rep)
            plain.append(plain_profile(tt).normalized())
            full.append(analyze_trace(tt).normalized())
        assert min_pairwise_jaccard(plain) >= min_pairwise_jaccard(full) - 0.02
