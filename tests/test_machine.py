"""Tests for repro.machine: topology, pinning, network, memory, noise."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.machine import (
    CacheModel,
    CollectiveCostModel,
    MemoryModel,
    NetworkModel,
    NoiseConfig,
    NoiseModel,
    Pinning,
    ZeroNoise,
    jureca_dc,
    small_test_cluster,
)
from repro.machine.topology import build_cluster


class TestTopology:
    def test_jureca_dimensions(self):
        cl = jureca_dc(1)
        assert len(cl.nodes) == 1
        assert len(cl.nodes[0].sockets) == 2
        assert len(cl.numa_domains) == 8
        assert len(cl.cores) == 128

    def test_jureca_l3_512mb_per_node(self):
        # Sec. IV-E: "8 x 4 x 16 MB = 512 MB L3 cache on the node"
        cl = jureca_dc(1)
        assert cl.nodes[0].l3_capacity == pytest.approx(512 * 1024**2)

    def test_two_nodes(self):
        cl = jureca_dc(2)
        assert len(cl.cores) == 256
        assert cl.cores[128].node_id == 1

    def test_numa_domain_lookup(self):
        cl = small_test_cluster()
        d = cl.numa_domain(1)
        assert d.global_id == 1
        with pytest.raises(KeyError):
            cl.numa_domain(99)

    def test_core_lookup(self):
        cl = small_test_cluster()
        assert cl.core(0).global_id == 0
        with pytest.raises(KeyError):
            cl.core(10**6)

    def test_build_cluster_validates(self):
        with pytest.raises(ValueError):
            build_cluster("x", 0, 1, 1, 1, 1.0, 1.0, 1.0, 1.0, 1e-6, 1e9)


class TestPinning:
    def test_packed_fills_in_order(self):
        cl = small_test_cluster(cores_per_numa=4, numa_per_socket=2)
        p = Pinning.packed(cl, n_ranks=2, threads_per_rank=4)
        assert p.numa_of(0, 0) == 0
        assert p.numa_of(1, 0) == 1

    def test_packed_too_many_raises(self):
        cl = small_test_cluster(cores_per_numa=2, numa_per_socket=1)
        with pytest.raises(ValueError):
            Pinning.packed(cl, n_ranks=4, threads_per_rank=4)

    def test_spread_one_rank_per_domain(self):
        cl = jureca_dc(1)
        p = Pinning.spread_ranks_over_numa(cl, 8, 1)
        assert sorted(p.numa_of(r, 0) for r in range(8)) == list(range(8))

    def test_balanced_numa_lulesh2_shape(self):
        # "Three NUMA domains are filled completely with four ranks (16
        # threads) each.  The other five domains are assigned three ranks."
        cl = jureca_dc(1)
        p = Pinning.balanced_numa(cl, 27, 4)
        occ = p.numa_occupancy()
        counts = sorted(occ.values(), reverse=True)
        assert counts == [16, 16, 16, 12, 12, 12, 12, 12]

    def test_locations_count(self):
        cl = small_test_cluster(cores_per_numa=4)
        p = Pinning.packed(cl, 2, 2)
        assert len(list(p.locations())) == 4

    def test_same_node(self):
        cl = jureca_dc(2)
        p = Pinning.packed(cl, 64, 4)
        assert p.same_node(0, 31)
        assert not p.same_node(0, 63)


class TestNetwork:
    def test_eager_threshold(self):
        net = NetworkModel(jureca_dc(1))
        assert net.is_eager(1024)
        assert not net.is_eager(10**6)

    def test_intra_node_faster(self):
        net = NetworkModel(jureca_dc(2))
        assert net.transfer_time(1e6, same_node=True) < net.transfer_time(1e6, same_node=False)

    def test_transfer_monotone_in_size(self):
        net = NetworkModel(jureca_dc(1))
        assert net.transfer_time(2e6, True) > net.transfer_time(1e6, True)

    def test_collective_costs_grow_with_ranks(self):
        cl = jureca_dc(1)
        coll = CollectiveCostModel(NetworkModel(cl))
        p8 = Pinning.spread_ranks_over_numa(cl, 8, 1)
        p2 = Pinning.spread_ranks_over_numa(cl, 2, 1)
        assert coll.allreduce(p8, range(8), 8.0) > coll.allreduce(p2, range(2), 8.0)

    def test_single_rank_collective_free(self):
        cl = jureca_dc(1)
        coll = CollectiveCostModel(NetworkModel(cl))
        p = Pinning.packed(cl, 1, 1)
        assert coll.allreduce(p, [0], 8.0) == 0.0
        assert coll.barrier(p, [0]) == 0.0

    def test_unknown_op(self):
        cl = jureca_dc(1)
        coll = CollectiveCostModel(NetworkModel(cl))
        p = Pinning.packed(cl, 2, 1)
        with pytest.raises(ValueError):
            coll.cost("gossip", p, [0, 1], 8.0)


class TestMemoryModel:
    def test_no_contention_single_actor(self):
        mm = MemoryModel(jureca_dc(1))
        bw1 = mm.bandwidth_per_actor(0, pinned_actors=1)
        assert bw1 == pytest.approx(min(mm.per_core_bw_cap, 45e9))

    def test_contention_reduces_bandwidth(self):
        mm = MemoryModel(jureca_dc(1))
        bw16 = mm.bandwidth_per_actor(0, pinned_actors=16)
        bw4 = mm.bandwidth_per_actor(0, pinned_actors=4)
        assert bw16 < bw4

    def test_desync_restores_bandwidth(self):
        mm = MemoryModel(jureca_dc(1))
        synced = mm.bandwidth_per_actor(0, 16, desync=0.0, solo_duration=1.0)
        spread = mm.bandwidth_per_actor(0, 16, desync=10.0, solo_duration=1.0)
        assert spread > synced

    @given(st.integers(min_value=1, max_value=64), st.floats(min_value=0, max_value=100))
    @settings(max_examples=30)
    def test_effective_accessors_bounds(self, actors, desync):
        mm = MemoryModel(jureca_dc(1))
        a = mm.effective_accessors(actors, desync, solo_duration=1.0)
        assert 1.0 <= a <= actors or actors == 0


class TestCacheModel:
    def test_fits_in_cache(self):
        cm = CacheModel(jureca_dc(1))
        assert cm.hit_fraction(1024) == 1.0
        assert cm.bandwidth_factor(1024) == pytest.approx(cm.cache_speedup)

    def test_spill_reduces_factor(self):
        cm = CacheModel(jureca_dc(1))
        l3 = jureca_dc(1).nodes[0].sockets[0].l3_capacity
        fits = cm.bandwidth_factor(l3)
        spilled = cm.bandwidth_factor(l3, extra_footprint=l3)
        assert spilled < fits

    def test_huge_working_set_factor_near_one(self):
        cm = CacheModel(jureca_dc(1))
        assert cm.bandwidth_factor(1e12) == pytest.approx(1.0, rel=0.01)

    def test_footprint_monotone(self):
        cm = CacheModel(jureca_dc(1))
        l3 = jureca_dc(1).nodes[0].sockets[0].l3_capacity
        f = [cm.bandwidth_factor(l3, extra) for extra in (0.0, l3 / 4, l3 / 2, l3)]
        assert all(a >= b for a, b in zip(f, f[1:]))


class TestNoise:
    def test_zero_noise_is_identity(self):
        nm = NoiseModel(ZeroNoise(), seed=1)
        assert nm.compute_time(0, 0, 1.0) == 1.0
        assert nm.counter.perturb(0, 0, 100.0) == 100.0

    def test_noise_reproducible_per_seed(self):
        a = NoiseModel(NoiseConfig(), seed=5).compute_time(0, 0, 1.0)
        b = NoiseModel(NoiseConfig(), seed=5).compute_time(0, 0, 1.0)
        assert a == b

    def test_noise_differs_across_seeds(self):
        a = NoiseModel(NoiseConfig(), seed=5).compute_time(0, 0, 1.0)
        b = NoiseModel(NoiseConfig(), seed=6).compute_time(0, 0, 1.0)
        assert a != b

    def test_cpu_noise_mean_near_one(self):
        nm = NoiseModel(NoiseConfig(os_jitter_rate=0.0), seed=2)
        samples = [nm.compute_time(0, 0, 1.0) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.01)

    def test_os_jitter_additive(self):
        cfg = NoiseConfig(cpu_sigma=0.0, os_jitter_rate=1000.0, os_jitter_duration=1e-4)
        nm = NoiseModel(cfg, seed=3)
        t = np.mean([nm.compute_time(0, 0, 1.0) for _ in range(50)])
        assert t > 1.0

    def test_counter_noise_nonnegative_offset(self):
        nm = NoiseModel(NoiseConfig(), seed=4)
        assert nm.counter.perturb(0, 0, 1e6) > 0

    def test_scaled_config(self):
        cfg = NoiseConfig().scaled(0.0)
        assert cfg.cpu_sigma == 0.0 and cfg.network_sigma == 0.0

    def test_negative_interval_raises(self):
        nm = NoiseModel(NoiseConfig(), seed=1)
        with pytest.raises(ValueError):
            nm.os.detour_time(0, 0, -1.0)
