"""Tests for the Cube profile model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cube import CallTree, CubeProfile, SystemTree, profile_diff, read_profile, write_profile


@pytest.fixture
def system():
    return SystemTree([(0, 0), (0, 1), (1, 0), (1, 1)])


@pytest.fixture
def profile(system):
    p = CubeProfile(system, time_metrics=("comp", "wait"), mode="tsc")
    p.add("comp", ("main", "f"), 0, 6.0)
    p.add("comp", ("main", "g"), 1, 2.0)
    p.add("wait", ("main", "g"), 2, 2.0)
    return p


class TestCallTree:
    def test_intern_creates_ancestors(self):
        ct = CallTree()
        cpid = ct.intern(("a", "b", "c"))
        assert ct.id_of(("a",)) is not None
        assert ct.id_of(("a", "b")) is not None
        assert ct.parent(cpid) == ct.id_of(("a", "b"))

    def test_intern_idempotent(self):
        ct = CallTree()
        assert ct.intern(("x",)) == ct.intern(("x",))

    def test_children(self):
        ct = CallTree()
        ct.intern(("a", "b"))
        ct.intern(("a", "c"))
        a = ct.id_of(("a",))
        assert len(ct.children(a)) == 2

    def test_subtree(self):
        ct = CallTree()
        ct.intern(("a", "b", "c"))
        ct.intern(("a", "d"))
        sub = {ct.path(i) for i in ct.subtree(ct.id_of(("a",)))}
        assert sub == {("a",), ("a", "b"), ("a", "b", "c"), ("a", "d")}

    def test_find_suffix(self):
        ct = CallTree()
        ct.intern(("main", "cg_solve", "dot"))
        ct.intern(("main", "other", "dot"))
        hits = ct.find_suffix("cg_solve", "dot")
        assert len(hits) == 1
        assert ct.path(hits[0]) == ("main", "cg_solve", "dot")

    def test_root_name(self):
        ct = CallTree()
        assert ct.name(ct.intern(())) == "<root>"


class TestSystemTree:
    def test_ranks_and_threads(self, system):
        assert system.ranks == [0, 1]
        assert system.threads_of(0) == [0, 1]
        assert system.master_locations() == [0, 2]

    def test_loc_id(self, system):
        assert system.loc_id(1, 1) == 3


class TestCubeProfile:
    def test_total_time_sums_time_metrics(self, profile):
        assert profile.total_time() == pytest.approx(10.0)

    def test_metric_total(self, profile):
        assert profile.metric_total("comp") == pytest.approx(8.0)

    def test_value_per_location(self, profile):
        assert profile.value("comp", ("main", "f"), 0) == 6.0
        assert profile.value("comp", ("main", "f"), 1) == 0.0
        assert profile.value("comp", ("main", "f")) == 6.0

    def test_percent_of_time(self, profile):
        assert profile.percent_of_time("comp") == pytest.approx(80.0)
        assert profile.percent_of_time("wait") == pytest.approx(20.0)

    def test_metric_selection_percent(self, profile):
        shares = profile.metric_selection_percent("comp")
        assert shares[("main", "f")] == pytest.approx(75.0)
        assert shares[("main", "g")] == pytest.approx(25.0)

    def test_inclusive(self, profile):
        assert profile.inclusive("comp", ("main",)) == pytest.approx(8.0)

    def test_by_location(self, profile):
        by_loc = profile.by_location("comp")
        assert by_loc == {0: 6.0, 1: 2.0}

    def test_add_zero_noop(self, profile):
        before = dict(profile.cells("comp"))
        profile.add("comp", ("x",), 0, 0.0)
        assert dict(profile.cells("comp")) == before

    def test_normalized(self, profile):
        n = profile.normalized()
        assert n.total_time() == pytest.approx(1.0)
        assert n.value("comp", ("main", "f"), 0) == pytest.approx(0.6)

    def test_normalize_empty_raises(self, system):
        with pytest.raises(ValueError):
            CubeProfile(system, ("comp",)).normalized()

    def test_mean_of_identical_is_identity(self, profile):
        m = CubeProfile.mean([profile, profile])
        norm = profile.normalized()
        assert m.value("comp", ("main", "f"), 0) == pytest.approx(
            norm.value("comp", ("main", "f"), 0)
        )

    def test_mean_requires_same_system(self, profile):
        other = CubeProfile(SystemTree([(0, 0)]), ("comp",))
        other.add("comp", ("m",), 0, 1.0)
        with pytest.raises(ValueError):
            CubeProfile.mean([profile, other])

    def test_as_mapping_fractions(self, profile):
        m = profile.as_mapping()
        assert sum(m.values()) == pytest.approx(1.0)
        assert m[("comp", ("main", "f"))] == pytest.approx(0.6)

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10))
    @settings(max_examples=25)
    def test_normalized_always_sums_to_one(self, values):
        p = CubeProfile(SystemTree([(0, 0)]), ("m",))
        for i, v in enumerate(values):
            p.add("m", ("f%d" % i,), 0, v)
        assert p.normalized().total_time() == pytest.approx(1.0)


class TestProfileIO:
    def test_roundtrip(self, profile, tmp_path):
        path = tmp_path / "p.json.gz"
        write_profile(profile, path)
        loaded = read_profile(path)
        assert loaded.total_time() == pytest.approx(profile.total_time())
        assert loaded.value("comp", ("main", "f"), 0) == 6.0
        assert loaded.mode == "tsc"
        assert loaded.system.locations == profile.system.locations

    def test_rejects_garbage(self, tmp_path):
        import gzip, json

        path = tmp_path / "bad.json.gz"
        with gzip.open(path, "wt") as fh:
            json.dump({"format": "other"}, fh)
        with pytest.raises(ValueError):
            read_profile(path)


class TestProfileDiff:
    def test_identical_profiles_no_diff(self, profile):
        rows = profile_diff(profile, profile)
        assert all(r[4] == pytest.approx(0.0) for r in rows)

    def test_diff_finds_largest(self, profile, system):
        other = CubeProfile(system, ("comp", "wait"))
        other.add("comp", ("main", "f"), 0, 6.0)
        other.add("comp", ("main", "g"), 1, 2.0)
        other.add("wait", ("main", "h"), 2, 2.0)  # moved wait
        rows = profile_diff(profile, other, top=2)
        paths = {r[1] for r in rows}
        assert ("main", "g") in paths or ("main", "h") in paths
