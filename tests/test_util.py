"""Tests for repro.util: rng streams, stats, tables, validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util import (
    RngStreams,
    check_in,
    check_positive,
    check_type,
    format_grouped_bars,
    format_table,
    mean_ci,
    stream_seed,
    summarize,
    welford,
)
from repro.util.stats import RunningStats, relative_spread
from repro.util.validation import check_nonnegative


class TestStreamSeed:
    def test_deterministic(self):
        assert stream_seed(1, "a", 2) == stream_seed(1, "a", 2)

    def test_distinct_keys(self):
        seeds = {stream_seed(1, "a", i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_base_seeds(self):
        assert stream_seed(1, "x") != stream_seed(2, "x")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_always_64bit(self, seed, key):
        s = stream_seed(seed, key)
        assert 0 <= s < 2**64


class TestRngStreams:
    def test_memoized(self):
        r = RngStreams(7)
        assert r.get("a", x=1) is r.get("a", x=1)

    def test_independent_names(self):
        r = RngStreams(7)
        a = r.fresh("a").random(5)
        b = r.fresh("b").random(5)
        assert not np.allclose(a, b)

    def test_kwarg_order_irrelevant(self):
        r = RngStreams(7)
        assert r.get("n", a=1, b=2) is r.get("n", b=2, a=1)

    def test_child_streams_differ(self):
        r = RngStreams(7)
        c1 = r.child(1).fresh("x").random(3)
        c2 = r.child(2).fresh("x").random(3)
        assert not np.allclose(c1, c2)

    def test_reproducible_across_instances(self):
        a = RngStreams(3).fresh("k", i=0).random(4)
        b = RngStreams(3).fresh("k", i=0).random(4)
        assert np.allclose(a, b)


class TestStats:
    def test_mean_ci_single_value(self):
        m, h = mean_ci([5.0])
        assert m == 5.0 and h == 0.0

    def test_mean_ci_width_positive(self):
        m, h = mean_ci([1.0, 2.0, 3.0])
        assert m == pytest.approx(2.0)
        assert h > 0

    def test_mean_ci_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_summarize(self):
        s = summarize([1.0, 3.0])
        assert s["n"] == 2 and s["mean"] == 2.0 and s["min"] == 1.0 and s["max"] == 3.0

    def test_relative_spread(self):
        assert relative_spread([1.0, 1.0]) == 0.0
        assert relative_spread([1.0, 2.0]) == pytest.approx(1.0 / 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_welford_matches_numpy(self, values):
        rs = welford(values)
        assert rs.mean == pytest.approx(float(np.mean(values)), abs=1e-6)
        assert rs.std == pytest.approx(float(np.std(values, ddof=1)), abs=1e-4)

    def test_running_stats_zero(self):
        rs = RunningStats()
        rs.add(4.0)
        assert rs.variance == 0.0


class TestTables:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [["x", 1.5], ["yy", 20.25]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1.50" in text and "20.25" in text

    def test_format_table_title(self):
        text = format_table(["h"], [["v"]], title="My Table")
        assert text.startswith("My Table")

    def test_format_table_bad_row(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_grouped_bars(self):
        text = format_grouped_bars({"g1": {"s": 1.0}, "g2": {"s": 0.5}})
        assert "[g1]" in text and "[g2]" in text
        assert text.count("#") > 0

    def test_grouped_bars_zero_values(self):
        text = format_grouped_bars({"g": {"s": 0.0}})
        assert "0.000" in text


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -1)

    def test_check_in(self):
        check_in("m", "a", ("a", "b"))
        with pytest.raises(ValueError):
            check_in("m", "c", ("a", "b"))

    def test_check_type(self):
        check_type("v", 1, int)
        with pytest.raises(TypeError):
            check_type("v", "s", int)
