"""Tests for the measurement layer: modes, filters, overhead, trace IO."""

import pytest

from repro.machine.noise import NoiseModel, ZeroNoise
from repro.measure import (
    LOGICAL_MODES,
    MODES,
    FilterRules,
    Measurement,
    OverheadModel,
    read_trace,
    write_trace,
)
from repro.measure.config import validate_mode
from repro.sim import (
    CallBurst,
    CostModel,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    Program,
    Send,
    Recv,
    Allreduce,
)
from repro.sim.kernels import WorkDelta

K = KernelSpec("k", flops_per_unit=1e5, bb_per_unit=10, stmt_per_unit=30,
               instr_per_unit=80, omp_iters_per_unit=1.0, memory_scope="none")


class _App(Program):
    name = "app"
    n_ranks = 2
    threads_per_rank = 1

    def make_rank(self, ctx):
        yield Enter("main")
        yield Enter("hot")
        yield CallBurst("tiny()", calls=100, kernel=K, units=10)
        yield Leave("hot")
        if ctx.rank == 0:
            yield Send(dest=1, tag=1, nbytes=32)
        else:
            yield Recv(source=0, tag=1)
        yield Allreduce()
        yield Leave("main")


class TestModes:
    def test_validate_mode(self):
        for m in MODES:
            assert validate_mode(m) == m
        with pytest.raises(ValueError):
            validate_mode("wallclock")

    def test_six_modes(self):
        assert len(MODES) == 6
        assert len(LOGICAL_MODES) == 5


class TestOverheadModel:
    def test_hwctr_events_most_expensive(self):
        om = OverheadModel()
        costs = {m: om.event_cost(m) for m in MODES}
        assert costs["lthwctr"] == max(costs.values())
        assert costs["tsc"] == min(costs.values())

    def test_count_cost_only_counting_modes(self):
        om = OverheadModel()
        delta = WorkDelta(bb=1000, stmt=3000)
        assert om.count_cost("ltbb", delta) > 0
        assert om.count_cost("ltstmt", delta) > 0
        assert om.count_cost("tsc", delta) == 0
        assert om.count_cost("lthwctr", delta) == 0

    def test_sync_cost_logical_only(self):
        om = OverheadModel()
        assert om.sync_cost("tsc") == 0.0
        for m in LOGICAL_MODES:
            assert om.sync_cost(m) > 0

    def test_hwctr_footprint_larger(self):
        om = OverheadModel()
        assert om.footprint("lthwctr", 10) > om.footprint("tsc", 10)


class TestFilterRules:
    def test_empty_filter_records_all(self):
        assert not FilterRules().is_filtered("anything")

    def test_exclude_glob(self):
        f = FilterRules.excluding("tiny*")
        assert f.is_filtered("tiny()")
        assert not f.is_filtered("big()")

    def test_include_overrides_earlier_exclude(self):
        f = FilterRules().exclude("MPI_*").include("MPI_Allreduce")
        assert f.is_filtered("MPI_Send")
        assert not f.is_filtered("MPI_Allreduce")

    def test_later_rules_win(self):
        f = FilterRules().include("f").exclude("f")
        assert f.is_filtered("f")

    def test_rules_roundtrip(self):
        f = FilterRules.excluding("a", "b")
        g = FilterRules(f.rules())
        assert g.is_filtered("a") and g.is_filtered("b")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            FilterRules([("banish", "x")])


class TestFilteredMeasurement:
    def _run(self, cluster, filt=None):
        cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
        m = Measurement("tsc", filter_rules=filt)
        return Engine(_App(), cluster, cost, measurement=m).run()

    def test_filtered_region_absent_from_trace(self, cluster):
        res = self._run(cluster, FilterRules.excluding("tiny*"))
        names = {res.trace.regions.name(e.region) for evs in res.trace.events for e in evs}
        assert "tiny()" not in names
        assert "hot" in names

    def test_filtering_reduces_overhead(self, cluster):
        unfiltered = self._run(cluster)
        filtered = self._run(cluster, FilterRules.excluding("tiny*"))
        assert filtered.runtime < unfiltered.runtime

    def test_filtered_work_still_runs(self, cluster):
        # work merges into the parent, but virtual compute time remains
        res = self._run(cluster, FilterRules.excluding("tiny*"))
        burst_compute = 10 * 1e5 / cluster.flops_per_core  # units x flops
        assert res.runtime >= burst_compute


class TestMeasurementLifecycle:
    def test_single_use(self, cluster):
        cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
        m = Measurement("tsc")
        Engine(_App(), cluster, cost, measurement=m).run()
        with pytest.raises(RuntimeError):
            Engine(_App(), cluster, cost, measurement=m).run()

    def test_finish_before_begin(self):
        with pytest.raises(RuntimeError):
            Measurement("tsc").finish(1.0)


class TestTraceIO:
    def test_roundtrip(self, cluster, tmp_path):
        cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
        res = Engine(_App(), cluster, cost, measurement=Measurement("ltbb")).run()
        path = tmp_path / "t.trace.json.gz"
        write_trace(res.trace, path)
        loaded = read_trace(path)
        assert loaded.mode == "ltbb"
        assert loaded.n_events == res.trace.n_events
        assert loaded.locations == res.trace.locations
        # events compare field by field
        for evs_a, evs_b in zip(res.trace.events, loaded.events):
            for a, b in zip(evs_a, evs_b):
                assert a.etype == b.etype
                assert a.region == b.region
                assert a.t == pytest.approx(b.t)
                assert a.aux == b.aux
                assert a.delta.bb == b.delta.bb
                assert a.delta.burst_calls == b.delta.burst_calls

    def test_roundtrip_preserves_analysis(self, cluster, tmp_path):
        from repro.analysis import analyze_trace
        from repro.clocks import timestamp_trace

        cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
        res = Engine(_App(), cluster, cost, measurement=Measurement("lt1")).run()
        path = tmp_path / "t.trace.json.gz"
        write_trace(res.trace, path)
        loaded = read_trace(path)
        p1 = analyze_trace(timestamp_trace(res.trace, "lt1"))
        p2 = analyze_trace(timestamp_trace(loaded, "lt1"))
        assert p1.total_time() == pytest.approx(p2.total_time())

    def test_rejects_garbage(self, tmp_path):
        import gzip, json

        path = tmp_path / "bad.json.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({"format": "nope"}) + "\n")
        with pytest.raises(ValueError):
            read_trace(path)
