"""Columnar traces and the vectorized clock replay.

Locks the PR's central equivalence claims: the structure-of-arrays view
round-trips exactly, the segment-vectorized Lamport replay is
bit-identical to the per-event walk for all six modes on real MPI+OpenMP
traces, the npz archive format round-trips, and the vectorized pattern
formulas match their scalar definitions element for element.
"""

import numpy as np
import pytest

from repro.analysis import (
    barrier_split,
    barrier_split_batch,
    late_receiver_wait,
    late_receiver_wait_many,
    late_sender_wait,
    late_sender_wait_many,
    nxn_waits,
    nxn_waits_batch,
)
from repro.analysis import patterns as P
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import (
    MODES,
    ColumnarConversionError,
    Measurement,
    RawTrace,
    read_trace,
    write_trace,
)
from repro.measure.columnar import TraceColumns
from repro.miniapps.minife import MiniFE, MiniFEConfig
from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig
from repro.sim import CostModel, Engine
from repro.sim.events import ENTER, LEAVE, MPI_RECV, Ev, RegionRegistry
from repro.sim.kernels import EMPTY_DELTA, WorkDelta


def _run(app, seed=1):
    cl = jureca_dc(1)
    cost = CostModel(cl, noise=NoiseModel(NoiseConfig(), seed=seed))
    return Engine(app, cl, cost, measurement=Measurement("tsc")).run().trace


@pytest.fixture(scope="module")
def minife_trace():
    return _run(MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, threads_per_rank=2,
                                         cg_iters=4)))


@pytest.fixture(scope="module")
def tealeaf_trace():
    return _run(TeaLeaf(TeaLeafConfig.tiny(n_ranks=4, threads_per_rank=2)))


class TestTraceColumns:
    def test_round_trip_reconstructs_events(self, minife_trace):
        cols = minife_trace.columns()
        back = cols.to_raw()
        assert back.mode == minife_trace.mode
        assert back.locations == list(minife_trace.locations)
        assert back.runtime == minife_trace.runtime
        for orig, rec in zip(minife_trace.events, back.events):
            assert len(orig) == len(rec)
            for a, b in zip(orig, rec):
                assert (a.etype, a.region, a.t, a.t_enter, a.aux) == \
                    (b.etype, b.region, b.t, b.t_enter, b.aux)
                assert a.delta == b.delta

    def test_columns_memoized(self, minife_trace):
        assert minife_trace.columns() is minife_trace.columns()

    def test_counts_match(self, minife_trace):
        cols = minife_trace.columns()
        assert cols.n_events == minife_trace.n_events
        assert cols.n_locations == minife_trace.n_locations

    def test_nonconvertible_aux_raises(self):
        regions = RegionRegistry()
        rid = regions.intern("r", "user")
        evs = [Ev(MPI_RECV, rid, 1.0, EMPTY_DELTA, aux="not-an-int")]
        trace = RawTrace(mode="tsc", regions=regions, locations=[(0, 0)],
                         events=[evs])
        with pytest.raises(ColumnarConversionError):
            TraceColumns.from_raw(trace)


class TestReplayEquivalence:
    @pytest.mark.parametrize("mode", MODES)
    def test_minife_bit_identical(self, minife_trace, mode):
        legacy = timestamp_trace(minife_trace, mode, counter_seed=7,
                                 impl="legacy")
        columnar = timestamp_trace(minife_trace, mode, counter_seed=7,
                                   impl="columnar")
        for a, b in zip(legacy.times, columnar.times):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("mode", MODES)
    def test_tealeaf_bit_identical(self, tealeaf_trace, mode):
        legacy = timestamp_trace(tealeaf_trace, mode, counter_seed=3,
                                 impl="legacy")
        columnar = timestamp_trace(tealeaf_trace, mode, counter_seed=3,
                                   impl="columnar")
        for a, b in zip(legacy.times, columnar.times):
            np.testing.assert_array_equal(a, b)

    def test_default_uses_columnar_and_falls_back(self):
        # A trace the converter rejects (string aux) must still timestamp
        # via the per-event walk under the default impl...
        regions = RegionRegistry()
        rid = regions.intern("main", "user")
        evs = [Ev(ENTER, rid, 0.5, WorkDelta(bb=2.0), aux=None),
               Ev(LEAVE, rid, 1.0, EMPTY_DELTA, aux="odd")]
        trace = RawTrace(mode="tsc", regions=regions, locations=[(0, 0)],
                         events=[evs])
        tt = timestamp_trace(trace, "ltbb")
        assert [list(t) for t in tt.times] == [[3.0, 4.0]]
        # ...while an explicit columnar request surfaces the conversion error.
        with pytest.raises(ColumnarConversionError):
            timestamp_trace(trace, "ltbb", impl="columnar")

    def test_unknown_impl_rejected(self, minife_trace):
        with pytest.raises(ValueError, match="replay impl"):
            timestamp_trace(minife_trace, "lt1", impl="simd")


class TestNpzArchive:
    def test_npz_round_trip(self, minife_trace, tmp_path):
        path = tmp_path / "trace.npz"
        write_trace(minife_trace, path)
        back = read_trace(path)
        assert back.mode == minife_trace.mode
        assert back.locations == list(minife_trace.locations)
        for orig, rec in zip(minife_trace.events, back.events):
            for a, b in zip(orig, rec):
                assert (a.etype, a.region, a.t, a.t_enter, a.aux) == \
                    (b.etype, b.region, b.t, b.t_enter, b.aux)
                assert a.delta == b.delta

    def test_npz_and_json_agree(self, tealeaf_trace, tmp_path):
        write_trace(tealeaf_trace, tmp_path / "t.npz")
        write_trace(tealeaf_trace, tmp_path / "t.json.gz")
        a = read_trace(tmp_path / "t.npz")
        b = read_trace(tmp_path / "t.json.gz")
        for ea, eb in zip(a.events, b.events):
            for x, y in zip(ea, eb):
                assert (x.etype, x.region, x.t, x.aux) == \
                    (y.etype, y.region, y.t, y.aux)

    def test_npz_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.arange(3))
        with pytest.raises((ValueError, KeyError)):
            read_trace(path)


class TestVectorizedPatterns:
    def test_nxn_vector_path_matches_scalar(self):
        rng = np.random.default_rng(5)
        enters = rng.uniform(0.0, 10.0, size=P.VECTOR_MIN + 9).tolist()
        completion = 8.5
        vec = nxn_waits(enters, completion)
        scalar = [max(0.0, min(max(enters), completion) - e) for e in enters]
        assert vec == scalar

    def test_barrier_vector_path_matches_scalar(self):
        rng = np.random.default_rng(6)
        n = P.VECTOR_MIN + 5
        enters = rng.uniform(0.0, 5.0, size=n).tolist()
        leaves = [e + d for e, d in zip(enters, rng.uniform(0.1, 2.0, size=n))]
        waits, overheads = barrier_split(enters, leaves)
        durations = [l - e for e, l in zip(enters, leaves)]
        oh = max(0.0, min(durations))
        assert waits == [max(0.0, d - oh) for d in durations]
        assert overheads == [oh] * n

    def test_nxn_batch_matches_per_instance(self):
        rng = np.random.default_rng(7)
        sizes = [3, 8, 1, 40, 5]
        groups = [rng.uniform(0.0, 9.0, size=s) for s in sizes]
        completions = [float(g.max()) + rng.uniform(0.0, 1.0) for g in groups]
        flat = np.concatenate(groups)
        starts = np.cumsum([0] + sizes[:-1])
        batch = nxn_waits_batch(flat, starts, completions)
        expected = np.concatenate([
            nxn_waits(g.tolist(), c) for g, c in zip(groups, completions)
        ])
        np.testing.assert_array_equal(batch, expected)

    def test_barrier_batch_matches_per_instance(self):
        rng = np.random.default_rng(8)
        sizes = [4, 2, 33, 6]
        enters = [rng.uniform(0.0, 4.0, size=s) for s in sizes]
        leaves = [e + rng.uniform(0.1, 1.0, size=s)
                  for e, s in zip(enters, sizes)]
        starts = np.cumsum([0] + sizes[:-1])
        w_batch, o_batch = barrier_split_batch(
            np.concatenate(enters), np.concatenate(leaves), starts)
        w_exp, o_exp = [], []
        for e, l in zip(enters, leaves):
            w, o = barrier_split(e.tolist(), l.tolist())
            w_exp.extend(w)
            o_exp.extend(o)
        np.testing.assert_array_equal(w_batch, np.asarray(w_exp))
        np.testing.assert_array_equal(o_batch, np.asarray(o_exp))

    def test_p2p_many_match_scalar(self):
        rng = np.random.default_rng(9)
        n = 50
        send = rng.uniform(0.0, 5.0, size=n)
        enter = rng.uniform(0.0, 5.0, size=n)
        comp = enter + rng.uniform(0.0, 3.0, size=n)
        ls = late_sender_wait_many(send, enter, comp)
        lr = late_receiver_wait_many(send, enter, comp)
        for k in range(n):
            assert ls[k] == late_sender_wait(send[k], enter[k], comp[k])
            assert lr[k] == late_receiver_wait(send[k], enter[k], comp[k])

    def test_empty_inputs(self):
        assert nxn_waits([], 1.0) == []
        assert barrier_split([], []) == ([], [])
        assert len(nxn_waits_batch(np.empty(0), np.empty(0, int), np.empty(0))) == 0
