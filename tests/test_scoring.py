"""Tests for the generalized Jaccard score (paper Sec. V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cube import CubeProfile, SystemTree
from repro.scoring import (
    jaccard,
    jaccard_callpaths_for_metric,
    jaccard_metric_callpath,
    min_pairwise_jaccard,
)

nonneg = st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.floats(min_value=0.0, max_value=1e6),
    max_size=10,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}) == 1.0

    def test_disjoint_support_zero(self):
        assert jaccard({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_both_empty_is_one(self):
        assert jaccard({}, {}) == 1.0

    def test_partial_overlap(self):
        # min-sum = 1, max-sum = 3
        assert jaccard({"a": 2.0}, {"a": 1.0, "b": 1.0}) == pytest.approx(1.0 / 3.0)

    def test_known_value_from_definition(self):
        a = {"x": 3.0, "y": 1.0}
        b = {"x": 1.0, "y": 2.0}
        assert jaccard(a, b) == pytest.approx((1 + 1) / (3 + 2))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            jaccard({"a": -1.0}, {"a": 1.0})

    @given(nonneg, nonneg)
    @settings(max_examples=60)
    def test_bounds(self, a, b):
        j = jaccard(a, b)
        assert 0.0 <= j <= 1.0

    @given(nonneg, nonneg)
    @settings(max_examples=60)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == pytest.approx(jaccard(b, a))

    @given(nonneg)
    @settings(max_examples=60)
    def test_self_similarity(self, a):
        assert jaccard(a, a) == pytest.approx(1.0)

    @given(nonneg, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40)
    def test_scale_sensitivity(self, a, factor):
        """Scaling one argument reduces similarity unless factor == 1."""
        # subnormal values underflow when scaled, breaking the exact
        # expected ratio below
        a = {k: v for k, v in a.items() if v > 1e-150}
        if not a:
            return
        scaled = {k: v * factor for k, v in a.items()}
        expected = min(factor, 1 / factor)
        assert jaccard(a, scaled) == pytest.approx(expected, rel=1e-6)


def _profile(values, time_metrics=("comp", "wait")):
    p = CubeProfile(SystemTree([(0, 0)]), time_metrics)
    for (metric, path), v in values.items():
        p.add(metric, path, 0, v)
    return p


class TestProfileJaccard:
    def test_identical_profiles(self):
        p = _profile({("comp", ("main",)): 5.0, ("wait", ("main",)): 1.0})
        assert jaccard_metric_callpath(p, p) == pytest.approx(1.0)

    def test_normalisation_removes_units(self):
        """Profiles measured in different units but identical shape score 1."""
        a = _profile({("comp", ("f",)): 5.0, ("comp", ("g",)): 5.0})
        b = _profile({("comp", ("f",)): 500.0, ("comp", ("g",)): 500.0})
        assert jaccard_metric_callpath(a, b) == pytest.approx(1.0)

    def test_different_attribution_scores_low(self):
        a = _profile({("comp", ("f",)): 10.0})
        b = _profile({("comp", ("g",)): 10.0})
        assert jaccard_metric_callpath(a, b) == pytest.approx(0.0)

    def test_callpath_score_for_metric(self):
        a = _profile({("comp", ("f",)): 8.0, ("comp", ("g",)): 2.0})
        b = _profile({("comp", ("f",)): 2.0, ("comp", ("g",)): 8.0})
        j = jaccard_callpaths_for_metric(a, b, "comp")
        assert j == pytest.approx((20 + 20) / (80 + 80))

    def test_min_pairwise_single(self):
        p = _profile({("comp", ("f",)): 1.0})
        assert min_pairwise_jaccard([p]) == 1.0

    def test_min_pairwise_detects_outlier(self):
        a = _profile({("comp", ("f",)): 1.0})
        b = _profile({("comp", ("f",)): 1.0})
        c = _profile({("comp", ("g",)): 1.0})
        assert min_pairwise_jaccard([a, b]) == pytest.approx(1.0)
        assert min_pairwise_jaccard([a, b, c]) == pytest.approx(0.0)
