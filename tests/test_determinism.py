"""Tests for the determinism prover and the happened-before race detector.

Covers the static pass (repro.verify.determinism: DET rules, per-mode
bit-identity verdicts, the sha256-stamped certificate), the dynamic pass
(repro.verify.races: vector-clock RACE rules with witness paths on
simulated fixture traces), the faultsweep cross-check of certificates
against observed fingerprints for every clock mode, the online race
check in sanitized measurements, the workflow pre-flight extension, the
``repro-lint --determinism/--races`` CLI and the diagnostic-suppression
accounting.
"""

import json

import pytest

from repro.experiments.faultsweep import run_fault_sweep
from repro.machine.faults import FaultConfig
from repro.measure import MODES, Measurement
from repro.measure.config import NOISY_MODES
from repro.sim import Engine
from repro.verify import (
    BIT_IDENTICAL,
    FIXTURES,
    NOISE_SENSITIVE,
    RaceReport,
    TraceInvariantError,
    VerificationError,
    analyze_determinism,
    find_races,
    make_fixture,
)
from repro.verify.diagnostics import Diagnostic

#: fixtures whose simulated traces must trip RACE rules
_RACY_TRACES = ("wildcard-recv", "send-race", "omp-shared-write")


def _simulate(noisy_cost, name, mode="lt1", sanitize=False):
    prog = make_fixture(name)
    engine = Engine(prog, noisy_cost.cluster, noisy_cost,
                    measurement=Measurement(mode, sanitize=sanitize))
    return engine.run().trace


# ---------------------------------------------------------------------------
# static determinism prover
# ---------------------------------------------------------------------------


class TestDeterminismProver:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_trips_exactly_expected_det_rules(self, name):
        fx = FIXTURES[name]
        report = analyze_determinism(fx.make())
        got = {d.rule_id for d in report.diagnostics}
        assert got == set(fx.expected_det_rules), report.report()

    def test_clean_program_certified_bit_identical_for_logical_modes(self):
        report = analyze_determinism(make_fixture("clean"))
        assert report.order_deterministic
        assert report.mode_verdicts.keys() == set(MODES)
        for mode in MODES:
            expected = (NOISE_SENSITIVE if mode in NOISY_MODES
                        else BIT_IDENTICAL)
            assert report.mode_verdicts[mode] == expected

    def test_order_racy_program_voids_every_mode(self):
        report = analyze_determinism(make_fixture("send-race"))
        assert not report.order_deterministic
        assert set(report.mode_verdicts.values()) == {NOISE_SENSITIVE}
        # DET002 witness names the racing send sites and the reason
        det002 = next(d for d in report.diagnostics if d.rule_id == "DET002")
        assert len(det002.witness) >= 3
        assert any("happened-before" in step for step in det002.witness)

    def test_value_racy_program_keeps_bit_identity(self):
        # an OpenMP shared-write race corrupts *values*, not the event
        # sequence: logical traces stay bit-identical
        report = analyze_determinism(make_fixture("omp-shared-write"))
        assert {d.rule_id for d in report.diagnostics} == {"DET005"}
        assert report.order_deterministic
        assert report.mode_verdicts["lt1"] == BIT_IDENTICAL

    def test_nondet_generator_detected_with_witness(self):
        report = analyze_determinism(make_fixture("nondet-generator"))
        assert not report.generator_deterministic
        det003 = next(d for d in report.diagnostics if d.rule_id == "DET003")
        assert any("run 1" in step for step in det003.witness)
        assert any("run 2" in step for step in det003.witness)
        assert report.mode_verdicts["lt1"] == NOISE_SENSITIVE

    def test_every_diagnostic_carries_a_witness(self):
        for name in ("wildcard-recv", "send-race", "omp-shared-write"):
            report = analyze_determinism(make_fixture(name))
            assert report.diagnostics
            assert all(d.witness for d in report.diagnostics), name

    def test_certificate_is_stamped_and_reproducible(self):
        a = analyze_determinism(make_fixture("clean"))
        b = analyze_determinism(make_fixture("clean"))
        assert a.certificate["kind"] == "determinism-certificate"
        assert a.certificate["hash"] == b.certificate["hash"]
        cfg = a.certificate["config"]
        assert cfg["mode_verdicts"] == a.mode_verdicts
        assert cfg["order_deterministic"] is True
        # a racy program yields a different certificate
        c = analyze_determinism(make_fixture("send-race"))
        assert c.certificate["hash"] != a.certificate["hash"]
        assert c.certificate["config"]["racy_sites"]

    def test_miniapps_prove_deterministic(self):
        from repro.experiments.configs import make_app

        for name in ("MiniFE-1", "TeaLeaf-1"):
            report = analyze_determinism(make_app(name))
            assert not report.diagnostics, report.report()
            assert report.order_deterministic
            assert report.mode_verdicts["lt1"] == BIT_IDENTICAL

    def test_report_text(self):
        text = analyze_determinism(make_fixture("send-race")).report()
        assert "communication sites" in text
        assert "certificate sha256" in text
        for mode in MODES:
            assert mode in text


# ---------------------------------------------------------------------------
# dynamic race detector on simulated traces
# ---------------------------------------------------------------------------


class TestRaceDetector:
    @pytest.mark.parametrize("name", ("clean",) + _RACY_TRACES)
    def test_fixture_trace_trips_exactly_expected_race_rules(
        self, noisy_cost, name
    ):
        fx = FIXTURES[name]
        report = find_races(_simulate(noisy_cost, name))
        got = {d.rule_id for d in report.diagnostics}
        assert got == set(fx.expected_race_rules), report.format()

    def test_race001_witness_is_a_happened_before_path(self, noisy_cost):
        report = find_races(_simulate(noisy_cost, "send-race"))
        assert report.has_races
        d = next(d for d in report.diagnostics if d.rule_id == "RACE001")
        steps = "\n".join(d.witness)
        assert "send A" in steps and "send B" in steps
        assert "vc=" in steps  # vector clocks attached to each event
        assert "concurrent" in steps
        assert "consumed by" in steps

    def test_race002_reports_concurrent_shared_writes(self, noisy_cost):
        report = find_races(_simulate(noisy_cost, "omp-shared-write"))
        d = next(d for d in report.diagnostics if d.rule_id == "RACE002")
        assert "'acc'" in d.message
        assert any("write A" in s for s in d.witness)

    def test_single_sender_wildcard_is_benign_in_trace(self, noisy_cost):
        report = find_races(_simulate(noisy_cost, "wildcard-recv"))
        assert not report.has_races  # RACE003 is informational
        assert report.wildcard_sites.get("MPI_Recv_any") == 1

    def test_race_detection_works_on_every_mode(self, noisy_cost):
        # recording mode changes overheads, not the happened-before order
        for mode in ("tsc", "ltstmt"):
            report = find_races(_simulate(noisy_cost, "send-race", mode=mode))
            assert report.has_races, mode

    def test_report_caps_and_counts_suppressed(self):
        report = RaceReport(n_locations=2, n_events=0)
        for i in range(12):
            report.add(Diagnostic("RACE002", f"finding {i}"))
        assert len(report.diagnostics) == 8
        assert report.suppressed == {"RACE002": 4}
        assert "(+4 more suppressed)" in report.format()


# ---------------------------------------------------------------------------
# online race check in sanitized measurements
# ---------------------------------------------------------------------------


class TestOnlineRaceCheck:
    def test_clean_program_passes_sanitized_run(self, noisy_cost):
        _simulate(noisy_cost, "clean", sanitize=True)

    def test_racy_program_fails_sanitized_run(self, noisy_cost):
        with pytest.raises(TraceInvariantError, match="RACE001"):
            _simulate(noisy_cost, "send-race", sanitize=True)

    def test_unsanitized_run_records_the_race_silently(self, noisy_cost):
        trace = _simulate(noisy_cost, "send-race", sanitize=False)
        assert find_races(trace).has_races


# ---------------------------------------------------------------------------
# certificate vs. observed bit-identity (faultsweep cross-check)
# ---------------------------------------------------------------------------


class TestCertificateCrossCheck:
    def test_clean_fixture_certificate_agrees_for_all_six_modes(self):
        # deterministic program, no faults: every logical mode must be
        # observed bit-identical exactly as certified, both noisy modes
        # must diverge
        sweep = run_fault_sweep(
            reps=2, modes=MODES, fault_config=FaultConfig(),
            program=make_fixture("clean"),
        )
        assert sweep.certificate_verdicts.keys() == set(MODES)
        for mode in MODES:
            expected = (NOISE_SENSITIVE if mode in NOISY_MODES
                        else BIT_IDENTICAL)
            assert sweep.certificate_verdicts[mode] == expected
            assert sweep.identical(mode) == (mode not in NOISY_MODES)
        assert sweep.certificate_ok
        assert not sweep.certificate_mismatches()
        assert sweep.certificate_hash
        assert "agrees with observation" in sweep.report()

    def test_racy_program_diverges_as_certified(self):
        # the receiver branches on the matched source: even lt1
        # fingerprints differ across noise seeds, and the certificate
        # said so up front
        sweep = run_fault_sweep(
            reps=6, base_noise_seed=0, modes=("lt1",),
            fault_config=FaultConfig(), program=make_fixture("send-race"),
        )
        assert sweep.certificate_verdicts["lt1"] == NOISE_SENSITIVE
        assert len(set(sweep.fingerprints["lt1"])) >= 2
        assert sweep.certificate_ok  # prediction matched observation
        assert not sweep.deterministic_ok  # but bit-identity is gone

    def test_sweep_under_faults_keeps_certificate_agreement(self):
        sweep = run_fault_sweep(reps=2, modes=("tsc", "lt1"))
        assert sweep.deterministic_ok
        assert sweep.certificate_ok
        assert sweep.certificate_verdicts["lt1"] == BIT_IDENTICAL

    def test_wrong_verdict_is_detected(self):
        sweep = run_fault_sweep(
            reps=2, modes=("lt1",), fault_config=FaultConfig(),
            program=make_fixture("clean"),
        )
        # forge a refuted certificate: claim bit-identity where the
        # fingerprints differ
        sweep.fingerprints["lt1"][1] = "0" * 64
        mismatches = sweep.certificate_mismatches()
        assert mismatches and "lt1" in mismatches[0]
        assert sweep.certificate_ok is False
        assert "REFUTED" in sweep.report()

    def test_certify_false_skips_the_check(self):
        sweep = run_fault_sweep(
            reps=1, modes=("lt1",), fault_config=FaultConfig(),
            program=make_fixture("clean"), certify=False,
        )
        assert sweep.certificate_ok is None
        assert not sweep.certificate_verdicts


# ---------------------------------------------------------------------------
# workflow pre-flight
# ---------------------------------------------------------------------------


class TestPreflightDeterminism:
    def test_preflight_passes_for_real_experiment(self):
        from repro.experiments.workflow import preflight_lint

        preflight_lint("MiniFE-1")

    def test_preflight_rejects_order_racy_app(self, monkeypatch):
        from repro.experiments import workflow

        monkeypatch.setattr(
            workflow, "make_app", lambda name: make_fixture("send-race")
        )
        with pytest.raises(VerificationError, match="determinism"):
            workflow.preflight_lint("MiniFE-1")


# ---------------------------------------------------------------------------
# CLI: repro-lint --determinism / --races / --format json
# ---------------------------------------------------------------------------


class TestCliAnalysis:
    def test_miniapp_passes_with_full_analysis(self, capsys):
        from repro.cli import main_lint

        rc = main_lint(["MiniFE-1", "--determinism", "--races",
                        "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert doc["determinism"]["order_deterministic"] is True
        assert doc["determinism"]["mode_verdicts"]["lt1"] == BIT_IDENTICAL
        assert doc["determinism"]["certificate_sha256"]
        assert doc["races"]["has_races"] is False

    def test_racy_fixture_fails_with_witnessed_diagnostics(self, capsys):
        from repro.cli import main_lint

        rc = main_lint(["--fixture", "send-race", "--determinism",
                        "--races", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["ok"] is False
        rules = {d["rule"] for d in doc["diagnostics"]}
        assert {"DET001", "DET002", "RACE001"} <= rules
        for d in doc["diagnostics"]:
            assert d["hint"]  # every rule documents its fix
        race = next(d for d in doc["diagnostics"] if d["rule"] == "RACE001")
        assert race["witness"]

    def test_json_alias_matches_format_json(self, capsys):
        from repro.cli import main_lint

        main_lint(["--fixture", "wildcard-recv", "--determinism", "--json"])
        via_alias = capsys.readouterr().out
        main_lint(["--fixture", "wildcard-recv", "--determinism",
                   "--format", "json"])
        assert capsys.readouterr().out == via_alias

    def test_lint_errors_skip_the_race_simulation(self, capsys):
        from repro.cli import main_lint

        rc = main_lint(["--fixture", "deadlock-cycle", "--races"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "race check skipped" in out

    def test_text_report_shows_certificate(self, capsys):
        from repro.cli import main_lint

        assert main_lint(["--fixture", "clean", "--determinism"]) == 0
        out = capsys.readouterr().out
        assert "certificate sha256" in out
        assert "bit-identical" in out

    def test_usage_error_exit_code_is_2(self):
        from repro.cli import main_lint

        with pytest.raises(SystemExit) as exc:
            main_lint([])
        assert exc.value.code == 2


# ---------------------------------------------------------------------------
# suppression accounting (no silent truncation)
# ---------------------------------------------------------------------------


class TestSuppressionAccounting:
    def test_sanitizer_surfaces_suppressed_counts(self, quiet_cost):
        from repro.verify import sanitize_trace

        prog = make_fixture("clean")
        engine = Engine(prog, quiet_cost.cluster, quiet_cost,
                        measurement=Measurement("tsc"))
        trace = engine.run().trace
        # corrupt far more events than the per-rule cap: shift every
        # other event on location 0 back in time
        evs = trace.events[0]
        for i in range(1, len(evs), 2):
            evs[i].t = -float(i)
        report = sanitize_trace(trace, modes=("tsc",))
        assert not report.ok
        assert report.n_suppressed > 0
        assert any(n > 0 for n in report.suppressed.values())
        text = report.format()
        assert "suppressed)" in text
        assert "more suppressed" in text

    def test_clean_trace_has_nothing_suppressed(self, quiet_cost):
        from repro.verify import sanitize_trace

        prog = make_fixture("clean")
        engine = Engine(prog, quiet_cost.cluster, quiet_cost,
                        measurement=Measurement("tsc"))
        report = sanitize_trace(engine.run().trace)
        assert report.ok
        assert report.n_suppressed == 0
        assert report.suppressed == {}
