"""Tests for the experiment harness on a tiny injected configuration."""

import numpy as np
import pytest

from repro.experiments import configs as C
from repro.experiments import reports
from repro.experiments.configs import ExperimentSpec
from repro.experiments.workflow import run_experiment
from repro.measure import MODES


@pytest.fixture
def tiny_experiment(monkeypatch, tmp_path):
    """Register a fast throwaway experiment and isolate the cache dir."""

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3, init_segments=2))

    spec = ExperimentSpec("Tiny-1", make, nodes=1, reps_ref=2, reps_noisy=2,
                          phases=("init", "solve"))
    monkeypatch.setitem(C.EXPERIMENTS, "Tiny-1", spec)
    import repro.experiments.workflow as W

    monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
    return "Tiny-1"


class TestWorkflow:
    def test_full_workflow(self, tiny_experiment):
        res = run_experiment(tiny_experiment, seed=0, use_cache=False)
        assert len(res.ref_runtimes) == 2
        assert set(res.runtimes) == set(MODES)
        assert len(res.runtimes["tsc"]) == 2  # noisy mode repeated
        assert len(res.runtimes["ltbb"]) == 1  # deterministic mode once
        for mode in MODES:
            assert res.mean_profile(mode).total_time() == pytest.approx(1.0)

    def test_overhead_computation(self, tiny_experiment):
        res = run_experiment(tiny_experiment, seed=0, use_cache=False)
        ov = res.overhead("lthwctr", "init")
        manual = 100 * (np.mean(res.phases["lthwctr"]["init"])
                        / np.mean(res.ref_phases["init"]) - 1)
        assert ov == pytest.approx(manual)

    def test_cache_roundtrip(self, tiny_experiment):
        first = run_experiment(tiny_experiment, seed=0, use_cache=True)
        second = run_experiment(tiny_experiment, seed=0, use_cache=True)
        assert second.ref_runtimes == first.ref_runtimes
        assert second.runtimes == first.runtimes
        a = first.mean_profile("ltbb")
        b = second.mean_profile("ltbb")
        assert a.total_time() == pytest.approx(b.total_time())
        assert a.by_callpath("comp") == pytest.approx(b.by_callpath("comp"))

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            C.make_app("NoSuchApp")

    def test_experiment_names_order(self):
        names = C.experiment_names()
        assert names[0] == "MiniFE-1"
        assert "TeaLeaf-4" in names
        assert len(names) == 8


class TestReportHelpers:
    def test_callpath_shares_buckets(self, tiny_experiment):
        res = run_experiment(tiny_experiment, seed=0, use_cache=False)
        from repro.analysis import COMP

        shares = reports.callpath_shares(
            res.mean_profile("tsc"), COMP, reports.MINIFE_COMP_BUCKETS
        )
        assert set(shares) == set(reports.MINIFE_COMP_BUCKETS) | {"other"}
        assert sum(shares.values()) == pytest.approx(100.0, abs=0.5)

    def test_fig1_needs_no_simulation(self):
        _data, text = reports.fig1_metric_tree()
        assert "wait_nxn" in text
