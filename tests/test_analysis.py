"""Tests for the Scalasca-analogue analysis: patterns, profiles, delays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    COMP,
    DELAY_N2N,
    IDLE_THREADS,
    MPI_COLL_WAIT_NXN,
    MPI_P2P_LATESENDER,
    OMP_BARRIER_OVERHEAD,
    OMP_BARRIER_WAIT,
    OMP_MANAGEMENT,
    TIME_LEAVES,
    analyze_trace,
    barrier_split,
    group_totals,
    late_receiver_wait,
    late_sender_wait,
    nxn_waits,
    render_metric_tree,
)
from repro.clocks import timestamp_trace
from repro.measure import Measurement
from repro.sim import (
    Allreduce,
    Compute,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
    Recv,
    Send,
)

K = KernelSpec("k", flops_per_unit=1e6, omp_iters_per_unit=1.0, bb_per_unit=5,
               stmt_per_unit=15, instr_per_unit=40, memory_scope="none")


def analyze(script, cost, n_ranks=2, threads=1, mode="tsc", phases=()):
    class P(Program):
        name = "t"

        def make_rank(self, ctx):
            yield Enter("main")
            yield from script(ctx)
            yield Leave("main")

    P.n_ranks = n_ranks
    P.threads_per_rank = threads
    res = Engine(P(), cost.cluster, cost, measurement=Measurement(mode)).run()
    return analyze_trace(timestamp_trace(res.trace, mode))


class TestPatternFormulas:
    def test_nxn_waits_basic(self):
        waits = nxn_waits([0.0, 3.0, 1.0], completion=5.0)
        assert waits == [3.0, 0.0, 2.0]

    def test_nxn_clamped_by_completion(self):
        waits = nxn_waits([0.0, 10.0], completion=4.0)
        assert waits[0] == 4.0

    def test_nxn_empty(self):
        assert nxn_waits([], 1.0) == []

    def test_barrier_split(self):
        waits, overheads = barrier_split([0.0, 2.0], [5.0, 5.0])
        assert overheads == [3.0, 3.0]  # fastest path = intrinsic cost
        assert waits == [2.0, 0.0]

    def test_barrier_split_mismatched(self):
        with pytest.raises(ValueError):
            barrier_split([0.0], [1.0, 2.0])

    def test_late_sender(self):
        assert late_sender_wait(send_ts=5.0, recv_enter_ts=2.0, recv_complete_ts=8.0) == 3.0
        assert late_sender_wait(1.0, 2.0, 8.0) == 0.0

    def test_late_receiver(self):
        assert late_receiver_wait(send_ts=1.0, recv_post_ts=4.0, complete_ts=9.0) == 3.0
        assert late_receiver_wait(4.0, 1.0, 9.0) == 0.0

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=16))
    @settings(max_examples=40)
    def test_nxn_waits_nonnegative(self, enters):
        completion = max(enters) + 1.0
        assert all(w >= 0 for w in nxn_waits(enters, completion))

    @given(st.lists(st.tuples(st.floats(0, 50), st.floats(0, 50)), min_size=1, max_size=8))
    @settings(max_examples=40)
    def test_barrier_split_partition(self, pairs):
        enters = [e for e, _d in pairs]
        leaves = [e + abs(d) for e, d in pairs]
        waits, overheads = barrier_split(enters, leaves)
        for (e, l, w, o) in zip(enters, leaves, waits, overheads):
            assert w + o == pytest.approx(l - e, abs=1e-9)


class TestMetricTree:
    def test_fig1_rendering(self):
        text = render_metric_tree()
        for token in ("time", "latesender", "wait_nxn", "barrier_wait",
                      "idle_threads", "delay_mpi_collective_n2n"):
            assert token in text

    def test_time_leaves_unique(self):
        assert len(set(TIME_LEAVES)) == len(TIME_LEAVES)


class TestAnalyzerBasics:
    def test_pure_compute_is_comp(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100)

        prof = analyze(script, quiet_cost, n_ranks=1)
        g = group_totals(prof)
        assert g["comp"] > 99.0

    def test_total_time_positive(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 10)

        prof = analyze(script, quiet_cost, n_ranks=1)
        assert prof.total_time() > 0

    def test_comp_attributed_to_callpath(self, quiet_cost):
        def script(ctx):
            yield Enter("inner")
            yield Compute(K, 100)
            yield Leave("inner")

        prof = analyze(script, quiet_cost, n_ranks=1)
        shares = prof.metric_selection_percent(COMP)
        assert shares[("main", "inner")] > 99.0

    def test_time_tree_partitions_execution(self, quiet_cost):
        """Sum of time leaves ~= sum of location lifetimes."""
        def script(ctx):
            yield Compute(K, 50 * (1 + ctx.rank))
            yield ParallelFor("l", K, total_units=100)
            yield Allreduce()

        prof = analyze(script, quiet_cost, threads=2)
        total = prof.total_time()
        comp = sum(prof.metric_total(m) for m in TIME_LEAVES)
        assert comp == pytest.approx(total)


class TestWaitStates:
    def test_imbalance_creates_nxn_wait(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Enter("reduce")
            yield Allreduce()
            yield Leave("reduce")

        prof = analyze(script, quiet_cost)
        wait = prof.metric_total(MPI_COLL_WAIT_NXN)
        # rank 0's wait ~ rank 1's extra compute
        extra = 100 * 1e6 / quiet_cost.cluster.flops_per_core
        assert wait == pytest.approx(extra, rel=0.05)

    def test_balanced_ranks_no_wait(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100)
            yield Allreduce()

        prof = analyze(script, quiet_cost)
        assert prof.percent_of_time(MPI_COLL_WAIT_NXN) < 1.0

    def test_late_sender_detected(self, quiet_cost):
        def script(ctx):
            if ctx.rank == 0:
                yield Compute(K, 500)
                yield Send(dest=1, tag=1, nbytes=64)
            else:
                yield Recv(source=0, tag=1)

        prof = analyze(script, quiet_cost)
        wait = prof.metric_total(MPI_P2P_LATESENDER)
        extra = 500 * 1e6 / quiet_cost.cluster.flops_per_core
        assert wait == pytest.approx(extra, rel=0.05)
        # attributed at the receiver's MPI_Recv call path
        shares = prof.metric_selection_percent(MPI_P2P_LATESENDER)
        assert any("MPI_Recv" in p for p in shares)

    def test_omp_barrier_wait_from_imbalance(self, quiet_cost):
        def script(ctx):
            yield ParallelFor("l", K, total_units=400, shares=(3.0, 1.0))

        prof = analyze(script, quiet_cost, n_ranks=1, threads=2)
        assert prof.metric_total(OMP_BARRIER_WAIT) > 0
        assert prof.metric_total(OMP_BARRIER_OVERHEAD) > 0

    def test_omp_management_present(self, quiet_cost):
        def script(ctx):
            for _ in range(5):
                yield ParallelFor("l", K, total_units=50)

        prof = analyze(script, quiet_cost, n_ranks=1, threads=4)
        assert prof.metric_total(OMP_MANAGEMENT) > 0


class TestIdleThreads:
    def test_serial_region_creates_idle(self, quiet_cost):
        def script(ctx):
            yield Enter("serial_part")
            yield Compute(K, 300)
            yield Leave("serial_part")
            yield ParallelFor("l", K, total_units=300)

        prof = analyze(script, quiet_cost, n_ranks=1, threads=4)
        idle = prof.metric_total(IDLE_THREADS)
        serial = 300 * 1e6 / quiet_cost.cluster.flops_per_core
        # 3 workers idle during the serial part
        assert idle == pytest.approx(3 * serial, rel=0.05)
        shares = prof.metric_selection_percent(IDLE_THREADS)
        agg = sum(v for p, v in shares.items() if "serial_part" in p)
        assert agg > 95.0

    def test_single_thread_no_idle(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100)

        prof = analyze(script, quiet_cost, n_ranks=1, threads=1)
        assert prof.metric_total(IDLE_THREADS) == 0.0


class TestDelayCosts:
    def test_delay_points_to_imbalanced_callpath(self, quiet_cost):
        def script(ctx):
            yield Enter("balanced")
            yield Compute(K, 100)
            yield Leave("balanced")
            yield Enter("imbalanced")
            yield Compute(K, 100 * (1 + 3 * ctx.rank))
            yield Leave("imbalanced")
            yield Allreduce()

        prof = analyze(script, quiet_cost)
        shares = prof.metric_selection_percent(DELAY_N2N)
        imb = sum(v for p, v in shares.items() if "imbalanced" in p)
        assert imb > 90.0

    def test_delay_on_delayer_location(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Allreduce()

        prof = analyze(script, quiet_cost)
        by_loc = prof.by_location(DELAY_N2N)
        # rank 1 (loc 1) is the delayer
        assert by_loc.get(1, 0.0) > 0.0
        assert by_loc.get(0, 0.0) == 0.0

    def test_epoch_resets_at_collectives(self, quiet_cost):
        """Imbalance before the first allreduce must not leak into the
        delay attribution of the second."""
        def script(ctx):
            yield Enter("early")
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Leave("early")
            yield Allreduce()
            yield Enter("late")
            yield Compute(K, 100 * (2 - ctx.rank))  # reversed imbalance
            yield Leave("late")
            yield Allreduce()

        prof = analyze(script, quiet_cost)
        # delay of the second instance must point to "late" on rank 0
        by_loc = prof.by_location(DELAY_N2N)
        assert by_loc.get(0, 0.0) > 0.0


class TestClockAgnosticism:
    """The analyzer consumes any clock's timestamps (paper Sec. III)."""

    @pytest.mark.parametrize("mode", ["lt1", "ltloop", "ltbb", "ltstmt", "lthwctr"])
    def test_logical_profiles_have_full_metric_tree(self, quiet_cost, mode):
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield ParallelFor("l", K, total_units=100)
            yield Allreduce()

        prof = analyze(script, quiet_cost, threads=2, mode=mode)
        assert prof.total_time() > 0
        total = sum(prof.metric_total(m) for m in TIME_LEAVES)
        assert total == pytest.approx(prof.total_time())

    def test_count_imbalance_visible_to_logical(self, quiet_cost):
        """A deterministic count imbalance shows in logical waits too."""
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Allreduce()

        tsc = analyze(script, quiet_cost, mode="tsc")
        ltbb = analyze(script, quiet_cost, mode="ltbb")
        assert tsc.percent_of_time(MPI_COLL_WAIT_NXN) > 5
        assert ltbb.percent_of_time(MPI_COLL_WAIT_NXN) > 5
