"""Tests for the text report renderer and the CLI tools."""

import pytest

from repro.analysis import analyze_trace, load_balance_summary, render_report, top_callpaths
from repro.clocks import timestamp_trace
from repro.cli import main_analyze, main_report, main_run, main_score
from repro.cube import CubeProfile, SystemTree
from repro.machine.noise import NoiseModel, ZeroNoise
from repro.measure import Measurement
from repro.sim import (
    Allreduce,
    Compute,
    CostModel,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
)

K = KernelSpec("k", flops_per_unit=1e6, omp_iters_per_unit=1.0, bb_per_unit=5,
               stmt_per_unit=15, instr_per_unit=40, memory_scope="none")


class _App(Program):
    name = "cli-app"
    n_ranks = 2
    threads_per_rank = 2

    def make_rank(self, ctx):
        yield Enter("main")
        yield Enter("work")
        yield Compute(K, 50 * (1 + ctx.rank))
        yield ParallelFor("loop", K, total_units=100)
        yield Leave("work")
        yield Allreduce()
        yield Leave("main")


@pytest.fixture
def profile(cluster):
    cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
    res = Engine(_App(), cluster, cost, measurement=Measurement("tsc")).run()
    return analyze_trace(timestamp_trace(res.trace, "tsc"))


class TestReport:
    def test_render_contains_sections(self, profile):
        text = render_report(profile)
        assert "Analysis report" in text
        assert "%T" in text and "%M" in text
        assert "wait_nxn" in text
        assert "computation balance" in text

    def test_top_callpaths_sorted(self, profile):
        rows = top_callpaths(profile, "comp", limit=3)
        assert len(rows) >= 1
        values = [v for _p, v in rows]
        assert values == sorted(values, reverse=True)
        assert "work" in rows[0][0] or "loop" in rows[0][0]

    def test_load_balance_detects_imbalance(self, profile):
        bal = load_balance_summary(profile)
        assert bal["imbalance"] > 0.0  # rank 1 does twice the serial work

    def test_load_balance_empty_metric(self, profile):
        bal = load_balance_summary(profile, metric="no_such_metric")
        assert bal == {"max": 0.0, "mean": 0.0, "imbalance": 0.0}

    def test_balanced_profile_zero_imbalance(self):
        p = CubeProfile(SystemTree([(0, 0), (1, 0)]), ("comp",))
        p.add("comp", ("f",), 0, 2.0)
        p.add("comp", ("f",), 1, 2.0)
        assert load_balance_summary(p)["imbalance"] == pytest.approx(0.0)


class TestCli:
    def test_run_and_analyze_roundtrip(self, tmp_path, capsys, monkeypatch):
        # register a tiny experiment so repro-run stays fast
        import repro.experiments.configs as C
        from repro.experiments.configs import ExperimentSpec

        def make():
            return _App()

        monkeypatch.setitem(C.EXPERIMENTS, "CLI-Tiny", ExperimentSpec("CLI-Tiny", make))
        trace_path = tmp_path / "t.trace.json.gz"
        assert main_run(["CLI-Tiny", "--mode", "ltbb", "-o", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and trace_path.exists()

        profile_path = tmp_path / "p.json.gz"
        assert main_analyze([str(trace_path), "-o", str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "comp" in out and profile_path.exists()

        # --report mode
        assert main_analyze([str(trace_path), "-o", str(profile_path), "--report"]) == 0
        assert "Analysis report" in capsys.readouterr().out

        # score a profile against itself
        assert main_score([str(profile_path), str(profile_path)]) == 0
        assert "J_(M,C) = 1.0000" in capsys.readouterr().out

    def test_report_fig1(self, capsys):
        assert main_report(["fig1"]) == 0
        assert "wait_nxn" in capsys.readouterr().out

    def test_run_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main_run(["NoSuchExperiment"])

    def test_run_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main_run(["MiniFE-1", "--mode", "sundial"])
