"""Causal profiler: DAG clocks, critical path, blame, alignment, what-if.

The contracts under test (docs/causal.md):

* :func:`repro.causal.build_dag` replays the exact clock state machine of
  :func:`repro.clocks.streaming.stream_clock_replay` -- final clocks are
  bit-identical under every mode, for raw and sharded traces alike.
* Critical path and blame profile are **bit-identical across noise
  seeds** under the deterministic logical modes, on all three miniapps --
  the paper's resilience claim extended to causal structure.
* The blame profile is conservative: the blame metrics sum exactly to
  the total attributed wait.
* What-if replay (power-of-two factors) matches a full engine
  re-simulation bit for bit, and ``drop_region`` of an injected delay
  reproduces the delay-free program's clocks exactly.
* The aligner lands shared markers exactly; aligned Chrome exports carry
  the required keys and stream from ``.shards`` archives.
"""

import json

import pytest

from repro import obs
from repro.causal import (
    BLAME_LEAVES,
    ClockAligner,
    blame_profile,
    build_dag,
    critical_path_table,
    run_whatif,
    scale_rank,
    scale_region,
    validate_whatif,
)
from repro.causal.whatif import REPLAYABLE_MODES
from repro.clocks.streaming import stream_clock_replay
from repro.experiments.delayprop import DelayRing, run_delay_propagation
from repro.machine import small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.measure.config import MODES
from repro.measure.shards import open_sharded_trace, write_sharded_trace
from repro.miniapps import (
    Lulesh,
    LuleshConfig,
    MiniFE,
    MiniFEConfig,
    TeaLeaf,
    TeaLeafConfig,
)
from repro.obs import CHROME_REQUIRED_KEYS, ObsSession
from repro.sim import CostModel, Engine

LOGICAL_MODES = REPLAYABLE_MODES  # lt1, ltloop, ltbb, ltstmt


def _apps():
    return {
        "minife": lambda: MiniFE(MiniFEConfig.tiny(nx=48, cg_iters=3)),
        "lulesh": lambda: Lulesh(LuleshConfig.tiny(steps=2)),
        "tealeaf": lambda: TeaLeaf(TeaLeafConfig.tiny()),
    }


def _run_trace(make_app, mode="tsc", seed=1):
    cluster = small_test_cluster(cores_per_numa=8, numa_per_socket=2)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    return Engine(make_app(), cluster, cost,
                  measurement=Measurement(mode)).run().trace


@pytest.fixture(scope="module")
def minife_trace():
    return _run_trace(_apps()["minife"], "tsc", seed=1)


@pytest.fixture(scope="module")
def seed_traces():
    """app name -> {seed: trace} (tsc recording, two noise seeds)."""
    return {name: {seed: _run_trace(make, "tsc", seed) for seed in (1, 2)}
            for name, make in _apps().items()}


def _blame_cells(prof):
    """Canonical {(metric, path, loc): value} view of a blame profile."""
    return {
        (metric, prof.calltree.path(cpid), loc): value
        for metric in prof.metrics
        for (cpid, loc), value in prof.cells(metric).items()
    }


class TestDagClocks:
    @pytest.mark.parametrize("mode", MODES)
    def test_final_clocks_match_stream_replay(self, minife_trace, mode):
        ref = stream_clock_replay(minife_trace, mode, counter_seed=3)
        dag = build_dag(minife_trace, mode, counter_seed=3)
        assert dag.final == ref.final
        assert dag.n_events == sum(ref.n_events)

    def test_critical_path_ends_at_sink(self, minife_trace):
        dag = build_dag(minife_trace, "ltbb")
        path = dag.critical_path()
        assert path[-1] == dag.sink()
        assert dag.clock[path[-1]] == dag.makespan
        # clocks never decrease along the path
        clocks = [dag.clock[nid] for nid in path]
        assert all(a <= b for a, b in zip(clocks, clocks[1:]))

    def test_critical_path_table_rows(self, minife_trace):
        dag = build_dag(minife_trace, "ltbb")
        rows = critical_path_table(dag, top=5)
        assert 0 < len(rows) <= 5
        for path, hops, work, wait in rows:
            assert isinstance(path, str) and hops > 0
            assert work >= 0.0 and wait >= 0.0

    def test_sharded_trace_parity(self, minife_trace, tmp_path):
        archive = tmp_path / "trace.shards"
        write_sharded_trace(minife_trace, archive, shard_events=256)
        d_raw = build_dag(minife_trace, "ltbb")
        d_shards = build_dag(open_sharded_trace(archive), "ltbb")
        assert d_raw.final == d_shards.final
        assert (d_raw.critical_path_fingerprint()
                == d_shards.critical_path_fingerprint())
        assert _blame_cells(blame_profile(d_raw)) == _blame_cells(
            blame_profile(d_shards))


class TestBlame:
    @pytest.mark.parametrize("mode", ["tsc", "ltbb"])
    def test_blame_sums_to_total_wait(self, minife_trace, mode):
        dag = build_dag(minife_trace, mode)
        prof = blame_profile(dag)
        total_blame = sum(
            sum(prof.cells(metric).values()) for metric in BLAME_LEAVES
        )
        assert total_blame == pytest.approx(dag.total_wait(), rel=1e-9)

    @pytest.mark.parametrize("app", ["minife", "lulesh", "tealeaf"])
    @pytest.mark.parametrize("mode", LOGICAL_MODES)
    def test_invariant_across_noise_seeds(self, seed_traces, app, mode):
        """Critical path and blame are bit-identical across noise seeds."""
        dags = {seed: build_dag(trace, mode)
                for seed, trace in seed_traces[app].items()}
        fps = {dag.critical_path_fingerprint() for dag in dags.values()}
        assert len(fps) == 1
        finals = {tuple(dag.final) for dag in dags.values()}
        assert len(finals) == 1
        blames = [_blame_cells(blame_profile(dag)) for dag in dags.values()]
        assert blames[0] == blames[1]

    def test_tsc_differs_across_seeds(self, seed_traces):
        dags = {seed: build_dag(trace, "tsc")
                for seed, trace in seed_traces["minife"].items()}
        finals = {tuple(dag.final) for dag in dags.values()}
        assert len(finals) == 2


class TestWhatIf:
    def test_empty_edit_is_identity(self, minife_trace):
        res = run_whatif(minife_trace, [], "ltbb")
        assert res.final == res.baseline_final

    def test_rejects_physical_modes(self, minife_trace):
        with pytest.raises(ValueError):
            run_whatif(minife_trace, [], "tsc")
        with pytest.raises(ValueError):
            run_whatif(minife_trace, [], "lthwctr")

    @pytest.mark.parametrize("factor", [2.0, 0.5])
    def test_validates_against_engine_rerun(self, minife_trace, factor):
        edits = [scale_region("cg_spmv", factor), scale_rank(0, 2.0)]
        res = run_whatif(minife_trace, edits, "ltbb")
        v = validate_whatif(
            res, lambda: _run_trace(_apps()["minife"], "tsc", seed=1))
        assert v.ok, f"max |diff| {v.max_abs_diff}"
        assert v.max_abs_diff == 0.0

    def test_scaling_up_slows_down(self, minife_trace):
        res = run_whatif(minife_trace, [scale_region("matvec", 2.0)], "ltbb")
        assert res.makespan > res.baseline_makespan
        assert res.speedup < 1.0

    def test_duplicate_edits_compose(self, minife_trace):
        once = run_whatif(minife_trace, [scale_region("matvec", 4.0)], "ltbb")
        twice = run_whatif(
            minife_trace,
            [scale_region("matvec", 2.0), scale_region("matvec", 2.0)],
            "ltbb")
        assert once.final == twice.final


class TestDelayPropagation:
    def test_drop_region_matches_delay_free_run(self):
        """The what-if ground truth: dropping the injected delay
        reproduces the delay-free program's clocks bit for bit."""
        result = run_delay_propagation(
            "ltbb", seeds=(1, 2), iters=4, delay_units=100.0)
        assert result.whatif_ok is not None
        assert all(result.whatif_ok.values())
        assert result.seed_invariant

    def test_wavefront_propagates_one_hop_per_iteration(self):
        result = run_delay_propagation(
            "ltbb", seeds=(1,), iters=6, delay_rank=0, delay_iter=1,
            delay_units=100.0, check_whatif=False)
        arrival = result.wavefront()
        # ranks 0 and 1 see it at the delay iteration, then +1 per hop
        assert arrival[0] == 1 and arrival[1] == 1
        assert arrival[2] == 2 and arrival[3] == 3

    def test_program_is_own_baseline_at_zero_units(self):
        ring = DelayRing(iters=3, delay_units=0.0)
        assert ring.n_ranks == 4 and ring.phases == ("iterate",)


class TestAligner:
    def test_markers_land_exactly(self, seed_traces):
        ref, other = seed_traces["minife"][1], seed_traces["minife"][2]
        aligner = ClockAligner(ref)
        assert aligner.n_markers() > 0
        assert aligner.raw_skew(other) > 0.0
        aligned = aligner.align(other, label="run2")
        assert aligner.residual_skew(aligned) < 1e-12

    def test_chrome_events_have_required_keys(self, seed_traces):
        ref = seed_traces["minife"][1]
        events = list(obs.trace_chrome_events(ref, label="ref"))
        spans = [e for e in events if e["ph"] == "X"]
        assert spans
        for ev in spans:
            for key in CHROME_REQUIRED_KEYS:
                assert key in ev

    def test_streamed_overlay_export(self, seed_traces, tmp_path):
        ref, other = seed_traces["minife"][1], seed_traces["minife"][2]
        aligned = ClockAligner(ref).align(other, label="run2")
        out = tmp_path / "aligned.chrome.json"
        n = obs.write_trace_chrome(out, [
            obs.trace_chrome_events(ref, label="ref"),
            obs.trace_chrome_events(aligned.trace, map_t=aligned.map_t,
                                    pid_offset=100, label="run2"),
        ])
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert any(p >= 100 for p in pids) and any(p < 100 for p in pids)


class TestObservabilitySatellites:
    def test_fastpath_and_drain_metrics(self):
        with obs.scoped(ObsSession()) as session:
            _run_trace(_apps()["minife"], "tsc", seed=1)
            doc = session.snapshot()
        counters = {row["name"] for row in doc["metrics"]["counters"]}
        assert "sim.fastpath.site_hits" in counters
        assert "sim.fastpath.site_misses" in counters
        hists = {row["name"]: row for row in doc["metrics"]["histograms"]}
        assert "sim.drain_batch_size" in hists
        assert hists["sim.drain_batch_size"]["count"] > 0

    def test_shards_peak_gauge(self, minife_trace, tmp_path):
        archive = tmp_path / "trace.shards"
        write_sharded_trace(minife_trace, archive, shard_events=256)
        with obs.scoped(ObsSession()) as session:
            sharded = open_sharded_trace(archive)
            for _ in sharded.merged():
                pass
            doc = session.snapshot()
        gauges = {row["name"]: row["value"]
                  for row in doc["metrics"]["gauges"]}
        assert gauges.get("io.shards.peak_resident_rows") == float(
            sharded.stats.peak_resident_rows)
        assert sharded.stats.peak_resident_rows <= 256


class TestCli:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        from repro.measure import write_trace

        path = tmp_path_factory.mktemp("causal") / "mini.trace.json.gz"
        write_trace(_run_trace(_apps()["minife"], "tsc", seed=1), path)
        return str(path)

    def test_blame_subcommand(self, trace_path, tmp_path, capsys):
        from repro.cli import main_causal

        report = tmp_path / "blame.json"
        profile = tmp_path / "blame.cube.json.gz"
        rc = main_causal(["blame", trace_path, "--mode", "ltbb",
                          "-o", str(report), "--profile", str(profile)])
        assert rc == 0
        doc = json.loads(report.read_text())
        assert doc["mode"] == "ltbb" and doc["critical_path_len"] > 0
        from repro.cube import read_profile

        prof = read_profile(profile)
        assert prof.meta.get("kind") == "causal_blame"

    def test_whatif_subcommand(self, trace_path, tmp_path, capsys):
        from repro.cli import main_causal

        out = tmp_path / "whatif.json"
        rc = main_causal(["whatif", trace_path, "--mode", "ltbb",
                          "--scale", "matvec=2.0", "--drop", "waxpby",
                          "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["mode"] == "ltbb" and len(doc["edits"]) == 2

    def test_whatif_requires_edits(self, trace_path):
        from repro.cli import main_causal

        with pytest.raises(SystemExit):
            main_causal(["whatif", trace_path, "--mode", "ltbb"])

    def test_align_subcommand(self, trace_path, tmp_path, capsys):
        from repro.cli import main_causal
        from repro.measure import write_trace

        other = tmp_path / "other.trace.json.gz"
        write_trace(_run_trace(_apps()["minife"], "tsc", seed=2), other)
        out = tmp_path / "aligned.chrome.json"
        rc = main_causal(["align", trace_path, str(other), "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]

    def test_obs_export_streams_shards(self, minife_trace, tmp_path, capsys):
        from repro.cli import main_obs

        archive = tmp_path / "trace.shards"
        write_sharded_trace(minife_trace, archive, shard_events=256)
        out = tmp_path / "trace.chrome.json"
        rc = main_obs(["export", str(archive), "--chrome", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans
        for ev in spans[:50]:
            for key in CHROME_REQUIRED_KEYS:
                assert key in ev
