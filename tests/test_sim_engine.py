"""Tests for the discrete-event engine: MPI semantics, OpenMP, bursts."""

import pytest

from repro.machine.noise import NoiseModel, ZeroNoise
from repro.measure import Measurement
from repro.sim import (
    Allreduce,
    Barrier,
    CallBurst,
    Compute,
    CostModel,
    Engine,
    Enter,
    Irecv,
    Isend,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
    Recv,
    Send,
    Wait,
    Waitall,
)
from repro.sim.events import (
    COLL_END,
    ENTER,
    LEAVE,
    MPI_RECV,
    OBAR_LEAVE,
    TEAM_BEGIN,
)

K = KernelSpec.balanced("k", flops_per_unit=1e5, bytes_per_unit=0.0, memory_scope="none")
KL = KernelSpec("kl", flops_per_unit=1e5, omp_iters_per_unit=1.0, bb_per_unit=3,
                stmt_per_unit=9, instr_per_unit=20, memory_scope="none")


class _P(Program):
    """Program built from a per-rank script function."""

    name = "test"
    phases = ("main",)

    def __init__(self, script, n_ranks=2, threads=1):
        self.script = script
        self.n_ranks = n_ranks
        self.threads_per_rank = threads

    def make_rank(self, ctx):
        yield Enter("main")
        yield from self.script(ctx)
        yield Leave("main")


def run(script, cost, n_ranks=2, threads=1, mode=None):
    p = _P(script, n_ranks=n_ranks, threads=threads)
    cl = cost.cluster
    m = Measurement(mode) if mode else None
    return Engine(p, cl, cost, measurement=m).run()


class TestComputeAndRegions:
    def test_compute_advances_time(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 10)

        res = run(script, quiet_cost, n_ranks=1)
        expected = 10 * 1e5 / quiet_cost.cluster.flops_per_core
        assert res.runtime == pytest.approx(expected, rel=1e-6)

    def test_phase_times_tracked_without_measurement(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 5)

        res = run(script, quiet_cost, n_ranks=1)
        assert res.phase("main") == pytest.approx(res.runtime)

    def test_unknown_phase_raises(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 1)

        res = run(script, quiet_cost, n_ranks=1)
        with pytest.raises(KeyError):
            res.phase("nope")

    def test_mismatched_leave_raises(self, quiet_cost):
        def script(ctx):
            yield Enter("a")
            yield Leave("b")

        with pytest.raises(RuntimeError, match="does not match"):
            run(script, quiet_cost, n_ranks=1)

    def test_events_recorded_in_order(self, quiet_cost):
        def script(ctx):
            yield Enter("f")
            yield Compute(K, 5)
            yield Leave("f")

        res = run(script, quiet_cost, n_ranks=1, mode="tsc")
        res.trace.validate()
        types = [e.etype for e in res.trace.events[0]]
        assert types == [ENTER, ENTER, LEAVE, LEAVE]


class TestPointToPoint:
    def test_blocking_send_recv(self, quiet_cost):
        def script(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, tag=1, nbytes=100)
            else:
                yield Recv(source=0, tag=1)

        res = run(script, quiet_cost, mode="tsc")
        evs = [e.etype for e in res.trace.events[1]]
        assert MPI_RECV in evs

    def test_late_sender_receiver_blocks(self, quiet_cost):
        def script(ctx):
            if ctx.rank == 0:
                yield Compute(K, 1000)  # sender is late
                yield Send(dest=1, tag=1, nbytes=100)
            else:
                yield Recv(source=0, tag=1)

        res = run(script, quiet_cost)
        # both ranks end at roughly the sender's compute time
        assert res.rank_end_times[1] >= res.rank_end_times[0] * 0.99

    def test_rendezvous_blocks_sender(self, quiet_cost):
        big = 10**6  # above the eager threshold

        def script(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, tag=1, nbytes=big)
            else:
                yield Compute(K, 1000)  # receiver is late
                yield Recv(source=0, tag=1)

        res = run(script, quiet_cost)
        compute_t = 1000 * 1e5 / quiet_cost.cluster.flops_per_core
        assert res.rank_end_times[0] >= compute_t  # sender waited

    def test_eager_send_does_not_block(self, quiet_cost):
        def script(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, tag=1, nbytes=64)
            else:
                yield Compute(K, 1000)
                yield Recv(source=0, tag=1)

        res = run(script, quiet_cost)
        compute_t = 1000 * 1e5 / quiet_cost.cluster.flops_per_core
        assert res.rank_end_times[0] < compute_t / 10  # sender long gone

    def test_nonblocking_waitall(self, quiet_cost):
        def script(ctx):
            other = 1 - ctx.rank
            r1 = yield Irecv(source=other, tag=2)
            r2 = yield Isend(dest=other, tag=2, nbytes=128)
            yield Waitall([r1, r2])

        res = run(script, quiet_cost, mode="tsc")
        res.trace.validate()
        for loc in (0, 1):
            assert any(e.etype == MPI_RECV for e in res.trace.events[loc])

    def test_single_wait(self, quiet_cost):
        def script(ctx):
            other = 1 - ctx.rank
            r = yield Irecv(source=other, tag=3)
            yield Isend(dest=other, tag=3, nbytes=8)
            yield Wait(r)

        run(script, quiet_cost)  # must not deadlock

    def test_message_ordering_fifo(self, quiet_cost):
        received = []

        def script(ctx):
            if ctx.rank == 0:
                yield Send(dest=1, tag=1, nbytes=8)
                yield Send(dest=1, tag=1, nbytes=8)
            else:
                yield Recv(source=0, tag=1)
                yield Recv(source=0, tag=1)

        run(script, quiet_cost)  # FIFO matching must not deadlock

    def test_deadlock_detected(self, quiet_cost):
        def script(ctx):
            yield Recv(source=1 - ctx.rank, tag=9)  # nobody sends

        with pytest.raises(RuntimeError, match="deadlock"):
            run(script, quiet_cost)


class TestCollectives:
    def test_allreduce_synchronizes(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 100 * (1 + ctx.rank))
            yield Allreduce()

        res = run(script, quiet_cost)
        assert res.rank_end_times[0] == pytest.approx(res.rank_end_times[1], rel=1e-9)

    def test_barrier(self, quiet_cost):
        def script(ctx):
            yield Compute(K, 10 * (1 + ctx.rank))
            yield Barrier()

        res = run(script, quiet_cost)
        assert res.rank_end_times[0] == pytest.approx(res.rank_end_times[1], rel=1e-9)

    def test_collective_mismatch_raises(self, quiet_cost):
        def script(ctx):
            if ctx.rank == 0:
                yield Allreduce()
            else:
                yield Barrier()

        with pytest.raises(RuntimeError, match="collective mismatch"):
            run(script, quiet_cost)

    def test_coll_end_events_carry_group(self, quiet_cost):
        def script(ctx):
            yield Allreduce()

        res = run(script, quiet_cost, mode="tsc")
        ends = [e for loc in range(2) for e in res.trace.events[loc] if e.etype == COLL_END]
        assert len(ends) == 2
        assert all(e.aux[1] == 2 for e in ends)

    def test_represents_scales_cost(self, quiet_cost):
        def script_r(ctx):
            yield Allreduce(represents=100.0)

        def script_1(ctx):
            yield Allreduce()

        r100 = run(script_r, quiet_cost)
        r1 = run(script_1, quiet_cost)
        assert r100.runtime > r1.runtime * 10


class TestOpenMP:
    def test_parallel_for_speedup(self, quiet_cost):
        def script(ctx):
            yield ParallelFor("loop", KL, total_units=4000)

        serial = run(script, quiet_cost, n_ranks=1, threads=1).runtime
        parallel = run(script, quiet_cost, n_ranks=1, threads=4).runtime
        assert parallel < serial / 2  # not 4x because of fork/join cost

    def test_thread_events_emitted(self, quiet_cost):
        def script(ctx):
            yield ParallelFor("loop", KL, total_units=100)

        res = run(script, quiet_cost, n_ranks=1, threads=2, mode="tsc")
        res.trace.validate()
        worker = res.trace.events[1]
        types = [e.etype for e in worker]
        assert types[0] == TEAM_BEGIN
        assert OBAR_LEAVE in types

    def test_shares_must_match_thread_count(self, quiet_cost):
        def script(ctx):
            yield ParallelFor("loop", KL, total_units=100, shares=(1.0,))

        with pytest.raises(ValueError, match="shares"):
            run(script, quiet_cost, n_ranks=1, threads=2)

    def test_imbalanced_shares_cause_barrier_gap(self, quiet_cost):
        def script(ctx):
            yield ParallelFor("loop", KL, total_units=1000, shares=(3.0, 1.0))

        res = run(script, quiet_cost, n_ranks=1, threads=2, mode="tsc")
        tr = res.trace
        # worker (thread 1) waits at the implicit barrier for thread 0
        worker = tr.events[1]
        enter = next(e for e in worker if e.etype == 9)  # OBAR_ENTER
        leave = next(e for e in worker if e.etype == OBAR_LEAVE)
        assert leave.t - enter.t > 0

    def test_represents_scales_construct_cost(self, quiet_cost):
        def script_r(ctx):
            yield ParallelFor("loop", KL, total_units=100, represents=50.0)

        def script_1(ctx):
            yield ParallelFor("loop", KL, total_units=100)

        r = run(script_r, quiet_cost, n_ranks=1, threads=2)
        one = run(script_1, quiet_cost, n_ranks=1, threads=2)
        assert r.runtime > one.runtime


class TestBursts:
    def test_burst_records_single_event(self, quiet_cost):
        def script(ctx):
            yield Enter("phase")
            yield CallBurst("op()", calls=1000, kernel=K, units=10)
            yield Leave("phase")

        res = run(script, quiet_cost, n_ranks=1, mode="tsc")
        bursts = [e for e in res.trace.events[0] if e.etype == 2]
        assert len(bursts) == 1
        assert bursts[0].delta.burst_calls == 1000

    def test_burst_pays_per_call_event_cost(self, cluster):
        cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))

        def script(ctx):
            yield CallBurst("op()", calls=100000, kernel=K, units=1)

        ref = run(script, cost, n_ranks=1)
        instr = run(script, cost, n_ranks=1, mode="tsc")
        assert instr.runtime > ref.runtime * 1.5  # 2e5 events x event cost


class TestDeterminism:
    def test_zero_noise_runs_identical(self, cluster):
        def script(ctx):
            yield Compute(K, 50)
            yield Allreduce()
            yield ParallelFor("l", KL, total_units=100)

        c1 = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
        c2 = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=99))
        r1 = run(script, c1, threads=2)
        r2 = run(script, c2, threads=2)
        assert r1.runtime == r2.runtime
