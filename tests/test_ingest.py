"""Hardened foreign-trace ingestion (``repro.ingest``).

Covers the issue's acceptance points: a clean re-ingested ``embed_raw``
Chrome export replays bit-identically to the original trace under all
four deterministic logical clock modes on all three mini-apps; foreign
Chrome and comm-op inputs are parsed, salvaged (every repair recorded as
an ING diagnostic) and replayed through the simulator; every accepted
trace passes ``sanitize_raw`` clean; damaged archives raise the single
typed :class:`TraceFormatError`; resource caps and the wall-clock
deadline reject instead of hanging; and the seeded corpus-mutation
fuzzer finds zero contract violations.
"""

import gzip
import json
import zipfile

import pytest

from repro.clocks.base import timestamp_trace
from repro.ingest import (
    IngestError,
    IngestLimits,
    ingest_bytes,
    ingest_file,
)
from repro.machine import small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel, ZeroNoise
from repro.measure import (
    Measurement,
    TraceFormatError,
    read_trace,
    trace_archive_bytes,
    write_trace,
)
from repro.obs.export import trace_chrome_events
from repro.sim import CostModel
from repro.sim.engine import Engine
from repro.verify.rules import RULES, Severity
from repro.verify.sanitizer import sanitize_raw

LOGICAL = ("lt1", "ltloop", "ltbb", "ltstmt")


def _run_app(app, mode="lt1", seed=1, noise=None):
    cluster = small_test_cluster(cores_per_numa=8, numa_per_socket=2)
    noise_model = NoiseModel(noise if noise is not None else ZeroNoise(),
                             seed=seed)
    cost = CostModel(cluster, noise=noise_model)
    engine = Engine(app, cluster, cost, measurement=Measurement(mode))
    return engine.run().trace


def _apps():
    from repro.miniapps.lulesh import Lulesh, LuleshConfig
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig

    return {
        "minife": lambda: MiniFE(MiniFEConfig.tiny(nx=24, cg_iters=2)),
        "lulesh": lambda: Lulesh(LuleshConfig.tiny(steps=2)),
        "tealeaf": lambda: TeaLeaf(TeaLeafConfig.tiny()),
    }


@pytest.fixture(scope="module", params=["minife", "lulesh", "tealeaf"])
def app_trace(request):
    return _run_app(_apps()[request.param]())


@pytest.fixture(scope="module")
def minife_trace():
    return _run_app(_apps()["minife"]())


def _chrome_bytes(trace, embed_raw=True):
    events = list(trace_chrome_events(trace, embed_raw=embed_raw))
    return json.dumps({"traceEvents": events}).encode()


def _finals(trace, mode):
    return [ts[-1] if len(ts) else 0.0
            for ts in timestamp_trace(trace, mode=mode).times]


def _no_errors(trace):
    return not [d for d in sanitize_raw(trace)
                if RULES[d.rule_id].severity == Severity.ERROR]


# ---------------------------------------------------------------------------
# round-trip fidelity: export -> ingest -> replay bit-identical
# ---------------------------------------------------------------------------
class TestLosslessRoundTrip:
    def test_clean_export_replays_bit_identically(self, app_trace):
        result = ingest_bytes(_chrome_bytes(app_trace))
        assert result.kind == "trace"
        assert result.report.accepted and not result.report.repairs
        for mode in LOGICAL:
            assert _finals(result.trace, mode) == _finals(app_trace, mode)

    def test_reconstruction_is_exact(self, minife_trace):
        got = ingest_bytes(_chrome_bytes(minife_trace)).trace
        assert got.mode == minife_trace.mode
        assert got.locations == minife_trace.locations
        assert got.regions.names == minife_trace.regions.names
        assert got.regions.paradigms == minife_trace.regions.paradigms
        for a, b in zip(got.events, minife_trace.events):
            assert len(a) == len(b)
            for ea, eb in zip(a, b):
                assert (ea.etype, ea.region, ea.t, ea.aux, ea.t_enter) \
                    == (eb.etype, eb.region, eb.t, eb.aux, eb.t_enter)
        assert _no_errors(got)

    def test_gzip_wrapped_export_accepted(self, minife_trace):
        blob = gzip.compress(_chrome_bytes(minife_trace))
        result = ingest_bytes(blob)
        assert result.report.accepted
        assert _finals(result.trace, "lt1") == _finals(minife_trace, "lt1")

    def test_canonical_archive_round_trip(self, minife_trace, tmp_path):
        result = ingest_bytes(_chrome_bytes(minife_trace))
        out = tmp_path / "reingested.trace.json.gz"
        write_trace(result.trace, out)
        again = read_trace(out)
        assert _finals(again, "ltstmt") == _finals(minife_trace, "ltstmt")


# ---------------------------------------------------------------------------
# salvage: each damage class is repaired with a populated report
# ---------------------------------------------------------------------------
def _mutated(trace, fn):
    """Export ``trace`` losslessly, apply ``fn`` to the record list."""
    events = list(trace_chrome_events(trace, embed_raw=True))
    fn(events)
    return json.dumps({"traceEvents": events}).encode()


def _raw_records(events):
    return [e for e in events if e.get("cat") == "repro.raw"]


class TestSalvage:
    def test_truncated_tail_discarded(self, minife_trace):
        blob = _chrome_bytes(minife_trace)
        result = ingest_bytes(blob[: int(len(blob) * 0.93)])
        assert result.report.accepted
        assert "ING004" in result.report.rule_ids()
        assert _no_errors(result.trace)

    def test_duplicate_records_dropped(self, minife_trace):
        def dup(events):
            raws = _raw_records(events)
            events.extend([dict(r) for r in raws[: len(raws) // 4]])

        result = ingest_bytes(_mutated(minife_trace, dup))
        assert result.report.accepted
        assert result.report.repairs
        assert _no_errors(result.trace)
        for mode in LOGICAL:
            assert _finals(result.trace, mode) == _finals(minife_trace,
                                                          mode)

    def test_unmatched_send_repaired(self, minife_trace):
        from repro.sim.events import MPI_SEND

        def drop_recvs(events):
            sends = [e for e in _raw_records(events)
                     if e["args"]["etype"] == MPI_SEND]
            # orphan a send by retagging its match id out of range
            sends[0]["args"]["aux"][0] = 10_000_019

        result = ingest_bytes(_mutated(minife_trace, drop_recvs))
        assert result.report.accepted
        assert "ING006" in result.report.rule_ids()
        assert _no_errors(result.trace)

    def test_nonmonotonic_timestamps_repaired(self, minife_trace):
        def scramble(events):
            raws = _raw_records(events)
            victim = raws[len(raws) // 2]
            victim["args"]["t"] = 0.0
            victim["args"]["t_enter"] = 0.0

        result = ingest_bytes(_mutated(minife_trace, scramble))
        assert result.report.accepted
        assert "ING005" in result.report.rule_ids()
        assert _no_errors(result.trace)

    def test_malformed_records_dropped_not_fatal(self, minife_trace):
        def corrupt(events):
            raws = _raw_records(events)
            raws[3]["args"]["etype"] = 999
            raws[5]["args"]["loc"] = "NaN"
            raws[7]["args"].pop("t")

        result = ingest_bytes(_mutated(minife_trace, corrupt))
        assert result.report.accepted
        assert "ING003" in result.report.rule_ids()
        assert result.report.n_dropped >= 3
        assert _no_errors(result.trace)

    def test_corrupt_sidecar_falls_back_to_visible_events(
            self, minife_trace):
        def nuke_header(events):
            for e in events:
                if e.get("name") == "repro_trace":
                    e["args"]["locations"] = "gone"

        result = ingest_bytes(_mutated(minife_trace, nuke_header))
        assert result.report.accepted
        assert result.trace.mode == "tsc"  # foreign path: physical times
        assert _no_errors(result.trace)


# ---------------------------------------------------------------------------
# foreign Chrome traces
# ---------------------------------------------------------------------------
class TestForeignChrome:
    def test_x_and_be_events_reconstructed(self):
        evs = [
            {"name": "main", "ph": "X", "ts": 0, "dur": 100,
             "pid": 7, "tid": 1},
            {"name": "inner", "ph": "X", "ts": 10, "dur": 20,
             "pid": 7, "tid": 1},
            {"name": "span", "ph": "B", "ts": 5, "pid": 9, "tid": 2},
            {"name": "span", "ph": "E", "ts": 95, "pid": 9, "tid": 2},
        ]
        result = ingest_bytes(
            json.dumps({"traceEvents": evs}).encode())
        trace = result.trace
        assert trace.mode == "tsc"
        assert trace.locations == [(0, 0), (1, 0)]
        assert trace.n_events == 6  # 3 intervals -> ENTER+LEAVE each
        assert _no_errors(trace)
        assert _finals(trace, "lt1")  # replayable under a logical clock

    def test_overlap_clamped_with_diagnostic(self):
        evs = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 50,
             "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 40, "dur": 50,
             "pid": 0, "tid": 0},
        ]
        result = ingest_bytes(json.dumps(evs).encode())
        assert "ING009" in result.report.rule_ids()
        assert _no_errors(result.trace)

    def test_no_usable_events_rejected(self):
        evs = [{"name": "m", "ph": "M", "pid": 0, "tid": 0, "args": {}}]
        with pytest.raises(IngestError) as err:
            ingest_bytes(json.dumps({"traceEvents": evs}).encode())
        assert "ING002" in err.value.report.rule_ids()


# ---------------------------------------------------------------------------
# comm-op schema
# ---------------------------------------------------------------------------
def _commops(ops, n_ranks=2, lines=False):
    if lines:
        header = {"format": "repro-commops-1", "n_ranks": n_ranks}
        return "\n".join(json.dumps(o)
                         for o in [header] + ops).encode()
    return json.dumps({"format": "repro-commops-1", "n_ranks": n_ranks,
                       "ops": ops}).encode()


class TestCommops:
    OPS = [
        {"rank": 0, "op": "enter", "region": "step"},
        {"rank": 0, "op": "compute", "seconds": 1e-4},
        {"rank": 0, "op": "isend", "peer": 1, "tag": 3, "bytes": 4096},
        {"rank": 0, "op": "allreduce", "bytes": 8},
        {"rank": 0, "op": "wait"},
        {"rank": 0, "op": "leave", "region": "step"},
        {"rank": 1, "op": "enter", "region": "step"},
        {"rank": 1, "op": "irecv", "peer": "any", "tag": 3},
        {"rank": 1, "op": "allreduce", "bytes": 8},
        {"rank": 1, "op": "waitall"},
        {"rank": 1, "op": "leave", "region": "step"},
    ]

    @pytest.mark.parametrize("lines", [False, True])
    def test_both_containers_accepted(self, lines):
        result = ingest_bytes(_commops(self.OPS, lines=lines))
        assert result.kind == "program"
        assert result.report.accepted
        assert result.program.n_ranks == 2

    def test_replay_under_all_modes(self):
        from repro.ingest.replay import replay_program
        from repro.measure.config import MODES

        program = ingest_bytes(_commops(self.OPS)).program
        for mode in MODES:
            sim = replay_program(program, mode=mode)
            assert sim.runtime > 0
            assert _no_errors(sim.trace)

    def test_logical_replay_noise_invariant(self):
        from repro.ingest.replay import replay_program

        program = ingest_bytes(_commops(self.OPS)).program
        finals = []
        for seed in (1, 2):
            sim = replay_program(program, mode="lt1", seed=seed,
                                 noise_config=NoiseConfig())
            finals.append(_finals(sim.trace, "lt1"))
        assert finals[0] == finals[1]  # logical timers ignore noise

    def test_unbalanced_regions_repaired(self):
        ops = [{"rank": 0, "op": "enter", "region": "a"},
               {"rank": 0, "op": "enter", "region": "b"},
               {"rank": 0, "op": "leave", "region": "a"}]
        result = ingest_bytes(_commops(ops, n_ranks=1))
        assert result.report.accepted
        assert "ING009" in result.report.rule_ids()

    def test_unmatched_p2p_trimmed(self):
        ops = [{"rank": 0, "op": "send", "peer": 1, "tag": 1,
                "bytes": 64}]
        result = ingest_bytes(_commops(ops))
        assert result.report.accepted
        assert "ING006" in result.report.rule_ids()
        assert result.program.n_ops == 0 or all(
            op[0] not in ("send", "isend")
            for ops_ in result.program.rank_ops for op in ops_)

    def test_collective_mismatch_truncated(self):
        ops = [{"rank": 0, "op": "allreduce"},
               {"rank": 0, "op": "barrier"},
               {"rank": 1, "op": "allreduce"},
               {"rank": 1, "op": "allreduce"}]
        result = ingest_bytes(_commops(ops))
        assert result.report.accepted
        assert "ING007" in result.report.rule_ids()

    def test_header_loss_recovers_rank_count(self):
        blob = b"\n".join(json.dumps(o).encode() for o in self.OPS)
        result = ingest_bytes(blob, fmt="commops")
        assert result.report.accepted
        assert result.program.n_ranks == 2
        assert "ING003" in result.report.rule_ids()


# ---------------------------------------------------------------------------
# resource caps and deadline
# ---------------------------------------------------------------------------
class TestCaps:
    def test_byte_cap(self, minife_trace):
        blob = _chrome_bytes(minife_trace)
        with pytest.raises(IngestError) as err:
            ingest_bytes(blob, limits=IngestLimits(max_bytes=1024))
        assert "ING001" in err.value.report.rule_ids()

    def test_decompression_bomb_cap(self):
        bomb = gzip.compress(b'{"traceEvents": [' + b" " * (1 << 22))
        with pytest.raises(IngestError) as err:
            ingest_bytes(bomb, limits=IngestLimits(max_bytes=1 << 20))
        assert "ING001" in err.value.report.rule_ids()

    def test_event_cap(self, minife_trace):
        with pytest.raises(IngestError) as err:
            ingest_bytes(_chrome_bytes(minife_trace),
                         limits=IngestLimits(max_events=10))
        assert "ING001" in err.value.report.rule_ids()

    def test_deadline(self, minife_trace):
        with pytest.raises(IngestError) as err:
            ingest_bytes(_chrome_bytes(minife_trace),
                         limits=IngestLimits(timeout_seconds=0.0))
        assert "ING010" in err.value.report.rule_ids()


# ---------------------------------------------------------------------------
# quarantine (file entry point)
# ---------------------------------------------------------------------------
class TestIngestFile:
    def test_rejected_file_quarantined(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"\x00\x01 not a trace at all")
        with pytest.raises(IngestError) as err:
            ingest_file(bad)
        assert not bad.exists()
        assert err.value.report.quarantine_path.endswith(".corrupt-0")
        assert (tmp_path / "bad.json.corrupt-0").exists()

    def test_no_quarantine_flag(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_bytes(b"junk")
        with pytest.raises(IngestError) as err:
            ingest_file(bad, quarantine=False)
        assert bad.exists()
        assert err.value.report.quarantine_path is None

    def test_accepted_file_untouched(self, tmp_path, minife_trace):
        good = tmp_path / "good.json"
        good.write_bytes(_chrome_bytes(minife_trace))
        result = ingest_file(good)
        assert result.report.accepted
        assert good.exists()


# ---------------------------------------------------------------------------
# typed archive errors (TraceFormatError)
# ---------------------------------------------------------------------------
class TestTraceFormatError:
    def test_truncated_jsonl_archive(self, tmp_path, minife_trace):
        path = tmp_path / "t.trace.json.gz"
        write_trace(minife_trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError) as err:
            read_trace(path)
        assert isinstance(err.value, ValueError)
        assert err.value.path == str(path)
        assert err.value.reason

    def test_bitflipped_payload(self, tmp_path, minife_trace):
        path = tmp_path / "t.trace.json.gz"
        write_trace(minife_trace, path)
        plain = bytearray(gzip.decompress(path.read_bytes()))
        # corrupt a record line past the header (line 1 stays intact)
        idx = plain.index(b"null", plain.index(b"\n"))
        plain[idx:idx + 4] = b"nulx"
        path.write_bytes(gzip.compress(bytes(plain)))
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "t.trace.json.gz"
        path.write_bytes(gzip.compress(b'{"format": "something-else"}'))
        with pytest.raises(TraceFormatError) as err:
            read_trace(path)
        assert "not a repro trace archive" in str(err.value)

    def test_corrupt_npz(self, tmp_path, minife_trace):
        path = tmp_path / "t.npz"
        write_trace(minife_trace, path)
        data = bytearray(path.read_bytes())
        for i in range(60, len(data), 211):
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises((TraceFormatError, zipfile.BadZipFile)) as err:
            read_trace(path)
        # zipfile damage must arrive typed, not as a bare BadZipFile
        assert isinstance(err.value, TraceFormatError)

    def test_shard_row_mismatch(self, tmp_path, minife_trace):
        from repro.measure.shards import (
            MANIFEST_NAME,
            open_sharded_trace,
            write_sharded_trace,
        )

        root = tmp_path / "t.shards"
        write_sharded_trace(minife_trace, root, shard_events=64)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["shards"][0]["n_events"] += 5
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        sharded = open_sharded_trace(root)
        with pytest.raises(TraceFormatError):
            for _ in sharded.iter_shards():
                pass

    def test_shard_manifest_garbage(self, tmp_path):
        from repro.measure.shards import MANIFEST_NAME, read_shard_manifest

        root = tmp_path / "t.shards"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(TraceFormatError):
            read_shard_manifest(root)

    def test_error_is_picklable(self):
        import pickle

        err = TraceFormatError("/x/y.npz", "bad member", offset="events_t")
        back = pickle.loads(pickle.dumps(err))
        assert (back.path, back.reason, back.offset) \
            == (err.path, err.reason, err.offset)

    def test_archive_bytes_match_write_trace(self, tmp_path, minife_trace):
        path = tmp_path / "t.trace.json.gz"
        write_trace(minife_trace, path)
        assert trace_archive_bytes(minife_trace) == path.read_bytes()


# ---------------------------------------------------------------------------
# the fuzzer: bounded budget inside the suite
# ---------------------------------------------------------------------------
class TestFuzz:
    @pytest.fixture(scope="class")
    def corpus(self, ):
        from repro.ingest.fuzz import build_corpus

        return build_corpus()

    def test_property_never_crash_never_accept_unclean(self, corpus):
        from repro.ingest.fuzz import run_fuzz

        stats = run_fuzz(n_per_corpus=40, seed=7, corpus=corpus)
        assert stats.n_inputs == 4 * 40
        assert stats.ok, stats.format()
        # the mutation set must actually exercise the reject path
        assert stats.rejected > 0
        assert stats.repaired > 0

    def test_determinism(self, corpus):
        from repro.ingest.fuzz import run_fuzz

        a = run_fuzz(n_per_corpus=10, seed=3, corpus=corpus)
        b = run_fuzz(n_per_corpus=10, seed=3, corpus=corpus)
        assert a.rule_counts == b.rule_counts
        assert (a.accepted, a.repaired, a.rejected) \
            == (b.accepted, b.repaired, b.rejected)


# ---------------------------------------------------------------------------
# obs counters
# ---------------------------------------------------------------------------
class TestCounters:
    def test_ingest_counters(self, minife_trace):
        from repro import obs

        session = obs.enable()
        try:
            ingest_bytes(_chrome_bytes(minife_trace))
            with pytest.raises(IngestError):
                ingest_bytes(b"junk")
            totals = session.metrics.totals("ingest.records")
            assert totals.get("ingest.records", 0) > 0
            assert session.metrics.totals("ingest.rejects") \
                .get("ingest.rejects") == 1.0
        finally:
            obs.disable()
