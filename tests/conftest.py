"""Shared fixtures for the test suite."""

import pytest

from repro.machine import jureca_dc, small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel, ZeroNoise
from repro.sim import CostModel


@pytest.fixture
def cluster():
    """A tiny deterministic cluster (2 NUMA domains x 4 cores)."""
    return small_test_cluster(cores_per_numa=4, numa_per_socket=2)


@pytest.fixture
def jureca():
    return jureca_dc(1)


@pytest.fixture
def quiet_cost(cluster):
    """Cost model with all noise off (fully deterministic runs)."""
    return CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))


@pytest.fixture
def noisy_cost(cluster):
    return CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=1))
