"""Tests for the simulated mini-apps on tiny configurations."""

import numpy as np
import pytest

from repro.analysis import COMP, MPI_COLL_WAIT_NXN, TIME_LEAVES, analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.miniapps.base import imbalanced_weights, region_multipliers, ring_neighbors
from repro.miniapps.lulesh import Lulesh, LuleshConfig
from repro.miniapps.minife import MiniFE, MiniFEConfig
from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig
from repro.sim import CostModel, Engine


def run_tiny(app, mode="tsc", seed=1, nodes=1):
    cl = jureca_dc(nodes)
    cost = CostModel(cl, noise=NoiseModel(NoiseConfig(), seed=seed))
    m = Measurement(mode) if mode else None
    return Engine(app, cl, cost, measurement=m).run()


class TestBaseHelpers:
    def test_imbalanced_weights_50pct(self):
        w = imbalanced_weights(8, 0.5)
        assert sorted(set(np.round(w / w.min(), 6))) == [1.0, 3.0]
        assert w.mean() == pytest.approx(1.0)

    def test_imbalance_zero_uniform(self):
        assert np.allclose(imbalanced_weights(4, 0.0), 1.0)

    def test_imbalance_out_of_range(self):
        with pytest.raises(ValueError):
            imbalanced_weights(4, 1.5)

    def test_region_multipliers_deterministic(self):
        assert np.allclose(region_multipliers(8, 0.3), region_multipliers(8, 0.3))
        assert np.all(region_multipliers(8, 0.3) >= 1.0)

    def test_ring_neighbors(self):
        assert ring_neighbors(0, 4) == [3, 1]
        assert ring_neighbors(0, 2) == [1]
        assert ring_neighbors(0, 1) == []


class TestMiniFESim:
    def test_tiny_runs_and_traces(self):
        res = run_tiny(MiniFE(MiniFEConfig.tiny()))
        assert res.runtime > 0
        res.trace.validate()
        assert res.phase("init") > 0 and res.phase("solve") > 0

    def test_phases_cover_runtime(self):
        res = run_tiny(MiniFE(MiniFEConfig.tiny()))
        assert res.phase("init") + res.phase("solve") <= res.runtime * 1.01

    def test_imbalance_creates_waits(self):
        prof = analyze_trace(timestamp_trace(
            run_tiny(MiniFE(MiniFEConfig.tiny(imbalance=0.5))).trace, "tsc"))
        assert prof.percent_of_time(MPI_COLL_WAIT_NXN) > 3.0

    def test_balanced_has_fewer_waits(self):
        imb = analyze_trace(timestamp_trace(
            run_tiny(MiniFE(MiniFEConfig.tiny(imbalance=0.5))).trace, "tsc"))
        bal = analyze_trace(timestamp_trace(
            run_tiny(MiniFE(MiniFEConfig.tiny(imbalance=0.0))).trace, "tsc"))
        assert (bal.percent_of_time(MPI_COLL_WAIT_NXN)
                < imb.percent_of_time(MPI_COLL_WAIT_NXN))

    def test_expected_callpaths_present(self):
        prof = analyze_trace(timestamp_trace(run_tiny(MiniFE(MiniFEConfig.tiny())).trace, "tsc"))
        paths = {p[-1] for p in prof.metric_selection_percent(COMP)}
        for region in ("operator()", "matvec_loop" , "omp_for_matvec_loop"):
            assert any(region in p for paths_ in prof.metric_selection_percent(COMP)
                       for p in paths_), f"{region} missing"
            break  # structural smoke check only

    def test_logical_trace_deterministic(self):
        t1 = run_tiny(MiniFE(MiniFEConfig.tiny()), seed=1).trace
        t2 = run_tiny(MiniFE(MiniFEConfig.tiny()), seed=2).trace
        a = timestamp_trace(t1, "ltstmt").times
        b = timestamp_trace(t2, "ltstmt").times
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestLuleshSim:
    def test_tiny_runs(self):
        res = run_tiny(Lulesh(LuleshConfig.tiny()))
        res.trace.validate()
        assert res.runtime > 0

    def test_requires_cube_ranks(self):
        with pytest.raises(ValueError, match="cube"):
            Lulesh(LuleshConfig(n_ranks=10, threads_per_rank=1))

    def test_time_tree_partition(self):
        res = run_tiny(Lulesh(LuleshConfig.tiny()))
        prof = analyze_trace(timestamp_trace(res.trace, "tsc"))
        total = sum(prof.metric_total(m) for m in TIME_LEAVES)
        assert total == pytest.approx(prof.total_time())

    def test_material_imbalance_in_delay(self):
        res = run_tiny(Lulesh(LuleshConfig.tiny(imbalance=0.5, steps=4)))
        prof = analyze_trace(timestamp_trace(res.trace, "ltbb"))
        from repro.analysis import DELAY_N2N

        shares = prof.metric_selection_percent(DELAY_N2N)
        mat = sum(v for p, v in shares.items() if "ApplyMaterialPropertiesForElems" in p)
        assert mat > 50.0

    def test_expected_call_tree(self):
        res = run_tiny(Lulesh(LuleshConfig.tiny()))
        names = {res.trace.regions.name(e.region)
                 for evs in res.trace.events for e in evs}
        for region in ("TimeIncrement", "CalcForceForNodes", "CommSBN",
                       "ApplyMaterialPropertiesForElems", "MPI_Allreduce"):
            assert region in names


class TestTeaLeafSim:
    def test_tiny_runs(self):
        res = run_tiny(TeaLeaf(TeaLeafConfig.tiny()))
        res.trace.validate()
        assert res.phase("solve") > 0

    def test_config_selector(self):
        cfg = TeaLeafConfig.tealeaf(3)
        assert (cfg.n_ranks, cfg.threads_per_rank) == (8, 16)
        with pytest.raises(ValueError):
            TeaLeafConfig.tealeaf(9)

    def test_all_128_hardware_threads(self):
        for n in (1, 2, 3, 4):
            cfg = TeaLeafConfig.tealeaf(n)
            assert cfg.n_ranks * cfg.threads_per_rank == 128

    def test_compression_scales_omp_calls(self):
        res = run_tiny(TeaLeaf(TeaLeafConfig.tiny(iter_compression=8.0)))
        deltas = [e.delta.omp_calls for evs in res.trace.events for e in evs]
        assert max(deltas) >= 8.0

    def test_quantized_shares_visible_to_logical_clock(self):
        """Integer row distribution -> logical barrier waits (paper: the
        2.3-2.6 %T barrier waits seen by the counting modes)."""
        from repro.analysis import OMP_BARRIER_WAIT

        app = TeaLeaf(TeaLeafConfig.tiny(grid=257, n_ranks=2, threads_per_rank=2))
        prof = analyze_trace(timestamp_trace(run_tiny(app).trace, "ltbb"))
        assert prof.metric_total(OMP_BARRIER_WAIT) > 0
