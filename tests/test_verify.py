"""Tests for the verification subsystem (repro.verify).

Covers the static program linter (fixture programs with seeded bugs must
trigger exactly their expected rule ids), the happened-before trace
sanitizer (golden clean traces for every clock mode; corrupted traces
must trigger the right TRC rules), the online sanitizer hook, the
pre-flight lint in the experiment workflow, the improved engine deadlock
error and the ``repro-lint`` CLI.
"""

import pytest

from repro.clocks import timestamp_trace
from repro.measure import MODES, Measurement
from repro.measure.config import LOGICAL_MODES
from repro.sim import Engine
from repro.sim.events import COLL_END, MPI_RECV, MPI_SEND
from repro.verify import (
    FIXTURES,
    Diagnostic,
    OnlineSanitizer,
    RULES,
    Severity,
    TraceInvariantError,
    VerificationError,
    check_timestamps,
    lint_program,
    make_fixture,
    sanitize_raw,
    sanitize_trace,
    worst_severity,
)
from repro.verify.dryrun import dry_run_program


# ---------------------------------------------------------------------------
# rule registry
# ---------------------------------------------------------------------------


class TestRules:
    def test_registry_is_consistent(self):
        assert RULES, "registry must not be empty"
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)
            assert rule.summary
            assert rule.hint

    def test_families_present(self):
        families = {rid[:3] for rid in RULES}
        assert {"STR", "OMP", "MPI", "PRG", "TRC"} <= families

    def test_diagnostic_format_carries_context(self):
        d = Diagnostic("MPI002", "no matching send", rank=3,
                       call_path=("main", "exchange"))
        text = d.format()
        assert "MPI002" in text
        assert "rank 3" in text
        assert "main/exchange" in text
        assert "hint:" in text

    def test_worst_severity(self):
        assert worst_severity([]) is None
        warn = Diagnostic("STR004", "w")
        err = Diagnostic("MPI001", "e")
        assert worst_severity([warn]) == Severity.WARNING
        assert worst_severity([warn, err]) == Severity.ERROR


# ---------------------------------------------------------------------------
# static linter on the seeded-buggy fixtures
# ---------------------------------------------------------------------------


class TestLinterFixtures:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_fixture_triggers_exactly_expected_rules(self, name):
        fx = FIXTURES[name]
        report = lint_program(fx.make())
        assert report.rule_ids() == set(fx.expected_rules), report.format()

    def test_clean_fixture_report_is_ok(self):
        report = lint_program(make_fixture("clean"))
        assert report.ok
        assert not report.diagnostics
        assert "clean" in report.format()

    def test_unmatched_recv_diagnostic_context(self):
        report = lint_program(make_fixture("unmatched-recv"))
        d = next(d for d in report.diagnostics if d.rule_id == "MPI002")
        assert d.rank == 1
        assert d.call_path == ("main", "lonely_recv")

    def test_unknown_fixture_raises(self):
        with pytest.raises(KeyError, match="unknown fixture"):
            make_fixture("nope")

    def test_crashing_program_reports_prg001(self):
        fx = FIXTURES["clean"]

        def crash(ctx):
            yield from fx.make().make_rank(ctx)
            raise ValueError("boom")

        from repro.verify.fixtures import _TwoRankProgram

        report = lint_program(_TwoRankProgram("crash", crash))
        assert "PRG001" in report.rule_ids()

    def test_runaway_program_reports_prg002(self):
        from repro.sim.actions import Barrier
        from repro.verify.fixtures import _TwoRankProgram

        def runaway(ctx):
            while True:
                yield Barrier()

        report = lint_program(_TwoRankProgram("runaway", runaway),
                              max_actions=50)
        assert "PRG002" in report.rule_ids()

    def test_experiment_programs_lint_clean(self):
        from repro.experiments.configs import make_app

        for name in ("MiniFE-1", "TeaLeaf-1"):
            report = lint_program(make_app(name))
            assert report.ok, report.format()
            assert not report.diagnostics

    def test_dry_run_returns_per_rank_records(self):
        runs = dry_run_program(make_fixture("clean"))
        assert sorted(runs) == [0, 1]
        for run in runs.values():
            assert run.completed
            assert run.records
            # every record carries its call-path context
            assert all(isinstance(r.call_path, tuple) for r in run.records)


# ---------------------------------------------------------------------------
# trace sanitizer: golden clean traces
# ---------------------------------------------------------------------------


def _run_traced(quiet_cost, mode="tsc", fixture="clean", sanitize=False):
    prog = make_fixture(fixture)
    engine = Engine(prog, quiet_cost.cluster, quiet_cost,
                    measurement=Measurement(mode), sanitize=sanitize)
    return engine.run().trace


class TestSanitizerClean:
    @pytest.mark.parametrize("mode", MODES)
    def test_clean_trace_sanitizes_for_every_recording_mode(self, quiet_cost, mode):
        trace = _run_traced(quiet_cost, mode=mode)
        report = sanitize_trace(trace)
        assert report.ok, report.format()
        assert not report.diagnostics
        assert report.modes == MODES

    def test_mode_subset(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        report = sanitize_trace(trace, modes=("tsc", "lt1"))
        assert report.ok
        assert report.modes == ("tsc", "lt1")

    def test_validate_passes_on_clean_trace(self, quiet_cost):
        _run_traced(quiet_cost).validate()


# ---------------------------------------------------------------------------
# trace sanitizer: corrupted traces
# ---------------------------------------------------------------------------


class TestSanitizerCorruption:
    def test_swapped_events_trigger_trc001(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        evs = trace.events[0]
        evs[2], evs[5] = evs[5], evs[2]
        ids = sanitize_trace(trace).rule_ids()
        assert "TRC001" in ids
        with pytest.raises(AssertionError, match="TRC"):
            trace.validate()

    def test_dropped_recv_triggers_trc002(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        for evs in trace.events:
            idx = next((i for i, e in enumerate(evs) if e.etype == MPI_RECV), None)
            if idx is not None:
                del evs[idx]
                break
        else:
            pytest.fail("no receive record found")
        report = sanitize_trace(trace)
        assert report.rule_ids() == {"TRC002"}
        with pytest.raises(AssertionError, match="TRC002"):
            trace.validate()

    def test_duplicated_recv_triggers_trc002(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        for evs in trace.events:
            idx = next((i for i, e in enumerate(evs) if e.etype == MPI_RECV), None)
            if idx is not None:
                evs.insert(idx, evs[idx])
                break
        assert "TRC002" in sanitize_trace(trace).rule_ids()

    def test_tampered_collective_time_triggers_trc004(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        for evs in trace.events:
            for i in range(len(evs) - 1, -1, -1):
                if evs[i].etype == COLL_END:
                    evs[i].t += 1.0
                    break
            else:
                continue
            break
        assert "TRC004" in sanitize_trace(trace).rule_ids()

    @pytest.mark.parametrize("mode", ["lt1", "ltbb"])
    def test_forged_logical_timestamp_triggers_trc003(self, quiet_cost, mode):
        trace = _run_traced(quiet_cost)
        tt = timestamp_trace(trace, mode)
        for loc, evs in enumerate(trace.events):
            idx = next((i for i, e in enumerate(evs) if e.etype == MPI_RECV), None)
            if idx is not None:
                # forge: a recv timestamped before its matching send
                tt.times[loc] = tt.times[loc].astype(float).copy()
                tt.times[loc][idx] = 0.0
                break
        else:
            pytest.fail("no receive record found")
        ids = {d.rule_id for d in check_timestamps(tt)}
        assert "TRC003" in ids
        assert "TRC005" in ids  # forged value also breaks monotonicity

    def test_lamport_condition_holds_on_clean_traces(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        send_ts = {}
        for mode in LOGICAL_MODES:
            tt = timestamp_trace(trace, mode)
            send_ts.clear()
            for loc, evs in enumerate(trace.events):
                for i, ev in enumerate(evs):
                    if ev.etype == MPI_SEND:
                        send_ts[ev.aux[0]] = float(tt.times[loc][i])
            checked = 0
            for loc, evs in enumerate(trace.events):
                for i, ev in enumerate(evs):
                    if ev.etype == MPI_RECV:
                        assert tt.times[loc][i] >= send_ts[ev.aux] + 1.0
                        checked += 1
            assert checked > 0

    def test_structural_errors_suppress_timestamp_pass(self, quiet_cost):
        trace = _run_traced(quiet_cost)
        for evs in trace.events:
            idx = next((i for i, e in enumerate(evs) if e.etype == MPI_RECV), None)
            if idx is not None:
                del evs[idx]
                break
        report = sanitize_trace(trace)
        assert all(d.mode is None for d in report.diagnostics)


# ---------------------------------------------------------------------------
# online sanitizer + engine hook
# ---------------------------------------------------------------------------


class TestOnlineSanitizer:
    def test_engine_runs_clean_with_sanitize(self, quiet_cost):
        trace = _run_traced(quiet_cost, mode="lt1", sanitize=True)
        assert trace.n_events > 0

    def test_sanitize_without_measurement_rejected(self, quiet_cost):
        with pytest.raises(ValueError, match="sanitize"):
            Engine(make_fixture("clean"), quiet_cost.cluster, quiet_cost,
                   sanitize=True)

    def test_observe_rejects_time_reversal(self):
        from repro.sim.events import ENTER, Ev
        from repro.sim.kernels import EMPTY_DELTA

        s = OnlineSanitizer()
        s.observe(0, Ev(ENTER, 0, 1.0, EMPTY_DELTA))
        with pytest.raises(TraceInvariantError, match="TRC001"):
            s.observe(0, Ev(ENTER, 1, 0.5, EMPTY_DELTA))

    def test_observe_rejects_recv_before_send(self):
        from repro.sim.events import Ev
        from repro.sim.kernels import EMPTY_DELTA

        s = OnlineSanitizer()
        with pytest.raises(TraceInvariantError, match="TRC002"):
            s.observe(0, Ev(MPI_RECV, 0, 1.0, EMPTY_DELTA, aux=7))

    def test_final_check_rejects_unclosed_region(self):
        from repro.sim.events import ENTER, Ev
        from repro.sim.kernels import EMPTY_DELTA

        s = OnlineSanitizer()
        s.observe(0, Ev(ENTER, 0, 1.0, EMPTY_DELTA))
        with pytest.raises(TraceInvariantError, match="TRC006"):
            s.final_check()


# ---------------------------------------------------------------------------
# engine deadlock error
# ---------------------------------------------------------------------------


class TestDeadlockError:
    def test_reports_blocked_action_and_call_path_per_rank(self, quiet_cost):
        prog = make_fixture("deadlock-cycle")
        with pytest.raises(RuntimeError) as exc:
            Engine(prog, quiet_cost.cluster, quiet_cost).run()
        msg = str(exc.value)
        assert "deadlock" in msg
        assert "MPI008" in msg
        assert "rank 0" in msg and "rank 1" in msg
        assert "Recv(source=1, tag=1)" in msg
        assert "at main" in msg

    def test_reports_stuck_collective(self, quiet_cost):
        prog = make_fixture("collective-count-mismatch")
        with pytest.raises(RuntimeError) as exc:
            Engine(prog, quiet_cost.cluster, quiet_cost).run()
        msg = str(exc.value)
        assert "MPI008" in msg
        assert "MPI_Barrier" in msg


# ---------------------------------------------------------------------------
# workflow pre-flight
# ---------------------------------------------------------------------------


class TestPreflight:
    def test_preflight_passes_for_real_experiment(self):
        from repro.experiments.workflow import preflight_lint

        preflight_lint("MiniFE-1")

    def test_preflight_rejects_buggy_app(self, monkeypatch):
        from repro.experiments import workflow

        monkeypatch.setattr(
            workflow, "make_app", lambda name: make_fixture("unmatched-recv")
        )
        with pytest.raises(VerificationError, match="pre-flight"):
            workflow.preflight_lint("MiniFE-1")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_selftest_passes(self, capsys):
        from repro.cli import main_lint

        assert main_lint(["--selftest"]) == 0
        assert "15 fixtures ok" in capsys.readouterr().out

    def test_buggy_fixture_fails(self, capsys):
        from repro.cli import main_lint

        assert main_lint(["--fixture", "leaked-request"]) == 1
        assert "MPI003" in capsys.readouterr().out

    def test_warning_only_needs_strict(self, capsys):
        from repro.cli import main_lint

        assert main_lint(["--fixture", "bare-leave"]) == 0
        assert main_lint(["--fixture", "bare-leave", "--strict"]) == 1

    def test_json_output(self, capsys):
        import json

        from repro.cli import main_lint

        main_lint(["--fixture", "unmatched-recv", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        assert {d["rule"] for d in doc["diagnostics"]} == {"MPI002", "MPI008"}

    def test_trace_roundtrip(self, tmp_path, quiet_cost, capsys):
        from repro.cli import main_lint
        from repro.measure import write_trace

        trace = _run_traced(quiet_cost, mode="lt1")
        clean = tmp_path / "clean.trace.json.gz"
        write_trace(trace, clean)
        assert main_lint(["--trace", str(clean), "--mode", "tsc",
                          "--mode", "lt1"]) == 0

        for evs in trace.events:
            idx = next((i for i, e in enumerate(evs) if e.etype == MPI_RECV), None)
            if idx is not None:
                del evs[idx]
                break
        bad = tmp_path / "bad.trace.json.gz"
        write_trace(trace, bad)
        assert main_lint(["--trace", str(bad)]) == 1
        assert "TRC002" in capsys.readouterr().out

    def test_nothing_to_lint_is_usage_error(self):
        from repro.cli import main_lint

        with pytest.raises(SystemExit) as exc:
            main_lint([])
        assert exc.value.code == 2
