"""Tests for the real NumPy numerics of the three mini-apps."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.miniapps.lulesh.numeric import hydro_step, sedov_init, total_energy
from repro.miniapps.lulesh.numeric import stable_timestep
from repro.miniapps.minife.numeric import assemble_poisson_3d, cg_solve, generate_matrix_structure
from repro.miniapps.tealeaf.numeric import HeatProblem, apply_operator, cg_5point, solve_step


class TestMiniFENumeric:
    def test_structure_row_counts(self):
        indptr, indices = generate_matrix_structure(3)
        counts = np.diff(indptr)
        # corner nodes have 3 neighbours + diagonal = 4 entries
        assert counts[0] == 4
        # the centre node of a 3^3 grid has all 6 neighbours
        assert counts[13] == 7

    def test_structure_is_symmetric_pattern(self):
        indptr, indices = generate_matrix_structure(4)
        n = 4**3
        a = sp.csr_matrix((np.ones_like(indices, dtype=float), indices, indptr), shape=(n, n))
        assert (a != a.T).nnz == 0

    def test_assemble_spd(self):
        a, b = assemble_poisson_3d(4)
        x = np.random.default_rng(0).random(a.shape[0])
        assert x @ (a @ x) > 0  # positive definite direction

    def test_cg_matches_scipy(self):
        a, b = assemble_poisson_3d(5)
        x, iters, res = cg_solve(a, b, tol=1e-10, max_iters=500)
        x_ref = spla.spsolve(a.tocsc(), b)
        assert np.allclose(x, x_ref, atol=1e-6)
        assert res < 1e-8 * np.linalg.norm(b) * 10

    def test_cg_iteration_count_reasonable(self):
        a, b = assemble_poisson_3d(6)
        _x, iters, _res = cg_solve(a, b, tol=1e-8)
        assert 5 < iters < 200

    def test_cg_honours_max_iters(self):
        a, b = assemble_poisson_3d(5)
        _x, iters, _res = cg_solve(a, b, tol=1e-30, max_iters=3)
        assert iters == 3


class TestLuleshNumeric:
    def test_sedov_deposits_energy(self):
        s = sedov_init(8)
        assert s.e[0] > s.e[-1] * 1e3

    def test_step_advances_time(self):
        s = sedov_init(8)
        dt = hydro_step(s)
        assert dt > 0 and s.t == dt and s.step == 1

    def test_density_positive(self):
        s = sedov_init(8)
        for _ in range(20):
            hydro_step(s)
        assert np.all(s.rho > 0)
        assert np.all(s.e > 0)

    def test_shock_expands(self):
        s = sedov_init(10)
        hot_cells0 = int((s.e > 1e-4).sum())
        for _ in range(30):
            hydro_step(s)
        assert int((s.e > 1e-4).sum()) > hot_cells0

    def test_energy_bounded(self):
        """The explicit scheme is dissipative but must stay stable (no
        blow-up) over a short run."""
        s = sedov_init(8)
        e0 = total_energy(s)
        for _ in range(12):
            hydro_step(s)
        e1 = total_energy(s)
        assert np.isfinite(e1) and 0.02 * e0 < e1 < e0 * 2.0

    def test_timestep_respects_cfl(self):
        s = sedov_init(8)
        dt = stable_timestep(s, cfl=0.3)
        cs_max = np.sqrt(5.0 / 3.0 * (2.0 / 3.0) * s.e.max())
        assert dt <= 0.3 * s.dx / cs_max * 1.001


class TestTeaLeafNumeric:
    def test_operator_identity_at_zero_coeff(self):
        v = np.random.default_rng(1).random((8, 8))
        assert np.allclose(apply_operator(v, 0.0), v)

    def test_operator_matches_dense(self):
        n = 6
        rng = np.random.default_rng(2)
        v = rng.random((n, n))
        coeff = 0.1
        # build the dense operator by applying to unit vectors
        cols = []
        for j in range(n * n):
            e = np.zeros(n * n)
            e[j] = 1.0
            cols.append(apply_operator(e.reshape(n, n), coeff).ravel())
        dense = np.column_stack(cols)
        assert np.allclose(dense @ v.ravel(), apply_operator(v, coeff).ravel())
        # symmetric operator (needed for CG)
        assert np.allclose(dense, dense.T)

    def test_cg_solves_system(self):
        rng = np.random.default_rng(3)
        rhs = rng.random((10, 10))
        x, iters, res = cg_5point(rhs, coeff=0.2, tol=1e-12)
        assert np.allclose(apply_operator(x, 0.2), rhs, atol=1e-8)

    def test_solve_step_conserves_heat(self):
        """Neumann boundaries: total heat is conserved by diffusion."""
        p = HeatProblem.benchmark(16)
        before = p.u.sum()
        solve_step(p, tol=1e-12)
        assert p.u.sum() == pytest.approx(before, rel=1e-8)

    def test_solve_step_smoothes(self):
        p = HeatProblem.benchmark(16)
        var_before = p.u.var()
        for _ in range(5):
            solve_step(p)
        assert p.u.var() < var_before

    def test_iterations_shrink_over_time(self):
        p = HeatProblem.benchmark(16)
        first = solve_step(p)
        later = solve_step(p)
        assert later <= first
