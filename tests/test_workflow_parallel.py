"""Parallel measurement campaigns: determinism, resume, cache safety.

The workflow's contract is that ``workers=N`` is *bit-identical* to the
serial campaign -- every run is independently seeded and the parent
reassembles results in canonical order -- and that per-run checkpoints
let an interrupted campaign resume without recomputation.
"""

import json

import pytest

from repro.experiments import configs as C
from repro.experiments import workflow as W
from repro.experiments.configs import ExperimentSpec
from repro.experiments.workflow import resolve_workers, run_experiment
from repro.measure import MODES


@pytest.fixture
def tiny_experiment(monkeypatch, tmp_path):
    """Register a fast throwaway experiment and isolate the cache dir."""

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(nx=64, n_ranks=4, cg_iters=3, init_segments=2))

    spec = ExperimentSpec("Tiny-P", make, nodes=1, reps_ref=2, reps_noisy=2,
                          phases=("init", "solve"))
    monkeypatch.setitem(C.EXPERIMENTS, "Tiny-P", spec)
    monkeypatch.setattr(W, "_CACHE_DIR", tmp_path / "cache")
    return "Tiny-P"


def _profile_cells(result):
    """Exact per-location severity cells of every repetition profile."""
    return {
        mode: [p.as_mapping(per_location=True) for p in profs]
        for mode, profs in result.profiles.items()
    }


class TestParallelDeterminism:
    def test_workers4_bit_identical_to_serial(self, tiny_experiment):
        serial = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                workers=1)
        parallel = run_experiment(tiny_experiment, seed=0, use_cache=False,
                                  workers=4)
        # Float-exact equality throughout, not approx: the parallel
        # campaign must reproduce the serial one bit for bit.
        assert parallel.ref_runtimes == serial.ref_runtimes
        assert parallel.ref_phases == serial.ref_phases
        assert parallel.runtimes == serial.runtimes
        assert parallel.phases == serial.phases
        assert _profile_cells(parallel) == _profile_cells(serial)
        for mode in MODES:
            assert parallel.mean_profiles[mode].as_mapping(per_location=True) \
                == serial.mean_profiles[mode].as_mapping(per_location=True)

    def test_env_var_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2  # explicit argument wins

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestCampaignResume:
    def test_per_run_checkpoints_are_reused(self, tiny_experiment):
        # Checkpoint the full campaign, then delete the aggregate result
        # but keep the per-run checkpoints: the rerun must load every run
        # from disk and reproduce the same summary.
        first = run_experiment(tiny_experiment, seed=0, use_cache=True)
        cache = W._cache_path(tiny_experiment, 0)
        runs_dir = W._runs_dir(tiny_experiment, 0)
        assert cache.exists()
        assert not runs_dir.exists()  # dropped once the aggregate landed

        # Simulate an interrupted campaign: per-run checkpoints present,
        # aggregate absent, with one run's timing forged so we can prove
        # the checkpoint (not a recomputation) is what gets used.
        for task in [("ref", 0), ("ref", 1)] + \
                [(m, r) for m in MODES for r in range(len(first.runtimes[m]))]:
            payload = W._run_task(tiny_experiment, task[0], 0, task[1])
            W._store_run(runs_dir, task, payload)
        marker = runs_dir / "ref-r0.json"
        wrapper = json.loads(marker.read_text())
        wrapper["doc"]["runtime"] = 123.456
        # Keep the checkpoint valid under the new payload: re-sign it.
        import zlib

        body = json.dumps(wrapper["doc"], sort_keys=True)
        wrapper["crc32"] = zlib.crc32(body.encode("utf-8"))
        marker.write_text(json.dumps(wrapper))
        import shutil

        shutil.rmtree(cache)

        resumed = run_experiment(tiny_experiment, seed=0, use_cache=True)
        assert resumed.ref_runtimes[0] == 123.456
        assert resumed.ref_runtimes[1] == first.ref_runtimes[1]
        assert resumed.runtimes == first.runtimes
        assert not runs_dir.exists()

    def test_corrupt_checkpoint_recomputed(self, tiny_experiment):
        runs_dir = W._runs_dir(tiny_experiment, 0)
        runs_dir.mkdir(parents=True)
        (runs_dir / "ref-r0.json").write_text("{not json")
        res = run_experiment(tiny_experiment, seed=0, use_cache=True)
        assert len(res.ref_runtimes) == 2  # fell back to recomputing

    def test_checkpoint_round_trip_is_exact(self, tiny_experiment, tmp_path):
        payload = W._run_task(tiny_experiment, "ltbb", 0, 0)
        runs_dir = tmp_path / "runs"
        W._store_run(runs_dir, ("ltbb", 0), payload)
        loaded = W._load_run(runs_dir, ("ltbb", 0))
        assert loaded[0] == payload[0]
        assert loaded[1] == payload[1]
        assert loaded[2].as_mapping(per_location=True) == \
            payload[2].as_mapping(per_location=True)

    def test_load_run_missing_returns_none(self, tmp_path):
        assert W._load_run(tmp_path / "nowhere", ("ref", 0)) is None


class TestStoreCollisionSafety:
    def test_concurrent_stores_leave_valid_cache(self, tiny_experiment):
        # Two campaigns of the same experiment racing to publish must not
        # corrupt each other: whichever rename lands last wins, and the
        # published directory is always complete.
        result = run_experiment(tiny_experiment, seed=0, use_cache=False)
        cache = W._cache_path(tiny_experiment, 0)
        W._store(result, cache)
        W._store(result, cache)  # second publish over an existing dir
        loaded = W._load(cache, tiny_experiment, 0)
        assert loaded.ref_runtimes == result.ref_runtimes
        assert loaded.runtimes == result.runtimes
        leftovers = [p for p in cache.parent.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_failed_store_cleans_up_temp_dir(self, tiny_experiment, monkeypatch):
        result = run_experiment(tiny_experiment, seed=0, use_cache=False)
        cache = W._cache_path(tiny_experiment, 0)

        def boom(*_a, **_k):
            raise OSError("disk full")

        monkeypatch.setattr(W, "write_profile", boom)
        with pytest.raises(OSError):
            W._store(result, cache)
        assert not cache.exists()
        leftovers = [p for p in cache.parent.iterdir() if ".tmp-" in p.name]
        assert leftovers == []
