"""Tests for the clocks: Lamport algorithm, increment models, extensions."""

import numpy as np
import pytest

from repro.clocks import (
    LamportClock,
    LazyLamportClock,
    SyncMechanism,
    VectorClock,
    increment_lt1,
    increment_ltbb,
    increment_ltloop,
    increment_ltstmt,
    make_increment,
    overhead_for_mechanism,
    timestamp_trace,
)
from repro.machine.noise import NoiseConfig, NoiseModel, ZeroNoise
from repro.measure import Measurement
from repro.sim import (
    Allreduce,
    Compute,
    CostModel,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    ParallelFor,
    Program,
    Recv,
    Send,
)
from repro.sim.events import Ev, ENTER
from repro.sim.kernels import WorkDelta

K = KernelSpec("k", flops_per_unit=1e5, omp_iters_per_unit=1.0, bb_per_unit=5,
               stmt_per_unit=15, instr_per_unit=40, memory_scope="none")


class _Comm(Program):
    name = "comm"
    n_ranks = 2
    threads_per_rank = 2

    def make_rank(self, ctx):
        yield Enter("main")
        yield Compute(K, 100 * (1 + ctx.rank))
        if ctx.rank == 0:
            yield Send(dest=1, tag=1, nbytes=64)
        else:
            yield Recv(source=0, tag=1)
        yield ParallelFor("loop", K, total_units=200)
        yield Allreduce()
        yield Leave("main")


@pytest.fixture
def comm_trace(cluster):
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=1))
    res = Engine(_Comm(), cluster, cost, measurement=Measurement("tsc")).run()
    return res.trace


class TestIncrementModels:
    def _ev(self, **delta):
        return Ev(ENTER, 0, 0.0, WorkDelta(**delta))

    def test_lt1_is_one_per_event(self):
        assert increment_lt1(self._ev()) == 1.0
        assert increment_lt1(self._ev(omp_iters=100, bb=50)) == 1.0

    def test_lt1_counts_burst_calls(self):
        assert increment_lt1(self._ev(burst_calls=10)) == 21.0

    def test_ltloop_counts_iterations(self):
        assert increment_ltloop(self._ev(omp_iters=7)) == 8.0

    def test_ltbb_counts_blocks_and_omp_calls(self):
        # X = 100 basic blocks per OpenMP runtime call (paper Sec. II-A)
        assert increment_ltbb(self._ev(bb=50, omp_calls=2)) == 1.0 + 50 + 200

    def test_ltstmt_counts_statements(self):
        # Y = 4300 statements per OpenMP runtime call
        assert increment_ltstmt(self._ev(stmt=10, omp_calls=1)) == 1.0 + 10 + 4300

    def test_make_increment_with_custom_constants(self):
        inc = make_increment("ltbb", x_bb=7.0)
        assert inc(self._ev(omp_calls=1)) == 8.0

    def test_make_increment_rejects_hwctr(self):
        with pytest.raises(ValueError):
            make_increment("lthwctr")


class TestClockCondition:
    def test_strictly_increasing_per_location(self, comm_trace):
        for mode in ("lt1", "ltloop", "ltbb", "ltstmt", "lthwctr"):
            tt = timestamp_trace(comm_trace, mode)
            for arr in tt.times:
                if len(arr) > 1:
                    assert np.all(np.diff(arr) > 0), mode

    def test_send_before_receive(self, comm_trace):
        tt = timestamp_trace(comm_trace, "lt1")
        sends = {}
        recvs = {}
        for loc, evs in enumerate(comm_trace.events):
            for i, ev in enumerate(evs):
                if ev.etype == 3:  # MPI_SEND
                    sends[ev.aux[0]] = tt.times[loc][i]
                elif ev.etype == 4:  # MPI_RECV
                    recvs[ev.aux] = tt.times[loc][i]
        for match, ts in sends.items():
            assert recvs[match] > ts

    def test_collective_ends_equal(self, comm_trace):
        tt = timestamp_trace(comm_trace, "ltbb")
        ends = []
        for loc, evs in enumerate(comm_trace.events):
            for i, ev in enumerate(evs):
                if ev.etype == 5:  # COLL_END
                    ends.append(tt.times[loc][i])
        assert len(ends) == 2
        assert ends[0] == ends[1]


class TestNoiseResilience:
    """The paper's central property: logical traces are noise-invariant."""

    def _trace(self, cluster, seed):
        cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
        return Engine(_Comm(), cluster, cost, measurement=Measurement("tsc")).run().trace

    @pytest.mark.parametrize("mode", ["lt1", "ltloop", "ltbb", "ltstmt"])
    def test_logical_timestamps_identical_across_noise(self, cluster, mode):
        t1 = timestamp_trace(self._trace(cluster, 1), mode).times
        t2 = timestamp_trace(self._trace(cluster, 2), mode).times
        for a, b in zip(t1, t2):
            assert np.array_equal(a, b)

    def test_tsc_differs_across_noise(self, cluster):
        t1 = timestamp_trace(self._trace(cluster, 1), "tsc").times
        t2 = timestamp_trace(self._trace(cluster, 2), "tsc").times
        assert any(not np.array_equal(a, b) for a, b in zip(t1, t2))

    def test_hwctr_differs_across_counter_seeds(self, cluster):
        tr = self._trace(cluster, 1)
        t1 = timestamp_trace(tr, "lthwctr", counter_seed=1).times
        t2 = timestamp_trace(tr, "lthwctr", counter_seed=2).times
        assert any(not np.array_equal(a, b) for a, b in zip(t1, t2))

    def test_hwctr_deterministic_for_fixed_seed(self, cluster):
        tr = self._trace(cluster, 1)
        t1 = timestamp_trace(tr, "lthwctr", counter_seed=7).times
        t2 = timestamp_trace(tr, "lthwctr", counter_seed=7).times
        for a, b in zip(t1, t2):
            assert np.array_equal(a, b)


class TestVectorClock:
    def test_happens_before_message(self, comm_trace):
        vc = VectorClock(comm_trace)
        # find send/recv event indexes
        send = recv = None
        for loc, evs in enumerate(comm_trace.events):
            for i, ev in enumerate(evs):
                if ev.etype == 3:
                    send = (loc, i)
                elif ev.etype == 4:
                    recv = (loc, i)
        assert vc.happens_before(send, recv)
        assert not vc.happens_before(recv, send)

    def test_local_order(self, comm_trace):
        vc = VectorClock(comm_trace)
        assert vc.happens_before((0, 0), (0, 1))

    def test_concurrent_early_events(self, comm_trace):
        # the first events of the two masters are causally unrelated
        loc0 = comm_trace.loc_id(0, 0)
        loc1 = comm_trace.loc_id(1, 0)
        vc = VectorClock(comm_trace)
        assert vc.concurrent((loc0, 0), (loc1, 0))

    def test_vector_consistent_with_lamport(self, comm_trace):
        """a -> b (vector) implies C(a) < C(b) (Lamport clock condition)."""
        vc = VectorClock(comm_trace)
        lt = timestamp_trace(comm_trace, "lt1").times
        import itertools
        locs = range(min(2, comm_trace.n_locations))
        for la, lb in itertools.product(locs, locs):
            for ia in range(0, len(comm_trace.events[la]), 3):
                for ib in range(0, len(comm_trace.events[lb]), 3):
                    if vc.happens_before((la, ia), (lb, ib)):
                        assert lt[la][ia] < lt[lb][ib]


class TestLazyLamport:
    def test_members_agree_at_collectives(self, comm_trace):
        """At a strong sync all members share one reconciled value."""
        lazy = LazyLamportClock(increment_lt1).assign(comm_trace)
        values = []
        for loc, evs in enumerate(comm_trace.events):
            for i, ev in enumerate(evs):
                if ev.etype == 5:  # COLL_END
                    values.append(lazy[loc][i])
        assert len(set(values)) == 1

    def test_never_exceeds_eager(self, comm_trace):
        eager = LamportClock(increment_lt1).assign(comm_trace)
        lazy = LazyLamportClock(increment_lt1).assign(comm_trace)
        for a, b in zip(lazy, eager):
            assert np.all(a <= b + 1e-9)


class TestSyncMechanisms:
    def test_extra_message_most_expensive(self):
        costs = {m: overhead_for_mechanism(m).mpi_sync_cost for m in SyncMechanism}
        assert costs[SyncMechanism.EXTRA_MESSAGE] > costs[SyncMechanism.PIGGYBACK_DATATYPE]
        assert costs[SyncMechanism.PIGGYBACK_DATATYPE] > costs[SyncMechanism.PIGGYBACK_PREPOSTED]

    def test_mechanism_does_not_change_timestamps(self, cluster):
        """Piggyback vs extra message changes cost, never the clock values."""
        results = []
        for mech in (SyncMechanism.EXTRA_MESSAGE, SyncMechanism.PIGGYBACK_PREPOSTED):
            cost = CostModel(cluster, noise=NoiseModel(ZeroNoise(), seed=1))
            m = Measurement("ltbb", overhead=overhead_for_mechanism(mech))
            res = Engine(_Comm(), cluster, cost, measurement=m).run()
            results.append((res.runtime, timestamp_trace(res.trace, "ltbb").times))
        (rt_a, ts_a), (rt_b, ts_b) = results
        assert rt_a > rt_b  # extra message costs more wall time
        for a, b in zip(ts_a, ts_b):
            assert np.array_equal(a, b)  # logical result identical
