"""Bit-identity of the vectorized engine hot path against the legacy walk.

The vectorized drain (:class:`repro.sim.engine.EngineConfig`
``vectorized=True``, the default) must be indistinguishable from the
legacy heapq walk at every observable layer: the raw event stream
(timestamps bit-for-bit, deltas, aux payloads), the sanitizer report,
the logical-clock replays of all six modes, and the wait-state analysis
profile ("score") cells.  The grid below covers the three mini-apps,
multiple noise seeds, wildcard receives (timing-dependent matching) and
checkpoint/restart recovery under injected faults.
"""

import pytest

from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.experiments.faultsweep import (
    CheckpointedRing,
    default_fault_config,
    trace_fingerprint,
)
from repro.machine import small_test_cluster
from repro.machine.faults import FaultModel
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.measure.config import MODES
from repro.miniapps import MiniFE, MiniFEConfig
from repro.miniapps.lulesh import Lulesh, LuleshConfig
from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig
from repro.sim import (
    ANY_SOURCE,
    Compute,
    CostModel,
    Engine,
    Enter,
    Irecv,
    KernelSpec,
    Leave,
    Program,
    Recv,
    Send,
    Wait,
    run_with_recovery,
)
from repro.sim.engine import EngineConfig
from repro.verify import sanitize_raw

K = KernelSpec.balanced("k", flops_per_unit=1e5, bytes_per_unit=0.0,
                        memory_scope="none")

_APPS = {
    "minife": lambda: MiniFE(MiniFEConfig.tiny(nx=48, cg_iters=3)),
    "lulesh": lambda: Lulesh(LuleshConfig.tiny(steps=2)),
    "tealeaf": lambda: TeaLeaf(TeaLeafConfig.tiny()),
}


def _run(make_program, seed, vectorized, mode="tsc"):
    cluster = small_test_cluster(cores_per_numa=8, numa_per_socket=2)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    return Engine(make_program(), cluster, cost,
                  measurement=Measurement(mode),
                  config=EngineConfig(vectorized=vectorized)).run().trace


def _sig(trace):
    """Full byte-level signature of the raw event stream."""
    out = []
    for evs in trace.events:
        for ev in evs:
            d = ev.delta
            out.append((ev.etype, ev.region, ev.t.hex(), ev.aux,
                        ev.t_enter.hex(), d.omp_iters, d.bb, d.stmt,
                        d.instr, d.burst_calls, d.omp_calls))
    return out


def _sanitize_fp(trace):
    return sorted((d.rule_id, d.severity, d.message, d.location)
                  for d in sanitize_raw(trace))


def _score_fp(trace, mode):
    """All wait-state analysis cells: (metric, callpath id, loc) -> bits."""
    prof = analyze_trace(timestamp_trace(trace, mode))
    return sorted(
        (metric, cpid, loc, value.hex())
        for metric in prof.metrics
        for (cpid, loc), value in prof.cells(metric).items()
    )


def _assert_equivalent(make_program, seed, modes=MODES):
    legacy = _run(make_program, seed, vectorized=False)
    vector = _run(make_program, seed, vectorized=True)
    assert _sig(legacy) == _sig(vector)
    assert _sanitize_fp(legacy) == _sanitize_fp(vector)
    for mode in modes:
        fp_l = trace_fingerprint(timestamp_trace(legacy, mode))
        fp_v = trace_fingerprint(timestamp_trace(vector, mode))
        assert fp_l == fp_v, mode
        assert _score_fp(legacy, mode) == _score_fp(vector, mode), mode


class TestMiniappGrid:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("app", sorted(_APPS))
    def test_trace_sanitize_scores_identical(self, app, seed):
        _assert_equivalent(_APPS[app], seed)


class _WildcardGather(Program):
    """Rank 0 drains wildcard receives whose match order is timing-driven."""

    name = "wildcard-gather"
    n_ranks = 4
    threads_per_rank = 1
    phases = ("main",)

    def make_rank(self, ctx):
        yield Enter("main")
        if ctx.rank == 0:
            req = yield Irecv(source=ANY_SOURCE, tag=5)
            for _ in range(self.n_ranks - 1):
                src = yield Recv(source=ANY_SOURCE, tag=3)
                yield Compute(K, 2.0 + src)
            yield Wait(req)
        else:
            # Stagger the sends so noise decides the arrival order.
            yield Compute(K, 3.0 * ctx.rank)
            yield Send(dest=0, tag=3, nbytes=1024.0)
            if ctx.rank == 1:
                yield Send(dest=0, tag=5, nbytes=64.0)
        yield Leave("main")


class TestWildcardReceive:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wildcard_matching_identical(self, seed):
        _assert_equivalent(_WildcardGather, seed, modes=("tsc", "lt1"))


class TestRestartRecovery:
    @pytest.mark.parametrize("fault_seed", [99, 7])
    def test_recovered_traces_identical(self, fault_seed):
        def recovered(vectorized):
            cluster = small_test_cluster()
            faults = FaultModel(default_fault_config(), seed=fault_seed)
            cost = lambda: CostModel(cluster,
                                     noise=NoiseModel(NoiseConfig(), seed=3))
            outcome = run_with_recovery(
                CheckpointedRing(), cluster, cost, faults,
                measurement=Measurement("tsc"),
                config=EngineConfig(vectorized=vectorized))
            return outcome

        legacy = recovered(False)
        vector = recovered(True)
        assert legacy.n_restarts == vector.n_restarts
        tl, tv = legacy.result.trace, vector.result.trace
        assert _sig(tl) == _sig(tv)
        assert _sanitize_fp(tl) == _sanitize_fp(tv)
        for mode in MODES:
            assert (trace_fingerprint(timestamp_trace(tl, mode))
                    == trace_fingerprint(timestamp_trace(tv, mode))), mode
