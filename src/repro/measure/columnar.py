"""Structure-of-arrays (columnar) trace representation.

A :class:`TraceColumns` holds the same information as the event lists of a
:class:`~repro.measure.trace.RawTrace`, but as per-location NumPy arrays:
one array per field (event kind, region, timestamp, work-delta components,
auxiliary payload) instead of one Python object per event.  This is the
layout the vectorized clock replay (:mod:`repro.clocks.columnar`) and the
bulk archive I/O (:mod:`repro.measure.io`) operate on.

The ``aux`` payload of :class:`~repro.sim.events.Ev` is kind-specific --
a ``(match_id, rendezvous)`` pair for sends, a match id for receives, a
``(group_id, size)`` pair for collective and barrier completions, an OpenMP
construct id for fork/join/team events, and absent otherwise.  Columnar
storage decomposes it into two integer columns ``aux_a``/``aux_b`` with
``-1`` marking "no payload"; :meth:`TraceColumns.to_raw` reconstructs the
exact original Python values from the kind table below.

=============  =========  =========
event kind     aux_a      aux_b
=============  =========  =========
MPI_SEND       match id   rendezvous (0/1)
MPI_RECV       match id   --
COLL_END       coll id    group size
FORK/JOIN      omp id     --
TEAM_BEGIN     omp id     --
OBAR_LEAVE     omp id     team size
FAULT          match id   --
RESTART        restart id n_ranks
(all others)   --         --
=============  =========  =========

Conversion is strict: traces whose ``aux`` payloads do not follow the
engine's conventions (possible for hand-built test traces) raise
:class:`ColumnarConversionError`, and callers fall back to the per-event
representation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.sim.events import (
    COLL_END,
    FAULT,
    FORK,
    JOIN,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
    Ev,
    RegionRegistry,
)
from repro.sim.kernels import EMPTY_DELTA, WorkDelta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.topology import Pinning
    from repro.measure.trace import RawTrace

__all__ = ["ColumnarConversionError", "LocationColumns", "TraceColumns"]

#: event kinds that participate in clock synchronisation (send/fork are
#: producers, the rest consumers); everything else only accumulates work
SYNC_KINDS = (MPI_SEND, MPI_RECV, COLL_END, FORK, TEAM_BEGIN, OBAR_LEAVE, RESTART)

_PAIR_AUX = (MPI_SEND, COLL_END, OBAR_LEAVE, RESTART)
_SCALAR_AUX = (MPI_RECV, FORK, JOIN, TEAM_BEGIN, FAULT)

_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")

_INT_TYPES = (int, np.integer)


class ColumnarConversionError(ValueError):
    """A trace's events do not follow the engine's payload conventions."""


class LocationColumns:
    """The event columns of one location (all arrays share one length)."""

    __slots__ = ("etype", "region", "t", "t_enter", "aux_a", "aux_b",
                 "omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")

    def __init__(self, **arrays):
        for name in self.__slots__:
            setattr(self, name, arrays[name])

    def __len__(self) -> int:
        return len(self.etype)


def _location_to_columns(evs: List[Ev]) -> LocationColumns:
    n = len(evs)
    etype = np.empty(n, dtype=np.int64)
    region = np.empty(n, dtype=np.int64)
    t = np.empty(n, dtype=np.float64)
    t_enter = np.empty(n, dtype=np.float64)
    aux_a = np.full(n, -1, dtype=np.int64)
    aux_b = np.full(n, -1, dtype=np.int64)
    deltas = {f: np.zeros(n, dtype=np.float64) for f in _DELTA_FIELDS}
    try:
        for i, ev in enumerate(evs):
            et = ev.etype
            etype[i] = et
            region[i] = ev.region
            t[i] = ev.t
            t_enter[i] = ev.t_enter
            aux = ev.aux
            if et in _PAIR_AUX:
                a, b = aux
                if not isinstance(a, _INT_TYPES) or not isinstance(b, _INT_TYPES):
                    raise ColumnarConversionError(
                        f"non-integer aux pair {aux!r} on event kind {et}"
                    )
                aux_a[i] = a
                aux_b[i] = b
            elif et in _SCALAR_AUX:
                if not isinstance(aux, _INT_TYPES):
                    raise ColumnarConversionError(
                        f"non-integer aux {aux!r} on event kind {et}"
                    )
                aux_a[i] = aux
            elif aux is not None:
                raise ColumnarConversionError(
                    f"unexpected aux payload {aux!r} on event kind {et}"
                )
            d = ev.delta
            if not d.is_empty:
                for f in _DELTA_FIELDS:
                    v = getattr(d, f)
                    if v:
                        deltas[f][i] = v
    except ColumnarConversionError:
        raise
    except (TypeError, ValueError) as exc:
        raise ColumnarConversionError(
            f"event payload not columnar-convertible: {exc}"
        ) from exc
    return LocationColumns(etype=etype, region=region, t=t, t_enter=t_enter,
                           aux_a=aux_a, aux_b=aux_b, **deltas)


def _reconstruct_aux(et: int, a: int, b: int):
    if et in _PAIR_AUX:
        return (int(a), int(b))
    if et in _SCALAR_AUX:
        return int(a)
    return None


class TraceColumns:
    """Columnar view of a whole trace (the SoA analogue of ``RawTrace``).

    Attributes mirror :class:`~repro.measure.trace.RawTrace`; ``locs[l]``
    is the :class:`LocationColumns` of location ``l``.  The object is a
    *snapshot*: mutating the source trace's event lists afterwards is not
    reflected here.
    """

    def __init__(
        self,
        mode: str,
        regions: RegionRegistry,
        locations: List[Tuple[int, int]],
        locs: List[LocationColumns],
        runtime: float = 0.0,
        pinning: Optional["Pinning"] = None,
    ):
        if len(locations) != len(locs):
            raise ValueError(
                f"{len(locations)} locations but {len(locs)} column sets"
            )
        self.mode = mode
        self.regions = regions
        self.locations = locations
        self.locs = locs
        self.runtime = runtime
        self.pinning = pinning
        self._sync_order = None
        self._t_lists = None
        self._replay_plan = None  # compiled by repro.clocks.columnar

    # -- construction ----------------------------------------------------
    @classmethod
    def from_raw(cls, trace: "RawTrace") -> "TraceColumns":
        """Convert a per-event trace once (O(events), single pass)."""
        return cls(
            mode=trace.mode,
            regions=trace.regions,
            locations=list(trace.locations),
            locs=[_location_to_columns(evs) for evs in trace.events],
            runtime=trace.runtime,
            pinning=trace.pinning,
        )

    def to_raw(self) -> "RawTrace":
        """Materialize an equivalent per-event :class:`RawTrace`."""
        from repro.measure.trace import RawTrace

        events: List[List[Ev]] = []
        for lc in self.locs:
            evs = []
            etype = lc.etype.tolist()
            region = lc.region.tolist()
            t = lc.t.tolist()
            t_enter = lc.t_enter.tolist()
            aux_a = lc.aux_a.tolist()
            aux_b = lc.aux_b.tolist()
            dlists = [getattr(lc, f).tolist() for f in _DELTA_FIELDS]
            for i in range(len(lc)):
                if (dlists[0][i] or dlists[1][i] or dlists[2][i]
                        or dlists[3][i] or dlists[4][i] or dlists[5][i]):
                    delta = WorkDelta(*(d[i] for d in dlists))
                else:
                    delta = EMPTY_DELTA
                evs.append(Ev(
                    etype[i], region[i], t[i], delta,
                    aux=_reconstruct_aux(etype[i], aux_a[i], aux_b[i]),
                    t_enter=t_enter[i],
                ))
            events.append(evs)
        return RawTrace(
            mode=self.mode,
            regions=self.regions,
            locations=list(self.locations),
            events=events,
            runtime=self.runtime,
            pinning=self.pinning,
        )

    # -- queries ---------------------------------------------------------
    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def n_events(self) -> int:
        return sum(len(lc) for lc in self.locs)

    def t_lists(self) -> List[List[float]]:
        """Per-location physical timestamps as plain lists (memoized)."""
        if self._t_lists is None:
            self._t_lists = [lc.t.tolist() for lc in self.locs]
        return self._t_lists

    def sync_order(self):
        """Synchronisation events in global merged order (memoized).

        Returns six parallel lists ``(loc, idx, etype, aux_a, aux_b, t)``
        of all :data:`SYNC_KINDS` events, sorted by ``(t, loc, idx)`` --
        exactly the order in which :meth:`RawTrace.merged` visits them
        (the heap merge orders by ``(t, loc)`` and preserves per-location
        order).  Mode-independent, so one sort serves all clock replays.
        """
        if self._sync_order is None:
            locs_parts, idx_parts, et_parts, a_parts, b_parts, t_parts = \
                [], [], [], [], [], []
            for loc, lc in enumerate(self.locs):
                mask = np.isin(lc.etype, SYNC_KINDS)
                idx = np.nonzero(mask)[0]
                locs_parts.append(np.full(len(idx), loc, dtype=np.int64))
                idx_parts.append(idx)
                et_parts.append(lc.etype[idx])
                a_parts.append(lc.aux_a[idx])
                b_parts.append(lc.aux_b[idx])
                t_parts.append(lc.t[idx])
            loc_all = np.concatenate(locs_parts) if locs_parts else np.empty(0, np.int64)
            idx_all = np.concatenate(idx_parts) if idx_parts else np.empty(0, np.int64)
            et_all = np.concatenate(et_parts) if et_parts else np.empty(0, np.int64)
            a_all = np.concatenate(a_parts) if a_parts else np.empty(0, np.int64)
            b_all = np.concatenate(b_parts) if b_parts else np.empty(0, np.int64)
            t_all = np.concatenate(t_parts) if t_parts else np.empty(0, np.float64)
            order = np.lexsort((idx_all, loc_all, t_all))
            self._sync_order = (
                loc_all[order].tolist(),
                idx_all[order].tolist(),
                et_all[order].tolist(),
                a_all[order].tolist(),
                b_all[order].tolist(),
                t_all[order].tolist(),
            )
        return self._sync_order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceColumns(mode={self.mode!r}, locations={self.n_locations}, "
            f"events={self.n_events}, runtime={self.runtime:.4g}s)"
        )
