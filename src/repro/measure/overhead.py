"""Per-mode measurement overhead model.

Four perturbation channels, mirroring the mechanisms discussed in the
paper's Sec. V-A:

* **Per-event record cost** -- writing one event into the trace buffer.
  All modes pay it; the logical modes add a little clock bookkeeping, and
  lt_hwctr adds a hardware-counter read (``rdpmc``/``read`` syscall-ish)
  at every event, which is why the paper finds lt_hwctr overhead large in
  event-dense phases (MiniFE init: +89.9 %).

* **Counting instrumentation** -- lt_bb/lt_stmt insert a counter increment
  into every basic block / around every statement.  This is flop-side
  work: fully exposed in latency/compute-bound code (MiniFE init ~+95 %),
  completely hidden under memory stalls in bandwidth-bound code (MiniFE
  solve ~0.2 %).  The cost model folds ``count_cost`` into the roofline's
  compute leg to reproduce exactly that.

* **Counter-synchronisation messages** -- the paper's implementation sends
  extra messages inside the MPI wrappers to synchronise logical counters
  (Sec. II-B); every MPI operation in a logical mode pays
  ``mpi_sync_cost``.

* **Trace-buffer footprint** -- Score-P preallocates per-location buffers;
  they join the application working set in the L3 model, producing the
  TeaLeaf cache-eviction overheads of Table II ("the instrumentation
  consumes additional memory and pushes the computation out of the
  cache").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.measure.config import (
    LOGICAL_MODES,
    LTBB,
    LTHWCTR,
    LTSTMT,
    validate_mode,
)
from repro.sim.kernels import WorkDelta

__all__ = ["OverheadModel"]


@dataclass
class OverheadModel:
    """Calibratable per-mode overhead parameters (seconds / bytes)."""

    #: cost of writing one event record (all modes)
    base_event_cost: float = 0.03e-6
    #: extra per-event bookkeeping of the Lamport counter (logical modes)
    logical_event_extra: float = 0.004e-6
    #: reading the hardware counter at every event (lthwctr only); a
    #: perf-event read is a syscall-weight operation, ~2 orders of
    #: magnitude above the plain record cost -- the ratio behind Table I's
    #: MiniFE init column (tsc -14 % vs lt_hwctr +90 %)
    counter_read_cost: float = 1.2e-6
    #: counting-instrumentation time per executed basic block (ltbb)
    cost_per_bb: float = 1.1e-9
    #: counting-instrumentation time per executed statement (ltstmt)
    cost_per_stmt: float = 0.35e-9
    #: extra message to synchronise counters, per MPI operation (logical)
    mpi_sync_cost: float = 0.4e-6
    #: preallocated trace buffer per location (bytes)
    buffer_per_location: float = 0.15 * 1024**2
    #: lthwctr stores metric values with each event -> bigger buffers
    hwctr_buffer_factor: float = 1.6
    #: per-thread serialisation at instrumented team synchronisation points
    #: (every thread writes events into shared measurement state at the
    #: fork/barrier); makes OpenMP-construct overhead grow with team size,
    #: the dominant effect in the paper's TeaLeaf overheads (Table II).
    omp_team_sync_cost: float = 0.25e-6
    #: cross-rank overlap multiplier (<= 1) applied to memory contention in
    #: instrumented runs: measurement desynchronises ranks/threads, which
    #: *helps* memory-bound phases (Afzal et al.; the paper's explanation
    #: of the negative overheads in Fig. 2 / Table I MiniFE init).
    overlap_relief: float = 0.76

    def event_cost(self, mode: str) -> float:
        """Seconds per recorded event (and per represented burst call)."""
        validate_mode(mode)
        cost = self.base_event_cost
        if mode in LOGICAL_MODES:
            cost += self.logical_event_extra
        if mode == LTHWCTR:
            cost += self.counter_read_cost
        return cost

    def count_cost(self, mode: str, delta: WorkDelta) -> float:
        """Flop-side counting time for executing ``delta`` worth of code."""
        if mode == LTBB:
            return delta.bb * self.cost_per_bb
        if mode == LTSTMT:
            return delta.stmt * self.cost_per_stmt
        return 0.0

    def sync_cost(self, mode: str) -> float:
        """Extra per-MPI-operation cost of counter synchronisation."""
        return self.mpi_sync_cost if mode in LOGICAL_MODES else 0.0

    def footprint(self, mode: str, locations_per_socket: float) -> float:
        """Trace-buffer bytes competing for L3, per socket."""
        factor = self.hwctr_buffer_factor if mode == LTHWCTR else 1.0
        return self.buffer_per_location * factor * locations_per_socket
