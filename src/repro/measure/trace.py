"""The raw trace: per-location event sequences plus definitions.

A :class:`RawTrace` is what one instrumented run produces -- the analogue
of an OTF2 archive.  It stores *physical* timestamps and work deltas; the
clock modules (:mod:`repro.clocks`) derive the mode's final timestamps
from it, and the analyzer (:mod:`repro.analysis`) replays it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.machine.topology import Pinning
from repro.sim.events import Ev, RegionRegistry

__all__ = ["RawTrace"]


class RawTrace:
    """Trace of one instrumented run.

    Attributes
    ----------
    mode:
        Measurement mode the run was taken with.
    regions:
        Region-name registry shared by all events.
    locations:
        ``[(rank, thread), ...]`` indexed by location id.
    events:
        ``events[loc]`` is the time-ordered event list of that location.
    runtime:
        Total wall runtime of the run (physical virtual-seconds).
    """

    def __init__(
        self,
        mode: str,
        regions: RegionRegistry,
        locations: List[Tuple[int, int]],
        events: List[List[Ev]],
        runtime: float = 0.0,
        pinning: Optional[Pinning] = None,
    ):
        if len(locations) != len(events):
            raise ValueError(
                f"{len(locations)} locations but {len(events)} event lists"
            )
        self.mode = mode
        self.regions = regions
        self.locations = locations
        self.events = events
        self.runtime = runtime
        self.pinning = pinning
        #: provenance manifest read back from an archive (see
        #: :mod:`repro.obs.provenance`), ``None`` for in-memory traces
        self.provenance: Optional[dict] = None
        self._loc_index: Dict[Tuple[int, int], int] = {
            lt: i for i, lt in enumerate(locations)
        }
        self._columns = None

    # -- queries ---------------------------------------------------------
    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def n_events(self) -> int:
        return sum(len(e) for e in self.events)

    @property
    def n_ranks(self) -> int:
        return len({r for (r, _t) in self.locations})

    def loc_id(self, rank: int, thread: int) -> int:
        return self._loc_index[(rank, thread)]

    def threads_of(self, rank: int) -> List[int]:
        return sorted(t for (r, t) in self.locations if r == rank)

    def master_locations(self) -> List[int]:
        """Location ids of the master thread of every rank."""
        return [self._loc_index[(r, 0)] for r in sorted({r for (r, _t) in self.locations})]

    def columns(self):
        """Columnar (structure-of-arrays) view of this trace, built once.

        Returns the memoized :class:`repro.measure.columnar.TraceColumns`
        snapshot used by the vectorized clock replay and the bulk archive
        writer.  Raises
        :class:`repro.measure.columnar.ColumnarConversionError` for traces
        whose event payloads do not follow the engine's conventions.
        """
        if self._columns is None:
            from repro.measure.columnar import TraceColumns

            self._columns = TraceColumns.from_raw(self)
        return self._columns

    def merged(self) -> Iterator[Tuple[int, Ev]]:
        """All events in a global order consistent with happens-before.

        Per-location order is preserved; across locations, events are
        merged by physical timestamp (ties broken by location id).  In
        this simulator physical timestamps respect causality, so the
        merged order is a valid topological order of the event DAG -- the
        property the logical-clock replay relies on.
        """
        import heapq

        iters = []
        for loc, evs in enumerate(self.events):
            it = iter(evs)
            first = next(it, None)
            if first is not None:
                iters.append((first.t, loc, first, it))
        heapq.heapify(iters)
        while iters:
            t, loc, ev, it = heapq.heappop(iters)
            yield loc, ev
            nxt = next(it, None)
            if nxt is not None:
                heapq.heappush(iters, (nxt.t, loc, nxt, it))

    def validate(self) -> None:
        """Check per-location monotonicity and matching consistency.

        Runs the full structural pass of the trace sanitizer
        (:func:`repro.verify.sanitize_raw`): per-location monotonicity,
        ENTER/LEAVE stack discipline, send/recv match-id integrity and
        collective-epoch consistency.  Raises ``AssertionError`` on the
        first rule violation (preserving the historical contract of this
        method); use :func:`repro.verify.sanitize_trace` directly for a
        structured report instead of an exception.
        """
        from repro.verify.diagnostics import format_diagnostics, has_errors
        from repro.verify.sanitizer import sanitize_raw

        diagnostics = sanitize_raw(self)
        if has_errors(diagnostics):
            raise AssertionError(format_diagnostics(
                diagnostics, header="trace failed validation:"
            ))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawTrace(mode={self.mode!r}, locations={self.n_locations}, "
            f"events={self.n_events}, runtime={self.runtime:.4g}s)"
        )
