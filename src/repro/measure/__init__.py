"""Score-P analogue: measurement modes, overhead model, filtering, traces.

The measurement object plugs into the simulation engine as an event sink
and, crucially, *perturbs* the measured execution the way real
instrumentation does -- per-event record costs, basic-block/statement
counting instructions, hardware-counter reads, counter-synchronisation
messages inside MPI wrappers, and trace-buffer cache footprint.  Those
perturbations are the subject of the paper's Table I, Table II and Fig. 2.
"""

from repro.measure.config import (
    MODES,
    LOGICAL_MODES,
    MODE_LABELS,
    TSC,
    LT1,
    LTLOOP,
    LTBB,
    LTSTMT,
    LTHWCTR,
)
from repro.measure.columnar import ColumnarConversionError, TraceColumns
from repro.measure.filtering import FilterRules
from repro.measure.overhead import OverheadModel
from repro.measure.measurement import Measurement
from repro.measure.trace import RawTrace
from repro.measure.io import (
    TraceFormatError,
    write_trace,
    read_trace,
    read_manifest,
    trace_archive_bytes,
)

__all__ = [
    "MODES",
    "LOGICAL_MODES",
    "MODE_LABELS",
    "TSC",
    "LT1",
    "LTLOOP",
    "LTBB",
    "LTSTMT",
    "LTHWCTR",
    "ColumnarConversionError",
    "TraceColumns",
    "FilterRules",
    "OverheadModel",
    "Measurement",
    "RawTrace",
    "TraceFormatError",
    "write_trace",
    "read_trace",
    "read_manifest",
    "trace_archive_bytes",
]
