"""The measurement object: event sink + perturbation source for the engine."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.measure.config import validate_mode
from repro.measure.filtering import FilterRules
from repro.measure.overhead import OverheadModel
from repro.measure.trace import RawTrace
from repro.sim.events import Ev
from repro.sim.kernels import WorkDelta

__all__ = ["Measurement"]


class Measurement:
    """Collects trace events for one run and models instrumentation cost.

    One instance serves exactly one engine run (mirroring one Score-P
    experiment directory).  Construct a fresh instance per run.
    """

    def __init__(
        self,
        mode: str,
        overhead: Optional[OverheadModel] = None,
        filter_rules: Optional[FilterRules] = None,
        sanitize: bool = False,
    ):
        self.mode = validate_mode(mode)
        self.overhead = overhead if overhead is not None else OverheadModel()
        self.filter_rules = filter_rules if filter_rules is not None else FilterRules()
        self._events: List[List[Ev]] = []
        self._locations: List[Tuple[int, int]] = []
        self._engine = None
        self._footprint = 0.0
        self._finished = False
        self._sanitize = sanitize
        self._sanitizer = None

    def enable_sanitize(self) -> None:
        """Opt in to online invariant checking (before the engine run)."""
        if self._engine is not None:
            raise RuntimeError("enable_sanitize() must precede begin()")
        self._sanitize = True

    # -- engine hookup ----------------------------------------------------
    def begin(self, engine) -> None:
        """Called by the engine before the run starts."""
        if self._engine is not None:
            raise RuntimeError("a Measurement instance serves exactly one run")
        self._engine = engine
        pinning = engine.pinning
        locs: List[Tuple[int, int]] = list(pinning.locations())
        self._locations = locs
        self._events = [[] for _ in locs]
        sockets = {}
        for (r, t) in locs:
            sid = pinning.core_of(r, t).socket_id
            sockets[sid] = sockets.get(sid, 0) + 1
        per_socket = (len(locs) / len(sockets)) if sockets else 0.0
        self._footprint = self.overhead.footprint(self.mode, per_socket)
        if self._sanitize:
            from repro.verify.online import OnlineSanitizer

            self._sanitizer = OnlineSanitizer(region_names=engine.regions.name)

    def rebind(self, engine) -> None:
        """Attach a restart-attempt engine, keeping recorded events.

        Used by :mod:`repro.sim.recovery`: after a simulated crash the
        next attempt runs on a *fresh* engine (clean scheduler state) but
        must append to the trace prefix this measurement already holds.
        The online sanitizer is per-run state and cannot span attempts.
        """
        if self._engine is None:
            raise RuntimeError("rebind() before begin()")
        if self._finished:
            raise RuntimeError("rebind() after finish()")
        if self._sanitize:
            raise RuntimeError(
                "online sanitize cannot span restart attempts; "
                "run the offline sanitizer on the finished trace instead"
            )
        self._engine = engine

    def mark(self) -> List[int]:
        """Snapshot of per-location event counts (a checkpoint mark)."""
        return [len(evs) for evs in self._events]

    def rewind(self, mark: Optional[List[int]]) -> None:
        """Drop every event recorded after ``mark`` (``None`` = drop all)."""
        if self._finished:
            raise RuntimeError("rewind() after finish()")
        if mark is None:
            mark = [0] * len(self._events)
        if len(mark) != len(self._events):
            raise ValueError(
                f"mark covers {len(mark)} locations, trace has {len(self._events)}"
            )
        for evs, n in zip(self._events, mark):
            del evs[n:]

    def record(self, loc: int, ev: Ev) -> None:
        if self._sanitizer is not None:
            self._sanitizer.observe(loc, ev)
        self._events[loc].append(ev)

    def finish(self, runtime: float) -> RawTrace:
        """Build the RawTrace at the end of the run."""
        if self._engine is None:
            raise RuntimeError("finish() before begin()")
        if self._finished:
            raise RuntimeError("finish() called twice")
        self._finished = True
        if self._sanitizer is not None:
            self._sanitizer.final_check()
        trace = RawTrace(
            mode=self.mode,
            regions=self._engine.regions,
            locations=self._locations,
            events=self._events,
            runtime=runtime,
            pinning=self._engine.pinning,
        )
        if self._sanitize:
            # Sanitized runs also get the happened-before race check:
            # wildcard message races and OpenMP shared-write races void
            # the bit-identity the sanitizer exists to protect.
            from repro.verify.online import TraceInvariantError
            from repro.verify.races import find_races

            report = find_races(trace)
            if report.has_races:
                raise TraceInvariantError([
                    d for d in report.diagnostics if d.severity == "error"
                ])
        return trace

    # -- perturbation queries (hot path; engine caches most of these) ------
    def event_cost(self) -> float:
        return self.overhead.event_cost(self.mode)

    def count_cost(self, delta: WorkDelta) -> float:
        return self.overhead.count_cost(self.mode, delta)

    def mpi_sync_cost(self) -> float:
        return self.overhead.sync_cost(self.mode)

    def footprint_per_socket(self) -> float:
        return self._footprint

    def omp_team_sync_cost(self) -> float:
        return self.overhead.omp_team_sync_cost

    def overlap_relief(self) -> float:
        return self.overhead.overlap_relief

    def filtered(self, region: str) -> bool:
        return self.filter_rules.is_filtered(region)
