"""Measurement mode identifiers.

The six timer modes evaluated in the paper (Sec. IV-B):

==========  ==============================================================
``tsc``     physical clock (x86-64 time stamp counter)
``lt1``     logical clock, +1 per event (the original Lamport baseline)
``ltloop``  +1 per event, +1 per OpenMP loop iteration
``ltbb``    +1 per event + LLVM basic blocks (X = 100 per OpenMP call)
``ltstmt``  +1 per event + LLVM statements (Y = 4300 per OpenMP call)
``lthwctr`` Delta PERF_COUNT_HW_INSTRUCTIONS between events
==========  ==============================================================
"""

from __future__ import annotations

TSC = "tsc"
LT1 = "lt1"
LTLOOP = "ltloop"
LTBB = "ltbb"
LTSTMT = "ltstmt"
LTHWCTR = "lthwctr"

#: all modes, in the paper's table order
MODES = (TSC, LT1, LTLOOP, LTBB, LTSTMT, LTHWCTR)

#: modes whose timestamps come from the Lamport clock
LOGICAL_MODES = (LT1, LTLOOP, LTBB, LTSTMT, LTHWCTR)

#: modes whose traces differ between repetitions under noise
NOISY_MODES = (TSC, LTHWCTR)

#: display labels matching the paper's notation
MODE_LABELS = {
    TSC: "tsc",
    LT1: "lt_1",
    LTLOOP: "lt_loop",
    LTBB: "lt_bb",
    LTSTMT: "lt_stmt",
    LTHWCTR: "lt_hwctr",
}

#: the paper's fitted external-effort constants for OpenMP runtime calls
X_BB_PER_OMP_CALL = 100.0
Y_STMT_PER_OMP_CALL = 4300.0


def validate_mode(mode: str) -> str:
    """Return ``mode`` if valid, else raise ``ValueError``."""
    if mode not in MODES:
        raise ValueError(f"unknown measurement mode {mode!r}; expected one of {MODES}")
    return mode
