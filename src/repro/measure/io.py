"""Trace (de)serialisation: a gzipped JSON-lines archive format.

The format is line-oriented so huge traces stream:

* line 1: header (mode, runtime, locations, region table)
* following lines: one per event, ``[loc, etype, region, t, delta?, aux?,
  t_enter?]`` with the delta as a sparse dict.

Used by the CLI tools (``repro-run`` writes, ``repro-analyze`` reads) and
round-trip tested in the suite.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Tuple, Union

from repro.measure.trace import RawTrace
from repro.sim.events import Ev, RegionRegistry
from repro.sim.kernels import EMPTY_DELTA, WorkDelta

__all__ = ["write_trace", "read_trace"]

_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")


def _delta_to_obj(d: WorkDelta):
    if d.is_empty:
        return None
    return {f: getattr(d, f) for f in _DELTA_FIELDS if getattr(d, f) != 0.0}


def _delta_from_obj(obj) -> WorkDelta:
    if not obj:
        return EMPTY_DELTA
    return WorkDelta(**obj)


def write_trace(trace: RawTrace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (gzipped JSON lines)."""
    path = Path(path)
    header = {
        "format": "repro-trace-1",
        "mode": trace.mode,
        "runtime": trace.runtime,
        "locations": [list(lt) for lt in trace.locations],
        "regions": list(trace.regions.names),
        "paradigms": list(trace.regions.paradigms),
    }
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for loc, evs in enumerate(trace.events):
            for ev in evs:
                rec = [
                    loc,
                    ev.etype,
                    ev.region,
                    ev.t,
                    _delta_to_obj(ev.delta),
                    list(ev.aux) if isinstance(ev.aux, tuple) else ev.aux,
                    ev.t_enter or None,
                ]
                fh.write(json.dumps(rec) + "\n")


def read_trace(path: Union[str, Path]) -> RawTrace:
    """Read a trace written by :func:`write_trace`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != "repro-trace-1":
            raise ValueError(f"{path}: not a repro trace archive")
        regions = RegionRegistry()
        for name, paradigm in zip(header["regions"], header["paradigms"]):
            regions.intern(name, paradigm)
        locations: List[Tuple[int, int]] = [tuple(lt) for lt in header["locations"]]
        events: List[List[Ev]] = [[] for _ in locations]
        for line in fh:
            loc, etype, region, t, delta, aux, t_enter = json.loads(line)
            if isinstance(aux, list):
                aux = tuple(aux)
            events[loc].append(
                Ev(etype, region, t, _delta_from_obj(delta), aux=aux, t_enter=t_enter or 0.0)
            )
    return RawTrace(
        mode=header["mode"],
        regions=regions,
        locations=locations,
        events=events,
        runtime=header["runtime"],
        pinning=None,
    )
