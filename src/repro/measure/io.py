"""Trace (de)serialisation: JSON-lines and columnar archive formats.

Two formats, dispatched on the file suffix:

* ``*.json.gz`` (and any non-``.npz`` path) -- ``repro-trace-1``, a
  gzipped JSON-lines stream: line 1 is the header (mode, runtime,
  locations, region table), each following line one event ``[loc, etype,
  region, t, delta?, aux?, t_enter?]`` with the delta as a sparse dict.
  Line-oriented so huge traces stream; human-greppable.
* ``*.npz`` -- ``repro-trace-npz-1``, the columnar dump: the
  structure-of-arrays columns of :class:`~repro.measure.columnar.
  TraceColumns` concatenated over locations plus an offsets array,
  written with :func:`numpy.savez_compressed`.  One bulk array write and
  read per field instead of one JSON record per event, which makes
  campaign-scale archives an order of magnitude faster to load.
* ``*.shards`` -- ``repro-shards-1``, the out-of-core sharded archive
  (a directory): events in global merged order split into fixed-size
  memory-mappable shards plus a JSON manifest.  Streaming consumers
  (:class:`~repro.measure.shards.ShardedTrace`) analyze it while holding
  at most one shard in memory; see :mod:`repro.measure.shards`.

Both round-trip exactly (float timestamps bit-preserved) and are covered
by the suite.  Used by the CLI tools (``repro-run`` writes,
``repro-analyze`` reads).

All archive writes are *atomic*: the bytes go to a temporary file in the
destination directory, are fsynced, and are moved into place with
:func:`os.replace`.  A reader (or a campaign resuming after a kill) never
observes a truncated archive -- either the old file, the new file, or no
file.  The helpers :func:`atomic_write_bytes` / :func:`atomic_write_text`
expose the same discipline for other writers (the campaign runner's
checkpoint and cache files use them).
"""

from __future__ import annotations

import gzip
import io
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.measure.columnar import LocationColumns, TraceColumns
from repro.measure.trace import RawTrace
from repro.sim.events import Ev, RegionRegistry
from repro.sim.kernels import EMPTY_DELTA, WorkDelta

__all__ = [
    "TraceFormatError",
    "write_trace",
    "read_trace",
    "read_manifest",
    "trace_archive_bytes",
    "atomic_write_bytes",
    "atomic_write_text",
    "archive_hash",
    "archive_suffix",
    "store_archive_bytes",
    "iter_file_chunks",
]


class TraceFormatError(ValueError):
    """A trace archive is corrupt, truncated, or not a trace archive.

    Raised by every archive reader (:func:`read_trace`,
    :func:`read_manifest`, the sharded readers) in place of the bare
    ``KeyError``/``zipfile.BadZipFile``/``json.JSONDecodeError`` the
    underlying libraries throw, so callers handle *one* typed error.
    Subclasses ``ValueError`` (the historical contract for bad headers)
    and stays picklable across process-pool boundaries.

    Attributes
    ----------
    path:   the offending archive (or member file) as a string
    reason: what went wrong, including the wrapped exception
    offset: where in the archive it went wrong -- a line number for
            JSON-lines archives, a member name for npz/shards -- or
            ``None`` when the damage has no localizable position
    """

    def __init__(self, path, reason: str, offset=None):
        self.path = str(path)
        self.reason = reason
        self.offset = offset
        where = self.path if offset is None else f"{self.path} (at {offset})"
        super().__init__(f"{where}: {reason}")

    def __reduce__(self):
        return (TraceFormatError, (self.path, self.reason, self.offset))


#: exception types the readers translate into :class:`TraceFormatError`;
#: covers gzip damage (BadGzipFile is an OSError), zip/npz damage,
#: truncated streams, JSON syntax, and missing/mistyped header fields
_READ_ERRORS = (OSError, EOFError, KeyError, IndexError, TypeError,
                ValueError, UnicodeDecodeError, zipfile.BadZipFile,
                zlib.error)

#: archive suffixes the upload path accepts (dispatch keys of
#: :func:`read_trace`); ``.shards`` is a directory format and cannot be
#: uploaded as one byte blob
UPLOAD_SUFFIXES = (".trace.json.gz", ".json.gz", ".npz")


def archive_hash(data: bytes) -> str:
    """Content address of raw archive bytes (sha256 hex digest)."""
    import hashlib

    return hashlib.sha256(data).hexdigest()


def archive_suffix(name: str) -> str:
    """Validated archive suffix for an uploaded trace (``ValueError``
    on anything :func:`read_trace` would not dispatch on)."""
    for suffix in UPLOAD_SUFFIXES:
        if name.endswith(suffix):
            return suffix
    raise ValueError(
        f"unsupported trace archive suffix in {name!r}: expected one of "
        f"{', '.join(UPLOAD_SUFFIXES)}")


def store_archive_bytes(data: bytes, dest_dir: Union[str, Path],
                        suffix: str = ".trace.json.gz",
                        prefix: str = "") -> Tuple[str, Path]:
    """Publish uploaded archive bytes content-addressed into ``dest_dir``.

    The file lands as ``<prefix><sha256-prefix>-trace<suffix>`` via the
    atomic write path, so concurrent identical uploads race benignly
    (same bytes, same name).  Returns ``(full sha256 hash, path)``;
    re-uploading existing content is a cheap no-op.
    """
    suffix = archive_suffix(f"x{suffix}")
    digest = archive_hash(data)
    dest_dir = Path(dest_dir)
    dest_dir.mkdir(parents=True, exist_ok=True)
    path = dest_dir / f"{prefix}{digest[:20]}-trace{suffix}"
    if not path.exists():
        atomic_write_bytes(path, data)
        obs.counter("io.archives_uploaded").inc()
        obs.counter("io.bytes_written", format="upload").add(len(data))
    return digest, path


def iter_file_chunks(path: Union[str, Path],
                     chunk_size: int = 1 << 16):
    """Stream a file's bytes in bounded chunks (archive downloads)."""
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                return
            yield chunk


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` stays within one filesystem and is atomic.  On any
    failure the temporary file is removed and ``path`` is left untouched.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> None:
    """Atomic counterpart of ``Path.write_text`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))

_COLUMN_FIELDS = ("etype", "region", "t", "t_enter", "aux_a", "aux_b",
                  "omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")

_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")


def _delta_to_obj(d: WorkDelta):
    if d.is_empty:
        return None
    return {f: getattr(d, f) for f in _DELTA_FIELDS if getattr(d, f) != 0.0}


def _delta_from_obj(obj) -> WorkDelta:
    if not obj:
        return EMPTY_DELTA
    return WorkDelta(**obj)


def write_trace(trace: RawTrace, path: Union[str, Path],
                manifest: Optional[dict] = None) -> None:
    """Write ``trace`` to ``path``.

    ``*.npz`` paths get the columnar bulk format, everything else the
    gzipped JSON-lines format (see the module docstring).  ``manifest``
    (a :func:`repro.obs.build_manifest` document) is embedded in the
    archive header as run provenance; :func:`read_manifest` retrieves it
    without parsing the event body.
    """
    path = Path(path)
    if path.suffix == ".shards":
        from repro.measure.shards import write_sharded_trace

        write_sharded_trace(trace, path, manifest=manifest)
        return
    fmt = "npz" if path.suffix == ".npz" else "jsonl"
    with obs.span("io.write_trace", format=fmt):
        if fmt == "npz":
            _write_trace_npz(trace, path, manifest)
        else:
            _write_trace_jsonl(trace, path, manifest)
    obs.counter("io.traces_written", format=fmt).inc()
    obs.counter("io.bytes_written", format=fmt).add(path.stat().st_size)


def trace_archive_bytes(trace: RawTrace,
                        manifest: Optional[dict] = None) -> bytes:
    """Canonical JSON-lines archive bytes of ``trace`` (no file involved).

    The exact bytes :func:`write_trace` would put in a ``*.trace.json.gz``
    archive (deterministic: the gzip mtime is pinned), for callers that
    store traces content-addressed -- the serving layer's ingest endpoint.
    """
    buf = io.BytesIO()
    with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
        with io.TextIOWrapper(gz, encoding="utf-8") as fh:
            _dump_trace_jsonl(trace, manifest, fh)
    return buf.getvalue()


def _write_trace_jsonl(trace: RawTrace, path: Path,
                       manifest: Optional[dict]) -> None:
    atomic_write_bytes(path, trace_archive_bytes(trace, manifest))


def _dump_trace_jsonl(trace: RawTrace, manifest: Optional[dict], fh) -> None:
    header = {
        "format": "repro-trace-1",
        "mode": trace.mode,
        "runtime": trace.runtime,
        "locations": [list(lt) for lt in trace.locations],
        "regions": list(trace.regions.names),
        "paradigms": list(trace.regions.paradigms),
    }
    if manifest is not None:
        header["provenance"] = manifest
    fh.write(json.dumps(header) + "\n")
    for loc, evs in enumerate(trace.events):
        for ev in evs:
            rec = [
                loc,
                ev.etype,
                ev.region,
                ev.t,
                _delta_to_obj(ev.delta),
                list(ev.aux) if isinstance(ev.aux, tuple) else ev.aux,
                ev.t_enter or None,
            ]
            fh.write(json.dumps(rec) + "\n")


def read_trace(path: Union[str, Path]) -> RawTrace:
    """Read a trace written by :func:`write_trace` (either format).

    An embedded provenance manifest is attached to the returned trace as
    its ``provenance`` attribute (``None`` when the archive has none).
    """
    path = Path(path)
    if path.suffix == ".shards":
        from repro.measure.shards import open_sharded_trace

        with obs.span("io.read_trace", format="shards"):
            return open_sharded_trace(path).to_raw()
    fmt = "npz" if path.suffix == ".npz" else "jsonl"
    with obs.span("io.read_trace", format=fmt):
        trace = (_read_trace_npz(path) if fmt == "npz"
                 else _read_trace_jsonl(path))
    obs.counter("io.traces_read", format=fmt).inc()
    obs.counter("io.bytes_read", format=fmt).add(path.stat().st_size)
    return trace


def read_manifest(path: Union[str, Path]) -> Optional[dict]:
    """Provenance manifest embedded in a trace archive, or ``None``.

    Header-only for every format: sharded archives read ``manifest.json``
    alone, the other formats decode just the header record.
    """
    path = Path(path)
    if path.suffix == ".shards":
        from repro.measure.shards import read_shard_manifest

        return read_shard_manifest(path).get("provenance")
    try:
        if path.suffix == ".npz":
            with np.load(path) as data:
                header = json.loads(bytes(data["header"]).decode("utf-8"))
        else:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                header = json.loads(fh.readline())
        return header.get("provenance")
    except TraceFormatError:
        raise
    except _READ_ERRORS as exc:
        raise TraceFormatError(
            path, f"unreadable archive header: {type(exc).__name__}: {exc}",
            offset="header") from exc


def _read_trace_jsonl(path: Path) -> RawTrace:
    lineno = 0
    try:
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            lineno = 1
            header = json.loads(fh.readline())
            if not isinstance(header, dict) \
                    or header.get("format") != "repro-trace-1":
                raise TraceFormatError(path, "not a repro trace archive",
                                       offset="line 1")
            regions = RegionRegistry()
            for name, paradigm in zip(header["regions"], header["paradigms"]):
                regions.intern(name, paradigm)
            locations: List[Tuple[int, int]] = [tuple(lt) for lt in header["locations"]]
            events: List[List[Ev]] = [[] for _ in locations]
            for line in fh:
                lineno += 1
                loc, etype, region, t, delta, aux, t_enter = json.loads(line)
                if isinstance(aux, list):
                    aux = tuple(aux)
                events[loc].append(
                    Ev(etype, region, t, _delta_from_obj(delta), aux=aux, t_enter=t_enter or 0.0)
                )
        trace = RawTrace(
            mode=header["mode"],
            regions=regions,
            locations=locations,
            events=events,
            runtime=header["runtime"],
            pinning=None,
        )
    except TraceFormatError:
        raise
    except _READ_ERRORS as exc:
        raise TraceFormatError(
            path, f"corrupt JSON-lines archive: {type(exc).__name__}: {exc}",
            offset=f"line {lineno}") from exc
    trace.provenance = header.get("provenance")
    return trace


# ---------------------------------------------------------------------------
# columnar (npz) format
# ---------------------------------------------------------------------------

def _write_trace_npz(trace: RawTrace, path: Path,
                     manifest: Optional[dict] = None) -> None:
    """Bulk-dump the trace's columns (raises ``ColumnarConversionError``
    for traces whose payloads do not follow the engine's conventions --
    write those as JSON lines instead)."""
    cols = trace.columns()
    header = {
        "format": "repro-trace-npz-1",
        "mode": cols.mode,
        "runtime": cols.runtime,
        "locations": [list(lt) for lt in cols.locations],
        "regions": list(cols.regions.names),
        "paradigms": list(cols.regions.paradigms),
    }
    if manifest is not None:
        header["provenance"] = manifest
    offsets = np.cumsum([0] + [len(lc) for lc in cols.locs])
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "offsets": offsets,
    }
    for field in _COLUMN_FIELDS:
        parts = [getattr(lc, field) for lc in cols.locs]
        arrays[field] = (np.concatenate(parts) if parts
                         else np.empty(0, dtype=np.float64))
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    atomic_write_bytes(path, buf.getvalue())


def _read_trace_npz(path: Path) -> RawTrace:
    member = "header"
    try:
        with np.load(path) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            if not isinstance(header, dict) \
                    or header.get("format") != "repro-trace-npz-1":
                raise TraceFormatError(
                    path, "not a columnar repro trace archive",
                    offset="header")
            member = "offsets"
            offsets = data["offsets"]
            columns = {}
            for f in _COLUMN_FIELDS:
                member = f
                columns[f] = data[f]
        member = "header"
        regions = RegionRegistry()
        for name, paradigm in zip(header["regions"], header["paradigms"]):
            regions.intern(name, paradigm)
        locations: List[Tuple[int, int]] = [tuple(lt) for lt in header["locations"]]
        member = "offsets"
        locs = [
            LocationColumns(**{f: columns[f][offsets[i]:offsets[i + 1]]
                               for f in _COLUMN_FIELDS})
            for i in range(len(locations))
        ]
        cols = TraceColumns(
            mode=header["mode"],
            regions=regions,
            locations=locations,
            locs=locs,
            runtime=header["runtime"],
            pinning=None,
        )
        trace = cols.to_raw()
    except TraceFormatError:
        raise
    except _READ_ERRORS as exc:
        raise TraceFormatError(
            path, f"corrupt columnar archive: {type(exc).__name__}: {exc}",
            offset=member) from exc
    trace.provenance = header.get("provenance")
    return trace
