"""Out-of-core sharded columnar trace archives.

A *sharded* archive is a directory holding a trace as fixed-size columnar
shards plus a small JSON manifest:

::

    trace.shards/
        manifest.json        header: mode, runtime, locations, regions,
                             per-shard row counts and time ranges
        shard-0000.npy       structured array, events in global merged order
        shard-0001.npy
        ...

Each shard is a NumPy structured array (one record per event: location id,
event kind, region id, timestamps, aux payload, work-delta components)
stored in **global merged order** -- sorted by ``(t, loc, index-in-loc)``,
exactly the order :meth:`repro.measure.trace.RawTrace.merged` visits a
well-formed trace.  Storing the merge order makes every merged-order
consumer (sanitize, race replay, clock replay, wait-state analysis) a
single forward scan: :class:`ShardedTrace` memory-maps one shard at a
time (``numpy.load(..., mmap_mode="r")``), materializes at most that
shard's rows as Python objects, and drops them before opening the next
shard.  Peak memory is bounded by the shard size regardless of trace
length, which is what lets campaign-scale traces be analyzed out of core.

:func:`read_shard_manifest` reads *only* ``manifest.json`` -- provenance
and shape queries never touch the event body.

Writes are atomic per file (see :func:`repro.measure.io.atomic_write_bytes`)
and the manifest is written last, so a reader never observes a manifest
that references missing or truncated shards.
"""

from __future__ import annotations

import io as _io
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.measure.columnar import _reconstruct_aux
from repro.measure.trace import RawTrace
from repro.sim.events import Ev, RegionRegistry
from repro.sim.kernels import EMPTY_DELTA, WorkDelta

__all__ = [
    "DEFAULT_SHARD_EVENTS",
    "SHARD_FORMAT",
    "MANIFEST_NAME",
    "StreamStats",
    "ShardedTrace",
    "write_sharded_trace",
    "read_shard_manifest",
    "open_sharded_trace",
]

SHARD_FORMAT = "repro-shards-1"
MANIFEST_NAME = "manifest.json"

#: default rows per shard; small enough that one shard of the structured
#: records (~74 B/row) stays a few MiB, large enough to amortize per-shard
#: open/decode overhead
DEFAULT_SHARD_EVENTS = 65536

_COLUMN_FIELDS = ("etype", "region", "t", "t_enter", "aux_a", "aux_b",
                  "omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")

_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr", "burst_calls", "omp_calls")

#: one record per event; ``loc`` first so a shard is self-describing
SHARD_DTYPE = np.dtype([
    ("loc", np.int32),
    ("etype", np.int16),
    ("region", np.int32),
    ("t", np.float64),
    ("t_enter", np.float64),
    ("aux_a", np.int64),
    ("aux_b", np.int64),
    ("omp_iters", np.float64),
    ("bb", np.float64),
    ("stmt", np.float64),
    ("instr", np.float64),
    ("burst_calls", np.float64),
    ("omp_calls", np.float64),
])


def _shard_name(i: int) -> str:
    return f"shard-{i:04d}.npy"


def write_sharded_trace(
    trace: RawTrace,
    path: Union[str, Path],
    shard_events: int = DEFAULT_SHARD_EVENTS,
    manifest: Optional[dict] = None,
) -> Path:
    """Write ``trace`` as a sharded archive directory at ``path``.

    Events are written in global merged order (the order
    :meth:`RawTrace.merged` yields them for well-formed traces), split
    into shards of at most ``shard_events`` rows.  ``manifest`` (a
    :func:`repro.obs.build_manifest` document) is embedded as provenance.
    Returns the archive directory path.
    """
    from repro.measure.io import atomic_write_bytes, atomic_write_text

    if shard_events <= 0:
        raise ValueError(f"shard_events must be positive, got {shard_events}")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    with obs.span("io.write_sharded", shard_events=shard_events):
        cols = trace.columns()  # validates aux payload conventions
        parts_loc, parts_idx = [], []
        for loc, lc in enumerate(cols.locs):
            n = len(lc)
            parts_loc.append(np.full(n, loc, dtype=np.int64))
            parts_idx.append(np.arange(n, dtype=np.int64))
        if parts_loc:
            loc_all = np.concatenate(parts_loc)
            idx_all = np.concatenate(parts_idx)
            t_all = np.concatenate([lc.t for lc in cols.locs])
        else:
            loc_all = idx_all = np.empty(0, dtype=np.int64)
            t_all = np.empty(0, dtype=np.float64)
        # merged order: by (t, loc, per-location index); matches the heap
        # merge of RawTrace.merged() for per-location monotone traces
        order = np.lexsort((idx_all, loc_all, t_all))

        n_total = len(order)
        rec = np.empty(n_total, dtype=SHARD_DTYPE)
        rec["loc"] = loc_all[order]
        for field in _COLUMN_FIELDS:
            col = (np.concatenate([getattr(lc, field) for lc in cols.locs])
                   if cols.locs else np.empty(0))
            rec[field] = col[order]

        shard_meta = []
        for i, start in enumerate(range(0, max(n_total, 1), shard_events)):
            chunk = rec[start:start + shard_events]
            if len(chunk) == 0 and i > 0:
                break
            buf = _io.BytesIO()
            np.save(buf, chunk)
            atomic_write_bytes(path / _shard_name(i), buf.getvalue())
            shard_meta.append({
                "file": _shard_name(i),
                "n_events": int(len(chunk)),
                "t_min": float(chunk["t"][0]) if len(chunk) else 0.0,
                "t_max": float(chunk["t"][-1]) if len(chunk) else 0.0,
            })

        header = {
            "format": SHARD_FORMAT,
            "mode": cols.mode,
            "runtime": cols.runtime,
            "locations": [list(lt) for lt in cols.locations],
            "regions": list(cols.regions.names),
            "paradigms": list(cols.regions.paradigms),
            "n_events": int(n_total),
            "shard_events": int(shard_events),
            "loc_counts": [int(len(lc)) for lc in cols.locs],
            "shards": shard_meta,
        }
        if manifest is not None:
            header["provenance"] = manifest
        # manifest last: its appearance commits the archive
        atomic_write_text(path / MANIFEST_NAME, json.dumps(header, indent=1))
    obs.counter("io.traces_written", format="shards").inc()
    return path


#: manifest fields every consumer indexes; validated up front so a
#: truncated or hand-edited manifest fails as one typed error instead of
#: a KeyError deep inside a streaming scan
_MANIFEST_REQUIRED = ("mode", "runtime", "locations", "regions",
                      "paradigms", "n_events", "shard_events",
                      "loc_counts", "shards")


def read_shard_manifest(path: Union[str, Path]) -> dict:
    """The archive header -- reads ``manifest.json`` only, never a shard.

    Raises :class:`~repro.measure.io.TraceFormatError` when the manifest
    is missing, unparseable, not a sharded archive, or lacks required
    fields.
    """
    from repro.measure.io import TraceFormatError

    path = Path(path)
    try:
        with open(path / MANIFEST_NAME, "r", encoding="utf-8") as fh:
            header = json.load(fh)
    except TraceFormatError:
        raise
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError(
            path, f"unreadable shard manifest: {type(exc).__name__}: {exc}",
            offset=MANIFEST_NAME) from exc
    if not isinstance(header, dict) or header.get("format") != SHARD_FORMAT:
        raise TraceFormatError(path, "not a sharded repro trace archive",
                               offset=MANIFEST_NAME)
    missing = [k for k in _MANIFEST_REQUIRED if k not in header]
    if missing:
        raise TraceFormatError(
            path, f"shard manifest lacks required field(s) {missing}",
            offset=MANIFEST_NAME)
    return header


def open_sharded_trace(path: Union[str, Path]) -> "ShardedTrace":
    """Open a sharded archive for streaming (reads the manifest only)."""
    return ShardedTrace(Path(path), read_shard_manifest(path))


class StreamStats:
    """Bookkeeping of one :class:`ShardedTrace`'s streaming behaviour.

    ``peak_resident_rows`` is the largest number of event rows
    materialized at any moment -- the bounded-memory tests pin it to the
    shard size.
    """

    __slots__ = ("shards_opened", "rows_streamed", "peak_resident_rows")

    def __init__(self) -> None:
        self.shards_opened = 0
        self.rows_streamed = 0
        self.peak_resident_rows = 0


class ShardedTrace:
    """Streaming view of a sharded archive (duck-types ``RawTrace``).

    Exposes the metadata surface of :class:`~repro.measure.trace.RawTrace`
    (``mode``, ``regions``, ``locations``, ``n_events``, ...) plus a
    streaming :meth:`merged` iterator, so merged-order consumers -- the
    logical clock replays, :func:`repro.verify.races.find_races`, the
    streaming sanitizer and analyzer -- accept it unchanged.  Only
    :meth:`to_raw` materializes the whole trace.
    """

    def __init__(self, path: Path, header: dict):
        self.path = Path(path)
        self.header = header
        self.mode: str = header["mode"]
        self.runtime: float = header["runtime"]
        self.locations: List[Tuple[int, int]] = [
            tuple(lt) for lt in header["locations"]
        ]
        regions = RegionRegistry()
        for name, paradigm in zip(header["regions"], header["paradigms"]):
            regions.intern(name, paradigm)
        self.regions = regions
        self.provenance: Optional[dict] = header.get("provenance")
        self.loc_counts: List[int] = [int(c) for c in header["loc_counts"]]
        self.shard_events: int = int(header["shard_events"])
        self.stats = StreamStats()
        self._loc_index: Dict[Tuple[int, int], int] = {
            lt: i for i, lt in enumerate(self.locations)
        }

    # -- RawTrace-compatible metadata surface ---------------------------
    @property
    def n_locations(self) -> int:
        return len(self.locations)

    @property
    def n_events(self) -> int:
        return int(self.header["n_events"])

    @property
    def n_shards(self) -> int:
        return len(self.header["shards"])

    @property
    def n_ranks(self) -> int:
        return len({r for (r, _t) in self.locations})

    def loc_id(self, rank: int, thread: int) -> int:
        return self._loc_index[(rank, thread)]

    def threads_of(self, rank: int) -> List[int]:
        return sorted(t for (r, t) in self.locations if r == rank)

    def master_locations(self) -> List[int]:
        return [self._loc_index[(r, 0)]
                for r in sorted({r for (r, _t) in self.locations})]

    # -- streaming -------------------------------------------------------
    def iter_shards(self) -> Iterator[np.ndarray]:
        """Memory-mapped shard arrays, one at a time.

        Each yielded array is a read-only ``numpy.memmap`` over one shard
        file; the previous map is dropped before the next is opened, so at
        most one shard is resident.
        """
        from repro.measure.io import TraceFormatError

        for meta in self.header["shards"]:
            try:
                arr = np.load(self.path / meta["file"], mmap_mode="r")
            except (OSError, ValueError, EOFError, KeyError) as exc:
                raise TraceFormatError(
                    self.path,
                    f"unreadable shard: {type(exc).__name__}: {exc}",
                    offset=meta.get("file")) from exc
            if arr.dtype != SHARD_DTYPE or arr.ndim != 1:
                raise TraceFormatError(
                    self.path, f"shard has dtype {arr.dtype}, expected the "
                    "repro shard record layout", offset=meta.get("file"))
            if len(arr) != meta["n_events"]:
                raise TraceFormatError(
                    self.path,
                    f"{len(arr)} rows, manifest says {meta['n_events']}",
                    offset=meta.get("file"))
            self.stats.shards_opened += 1
            yield arr
            del arr  # release the map before opening the next shard

    def merged(self) -> Iterator[Tuple[int, Ev]]:
        """All events as ``(loc, Ev)`` in global merged order, streamed.

        Equivalent to :meth:`RawTrace.merged` on the materialized trace,
        but holds at most one shard's rows in memory.
        """
        stats = self.stats
        for arr in self.iter_shards():
            # one bulk copy per column per shard (bounded by shard size);
            # plain lists are much faster to walk than np scalar reads
            loc_l = arr["loc"].tolist()
            et_l = arr["etype"].tolist()
            reg_l = arr["region"].tolist()
            t_l = arr["t"].tolist()
            te_l = arr["t_enter"].tolist()
            a_l = arr["aux_a"].tolist()
            b_l = arr["aux_b"].tolist()
            d_ls = [arr[f].tolist() for f in _DELTA_FIELDS]
            d0, d1, d2, d3, d4, d5 = d_ls
            n = len(loc_l)
            stats.rows_streamed += n
            if n > stats.peak_resident_rows:
                stats.peak_resident_rows = n
                obs.gauge("io.shards.peak_resident_rows").set(float(n))
            for i in range(n):
                et = et_l[i]
                if d0[i] or d1[i] or d2[i] or d3[i] or d4[i] or d5[i]:
                    delta = WorkDelta(d0[i], d1[i], d2[i], d3[i], d4[i], d5[i])
                else:
                    delta = EMPTY_DELTA
                yield loc_l[i], Ev(
                    et, reg_l[i], t_l[i], delta,
                    aux=_reconstruct_aux(et, a_l[i], b_l[i]),
                    t_enter=te_l[i],
                )

    # -- materialization (the non-streaming escape hatch) ---------------
    def to_raw(self) -> RawTrace:
        """Materialize the full per-event :class:`RawTrace` (O(events))."""
        events: List[List[Ev]] = [[] for _ in self.locations]
        for loc, ev in self.merged():
            events[loc].append(ev)
        trace = RawTrace(
            mode=self.mode,
            regions=self.regions,
            locations=list(self.locations),
            events=events,
            runtime=self.runtime,
            pinning=None,
        )
        trace.provenance = self.provenance
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTrace({str(self.path)!r}, events={self.n_events}, "
            f"shards={self.n_shards}, locations={self.n_locations})"
        )
