"""Score-P-style measurement filtering.

A filter excludes regions from recording: no events are written and no
per-event overhead is paid for them, but the work itself (and any
compile-time counting instrumentation) still executes, and the excluded
regions' static counts roll into the enclosing region's work delta --
exactly the semantics of "basic blocks executed since the last *recorded*
event" in the paper's Sec. II-A.

Rules follow the Score-P filter-file spirit: an ordered list of
``EXCLUDE``/``INCLUDE`` glob patterns, later rules winning.
"""

from __future__ import annotations

import fnmatch
from typing import List, Optional, Sequence, Tuple

__all__ = ["FilterRules"]


class FilterRules:
    """Ordered include/exclude glob rules over region names."""

    def __init__(self, rules: Optional[Sequence[Tuple[str, str]]] = None):
        """``rules`` is a sequence of ("exclude"|"include", pattern)."""
        self._rules: List[Tuple[bool, str]] = []
        self._cache = {}
        for kind, pattern in rules or ():
            if kind == "exclude":
                self.exclude(pattern)
            elif kind == "include":
                self.include(pattern)
            else:
                raise ValueError(f"rule kind must be include/exclude, got {kind!r}")

    @classmethod
    def excluding(cls, *patterns: str) -> "FilterRules":
        """Convenience: a filter that only excludes the given patterns."""
        return cls([("exclude", p) for p in patterns])

    def exclude(self, pattern: str) -> "FilterRules":
        self._rules.append((True, pattern))
        self._cache.clear()
        return self

    def include(self, pattern: str) -> "FilterRules":
        self._rules.append((False, pattern))
        self._cache.clear()
        return self

    def is_filtered(self, region: str) -> bool:
        """True when ``region`` must not be recorded."""
        hit = self._cache.get(region)
        if hit is None:
            hit = False
            for excluded, pattern in self._rules:
                if fnmatch.fnmatchcase(region, pattern):
                    hit = excluded
            self._cache[region] = hit
        return hit

    def rules(self) -> List[Tuple[str, str]]:
        """The rules in serializable form."""
        return [("exclude" if e else "include", p) for e, p in self._rules]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FilterRules({self.rules()})"
