"""Performance benchmark harness behind the ``repro-bench`` CLI.

Times the toolchain's hot paths -- the discrete-event engine, the clock
replay (per-event vs. columnar), the analyzer walk, and a miniature
measurement campaign (serial vs. parallel workers) -- and writes the
numbers to ``BENCH_repro.json``.  A committed baseline
(``benchmarks/BENCH_baseline.json``) plus ``--baseline`` turns the run
into a smoke gate: any timed section slower than ``--threshold`` times
its baseline value fails the run (CI uses 2x).

The numbers are wall-clock best-of-``repeats`` measurements of single-
process work, so they are machine-dependent but robust against transient
load; the *speedup* figures (columnar vs. legacy replay) are
machine-independent enough to track the paper-repro's own performance
claims.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs

__all__ = [
    "run_benchmarks",
    "compare_to_baseline",
    "campaign_warnings",
    "render_comparison_markdown",
    "REGRESSION_KEYS",
]

#: (section, field) pairs gated by the baseline comparison; wall-time
#: fields only -- throughput/speedup fields are derived from them
REGRESSION_KEYS: Tuple[Tuple[str, str], ...] = (
    ("engine", "seconds"),
    ("replay_ltbb", "columnar_seconds"),
    ("replay_lthwctr", "columnar_seconds"),
    ("analyzer", "seconds"),
    ("shards", "stream_seconds"),
    ("serve", "warm_seconds"),
)


def _timed(session: "_obs.ObsSession", label: str,
           fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time, measured through obs spans.

    Each repetition runs inside a ``bench.<label>`` span on ``session``
    and the reported number is the minimum span duration, so
    ``BENCH_repro.json`` and a Chrome export of the session contain
    literally the same measurements.
    """
    best = float("inf")
    for rep in range(repeats):
        with session.span(f"bench.{label}", rep=rep) as sp:
            fn()
        best = min(best, sp.duration)
    return best


def _make_trace(quick: bool, vectorized: bool = True):
    from repro.machine import jureca_dc
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import Measurement
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.sim import CostModel, Engine
    from repro.sim.engine import EngineConfig

    if quick:
        cfg = MiniFEConfig.tiny(nx=64, n_ranks=4, threads_per_rank=2, cg_iters=4)
    else:
        cfg = MiniFEConfig.tiny(nx=96, n_ranks=8, threads_per_rank=4, cg_iters=8)
    cluster = jureca_dc(1)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))

    def build():
        return Engine(MiniFE(cfg), cluster, cost,
                      measurement=Measurement("tsc"),
                      config=EngineConfig(vectorized=vectorized)).run().trace

    return build


def run_benchmarks(quick: bool = False, workers: int = 2,
                   verbose: bool = True) -> Dict:
    """Time every hot path; returns the ``BENCH_repro.json`` document."""
    from repro.analysis import analyze_trace
    from repro.clocks import timestamp_trace

    repeats = 3 if quick else 5
    log = print if verbose else (lambda *_a, **_k: None)
    build = _make_trace(quick)

    # Timings go through obs spans: on the active session when
    # observability is enabled (so a Chrome export shares the bench's
    # timing source), else on a throwaway local session that is never
    # activated -- the timed code itself then still runs with
    # observability disabled, which is what the regression gate measures.
    session = _obs.active()
    if session is None:
        session = _obs.ObsSession()

    # Vectorized and legacy builds are timed in interleaved pairs and the
    # speedup is the ratio of the two minima: interleaving means both
    # minima are drawn from the same wall-clock window, so a machine-state
    # shift (frequency step, noisy neighbour) cannot land between two
    # sequential timing blocks and fake a regression, while taking minima
    # keeps a single spiked repetition from poisoning the ratio.
    build_legacy = _make_trace(quick, vectorized=False)
    engine_pairs = max(repeats, 5)
    engine_s = legacy_engine_s = float("inf")
    for _ in range(engine_pairs):
        engine_s = min(engine_s, _timed(session, "engine", build, 1))
        legacy_engine_s = min(
            legacy_engine_s, _timed(session, "engine_legacy", build_legacy, 1)
        )
    speedup = legacy_engine_s / engine_s
    trace = build()
    n_events = trace.n_events
    log(f"engine:          {engine_s * 1e3:8.2f} ms "
        f"({n_events / engine_s:,.0f} events/s, "
        f"{speedup:.1f}x vs legacy heapq walk)")

    results: Dict[str, Dict] = {
        "engine": {
            "seconds": engine_s,
            "legacy_seconds": legacy_engine_s,
            "speedup": speedup,
            "events": n_events,
            "events_per_sec": n_events / engine_s,
        },
    }

    for mode, kwargs in (("ltbb", {}), ("lthwctr", {"counter_seed": 1})):
        legacy_s = _timed(
            session, f"replay_{mode}_legacy",
            lambda: timestamp_trace(trace, mode, impl="legacy", **kwargs),
            repeats,
        )
        columnar_s = _timed(
            session, f"replay_{mode}_columnar",
            lambda: timestamp_trace(trace, mode, **kwargs), repeats,
        )
        results[f"replay_{mode}"] = {
            "legacy_seconds": legacy_s,
            "columnar_seconds": columnar_s,
            "speedup": legacy_s / columnar_s,
            "events_per_sec": n_events / columnar_s,
        }
        log(f"replay {mode:8s}{columnar_s * 1e3:8.2f} ms "
            f"({n_events / columnar_s:,.0f} events/s, "
            f"{legacy_s / columnar_s:.1f}x vs per-event walk)")

    tt = timestamp_trace(trace, "tsc")
    analyzer_s = _timed(session, "analyzer", lambda: analyze_trace(tt), repeats)
    results["analyzer"] = {
        "seconds": analyzer_s,
        "events_per_sec": n_events / analyzer_s,
    }
    log(f"analyzer:        {analyzer_s * 1e3:8.2f} ms "
        f"({n_events / analyzer_s:,.0f} events/s)")

    results["shards"] = _bench_shards(trace, log, session, repeats)
    results["campaign"] = _bench_campaign(quick, workers, log, session)
    results["serve"] = _bench_serve(quick, log, session, repeats)
    return {
        "format": "repro-bench-1",
        "quick": quick,
        "results": results,
    }


def _bench_shards(trace, log, session: "_obs.ObsSession",
                  repeats: int) -> Dict:
    """Out-of-core streaming throughput over a multi-shard archive.

    Writes the bench trace as a sharded archive (shards far smaller than
    the trace so the walk really crosses shard boundaries), then times a
    full streamed ``merged()`` walk and a streaming ``lt1`` clock replay.
    """
    import shutil
    import tempfile
    from pathlib import Path as _Path

    from repro.clocks.streaming import stream_clock_replay
    from repro.measure.shards import open_sharded_trace, write_sharded_trace

    n_events = trace.n_events
    shard_events = max(256, n_events // 8)
    tmp = _Path(tempfile.mkdtemp(prefix="repro-bench-")) / "bench.shards"
    try:
        write_s = _timed(
            session, "shards_write",
            lambda: write_sharded_trace(trace, tmp, shard_events=shard_events),
            repeats,
        )

        def stream():
            for _loc, _ev in open_sharded_trace(tmp).merged():
                pass

        stream_s = _timed(session, "shards_stream", stream, repeats)
        replay_s = _timed(
            session, "shards_replay_lt1",
            lambda: stream_clock_replay(open_sharded_trace(tmp), "lt1"),
            repeats,
        )
    finally:
        shutil.rmtree(tmp.parent, ignore_errors=True)
    log(f"shards:          {stream_s * 1e3:8.2f} ms streamed walk "
        f"({n_events / stream_s:,.0f} events/s, write {write_s * 1e3:.2f} ms, "
        f"lt1 replay {replay_s * 1e3:.2f} ms)")
    return {
        "shard_events": shard_events,
        "write_seconds": write_s,
        "stream_seconds": stream_s,
        "stream_events_per_sec": n_events / stream_s,
        "replay_lt1_seconds": replay_s,
    }


def _bench_campaign(quick: bool, workers: int, log,
                    session: "_obs.ObsSession") -> Dict:
    """Wall time of a miniature campaign, serial vs. ``workers`` processes.

    Registers a throwaway experiment for the duration of the measurement;
    caching is disabled so both runs really compute.  The fixture is
    sized so each worker's share of the campaign dwarfs the process-pool
    start-up cost (~100 ms) -- on a multi-core machine the parallel run
    should win, and ``repro-bench`` warns when it does not.  On a
    single-CPU machine (``cpu_count`` is recorded alongside the numbers)
    the workers time-slice one core and parallel cannot win; the warning
    says so instead of flagging a regression.
    """
    import os

    from repro.experiments import configs as C
    from repro.experiments.configs import ExperimentSpec
    from repro.experiments.workflow import run_experiment

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(
            nx=64 if quick else 96, n_ranks=4,
            cg_iters=6 if quick else 8, init_segments=2))

    name = "Bench-Micro"
    reps = 3 if quick else 4
    spec = ExperimentSpec(name, make, nodes=1, reps_ref=reps, reps_noisy=reps,
                          phases=("init", "solve"))
    C.EXPERIMENTS[name] = spec
    try:
        serial_s = _timed(
            session, "campaign_serial",
            lambda: run_experiment(name, seed=0, use_cache=False,
                                   preflight=False, workers=1), 1
        )
        parallel_s = _timed(
            session, "campaign_parallel",
            lambda: run_experiment(name, seed=0, use_cache=False,
                                   preflight=False, workers=workers), 1
        )
    finally:
        del C.EXPERIMENTS[name]
    log(f"campaign:        {serial_s * 1e3:8.2f} ms serial, "
        f"{parallel_s * 1e3:8.2f} ms with {workers} workers "
        f"({serial_s / parallel_s:.2f}x)")
    return {
        "serial_seconds": serial_s,
        "workers": workers,
        "parallel_seconds": parallel_s,
        "parallel_speedup": serial_s / parallel_s,
        "cpu_count": os.cpu_count() or 1,
    }


def _bench_serve(quick: bool, log, session: "_obs.ObsSession",
                 repeats: int) -> Dict:
    """Request latencies of the analysis service (``repro-serve``).

    Boots the asyncio service on an ephemeral port over a scratch cache
    and measures the serving funnel's three characteristic latencies:
    the **cold** request (one pool computation), the **warm** repeat
    (content-addressed cache, never touches the pool -- this is the
    gated number: a regression here means the cache read path got
    slower), and a **coalesced** burst of concurrent identical requests
    (single flight: one computation however many clients).
    """
    import asyncio
    import shutil
    import tempfile
    from pathlib import Path as _Path

    from repro.experiments import configs as C
    from repro.experiments.configs import ExperimentSpec

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(
            nx=64 if quick else 96, n_ranks=4,
            cg_iters=4 if quick else 6, init_segments=2))

    name = "Bench-Serve"
    C.EXPERIMENTS[name] = ExperimentSpec(name, make, nodes=1, reps_ref=1,
                                         reps_noisy=1,
                                         phases=("init", "solve"))
    tmp = _Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
    out: Dict = {}

    async def drive():
        from repro.serve.client import ServeClient
        from repro.serve.service import AnalysisService, ServeConfig

        service = AnalysisService(ServeConfig(
            port=0, workers=2, cache_dir=str(tmp / "cache"),
            tenant_rate=1e6, tenant_burst=1e6))
        await service.start()
        try:
            client = ServeClient("127.0.0.1", service.port)
            with session.span("bench.serve_cold") as sp:
                resp = await client.experiment(name, 0)
            if resp.status != 200:
                raise RuntimeError(f"serve bench cold request failed "
                                   f"({resp.status}): {resp.body[:200]!r}")
            cold_s = sp.duration
            warm_s = float("inf")
            for rep in range(max(2 * repeats, 5)):
                with session.span("bench.serve_warm", rep=rep) as sp:
                    await client.experiment(name, 0)
                warm_s = min(warm_s, sp.duration)
            k = 4
            with session.span("bench.serve_coalesced") as sp:
                burst = await asyncio.gather(
                    *(client.experiment(name, 1) for _ in range(k)))
            if any(r.status != 200 for r in burst):
                raise RuntimeError("serve bench coalesced burst failed")
            out.update({
                "cold_seconds": cold_s,
                "warm_seconds": warm_s,
                "warm_requests_per_sec": 1.0 / warm_s,
                "coalesce_clients": k,
                "coalesce_seconds": sp.duration,
                "cold_over_warm": cold_s / warm_s,
            })
        finally:
            await service.stop()

    try:
        with _obs.scoped(session):
            asyncio.run(drive())
    finally:
        del C.EXPERIMENTS[name]
        shutil.rmtree(tmp, ignore_errors=True)
    log(f"serve:           {out['warm_seconds'] * 1e3:8.2f} ms warm "
        f"({out['warm_requests_per_sec']:,.0f} req/s, cold "
        f"{out['cold_seconds'] * 1e3:.2f} ms, "
        f"{out['cold_over_warm']:.0f}x cold/warm, {out['coalesce_clients']} "
        f"coalesced in {out['coalesce_seconds'] * 1e3:.2f} ms)")
    return out


def compare_to_baseline(
    doc: Dict, baseline: Dict, threshold: float = 2.0,
    min_engine_speedup: float = 0.0,
) -> List[str]:
    """Regressions of ``doc`` vs. ``baseline`` (empty list = all clear).

    Only the wall-time fields in :data:`REGRESSION_KEYS` are gated; a
    section missing from the baseline is skipped so the gate survives
    benchmark additions without invalidating old baselines.  Comparing a
    quick run against a full baseline (or vice versa) is meaningless --
    that mismatch is reported as the single problem instead.

    ``min_engine_speedup`` additionally gates the *ratio* of the legacy
    heapq engine to the vectorized engine measured in this very run.
    Both sides see the same machine and the same load, so the ratio is
    stable where absolute wall times are not -- CI uses it to pin the
    engine's batch-drain speedup.
    """
    if doc.get("quick") != baseline.get("quick"):
        return [
            f"fixture mismatch: run quick={doc.get('quick')} vs baseline "
            f"quick={baseline.get('quick')} -- regenerate the baseline with "
            f"the same --quick setting"
        ]
    problems = []
    for section, field in REGRESSION_KEYS:
        base = baseline.get("results", {}).get(section, {}).get(field)
        cur = doc.get("results", {}).get(section, {}).get(field)
        if base is None or cur is None:
            continue
        if cur > threshold * base:
            problems.append(
                f"{section}.{field}: {cur * 1e3:.2f} ms vs baseline "
                f"{base * 1e3:.2f} ms (>{threshold:g}x)"
            )
    if min_engine_speedup > 0.0:
        speedup = doc.get("results", {}).get("engine", {}).get("speedup")
        if speedup is None:
            problems.append(
                "engine.speedup missing from results -- cannot check "
                f"the >= {min_engine_speedup:g}x engine gate"
            )
        elif speedup < min_engine_speedup:
            problems.append(
                f"engine.speedup: vectorized engine only {speedup:.2f}x "
                f"over the legacy walk (gate: >= {min_engine_speedup:g}x)"
            )
    return problems


def campaign_warnings(doc: Dict) -> List[str]:
    """Non-fatal oddities worth surfacing (parallel slower than serial)."""
    camp = doc.get("results", {}).get("campaign", {})
    serial = camp.get("serial_seconds")
    parallel = camp.get("parallel_seconds")
    if serial is None or parallel is None or parallel <= serial:
        return []
    cpus = camp.get("cpu_count", 0)
    msg = (
        f"campaign: parallel ({parallel * 1e3:.1f} ms, "
        f"{camp.get('workers')} workers) slower than serial "
        f"({serial * 1e3:.1f} ms)"
    )
    if cpus and cpus < 2:
        msg += f" -- expected on this {cpus}-CPU machine, workers time-slice one core"
    else:
        msg += " -- pool start-up dominates or the machine is oversubscribed"
    return [msg]


def render_comparison_markdown(doc: Dict, baseline: Dict,
                               threshold: float = 2.0) -> str:
    """Markdown summary table of ``doc`` vs. ``baseline`` (the CI artifact).

    One row per (section, field) present in either document; wall-time
    fields show the regression ratio against ``threshold``, derived
    fields (speedups, throughput) are listed for context.
    """
    gated = set(REGRESSION_KEYS)
    lines = [
        "# repro-bench comparison",
        "",
        f"Fixture: `quick={doc.get('quick')}`; regression threshold: "
        f"`{threshold:g}x` on gated wall times.",
        "",
        "| section.field | baseline | current | ratio | gate |",
        "|---|---:|---:|---:|:---|",
    ]
    base_r = baseline.get("results", {})
    cur_r = doc.get("results", {})
    for section in sorted(set(base_r) | set(cur_r)):
        fields = sorted(set(base_r.get(section, {})) | set(cur_r.get(section, {})))
        for field in fields:
            base = base_r.get(section, {}).get(field)
            cur = cur_r.get(section, {}).get(field)
            if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
                continue
            if field.endswith("seconds"):
                fmt = lambda v: f"{v * 1e3:.2f} ms"
            elif field.endswith("per_sec"):
                fmt = lambda v: f"{v:,.0f}/s"
            else:
                fmt = lambda v: f"{v:g}"
            ratio = (cur / base) if base else float("inf")
            if (section, field) in gated:
                gate = "ok" if cur <= threshold * base else "**REGRESSION**"
            else:
                gate = ""
            lines.append(
                f"| {section}.{field} | {fmt(base)} | {fmt(cur)} "
                f"| {ratio:.2f}x | {gate} |"
            )
    for warning in campaign_warnings(doc):
        lines += ["", f"> warning: {warning}"]
    return "\n".join(lines) + "\n"


def write_bench(doc: Dict, path: Path) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_bench(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None
