"""Performance benchmark harness behind the ``repro-bench`` CLI.

Times the toolchain's hot paths -- the discrete-event engine, the clock
replay (per-event vs. columnar), the analyzer walk, and a miniature
measurement campaign (serial vs. parallel workers) -- and writes the
numbers to ``BENCH_repro.json``.  A committed baseline
(``benchmarks/BENCH_baseline.json``) plus ``--baseline`` turns the run
into a smoke gate: any timed section slower than ``--threshold`` times
its baseline value fails the run (CI uses 2x).

The numbers are wall-clock best-of-``repeats`` measurements of single-
process work, so they are machine-dependent but robust against transient
load; the *speedup* figures (columnar vs. legacy replay) are
machine-independent enough to track the paper-repro's own performance
claims.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs

__all__ = ["run_benchmarks", "compare_to_baseline", "REGRESSION_KEYS"]

#: (section, field) pairs gated by the baseline comparison; wall-time
#: fields only -- throughput/speedup fields are derived from them
REGRESSION_KEYS: Tuple[Tuple[str, str], ...] = (
    ("engine", "seconds"),
    ("replay_ltbb", "columnar_seconds"),
    ("replay_lthwctr", "columnar_seconds"),
    ("analyzer", "seconds"),
)


def _timed(session: "_obs.ObsSession", label: str,
           fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time, measured through obs spans.

    Each repetition runs inside a ``bench.<label>`` span on ``session``
    and the reported number is the minimum span duration, so
    ``BENCH_repro.json`` and a Chrome export of the session contain
    literally the same measurements.
    """
    best = float("inf")
    for rep in range(repeats):
        with session.span(f"bench.{label}", rep=rep) as sp:
            fn()
        best = min(best, sp.duration)
    return best


def _make_trace(quick: bool):
    from repro.machine import jureca_dc
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import Measurement
    from repro.miniapps.minife import MiniFE, MiniFEConfig
    from repro.sim import CostModel, Engine

    if quick:
        cfg = MiniFEConfig.tiny(nx=64, n_ranks=4, threads_per_rank=2, cg_iters=4)
    else:
        cfg = MiniFEConfig.tiny(nx=96, n_ranks=8, threads_per_rank=4, cg_iters=8)
    cluster = jureca_dc(1)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))

    def build():
        return Engine(MiniFE(cfg), cluster, cost,
                      measurement=Measurement("tsc")).run().trace

    return build


def run_benchmarks(quick: bool = False, workers: int = 2,
                   verbose: bool = True) -> Dict:
    """Time every hot path; returns the ``BENCH_repro.json`` document."""
    from repro.analysis import analyze_trace
    from repro.clocks import timestamp_trace

    repeats = 3 if quick else 5
    log = print if verbose else (lambda *_a, **_k: None)
    build = _make_trace(quick)

    # Timings go through obs spans: on the active session when
    # observability is enabled (so a Chrome export shares the bench's
    # timing source), else on a throwaway local session that is never
    # activated -- the timed code itself then still runs with
    # observability disabled, which is what the regression gate measures.
    session = _obs.active()
    if session is None:
        session = _obs.ObsSession()

    engine_s = _timed(session, "engine", build, repeats)
    trace = build()
    n_events = trace.n_events
    log(f"engine:          {engine_s * 1e3:8.2f} ms "
        f"({n_events / engine_s:,.0f} events/s)")

    results: Dict[str, Dict] = {
        "engine": {
            "seconds": engine_s,
            "events": n_events,
            "events_per_sec": n_events / engine_s,
        },
    }

    for mode, kwargs in (("ltbb", {}), ("lthwctr", {"counter_seed": 1})):
        legacy_s = _timed(
            session, f"replay_{mode}_legacy",
            lambda: timestamp_trace(trace, mode, impl="legacy", **kwargs),
            repeats,
        )
        columnar_s = _timed(
            session, f"replay_{mode}_columnar",
            lambda: timestamp_trace(trace, mode, **kwargs), repeats,
        )
        results[f"replay_{mode}"] = {
            "legacy_seconds": legacy_s,
            "columnar_seconds": columnar_s,
            "speedup": legacy_s / columnar_s,
            "events_per_sec": n_events / columnar_s,
        }
        log(f"replay {mode:8s}{columnar_s * 1e3:8.2f} ms "
            f"({n_events / columnar_s:,.0f} events/s, "
            f"{legacy_s / columnar_s:.1f}x vs per-event walk)")

    tt = timestamp_trace(trace, "tsc")
    analyzer_s = _timed(session, "analyzer", lambda: analyze_trace(tt), repeats)
    results["analyzer"] = {
        "seconds": analyzer_s,
        "events_per_sec": n_events / analyzer_s,
    }
    log(f"analyzer:        {analyzer_s * 1e3:8.2f} ms "
        f"({n_events / analyzer_s:,.0f} events/s)")

    results["campaign"] = _bench_campaign(quick, workers, log, session)
    return {
        "format": "repro-bench-1",
        "quick": quick,
        "results": results,
    }


def _bench_campaign(quick: bool, workers: int, log,
                    session: "_obs.ObsSession") -> Dict:
    """Wall time of a miniature campaign, serial vs. ``workers`` processes.

    Registers a throwaway experiment for the duration of the measurement;
    caching is disabled so both runs really compute.
    """
    from repro.experiments import configs as C
    from repro.experiments.configs import ExperimentSpec
    from repro.experiments.workflow import run_experiment

    def make():
        from repro.miniapps.minife import MiniFE, MiniFEConfig

        return MiniFE(MiniFEConfig.tiny(
            nx=48 if quick else 64, n_ranks=4, cg_iters=3, init_segments=2))

    name = "Bench-Micro"
    spec = ExperimentSpec(name, make, nodes=1, reps_ref=2, reps_noisy=2,
                          phases=("init", "solve"))
    C.EXPERIMENTS[name] = spec
    try:
        serial_s = _timed(
            session, "campaign_serial",
            lambda: run_experiment(name, seed=0, use_cache=False,
                                   preflight=False, workers=1), 1
        )
        parallel_s = _timed(
            session, "campaign_parallel",
            lambda: run_experiment(name, seed=0, use_cache=False,
                                   preflight=False, workers=workers), 1
        )
    finally:
        del C.EXPERIMENTS[name]
    log(f"campaign:        {serial_s * 1e3:8.2f} ms serial, "
        f"{parallel_s * 1e3:8.2f} ms with {workers} workers")
    return {
        "serial_seconds": serial_s,
        "workers": workers,
        "parallel_seconds": parallel_s,
    }


def compare_to_baseline(
    doc: Dict, baseline: Dict, threshold: float = 2.0
) -> List[str]:
    """Regressions of ``doc`` vs. ``baseline`` (empty list = all clear).

    Only the wall-time fields in :data:`REGRESSION_KEYS` are gated; a
    section missing from the baseline is skipped so the gate survives
    benchmark additions without invalidating old baselines.  Comparing a
    quick run against a full baseline (or vice versa) is meaningless --
    that mismatch is reported as the single problem instead.
    """
    if doc.get("quick") != baseline.get("quick"):
        return [
            f"fixture mismatch: run quick={doc.get('quick')} vs baseline "
            f"quick={baseline.get('quick')} -- regenerate the baseline with "
            f"the same --quick setting"
        ]
    problems = []
    for section, field in REGRESSION_KEYS:
        base = baseline.get("results", {}).get(section, {}).get(field)
        cur = doc.get("results", {}).get(section, {}).get(field)
        if base is None or cur is None:
            continue
        if cur > threshold * base:
            problems.append(
                f"{section}.{field}: {cur * 1e3:.2f} ms vs baseline "
                f"{base * 1e3:.2f} ms (>{threshold:g}x)"
            )
    return problems


def write_bench(doc: Dict, path: Path) -> None:
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_bench(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None
