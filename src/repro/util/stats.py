"""Small statistics helpers used by the experiment harness.

The paper reports arithmetic means over five repetitions and (implicitly)
run-to-run spreads; these helpers centralize that logic so experiments and
tests share one definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["mean_ci", "summarize", "welford", "RunningStats", "relative_spread"]


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Mean and half-width of a normal-approximation confidence interval.

    With fewer than two samples the half-width is zero (a single
    measurement carries no spread information).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("mean_ci requires at least one value")
    m = float(arr.mean())
    if arr.size < 2:
        return m, 0.0
    # Normal quantile for the two-sided interval; scipy is available but a
    # closed form keeps this module dependency-free for the hot path.
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + confidence / 2.0))
    half = z * float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return m, half


def summarize(values: Sequence[float]) -> dict:
    """Return ``{n, mean, std, min, max}`` for a sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize requires at least one value")
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / mean -- the paper's informal 'run-to-run variation'."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("relative_spread requires at least one value")
    m = float(arr.mean())
    if m == 0.0:
        return 0.0
    return float((arr.max() - arr.min()) / m)


@dataclass
class RunningStats:
    """Welford online mean/variance accumulator."""

    n: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


def welford(values: Iterable[float]) -> RunningStats:
    """Accumulate an iterable into a :class:`RunningStats`."""
    rs = RunningStats()
    for v in values:
        rs.add(v)
    return rs
