"""Deterministic, named random-number streams.

Reproducibility is a first-class requirement of this project: the paper's
central experiment repeats the same measurement five times under different
noise realizations and shows that logical traces are bit-identical while
physical ones vary.  To express "same program, different noise realization"
we derive independent :class:`numpy.random.Generator` instances from a
``(base_seed, stream_name, *key)`` tuple via ``numpy``'s ``SeedSequence``
spawning.  Two properties matter:

* Streams with distinct names/keys are statistically independent.
* A stream's output depends only on its key, never on how many draws other
  streams have made.  Adding a new noise source therefore never perturbs an
  existing one -- essential when comparing measurement modes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

__all__ = ["stream_seed", "RngStreams"]


def stream_seed(base_seed: int, *key) -> int:
    """Derive a 64-bit child seed from ``base_seed`` and an arbitrary key.

    The key elements are rendered with ``repr`` and hashed, so any mix of
    strings, ints and tuples is acceptable.  The result is stable across
    processes and Python versions (no reliance on ``hash()``).
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for part in key:
        h.update(b"\x1f")
        h.update(repr(part).encode())
    return int.from_bytes(h.digest()[:8], "little")


class RngStreams:
    """A factory of independent named random generators.

    Example
    -------
    >>> rngs = RngStreams(seed=7)
    >>> cpu = rngs.get("cpu-noise", rank=3, thread=1)
    >>> net = rngs.get("net-noise", link=(0, 1))
    >>> cpu is rngs.get("cpu-noise", rank=3, thread=1)
    True
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._cache: Dict[Tuple, np.random.Generator] = {}

    def get(self, name: str, **key) -> np.random.Generator:
        """Return (and memoize) the generator for ``name`` + keyword key."""
        k = (name,) + tuple(sorted(key.items()))
        gen = self._cache.get(k)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.seed, *k))
            self._cache[k] = gen
        return gen

    def fresh(self, name: str, **key) -> np.random.Generator:
        """Return a *new* generator for the key without memoizing it."""
        k = (name,) + tuple(sorted(key.items()))
        return np.random.default_rng(stream_seed(self.seed, *k))

    def child(self, *key) -> "RngStreams":
        """Derive a whole child stream family (e.g. one per repetition)."""
        return RngStreams(stream_seed(self.seed, "child", *key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self.seed}, cached={len(self._cache)})"
