"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Iterable, Tuple, Type, Union

__all__ = ["check_positive", "check_nonnegative", "check_in", "check_type"]


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_nonnegative(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_in(name: str, value: Any, allowed: Iterable) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")


def check_type(name: str, value: Any, types: Union[Type, Tuple[Type, ...]]) -> None:
    """Raise ``TypeError`` unless ``isinstance(value, types)``."""
    if not isinstance(value, types):
        expected = types.__name__ if isinstance(types, type) else "/".join(t.__name__ for t in types)
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
