"""Shared utilities: deterministic RNG streams, statistics, table rendering.

These helpers are deliberately dependency-light so every other subpackage
(:mod:`repro.machine`, :mod:`repro.sim`, :mod:`repro.analysis`, ...) can use
them without import cycles.
"""

from repro.util.rng import RngStreams, stream_seed
from repro.util.stats import mean_ci, summarize, welford
from repro.util.tables import format_table, format_grouped_bars
from repro.util.validation import check_positive, check_in, check_type

__all__ = [
    "RngStreams",
    "stream_seed",
    "mean_ci",
    "summarize",
    "welford",
    "format_table",
    "format_grouped_bars",
    "check_positive",
    "check_in",
    "check_type",
]
