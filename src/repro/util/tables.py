"""Plain-text rendering of the paper's tables and bar figures.

The benchmark harness prints every reproduced table/figure as text so the
output can be diffed against the paper and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_grouped_bars"]


def _fmt_cell(value, floatfmt: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render an aligned ASCII table.

    Columns are sized to their widest cell; the first column is
    left-aligned (labels), all others right-aligned (numbers).
    """
    str_rows: List[List[str]] = [[_fmt_cell(c, floatfmt) for c in row] for row in rows]
    cols = len(headers)
    for r in str_rows:
        if len(r) != cols:
            raise ValueError(f"row has {len(r)} cells, expected {cols}: {r}")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows else len(str(headers[i]))
        for i in range(cols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, c in enumerate(cells):
            parts.append(c.ljust(widths[i]) if i == 0 else c.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_grouped_bars(
    data: Mapping[str, Mapping[str, float]],
    title: Optional[str] = None,
    width: int = 40,
    floatfmt: str = ".3f",
) -> str:
    """Render ``{group: {series: value}}`` as horizontal text bars.

    Used for the paper's stacked/grouped bar figures (Figs. 3-9): each group
    (e.g. a measurement mode) gets one block, each series (e.g. a call path
    or experiment) one bar scaled to the global maximum.
    """
    all_vals = [v for series in data.values() for v in series.values()]
    vmax = max(all_vals) if all_vals else 1.0
    if vmax <= 0:
        vmax = 1.0
    label_w = max((len(s) for series in data.values() for s in series), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for group, series in data.items():
        lines.append(f"[{group}]")
        for name, value in series.items():
            n = int(round(width * max(value, 0.0) / vmax))
            bar = "#" * n
            lines.append(f"  {name.ljust(label_w)} |{bar.ljust(width)}| {format(value, floatfmt)}")
    return "\n".join(lines)
