"""`repro-serve`: asyncio analysis service over the shared result store.

A stdlib-only HTTP/1.1 service (``asyncio.start_server``; no third-party
web framework) that accepts experiment configs and trace-archive
analysis requests and answers them from the same content-addressed
store as offline ``run_experiment`` calls.  The request path is a
funnel, cheapest exit first:

1. **quota** -- per-tenant token bucket (:mod:`repro.serve.quota`);
   an empty bucket answers ``429`` with an exact ``Retry-After``.
2. **warm cache** -- the in-memory bytes LRU, then the disk store
   (:mod:`repro.serve.store`).  Warm requests never touch the process
   pool; the ``serve.cache_hits`` counter and the ``X-Repro-Cache``
   response header say which tier answered.
3. **single flight** -- concurrent requests for the same content
   address coalesce onto one in-flight future (``serve.coalesced``);
   exactly one computation runs no matter how many clients ask.
4. **backpressure** -- a bounded dispatch queue; when it fills, the
   service sheds load with ``503`` + ``Retry-After``.  Expensive
   experiment jobs shed at half depth, cheap analysis jobs only when
   the queue is truly full -- under overload the service degrades to a
   cache/analysis server instead of collapsing.
5. **dispatch** -- an adaptive batcher drains the queue and shards the
   batch across a process pool (``resolve_workers`` sizing, fork
   context), each job under the campaign supervisor's watchdog/retry
   discipline (bounded attempts, timeout per attempt).

Responses for experiment requests are the workflow's canonical result
serialization, so served bytes are bit-identical to
``serialize_result(run_experiment(...))`` -- the suite asserts equality.
"""

from __future__ import annotations

import asyncio
import json
import traceback
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.experiments import workflow as W
from repro.experiments.configs import EXPERIMENTS
from repro.measure.io import (
    TraceFormatError,
    archive_hash,
    archive_suffix,
    read_trace,
    store_archive_bytes,
)
from repro.serve import jobs as J
from repro.serve.quota import QuotaManager
from repro.serve.store import ResultStore, resolve_cache_max_bytes

__all__ = ["ServeConfig", "AnalysisService", "Job"]

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"

_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: sentinel body from ``_read_request`` for a declared-oversize request
#: (the body is never read; the connection must close after the 413)
_OVERSIZE = object()

_STATUS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Tunables of one service instance (all have serving defaults)."""

    host: str = "127.0.0.1"
    port: int = 8337
    workers: Optional[int] = None        #: pool size; None -> resolve_workers
    cache_dir: Optional[str] = None      #: store root; None -> workflow cache
    cache_max_bytes: Optional[int] = None  #: None -> REPRO_CACHE_MAX_BYTES
    queue_limit: int = 64                #: dispatch queue bound (backpressure)
    batch_max: int = 8                   #: max jobs drained per dispatch round
    tenant_rate: float = 20.0            #: quota tokens/second per tenant
    tenant_burst: float = 40.0           #: quota bucket depth
    job_timeout: float = 300.0           #: watchdog seconds per job attempt
    max_job_attempts: int = 2            #: bounded retries (campaign style)
    mem_cache_entries: int = 128         #: in-memory response-bytes LRU size
    max_body_bytes: int = 64 * 1024 * 1024  #: request body bound
    start_dispatcher: bool = True        #: False -> jobs queue but never run
    time_fn: Callable[[], float] = field(default=None)  # type: ignore[assignment]


class Job:
    """One queued computation: content address + how to produce it."""

    __slots__ = ("key", "kind", "fn", "args", "future", "attempts")

    def __init__(self, key: str, kind: str, fn, args: tuple,
                 future: "asyncio.Future[bytes]") -> None:
        self.key = key
        self.kind = kind          # "experiment" (expensive) | "analysis"
        self.fn = fn
        self.args = args
        self.future = future
        self.attempts = 0


class AnalysisService:
    """The asyncio HTTP service; see the module docstring for the funnel."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        root = Path(self.config.cache_dir) if self.config.cache_dir \
            else W._CACHE_DIR
        self.store = ResultStore(
            root, max_bytes=resolve_cache_max_bytes(self.config.cache_max_bytes))
        kwargs = {}
        if self.config.time_fn is not None:
            kwargs["time_fn"] = self.config.time_fn
        self.quotas = QuotaManager(self.config.tenant_rate,
                                   self.config.tenant_burst, **kwargs)
        self.n_workers = W.resolve_workers(self.config.workers)
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[bytes]"] = {}
        self._queue: "deque[Job]" = deque()
        self._wake = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._job_ewma = 1.0   # seconds; drives Retry-After on shed
        self._closing = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        if obs.active() is None:
            obs.enable()
        self.store.root.mkdir(parents=True, exist_ok=True)
        self.store.sweep_staging()
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers, mp_context=get_context("fork"))
        if self.config.start_dispatcher:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)

    @property
    def port(self) -> int:
        """Bound port (useful with ``port=0`` in tests)."""
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for job in self._queue:
            if not job.future.done():
                job.future.cancel()
        self._queue.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    def resume_dispatcher(self) -> None:
        """Start the dispatcher late (tests boot with it paused)."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop())
            self._wake.set()

    # -- HTTP plumbing ------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while not self._closing:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                if body is _OVERSIZE:
                    payload = _jerr(
                        f"request body exceeds the "
                        f"{self.config.max_body_bytes} byte limit")
                    self._write_response(writer, 413, _JSON, payload,
                                         {}, False)
                    await writer.drain()
                    break
                try:
                    status, ctype, payload, extra = await self._route(
                        method, path, headers, body)
                except Exception:
                    status, ctype, extra = 500, _JSON, {}
                    payload = _jerr("internal error", traceback.format_exc())
                keep = headers.get("connection", "").lower() != "close"
                self._write_response(writer, status, ctype, payload,
                                     extra, keep)
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            line = await reader.readline()
        except (ConnectionResetError, OSError):
            return None
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 3:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if not hline or hline in (b"\r\n", b"\n"):
                break
            name, _sep, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            return None
        if length < 0:
            return None
        if length > self.config.max_body_bytes:
            # do not read the body: answer 413 and drop the connection
            return method, target, headers, _OVERSIZE
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    @staticmethod
    def _write_response(writer: asyncio.StreamWriter, status: int,
                        ctype: str, payload: bytes, extra: Dict[str, str],
                        keep: bool) -> None:
        head = [f"HTTP/1.1 {status} {_STATUS.get(status, 'Unknown')}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(payload)}",
                f"Connection: {'keep-alive' if keep else 'close'}"]
        head.extend(f"{k}: {v}" for k, v in extra.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)

    # -- routing ------------------------------------------------------------
    async def _route(self, method: str, target: str,
                     headers: Dict[str, str],
                     body: bytes) -> Tuple[int, str, bytes, Dict[str, str]]:
        url = urlsplit(target)
        path, query = url.path.rstrip("/") or "/", parse_qs(url.query)
        obs.counter("serve.requests", route=path.split("/v1/")[-1]).inc()
        if path == "/healthz" and method == "GET":
            return self._get_healthz()
        if path == "/metrics" and method == "GET":
            return self._get_metrics(query)
        if path == "/v1/experiment" and method == "POST":
            return await self._post_experiment(headers, body)
        if path == "/v1/analyze" and method == "POST":
            return await self._post_analyze(headers, body)
        if path == "/v1/traces" and method == "PUT":
            return await self._put_trace(headers, body)
        if path == "/v1/ingest" and method == "POST":
            return await self._post_ingest(headers, body)
        if path.startswith("/v1/traces/") and method == "GET":
            return self._get_trace(path.rsplit("/", 1)[1])
        if path.startswith("/v1/results/") and method == "GET":
            return self._get_result(path.rsplit("/", 1)[1])
        known = (path in ("/healthz", "/metrics", "/v1/experiment",
                          "/v1/analyze", "/v1/traces", "/v1/ingest")
                 or path.startswith(("/v1/traces/", "/v1/results/")))
        if known:
            return 405, _JSON, _jerr(f"{method} not allowed on {path}"), {}
        return 404, _JSON, _jerr(f"no route {path}"), {}

    # -- read-only endpoints ------------------------------------------------
    def _get_healthz(self):
        doc = {
            "status": "ok",
            "queue_depth": len(self._queue),
            "queue_limit": self.config.queue_limit,
            "inflight": len(self._inflight),
            "workers": self.n_workers,
            "store_bytes": self.store.total_bytes(),
            "store_max_bytes": self.store.max_bytes,
            "tenants": self.quotas.snapshot(),
        }
        return 200, _JSON, _jdoc(doc), {}

    def _get_metrics(self, query):
        session = obs.active()
        snapshot = session.snapshot() if session else {"metrics": {}}
        if query.get("format", [""])[0] == "json":
            return 200, _JSON, _jdoc(snapshot), {}
        text = obs.prometheus_text(snapshot)
        return 200, _TEXT, text.encode("utf-8"), {}

    def _get_result(self, key: str):
        data = self._cached(key)
        if data is None:
            return 404, _JSON, _jerr(f"no cached result {key}"), {}
        return 200, _JSON, data, {"X-Repro-Cache": "hit"}

    # -- trace uploads ------------------------------------------------------
    async def _put_trace(self, headers, body):
        ok, retry = self._admit(headers)
        if not ok:
            return retry
        name = headers.get("x-archive-name", "trace.trace.json.gz")
        try:
            suffix = archive_suffix(name)
        except ValueError as exc:
            return 400, _JSON, _jerr(str(exc)), {}
        digest, path = store_archive_bytes(
            body, self.store.root, suffix=suffix, prefix="cas-")
        # full-archive validation off the event loop: a truncated or
        # bit-flipped upload is quarantined and answered with the typed
        # diagnostic instead of poisoning later /v1/analyze jobs
        try:
            await asyncio.to_thread(read_trace, path)
        except TraceFormatError as exc:
            moved = W._quarantine(path)
            obs.counter("serve.upload_rejects").inc()
            return 400, _JSON, _jerr(
                "malformed trace archive", str(exc)), {
                "X-Repro-Quarantine": moved.name if moved else "deleted"}
        self.store.evict(protect=(path.name,))
        return 201, _JSON, _jdoc({"hash": digest, "path": path.name}), {}

    async def _post_ingest(self, headers, body):
        """Hardened ingestion of a foreign trace upload.

        Accepted Chrome inputs are converted to a canonical archive and
        stored content-addressed (immediately analyzable via
        ``/v1/analyze``); accepted comm-op inputs return their
        normalized op document inline.  Rejected bytes are quarantined
        beside the store (``*.corrupt-N``) and answered ``400`` with the
        full ingest report.
        """
        from repro.ingest import IngestError, IngestLimits, ingest_bytes
        from repro.measure.io import trace_archive_bytes

        ok, retry = self._admit(headers)
        if not ok:
            return retry
        name = headers.get("x-archive-name", "<upload>")
        fmt = headers.get("x-ingest-format") or None
        limits = IngestLimits(max_bytes=self.config.max_body_bytes)
        try:
            result = await asyncio.to_thread(
                ingest_bytes, body, name=name, fmt=fmt, limits=limits)
        except IngestError as exc:
            stash = self.store.root / (
                f"ingest-{archive_hash(body)[:20]}.upload")
            try:
                stash.write_bytes(body)
                moved = W._quarantine(stash)
            except OSError:
                moved = None
            report = exc.report.to_dict()
            report["quarantine_path"] = moved.name if moved else None
            return 400, _JSON, _jdoc(
                {"error": "ingest rejected", "report": report}), {}
        doc = {"kind": result.kind, "report": result.report.to_dict()}
        if result.kind == "trace":
            data = await asyncio.to_thread(trace_archive_bytes,
                                           result.trace)
            digest, path = store_archive_bytes(
                data, self.store.root, suffix=".trace.json.gz",
                prefix="cas-")
            self.store.evict(protect=(path.name,))
            doc["hash"] = digest
            doc["path"] = path.name
        else:
            from repro.ingest.commops import commops_doc

            doc["n_ranks"] = result.program.n_ranks
            doc["ops"] = commops_doc(result.program)["ops"]
        return 201, _JSON, _jdoc(doc), {}

    def _trace_path(self, digest: str) -> Optional[Path]:
        hits = sorted(self.store.root.glob(f"cas-{digest[:20]}-trace*"))
        hits = [h for h in hits if ".corrupt-" not in h.name
                and ".tmp-" not in h.name]
        return hits[0] if hits else None

    def _get_trace(self, digest: str):
        path = self._trace_path(digest)
        if path is None:
            return 404, _JSON, _jerr(f"no trace {digest}"), {}
        self.store.touch(path.name)
        return 200, "application/octet-stream", path.read_bytes(), {}

    # -- compute endpoints --------------------------------------------------
    async def _post_experiment(self, headers, body):
        ok, retry = self._admit(headers)
        if not ok:
            return retry
        try:
            req = json.loads(body.decode("utf-8"))
            name, seed = str(req["name"]), int(req.get("seed", 0))
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return 400, _JSON, _jerr(f"bad request body: {exc}"), {}
        if name not in EXPERIMENTS:
            return 404, _JSON, _jerr(f"unknown experiment {name!r}"), {}
        # response bytes cache as a blob beside the workflow's result dir;
        # a dir cached by an offline campaign still answers without the
        # pool via the loader fallback below
        key = W.cache_key(name, seed) + ".body"
        args = (name, seed, str(self.store.root), self.store.max_bytes)
        return await self._serve_computed(
            key, "experiment", J.execute_experiment_job, args,
            loader=lambda: self._load_offline_result(name, seed))

    def _load_offline_result(self, name: str, seed: int) -> Optional[bytes]:
        """Serialize a result dir cached by an offline campaign (no pool).

        Runs in a thread off the event loop.  Any load failure returns
        ``None`` -- the request falls through to a pool computation,
        which re-runs the campaign supervisor's own corruption handling.
        """
        prev = self.store.root / W.cache_key(name, seed)
        if not prev.is_dir():
            return None
        try:
            return W.serialize_result(W._load(prev, name, seed))
        except Exception:
            return None

    async def _post_analyze(self, headers, body):
        ok, retry = self._admit(headers)
        if not ok:
            return retry
        try:
            req = json.loads(body.decode("utf-8"))
            op = str(req["op"])
            trace = str(req["trace"])
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return 400, _JSON, _jerr(f"bad request body: {exc}"), {}
        if op not in J.ANALYSIS_OPS:
            return 400, _JSON, _jerr(
                f"unknown op {op!r}; expected one of {J.ANALYSIS_OPS}"), {}
        path = self._trace_path(trace)
        if path is None:
            return 404, _JSON, _jerr(f"trace {trace} not uploaded"), {}
        extra = None
        trace_b = req.get("trace_b")
        if trace_b is not None:
            extra = self._trace_path(str(trace_b))
            if extra is None:
                return 404, _JSON, _jerr(f"trace {trace_b} not uploaded"), {}
        params = dict(req.get("params", {}))
        params["trace"] = trace
        if trace_b is not None:
            params["trace_b"] = str(trace_b)
        manifest = J.analysis_manifest(op, params)
        key = ResultStore.entry_name(manifest["hash"], f"analysis-{op}")
        args = (op, str(path), params,
                str(extra) if extra is not None else None)
        return await self._serve_computed(
            key, "analysis", J.execute_analysis_job, args)

    # -- the funnel ---------------------------------------------------------
    def _admit(self, headers):
        """Token-bucket gate; returns ``(True, None)`` or a 429 tuple."""
        tenant = headers.get("x-tenant", "anonymous")
        admitted, retry_after = self.quotas.admit(tenant)
        if admitted:
            return True, None
        obs.counter("serve.quota_rejections", tenant=tenant).inc()
        return False, (429, _JSON,
                       _jerr(f"tenant {tenant!r} over quota"),
                       {"Retry-After": self.quotas.retry_after_header(
                           retry_after)})

    def _cached(self, key: str) -> Optional[bytes]:
        """Warm tiers: in-memory LRU, then the disk store.  No pool."""
        data = self._mem.get(key)
        if data is not None:
            self._mem.move_to_end(key)
            self.store.touch(key)
            obs.counter("serve.cache_hits", tier="mem").inc()
            return data
        data = self.store.get_bytes(key)
        if data is not None:
            obs.counter("serve.cache_hits", tier="store").inc()
            self._remember(key, data)
            return data
        return None

    def _remember(self, key: str, data: bytes) -> None:
        self._mem[key] = data
        self._mem.move_to_end(key)
        while len(self._mem) > self.config.mem_cache_entries:
            self._mem.popitem(last=False)

    async def _serve_computed(self, key: str, kind: str, fn, args,
                              loader=None):
        """Warm-hit / coalesce / enqueue path shared by compute routes."""
        data = self._cached(key)
        if data is not None:
            return 200, _JSON, data, {"X-Repro-Cache": "hit"}
        if loader is not None:
            data = await asyncio.to_thread(loader)
            if data is not None:
                obs.counter("serve.cache_hits", tier="offline").inc()
                self.store.put_bytes(key, data)
                self._remember(key, data)
                return 200, _JSON, data, {"X-Repro-Cache": "hit"}
        future = self._inflight.get(key)
        if future is not None:
            obs.counter("serve.coalesced").inc()
            try:
                data = await asyncio.shield(future)
            except TraceFormatError as exc:
                return 400, _JSON, _jerr("malformed trace archive",
                                         str(exc)), {}
            except Exception:
                return 500, _JSON, _jerr(
                    f"computation of {key} failed", traceback.format_exc()), {}
            return 200, _JSON, data, {"X-Repro-Cache": "coalesced"}
        shed = self._shed_check(kind)
        if shed is not None:
            return shed
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._queue.append(Job(key, kind, fn, args, future))
        obs.gauge("serve.queue_depth").set(len(self._queue))
        self._wake.set()
        try:
            data = await asyncio.shield(future)
        except TraceFormatError as exc:
            return 400, _JSON, _jerr("malformed trace archive",
                                     str(exc)), {}
        except Exception as exc:
            return 500, _JSON, _jerr(f"computation of {key} failed",
                                     _exc_text(exc)), {}
        return 200, _JSON, data, {"X-Repro-Cache": "miss"}

    def _shed_check(self, kind: str):
        """Bounded queue with tiered shedding (expensive jobs go first)."""
        depth = len(self._queue)
        limit = self.config.queue_limit
        threshold = max(1, limit // 2) if kind == "experiment" else limit
        if depth < threshold:
            return None
        obs.counter("serve.shed", kind=kind).inc()
        eta = (depth + 1) * self._job_ewma / max(1, self.n_workers)
        return 503, _JSON, _jerr(
            f"queue full ({depth}/{limit}) for {kind} requests"), {
            "Retry-After": self.quotas.retry_after_header(eta)}

    # -- dispatcher ---------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        """Drain the queue in adaptive batches, shard across the pool."""
        while True:
            while not self._queue:
                self._wake.clear()
                await self._wake.wait()
            batch = [self._queue.popleft()
                     for _ in range(min(len(self._queue),
                                        self.config.batch_max))]
            obs.gauge("serve.queue_depth").set(len(self._queue))
            obs.histogram("serve.batch_size",
                          bounds=_BATCH_BUCKETS).observe(len(batch))
            await asyncio.gather(
                *(self._run_job(job) for job in batch),
                return_exceptions=True)

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                job.attempts += 1
                t0 = loop.time()
                try:
                    data = await asyncio.wait_for(
                        loop.run_in_executor(self._pool, job.fn, *job.args),
                        timeout=self.config.job_timeout)
                except Exception as exc:
                    obs.counter("serve.job_failures", kind=job.kind).inc()
                    # a malformed archive fails identically every
                    # attempt; surface it without burning retries
                    if (isinstance(exc, TraceFormatError)
                            or job.attempts >= self.config.max_job_attempts):
                        if not job.future.done():
                            job.future.set_exception(exc)
                        return
                    obs.counter("serve.job_retries", kind=job.kind).inc()
                    continue
                self._job_ewma = 0.7 * self._job_ewma + 0.3 * (loop.time() - t0)
                obs.counter("serve.jobs_executed", kind=job.kind).inc()
                self.store.put_bytes(job.key, data)
                self._remember(job.key, data)
                if not job.future.done():
                    job.future.set_result(data)
                return
        finally:
            self._inflight.pop(job.key, None)


# -- module helpers ---------------------------------------------------------
def _jdoc(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


def _jerr(message: str, detail: str = "") -> bytes:
    doc = {"error": message}
    if detail:
        doc["detail"] = detail
    return _jdoc(doc)


def _exc_text(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))


async def _amain(config: ServeConfig) -> None:
    service = AnalysisService(config)
    await service.start()
    print(f"repro-serve listening on http://{config.host}:{service.port} "
          f"(workers={service.n_workers}, store={service.store.root})")
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def run_service(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point used by the ``repro-serve run`` CLI."""
    try:
        asyncio.run(_amain(config or ServeConfig()))
    except KeyboardInterrupt:
        pass
