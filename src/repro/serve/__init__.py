"""repro.serve: the analysis service (``repro-serve``).

An asyncio HTTP service (stdlib only) that accepts experiment configs
and trace-archive analysis requests and serves results out of a
content-addressed, size-bounded LRU disk cache shared with
:func:`repro.experiments.workflow.run_experiment`:

* :mod:`repro.serve.store` -- the shared :class:`ResultStore`:
  content-addressed entries keyed on :mod:`repro.obs.provenance`
  manifest hashes, atomic writes, CRC-checked blobs with quarantine,
  max-bytes LRU eviction, lock-file leases (cross-process single
  flight) and staging-dir sweeping.
* :mod:`repro.serve.quota` -- per-tenant token-bucket rate limits.
* :mod:`repro.serve.jobs` -- the job functions executed inside pool
  workers (experiment campaigns and trace analyses).
* :mod:`repro.serve.service` -- the HTTP service itself: single-flight
  request coalescing, adaptive batching over the process pool,
  backpressure (bounded queue, 429/503 + Retry-After, load shedding),
  ``/healthz`` and ``/metrics``.
* :mod:`repro.serve.client` -- a minimal asyncio HTTP client and the
  load generator behind ``repro-serve load``.

Submodules import :mod:`repro.experiments.workflow` (and vice versa:
the workflow uses the store), so everything heavier than the store is
re-exported lazily to keep the import graph acyclic.

See ``docs/serving.md``.
"""

from repro.serve.store import ResultStore, StoreLease, resolve_cache_max_bytes

__all__ = [
    "ResultStore",
    "StoreLease",
    "resolve_cache_max_bytes",
    "ServeConfig",
    "AnalysisService",
    "ServeClient",
    "run_load",
    "format_load_report",
    "run_service",
    "TokenBucket",
    "QuotaManager",
]

_LAZY = {
    "ServeConfig": "repro.serve.service",
    "AnalysisService": "repro.serve.service",
    "run_service": "repro.serve.service",
    "ServeClient": "repro.serve.client",
    "run_load": "repro.serve.client",
    "format_load_report": "repro.serve.client",
    "TokenBucket": "repro.serve.quota",
    "QuotaManager": "repro.serve.quota",
}


def __getattr__(name):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)
