"""Minimal asyncio HTTP client + load generator for `repro-serve`.

Stdlib-only (``asyncio.open_connection``; one request per connection --
the service supports keep-alive, the load generator deliberately pays
the connection cost so its latencies reflect a cold client).  The load
generator drives the three phases the serving design is about and
reports what each phase proves:

* **cold** -- first request computes through the process pool;
* **warm** -- repeats answer from cache without touching the pool, and
  the bytes are identical to the cold response (content addressing);
* **coalesced** -- K concurrent requests for one new key execute
  exactly one computation (single flight).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

__all__ = ["HttpResponse", "ServeClient", "run_load"]


class HttpResponse:
    """Status + headers + body of one exchange."""

    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str],
                 body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:
        return f"HttpResponse({self.status}, {len(self.body)} bytes)"


async def http_request(host: str, port: int, method: str, path: str,
                       body: bytes = b"",
                       headers: Optional[Dict[str, str]] = None,
                       timeout: float = 600.0) -> HttpResponse:
    """One HTTP/1.1 exchange on a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        head.extend(f"{k}: {v}" for k, v in (headers or {}).items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

        async def read_all() -> HttpResponse:
            status_line = await reader.readline()
            status = int(status_line.decode("latin-1").split()[1])
            resp_headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
                name, _sep, value = line.decode("latin-1").partition(":")
                resp_headers[name.strip().lower()] = value.strip()
            length = int(resp_headers.get("content-length", "0") or "0")
            payload = await reader.readexactly(length) if length \
                else await reader.read()
            return HttpResponse(status, resp_headers, payload)

        return await asyncio.wait_for(read_all(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


class ServeClient:
    """Typed wrapper over :func:`http_request` for the service routes."""

    def __init__(self, host: str, port: int, tenant: str = "anonymous",
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    async def _call(self, method: str, path: str, body: bytes = b"",
                    headers: Optional[Dict[str, str]] = None) -> HttpResponse:
        hdrs = {"X-Tenant": self.tenant}
        hdrs.update(headers or {})
        return await http_request(self.host, self.port, method, path,
                                  body=body, headers=hdrs,
                                  timeout=self.timeout)

    async def healthz(self) -> dict:
        return (await self._call("GET", "/healthz")).json()

    async def metrics(self, fmt: str = "") -> HttpResponse:
        path = "/metrics" + (f"?format={fmt}" if fmt else "")
        return await self._call("GET", path)

    async def experiment(self, name: str, seed: int = 0) -> HttpResponse:
        body = json.dumps({"name": name, "seed": seed}).encode("utf-8")
        return await self._call("POST", "/v1/experiment", body=body)

    async def upload_trace(self, data: bytes,
                           name: str = "trace.trace.json.gz") -> dict:
        resp = await self._call("PUT", "/v1/traces", body=data,
                                headers={"X-Archive-Name": name})
        if resp.status != 201:
            raise RuntimeError(f"upload failed ({resp.status}): "
                               f"{resp.body[:200]!r}")
        return resp.json()

    async def analyze(self, op: str, trace: str,
                      params: Optional[dict] = None,
                      trace_b: Optional[str] = None) -> HttpResponse:
        req: dict = {"op": op, "trace": trace, "params": params or {}}
        if trace_b is not None:
            req["trace_b"] = trace_b
        return await self._call("POST", "/v1/analyze",
                                body=json.dumps(req).encode("utf-8"))


async def _timed(coro) -> Tuple[HttpResponse, float]:
    t0 = time.perf_counter()
    resp = await coro
    return resp, time.perf_counter() - t0


async def run_load(host: str, port: int, name: str, seed: int = 0,
                   coalesce: int = 4, tenant: str = "load") -> dict:
    """Cold / warm / coalesced load phases against one experiment.

    Returns a report dict (phase latencies, cache tiers observed, and
    the identity checks) -- the CLI and the smoke example render it.
    """
    client = ServeClient(host, port, tenant=tenant)

    cold, cold_s = await _timed(client.experiment(name, seed))
    if cold.status != 200:
        raise RuntimeError(f"cold request failed ({cold.status}): "
                           f"{cold.body[:300]!r}")

    warm, warm_s = await _timed(client.experiment(name, seed))
    if warm.status != 200:
        raise RuntimeError(f"warm request failed ({warm.status})")

    t0 = time.perf_counter()
    burst = await asyncio.gather(
        *(client.experiment(name, seed + 1) for _ in range(coalesce)))
    coalesce_s = time.perf_counter() - t0
    statuses = sorted({r.status for r in burst})
    bodies = {r.body for r in burst if r.status == 200}

    return {
        "experiment": name,
        "seed": seed,
        "cold_seconds": cold_s,
        "cold_cache": cold.headers.get("x-repro-cache", ""),
        "warm_seconds": warm_s,
        "warm_cache": warm.headers.get("x-repro-cache", ""),
        "warm_identical": warm.body == cold.body,
        "coalesce_clients": coalesce,
        "coalesce_seconds": coalesce_s,
        "coalesce_statuses": statuses,
        "coalesce_identical": len(bodies) == 1,
        "speedup_cold_over_warm": (cold_s / warm_s) if warm_s > 0 else 0.0,
    }


def format_load_report(report: dict) -> str:
    """Human rendering of a :func:`run_load` report."""
    lines = [
        f"== repro-serve load: {report['experiment']} "
        f"seed={report['seed']} ==",
        f"cold      {report['cold_seconds'] * 1e3:9.1f} ms  "
        f"cache={report['cold_cache'] or 'miss'}",
        f"warm      {report['warm_seconds'] * 1e3:9.1f} ms  "
        f"cache={report['warm_cache']}  "
        f"identical={report['warm_identical']}",
        f"coalesced {report['coalesce_seconds'] * 1e3:9.1f} ms  "
        f"clients={report['coalesce_clients']}  "
        f"statuses={report['coalesce_statuses']}  "
        f"identical={report['coalesce_identical']}",
        f"speedup cold/warm: {report['speedup_cold_over_warm']:.1f}x",
    ]
    return "\n".join(lines)
