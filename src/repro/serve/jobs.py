"""Job functions the service executes inside process-pool workers.

Every function here is module-level (picklable across the pool
boundary), takes only plain-data arguments, and returns the *canonical
bytes* of its result -- the exact payload the HTTP response carries and
the store caches, which is what makes the byte-identity invariant
checkable end to end.

Failures are wrapped in :class:`repro.experiments.workflow.
CampaignTaskError` exactly like campaign runs, so the service's retry
supervisor treats experiment and analysis jobs uniformly and the
original traceback survives the pool boundary.

Content addressing of analysis jobs: the job's full parameter set (op,
trace hashes, mode, edits, package/cache versions) is hashed through
:func:`repro.obs.build_manifest` with kind ``"serve.analysis"``; the
resulting manifest rides in the response document so clients can trace
any served artifact back to its inputs.
"""

from __future__ import annotations

import os
import traceback
from pathlib import Path
from typing import Optional

__all__ = [
    "ANALYSIS_OPS",
    "analysis_manifest",
    "execute_experiment_job",
    "execute_analysis_job",
]

#: analysis operations the service accepts on uploaded trace archives
ANALYSIS_OPS = ("blame", "replay", "score", "whatif")


def analysis_manifest(op: str, params: dict) -> dict:
    """Provenance manifest (hence content address) of one analysis job."""
    from repro import obs
    from repro.experiments.workflow import CACHE_VERSION

    config = {
        "op": op,
        "params": params,
        "cache_version": CACHE_VERSION,
        "version": obs.package_version(),
    }
    return obs.build_manifest("serve.analysis", config,
                              environment=obs.default_environment())


def _rewrap(fn, *args, tag):
    from repro.experiments.workflow import CampaignTaskError
    from repro.measure.io import TraceFormatError

    try:
        return fn(*args)
    except TraceFormatError:
        # typed, picklable, and the client's fault: crosses the pool
        # boundary intact so the service can answer 400 instead of 500
        raise
    except Exception:
        name, mode = tag
        raise CampaignTaskError(name, mode, 0, 0,
                                traceback.format_exc()) from None


def execute_experiment_job(name: str, seed: int, cache_dir: str,
                           max_bytes: Optional[int],
                           preflight: bool = False) -> bytes:
    """Run (or load) one experiment campaign; return its canonical bytes.

    Runs serially inside this worker -- the service shards *across*
    jobs, nesting pools would oversubscribe -- with the shared store
    rooted at ``cache_dir``, so the computed result is immediately warm
    for every future request and for offline ``run_experiment`` calls
    against the same cache.  Campaign-internal supervision (checkpoints,
    retry, quarantine) applies unchanged; the store's offline lease also
    coordinates with any concurrent CLI campaign on the same key.
    """

    def work():
        from repro.experiments import workflow as W

        W._CACHE_DIR = Path(cache_dir)
        if max_bytes is not None:
            os.environ["REPRO_CACHE_MAX_BYTES"] = str(max_bytes)
        result = W.run_experiment(name, seed=seed, use_cache=True,
                                  preflight=preflight, workers=1)
        return W.serialize_result(result)

    return _rewrap(work, tag=(name, "serve.experiment"))


def execute_analysis_job(op: str, archive_path: str, params: dict,
                         extra_archive: Optional[str] = None) -> bytes:
    """Run one trace analysis; return canonical JSON bytes.

    ``archive_path`` (and ``extra_archive`` for two-trace ops like
    ``score``) point at content-addressed uploads in the shared store;
    ``params`` is the validated request body.  The response document
    embeds the job's provenance manifest.
    """

    def work():
        from repro.obs.provenance import canonical_json

        doc = _ANALYSIS_IMPL[op](archive_path, params, extra_archive)
        doc["format"] = "repro-analysis-1"
        doc["op"] = op
        doc["manifest"] = {
            k: v for k, v in analysis_manifest(op, params).items()
            if k != "environment"
        }
        return (canonical_json(doc) + "\n").encode("utf-8")

    return _rewrap(work, tag=(op, "serve.analysis"))


# ---------------------------------------------------------------------------
# per-op implementations (run inside the worker)
# ---------------------------------------------------------------------------


def _load_trace(path: str):
    from repro.measure import read_trace

    return read_trace(path)


def _op_replay(archive_path: str, params: dict, _extra) -> dict:
    """Clock replay: final per-location clock values under ``mode``."""
    from repro.clocks import timestamp_trace

    trace = _load_trace(archive_path)
    mode = params.get("mode") or trace.mode
    tt = timestamp_trace(trace, mode,
                         counter_seed=int(params.get("counter_seed", 0)))
    finals = [float(t[-1]) if len(t) else 0.0 for t in tt.times]
    return {
        "mode": tt.mode,
        "n_events": trace.n_events,
        "locations": [list(lt) for lt in trace.locations],
        "finals": finals,
        "makespan": max(finals) if finals else 0.0,
    }


def _op_blame(archive_path: str, params: dict, _extra) -> dict:
    """Causal blame: critical path + wait-state attribution."""
    from repro.causal import blame_profile, build_dag, critical_path_table

    trace = _load_trace(archive_path)
    dag = build_dag(trace, params.get("mode"),
                    counter_seed=int(params.get("counter_seed", 0)))
    prof = blame_profile(dag)
    rows = critical_path_table(dag, top=int(params.get("top", 10)))
    return {
        "mode": dag.mode,
        "makespan": dag.makespan,
        "total_wait": dag.total_wait(),
        "critical_path_len": len(dag.critical_path()),
        "critical_path_fingerprint": dag.critical_path_fingerprint(),
        "rows": [{"path": p, "hops": h, "work": wk, "wait": wt}
                 for p, h, wk, wt in rows],
        "blame": {metric: sum(prof.cells(metric).values())
                  for metric in prof.metrics},
    }


def _op_score(archive_path: str, params: dict, extra_archive) -> dict:
    """Generalized Jaccard score of two traces' analysis profiles."""
    from repro.analysis import analyze_trace
    from repro.clocks import timestamp_trace
    from repro.scoring import jaccard_metric_callpath

    if extra_archive is None:
        raise ValueError("score needs two traces (trace, trace_b)")
    mode = params.get("mode")
    counter_seed = int(params.get("counter_seed", 0))

    def profile(path):
        trace = _load_trace(path)
        tt = timestamp_trace(trace, mode or trace.mode,
                             counter_seed=counter_seed)
        return analyze_trace(tt).normalized()

    a, b = profile(archive_path), profile(extra_archive)
    return {"mode": mode or "per-trace", "score": jaccard_metric_callpath(a, b)}


def _op_whatif(archive_path: str, params: dict, _extra) -> dict:
    """Edited-cost what-if replay (logical modes only)."""
    from repro.causal import drop_region, run_whatif, scale_rank, scale_region

    edits = []
    for region, factor in dict(params.get("scale", {})).items():
        edits.append(scale_region(region, float(factor)))
    for rank, factor in dict(params.get("scale_rank", {})).items():
        edits.append(scale_rank(int(rank), float(factor)))
    edits.extend(drop_region(r) for r in params.get("drop", []))
    if not edits:
        raise ValueError("whatif needs edits (scale/scale_rank/drop)")
    trace = _load_trace(archive_path)
    result = run_whatif(trace, edits, params.get("mode"))
    return dict(result.to_json())


_ANALYSIS_IMPL = {
    "replay": _op_replay,
    "blame": _op_blame,
    "score": _op_score,
    "whatif": _op_whatif,
}
