"""Content-addressed result store shared by the service and the workflow.

One flat directory (the workflow's ``.results_cache``) holds every
cached artifact as an entry named ``cas-<hash-prefix>-<label>`` -- the
hash is the :mod:`repro.obs.provenance` manifest hash of whatever
configuration produced the artifact, so the same request always maps to
the same entry, across processes and across the service/CLI boundary.
Entries are either directories (experiment results, written by
:func:`repro.experiments.workflow._store`) or single CRC-framed blob
files (analysis results, uploaded trace archives).

The store adds four behaviours on top of the naming scheme:

* **LRU eviction** -- :meth:`ResultStore.evict` deletes the least
  recently *used* entries (access touches the entry mtime) until the
  total size fits ``max_bytes`` (``REPRO_CACHE_MAX_BYTES``; unset means
  unbounded, the pre-existing behaviour).  Evictions count on the
  ``workflow.cache_evictions`` obs counter.  Only ``cas-*`` entries are
  candidates; quarantined/staging/lock files and the workflow's
  ``*.runs`` checkpoint dirs are never touched.
* **CRC-framed blobs** -- :meth:`put_bytes` prefixes the payload with a
  CRC-32 line; :meth:`get_bytes` verifies it and *quarantines* a
  corrupt entry (``*.corrupt-N``, same discipline as the campaign
  supervisor) instead of returning bad bytes.  The payload itself is
  returned exactly as stored, which is what makes served results
  byte-identical to direct computations.
* **Lock-file leases** -- :meth:`acquire` implements cross-process
  single flight: one process computes an entry while others
  :meth:`wait_for` it.  A lease is a lock file created with
  ``O_CREAT|O_EXCL``; holders :meth:`~StoreLease.refresh` it as a
  heartbeat and a lock whose mtime is older than the TTL is *stale* and
  taken over (a crashed holder cannot park an entry forever).
* **Staging sweep** -- :meth:`sweep_staging` removes ``*.tmp-*``
  staging dirs/files left behind by killed runs (the atomic-publish
  machinery stages under such names before renaming into place).
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zlib
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from repro import obs as _obs

__all__ = [
    "ResultStore",
    "StoreLease",
    "resolve_cache_max_bytes",
    "DEFAULT_LEASE_TTL",
]

#: seconds after which an unrefreshed lease is considered abandoned
DEFAULT_LEASE_TTL = 900.0

#: seconds after which an orphaned ``*.tmp-*`` staging path is swept
DEFAULT_STAGING_AGE = 3600.0

#: entry-name prefix marking store-managed (evictable) artifacts
ENTRY_PREFIX = "cas-"

#: fragments that exempt a path from entry listing/eviction
_PROTECTED_FRAGMENTS = (".corrupt-", ".tmp-")
_PROTECTED_SUFFIXES = (".lock", ".runs")

_CRC_FRAME = b"repro-cas-crc32:"


def resolve_cache_max_bytes(explicit: Optional[int] = None) -> Optional[int]:
    """Cache size budget: explicit argument, else ``REPRO_CACHE_MAX_BYTES``.

    ``None``/unset/empty means unbounded.  A malformed or negative value
    fails loudly -- a typo'd budget silently disabling eviction would
    defeat the point of setting one.
    """
    if explicit is not None:
        if explicit < 0:
            raise ValueError(
                f"cache max bytes must be >= 0, got {explicit}")
        return explicit
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid REPRO_CACHE_MAX_BYTES environment variable ({raw!r}): "
            f"expected a byte count") from None
    if value < 0:
        raise ValueError(
            f"invalid REPRO_CACHE_MAX_BYTES environment variable ({raw!r}): "
            f"must be >= 0")
    return value


def _path_size(path: Path) -> int:
    """Total bytes of a file or directory tree (0 if it vanished)."""
    try:
        if path.is_dir():
            total = 0
            for sub in path.rglob("*"):
                try:
                    if sub.is_file():
                        total += sub.stat().st_size
                except OSError:
                    continue
            return total
        return path.stat().st_size
    except OSError:
        return 0


def _remove(path: Path) -> None:
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        path.unlink(missing_ok=True)


def _quarantine(path: Path) -> Optional[Path]:
    """Rename a corrupt entry aside (``*.corrupt-N``), mirroring the
    campaign supervisor's discipline; delete as a last resort."""
    for n in range(1000):
        dest = path.with_name(f"{path.name}.corrupt-{n}")
        if dest.exists():
            continue
        try:
            path.rename(dest)
        except FileNotFoundError:
            return None
        except OSError:
            break
        return dest
    _remove(path)
    return None


class StoreLease:
    """A held single-flight lease (see :meth:`ResultStore.acquire`)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.held = True

    def refresh(self) -> None:
        """Heartbeat: bump the lock mtime so waiters keep trusting us."""
        if not self.held:
            return
        try:
            os.utime(self.path)
        except OSError:
            pass

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "StoreLease":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class ResultStore:
    """Content-addressed LRU store over one flat cache directory."""

    def __init__(self, root: Union[str, Path],
                 max_bytes: Optional[int] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL) -> None:
        self.root = Path(root)
        self.max_bytes = resolve_cache_max_bytes(max_bytes)
        self.lease_ttl = float(lease_ttl)

    # -- naming -------------------------------------------------------------
    @staticmethod
    def entry_name(manifest_hash: str, label: str) -> str:
        """Canonical entry name for an artifact: hash prefix + label."""
        return f"{ENTRY_PREFIX}{manifest_hash[:20]}-{label}"

    def entry_path(self, key: str) -> Path:
        return self.root / key

    @staticmethod
    def _is_entry(path: Path) -> bool:
        name = path.name
        if not name.startswith(ENTRY_PREFIX):
            return False
        if any(frag in name for frag in _PROTECTED_FRAGMENTS):
            return False
        return not name.endswith(_PROTECTED_SUFFIXES)

    # -- blobs --------------------------------------------------------------
    def put_bytes(self, key: str, payload: bytes) -> Path:
        """Atomically publish a CRC-framed blob entry, then evict."""
        from repro.measure.io import atomic_write_bytes

        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        frame = _CRC_FRAME + str(zlib.crc32(payload)).encode("ascii") + b"\n"
        atomic_write_bytes(path, frame + payload)
        self.evict(protect=(key,))
        return path

    def get_bytes(self, key: str, touch: bool = True) -> Optional[bytes]:
        """Payload of a blob entry, or ``None`` (corrupt -> quarantined)."""
        path = self.entry_path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        head, sep, payload = data.partition(b"\n")
        if (not sep or not head.startswith(_CRC_FRAME)
                or not self._crc_ok(head, payload)):
            _obs.counter("workflow.cache_corrupt").inc()
            _quarantine(path)
            return None
        if touch:
            self.touch(key)
        return payload

    @staticmethod
    def _crc_ok(head: bytes, payload: bytes) -> bool:
        try:
            return int(head[len(_CRC_FRAME):]) == zlib.crc32(payload)
        except ValueError:
            return False

    def touch(self, key: str) -> None:
        """Mark an entry as recently used (LRU access time)."""
        try:
            os.utime(self.entry_path(key))
        except OSError:
            pass

    # -- listing / eviction -------------------------------------------------
    def entries(self) -> List[Tuple[Path, int, float]]:
        """Store-managed entries as ``(path, bytes, mtime)`` rows."""
        rows = []
        try:
            children = list(self.root.iterdir())
        except OSError:
            return rows
        for path in children:
            if not self._is_entry(path):
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            rows.append((path, _path_size(path), mtime))
        return rows

    def total_bytes(self) -> int:
        return sum(size for _p, size, _m in self.entries())

    def evict(self, protect: Tuple[str, ...] = ()) -> int:
        """Delete least-recently-used entries until under ``max_bytes``.

        Entries named in ``protect`` (typically the one just written)
        and entries under a *fresh* lease are spared; each eviction
        counts on ``workflow.cache_evictions``.  Returns bytes freed.
        No-op while ``max_bytes`` is unset.
        """
        if self.max_bytes is None:
            return 0
        rows = self.entries()
        total = sum(size for _p, size, _m in rows)
        if total <= self.max_bytes:
            return 0
        freed = 0
        counter = _obs.counter("workflow.cache_evictions")
        for path, size, _mtime in sorted(rows, key=lambda r: r[2]):
            if total - freed <= self.max_bytes:
                break
            if path.name in protect:
                continue
            if self._lease_age(path.name) is not None and \
                    not self._lease_stale(path.name):
                continue  # someone is computing/refreshing this entry
            _remove(path)
            counter.inc()
            freed += size
        return freed

    # -- single-flight leases -----------------------------------------------
    def lock_path(self, key: str) -> Path:
        return self.root / f"{key}.lock"

    def _lease_age(self, key: str) -> Optional[float]:
        try:
            return time.time() - self.lock_path(key).stat().st_mtime
        except OSError:
            return None

    def _lease_stale(self, key: str) -> bool:
        age = self._lease_age(key)
        return age is not None and age > self.lease_ttl

    def acquire(self, key: str) -> Optional[StoreLease]:
        """Try to take the single-flight lease for ``key``.

        Returns the held lease, or ``None`` when another live process
        holds it.  A stale lock (holder died without releasing; mtime
        older than the TTL) is taken over, counted on
        ``workflow.cache_lock_takeovers``.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        lock = self.lock_path(key)
        body = json.dumps({"pid": os.getpid(), "key": key}).encode("utf-8")
        for attempt in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if attempt == 0 and self._lease_stale(key):
                    _obs.counter("workflow.cache_lock_takeovers").inc()
                    lock.unlink(missing_ok=True)
                    continue
                return None
            with os.fdopen(fd, "wb") as fh:
                fh.write(body)
            return StoreLease(lock)
        return None

    def wait_for(self, key: str, timeout: Optional[float] = None,
                 poll: float = 0.05) -> bool:
        """Wait for another process's computation of ``key`` to land.

        Polls until the entry exists (``True``), or the lock disappears
        or goes stale without an entry (``False`` -- the caller should
        compute).  ``timeout`` bounds the wait regardless (default: the
        lease TTL).  Wait time accrues on ``workflow.cache_lock_waits``.
        """
        _obs.counter("workflow.cache_lock_waits").inc()
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.lease_ttl)
        entry = self.entry_path(key)
        while True:
            if entry.exists():
                return True
            if self._lease_age(key) is None or self._lease_stale(key):
                return entry.exists()
            if time.monotonic() >= deadline:
                return entry.exists()
            time.sleep(poll)

    # -- staging sweep ------------------------------------------------------
    def sweep_staging(self, max_age: float = DEFAULT_STAGING_AGE) -> int:
        """Remove orphaned ``*.tmp-*`` staging paths older than ``max_age``.

        The atomic publishers (:func:`~repro.experiments.workflow._store`,
        :func:`~repro.measure.io.atomic_write_bytes` with mkdtemp
        staging) rename staged work into place; a killed run leaves the
        stage behind.  Anything old enough cannot belong to a live
        publish.  Swept paths count on ``workflow.staging_swept``.
        """
        swept = 0
        now = time.time()
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for path in children:
            if ".tmp-" not in path.name:
                continue
            try:
                if now - path.stat().st_mtime <= max_age:
                    continue
            except OSError:
                continue
            _remove(path)
            swept += 1
        if swept:
            _obs.counter("workflow.staging_swept").add(swept)
        return swept

    # -- iteration (diagnostics) --------------------------------------------
    def __iter__(self) -> Iterator[Path]:
        return iter(path for path, _s, _m in self.entries())
