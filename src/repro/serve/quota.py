"""Per-tenant token-bucket quotas for the analysis service.

Classic token bucket: a tenant's bucket holds up to ``burst`` tokens and
refills at ``rate`` tokens/second; each admitted request spends one
token (expensive requests may be charged more via ``cost``).  An empty
bucket rejects with the exact time until the next token -- the service
surfaces that as ``Retry-After`` on a 429, so well-behaved clients
back off by just the right amount instead of hammering.

Buckets are created lazily per tenant and refilled on access (no timer
task); the monotonic clock makes the arithmetic immune to wall-clock
steps.  ``time_fn`` is injectable so tests can drive time by hand.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Tuple

__all__ = ["TokenBucket", "QuotaManager"]


class TokenBucket:
    """One tenant's refillable budget."""

    __slots__ = ("rate", "burst", "tokens", "_last", "_time")

    def __init__(self, rate: float, burst: float,
                 time_fn: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be > 0, "
                             f"got rate={rate}, burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._time = time_fn
        self._last = time_fn()

    def _refill(self) -> None:
        now = self._time()
        self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now

    def admit(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(admitted, retry_after_seconds)``; ``retry_after`` is
        0 when admitted, else the time until ``cost`` tokens exist.
        """
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True, 0.0
        return False, (cost - self.tokens) / self.rate


class QuotaManager:
    """Lazily-created token buckets, one per tenant name."""

    def __init__(self, rate: float, burst: float,
                 time_fn: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._time = time_fn
        self._buckets: Dict[str, TokenBucket] = {}

    def bucket(self, tenant: str) -> TokenBucket:
        b = self._buckets.get(tenant)
        if b is None:
            b = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, time_fn=self._time)
        return b

    def admit(self, tenant: str, cost: float = 1.0) -> Tuple[bool, float]:
        return self.bucket(tenant).admit(cost)

    @staticmethod
    def retry_after_header(retry_after: float) -> str:
        """``Retry-After`` is whole seconds; always advise at least 1."""
        return str(max(1, math.ceil(retry_after)))

    def snapshot(self) -> Dict[str, float]:
        """Current token levels per tenant (health endpoint)."""
        out: Dict[str, float] = {}
        for tenant, bucket in self._buckets.items():
            bucket._refill()
            out[tenant] = bucket.tokens
        return out
