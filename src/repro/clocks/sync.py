"""Counter-synchronisation mechanisms: piggyback vs. extra messages.

The paper (Sec. II-B, citing Schulz et al.) discusses how to attach the
logical counter to MPI point-to-point traffic and chooses *extra
messages* "because it is easy to implement incrementally inside Score-P's
existing MPI wrappers".  Both mechanisms carry the same information --
logical timestamps are unaffected -- but their *overhead* differs, which
is what this module models: it derives per-mechanism
:class:`~repro.measure.overhead.OverheadModel` variants for the ablation
bench comparing the two choices.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.measure.overhead import OverheadModel

__all__ = ["SyncMechanism", "overhead_for_mechanism"]


class SyncMechanism(enum.Enum):
    """How the logical counter travels with MPI messages."""

    #: A second small message per operation (the paper's choice):
    #: one extra latency per MPI call.
    EXTRA_MESSAGE = "extra_message"
    #: Datatype-wrapping piggyback: the counter rides inside the original
    #: message; only packing/unpacking cost, no extra latency.
    PIGGYBACK_DATATYPE = "piggyback_datatype"
    #: Separate communicator with pre-posted counter receives: cheapest
    #: per message, but pays persistent-request management.
    PIGGYBACK_PREPOSTED = "piggyback_preposted"


#: per-MPI-operation synchronisation cost (seconds) for each mechanism
_SYNC_COST = {
    SyncMechanism.EXTRA_MESSAGE: 0.4e-6,  # one more eager message round
    SyncMechanism.PIGGYBACK_DATATYPE: 0.15e-6,  # pack/unpack + datatype juggling
    SyncMechanism.PIGGYBACK_PREPOSTED: 0.08e-6,  # pre-posted recv matching
}


def overhead_for_mechanism(
    mechanism: SyncMechanism, base: OverheadModel = None
) -> OverheadModel:
    """An :class:`OverheadModel` with the mechanism's per-MPI-op cost."""
    base = base if base is not None else OverheadModel()
    return dataclasses.replace(base, mpi_sync_cost=_SYNC_COST[mechanism])
