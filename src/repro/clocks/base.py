"""Timestamped traces and the mode dispatcher."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.machine.noise import CounterNoise, NoiseConfig
from repro.measure.config import LTHWCTR, TSC, validate_mode
from repro.measure.trace import RawTrace
from repro.util.rng import RngStreams

__all__ = ["TimestampedTrace", "timestamp_trace"]


@dataclass
class TimestampedTrace:
    """A raw trace plus the final (mode-specific) per-event timestamps.

    ``times[loc][i]`` is the timestamp of ``trace.events[loc][i]``.  For
    ``tsc`` these are virtual seconds; for logical modes, dimensionless
    clock units.  The analyzer consumes this object; severities are later
    normalised per the paper ("We normalize all values by the total
    severity of the *time* metric").
    """

    trace: RawTrace
    times: List[np.ndarray]
    mode: str

    def total_span(self) -> float:
        """max timestamp - min timestamp over all locations."""
        hi = max((float(t[-1]) for t in self.times if len(t)), default=0.0)
        lo = min((float(t[0]) for t in self.times if len(t)), default=0.0)
        return hi - lo

    def validate_monotone(self) -> None:
        for loc, arr in enumerate(self.times):
            if len(arr) > 1 and np.any(np.diff(arr) < 0):
                bad = int(np.argmax(np.diff(arr) < 0))
                raise AssertionError(
                    f"location {loc}: timestamps decrease at event {bad + 1}"
                )


def timestamp_trace(
    trace: RawTrace,
    mode: Optional[str] = None,
    counter_seed: int = 0,
    counter_noise_config: Optional[NoiseConfig] = None,
    impl: Optional[str] = None,
) -> TimestampedTrace:
    """Assign timestamps to ``trace`` under ``mode``.

    ``mode`` defaults to the mode the trace was recorded with.  For
    ``lthwctr``, ``counter_seed``/``counter_noise_config`` control the
    simulated run-to-run variability of the instruction counter (pass the
    repetition seed to reproduce the paper's five-repetition studies;
    a ``ZeroNoise`` config makes the counter exact).

    ``impl`` selects the replay engine: ``"columnar"`` (the vectorized
    segment replay over the trace's structure-of-arrays view, see
    :mod:`repro.clocks.columnar`) or ``"legacy"`` (the per-event walk).
    Both produce bit-identical timestamps; the default (``None``) uses the
    columnar engine and falls back to the per-event walk for traces whose
    payloads cannot be converted to columns.
    """
    from repro.clocks.hwcounter import HwCounterIncrement
    from repro.clocks.increments import make_increment
    from repro.clocks.lamport import LamportClock
    from repro.clocks.physical import physical_times
    from repro.measure.columnar import ColumnarConversionError

    mode = validate_mode(mode or trace.mode)
    if impl not in (None, "columnar", "legacy"):
        raise ValueError(f"unknown replay impl {impl!r}; expected columnar/legacy")
    if impl != "legacy":
        try:
            cols = trace.columns()
        except ColumnarConversionError:
            if impl == "columnar":
                raise
        else:
            from repro.clocks.columnar import timestamp_columns

            with obs.span("replay", mode=mode, impl="columnar"):
                times = timestamp_columns(
                    cols, mode,
                    counter_seed=counter_seed,
                    counter_noise_config=counter_noise_config,
                )
            obs.counter("clocks.replays", mode=mode, impl="columnar").inc()
            return TimestampedTrace(trace, times, mode)
    with obs.span("replay", mode=mode, impl="legacy"):
        if mode == TSC:
            times = physical_times(trace)
        elif mode == LTHWCTR:
            cfg = (counter_noise_config if counter_noise_config is not None
                   else NoiseConfig())
            noise = CounterNoise(RngStreams(counter_seed), cfg)
            times = LamportClock(HwCounterIncrement(trace, noise)).assign(trace)
        else:
            times = LamportClock(make_increment(mode)).assign(trace)
    obs.counter("clocks.replays", mode=mode, impl="legacy").inc()
    return TimestampedTrace(trace, times, mode)
