"""Vectorized clock replay over columnar (structure-of-arrays) traces.

The per-event replay in :mod:`repro.clocks.lamport` walks every event of
the merged trace through Python, paying for a heap pop, an increment
callable and a NumPy scalar write per event.  This module exploits the
structure of the Lamport replay instead:

* Between synchronisation events a location's clock is a plain running
  sum of its work increments, so the increments are computed **in bulk**
  per location (one NumPy expression per mode) and the timestamp stretches
  between synchronisation points are filled by sequential accumulation of
  those precomputed values.
* Only the synchronisation events -- sends, receives, collective/barrier
  completions, forks and team begins, typically a third of a trace --
  are walked in merged order, performing the ``max``-exchanges of
  Algorithm 1.

The result is **bit-identical** to :class:`~repro.clocks.lamport.
LamportClock` for every mode: ``itertools.accumulate`` performs exactly
the sequential left-to-right float additions the legacy loop performs,
the merged order of the
synchronisation events is the same ``(t, loc)``-heap order, and the
group-completion counter overwrite is replayed at the exact merged
position at which the legacy loop performs it (including the corner case
of a member recording further events between its own completion record
and the group's last arrival).  ``tests/test_columnar.py`` locks this
equivalence for all six modes.
"""

from __future__ import annotations

from itertools import accumulate
from typing import List, Optional

import numpy as np

from repro import obs
from repro.machine.noise import CounterNoise, NoiseConfig
from repro.measure.columnar import TraceColumns
from repro.measure.config import (
    LT1,
    LTBB,
    LTHWCTR,
    LTLOOP,
    LTSTMT,
    TSC,
    X_BB_PER_OMP_CALL,
    Y_STMT_PER_OMP_CALL,
)
from repro.sim.events import (
    COLL_END,
    FORK,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)
from repro.util.rng import RngStreams

__all__ = ["columnar_increments", "lamport_assign_columnar", "timestamp_columns"]

#: gap length above which segment fills switch from the plain Python
#: accumulate loop to ``itertools.accumulate`` (both perform the same
#: sequential left-to-right float additions, so both are bit-exact; the
#: C iterator only wins once its constant call overhead is amortized)
_BULK_FILL = 6


def columnar_increments(
    cols: TraceColumns,
    mode: str,
    counter_noise: Optional[CounterNoise] = None,
    x_bb: float = X_BB_PER_OMP_CALL,
    y_stmt: float = Y_STMT_PER_OMP_CALL,
    scales: Optional[List[np.ndarray]] = None,
) -> List[np.ndarray]:
    """Per-location clock-increment arrays for a logical mode.

    Vectorizes the effort models of :mod:`repro.clocks.increments`; the
    arithmetic mirrors the scalar definitions operation for operation so
    every element is bit-identical to the per-event callable.  ``lthwctr``
    draws its noise through :meth:`CounterNoise.perturb_many`, which keeps
    the scalar path's per-event draw interleaving.

    ``scales`` (per-location per-event factors, what-if replay --
    :mod:`repro.causal.whatif`) multiplies every *work-delta field*
    before the mode formula is applied, as if the program had performed
    scaled work: a factor of 0 reproduces the increments of a run whose
    edited kernels did no work at all.  Only the four deterministic
    static modes support scaling (``lthwctr``'s counter perturbation is
    magnitude-dependent, so scaled replay would not commute with the
    noise draw).
    """
    if scales is not None and mode == LTHWCTR:
        raise ValueError("what-if scaling is not defined for lthwctr "
                         "(counter noise is magnitude-dependent)")
    out: List[np.ndarray] = []
    for loc, lc in enumerate(cols.locs):
        if scales is not None:
            s = scales[loc]
            base = 1.0 + 2.0 * (lc.burst_calls * s)
            if mode == LT1:
                inc = base
            elif mode == LTLOOP:
                inc = base + lc.omp_iters * s
            elif mode == LTBB:
                inc = base + lc.bb * s + x_bb * (lc.omp_calls * s)
            elif mode == LTSTMT:
                inc = base + lc.stmt * s + y_stmt * (lc.omp_calls * s)
            else:
                raise ValueError(f"no increment model for mode {mode!r}")
            out.append(inc)
            continue
        base = 1.0 + 2.0 * lc.burst_calls
        if mode == LT1:
            inc = base
        elif mode == LTLOOP:
            inc = base + lc.omp_iters
        elif mode == LTBB:
            inc = base + lc.bb + x_bb * lc.omp_calls
        elif mode == LTSTMT:
            inc = base + lc.stmt + y_stmt * lc.omp_calls
        elif mode == LTHWCTR:
            if counter_noise is None:
                raise ValueError("lthwctr increments need a CounterNoise")
            rank, thread = cols.locations[loc]
            readings = counter_noise.perturb_many(rank, thread, lc.instr.tolist())
            inc = np.maximum(1.0, readings)
        else:
            raise ValueError(f"no increment model for mode {mode!r}")
        out.append(inc)
    return out


#: replay-plan opcodes
_OP_RECORD = 0  # publish the clock (sends, forks, waiting group members)
_OP_MAXSRC = 1  # max-exchange with an earlier record (receives, team begins)
_OP_FINAL = 2  # last group member: apply the group max to all members


def _build_replay_plan(cols: TraceColumns):
    """Compile the synchronisation walk into a flat, mode-independent plan.

    Everything about the replay's control flow is static per trace: which
    send each receive pairs with, which arrival completes each group, the
    fill range in front of every synchronisation event, and the merged
    position at which each member's counter is overwritten by the group
    maximum.  Only the *float values* depend on the mode.  Compiling the
    walk once therefore moves all dict/group/searchsorted bookkeeping out
    of the per-mode replay, which then just dispatches over plan records.

    Returns ``(records, tails)``: ``records[s] = (loc, i, a, op, arg)``
    meaning "fill events ``a..i`` of ``loc``, then apply ``op``"; ``arg``
    is the record's value slot (:data:`_OP_RECORD`), the source slot
    (:data:`_OP_MAXSRC`), or ``(slot, member_slots, overwrites)`` for
    :data:`_OP_FINAL` with overwrite entries ``(l2, i2, a2, b2)`` (set
    event ``i2`` to the group max after filling ``a2..b2-1``).  ``tails``
    is the per-location index of the last planned event.  Raises exactly
    the errors the per-event replay raises for malformed traces (receive
    before send, team begin without fork, incomplete groups).
    """
    t_lists = cols.t_lists()
    t_arrays = [lc.t for lc in cols.locs]
    last = [-1] * cols.n_locations  # highest event index already planned
    send_pos = {}
    fork_pos = {}
    # (etype, group id) -> list of (loc, event index, value slot)
    groups = {}
    records = []

    s_loc, s_idx, s_et, s_a, s_b, s_t = cols.sync_order()
    for s in range(len(s_loc)):
        loc = s_loc[s]
        i = s_idx[s]
        et = s_et[s]
        aux = s_a[s]
        a = last[loc] + 1
        last[loc] = i

        if et == COLL_END or et == OBAR_LEAVE or et == RESTART:
            key = (et, aux)
            grp = groups.get(key)
            if grp is None:
                grp = groups[key] = []
            grp.append((loc, i, s))
            if len(grp) < s_b[s]:
                records.append((loc, i, a, _OP_RECORD, s))
                continue
            t_c = s_t[s]
            overwrites = []
            for l2, i2, _slot in grp:
                # The group max lands on member l2 at the exact merged
                # position of this (last) arrival: events l2 recorded
                # after its own completion but before this point keep
                # their provisional timestamps.
                nxt = last[l2] + 1
                if l2 == loc:
                    p2 = nxt
                else:
                    tl2 = t_lists[l2]
                    if nxt >= len(tl2):
                        p2 = nxt
                    else:
                        t_next = tl2[nxt]
                        if t_next > t_c or (t_next == t_c and l2 > loc):
                            p2 = nxt
                        else:
                            p2 = int(np.searchsorted(
                                t_arrays[l2], t_c,
                                side="right" if l2 < loc else "left",
                            ))
                if p2 > nxt:
                    last[l2] = p2 - 1
                overwrites.append((l2, i2, nxt, p2))
            slots = tuple(slot for (_l, _i, slot) in grp)
            records.append((loc, i, a, _OP_FINAL, (s, slots, overwrites)))
            del groups[key]
        elif et == TEAM_BEGIN:
            records.append((loc, i, a, _OP_MAXSRC, fork_pos[aux]))
        elif et == FORK:
            fork_pos[aux] = s
            records.append((loc, i, a, _OP_RECORD, s))
        elif et == MPI_SEND:
            send_pos[aux] = s
            records.append((loc, i, a, _OP_RECORD, s))
        else:  # MPI_RECV
            try:
                src = send_pos.pop(aux)
            except KeyError:
                raise AssertionError(
                    f"receive of message {aux} before/without its send -- "
                    "merged order is not topological"
                ) from None
            records.append((loc, i, a, _OP_MAXSRC, src))

    if groups:
        raise AssertionError(
            f"{len(groups)} incomplete synchronisation groups at end of "
            f"trace (first keys: {_legacy_group_keys(groups)})"
        )
    return records, last


def _replay_plan(cols: TraceColumns):
    """The trace's compiled replay plan (built once, shared by all modes)."""
    plan = cols._replay_plan
    if plan is None:
        with obs.span("replay.plan_compile", events=cols.n_events):
            plan = cols._replay_plan = _build_replay_plan(cols)
        obs.counter("clocks.plan_compiles").inc()
    return plan


def lamport_assign_columnar(
    cols: TraceColumns, increments: List[np.ndarray]
) -> List[np.ndarray]:
    """Logical timestamps per location (Algorithm 1, segment-vectorized).

    Equivalent to ``LamportClock(inc).assign(trace)`` with per-event
    increments matching ``increments``; see the module docstring for the
    equivalence argument.  Executes the trace's compiled replay plan
    (:func:`_build_replay_plan`): per record, a sequential fill of the
    work stretch in front of the synchronisation event followed by one of
    three opcodes.  This loop is the replay's only per-event Python cost.
    """
    records, tails = _replay_plan(cols)
    with obs.span("replay.fill", events=cols.n_events):
        out, repaired = _execute_plan(cols, records, tails, increments)
    obs.counter("clocks.violations_repaired").add(repaired)
    return out


def _execute_plan(cols, records, tails, increments):
    """The fill walk proper; returns (timestamps, repaired-receive count)."""
    inc_lists = [arr.tolist() for arr in increments]
    times: List[list] = [[0.0] * len(l) for l in inc_lists]
    clock = [0.0] * cols.n_locations
    val = [0.0] * len(records)  # published clock value per plan record
    val_get = val.__getitem__
    repaired = 0  # receives whose clock a max-exchange pushed forward

    for loc, i, a, op, arg in records:
        c = clock[loc]
        g = i - a
        if g == 0:
            c += inc_lists[loc][i]
            times[loc][i] = c
        elif g > _BULK_FILL:
            b = i + 1
            seg = list(accumulate(inc_lists[loc][a:b], initial=c))
            times[loc][a:b] = seg[1:]
            c = seg[-1]
        elif g > 0:
            il = inc_lists[loc]
            tl = times[loc]
            for j in range(a, i + 1):
                c += il[j]
                tl[j] = c
        # g < 0: a group overwrite already timestamped this stretch

        if op == _OP_RECORD:
            clock[loc] = c
            val[arg] = c
        elif op == _OP_MAXSRC:
            p1 = val[arg] + 1.0
            if p1 > c:
                repaired += 1
                c = p1
                times[loc][i] = c
            clock[loc] = c
        else:  # _OP_FINAL
            slot, slots, overwrites = arg
            val[slot] = c
            m = max(map(val_get, slots))
            for l2, i2, a2, b2 in overwrites:
                if b2 > a2:
                    il2 = inc_lists[l2]
                    tl2 = times[l2]
                    c2 = clock[l2]
                    for j in range(a2, b2):
                        c2 += il2[j]
                        tl2[j] = c2
                clock[l2] = m
                times[l2][i2] = m

    out: List[np.ndarray] = []
    for loc in range(cols.n_locations):
        tl = times[loc]
        lo = tails[loc] + 1
        if lo < len(tl):
            tl[lo:] = list(accumulate(inc_lists[loc][lo:],
                                      initial=clock[loc]))[1:]
        out.append(np.asarray(tl, dtype=np.float64))
    return out, repaired


def _legacy_group_keys(groups) -> list:
    """Format leftover group keys the way the per-event replay does."""
    return [
        ("c" if et == COLL_END else "b" if et == OBAR_LEAVE else "r", gid)
        for (et, gid) in list(groups)[:3]
    ]


def timestamp_columns(
    cols: TraceColumns,
    mode: str,
    counter_seed: int = 0,
    counter_noise_config: Optional[NoiseConfig] = None,
) -> List[np.ndarray]:
    """Mode-dispatched timestamp assignment over a columnar trace."""
    if mode == TSC:
        return [lc.t.copy() for lc in cols.locs]
    noise = None
    if mode == LTHWCTR:
        cfg = counter_noise_config if counter_noise_config is not None else NoiseConfig()
        noise = CounterNoise(RngStreams(counter_seed), cfg)
    return lamport_assign_columnar(cols, columnar_increments(cols, mode, noise))
