"""The physical clock (``tsc``): timestamps are the recorded virtual time.

The simulator generates causally consistent physical timestamps, so no
clock-condition violations can occur here; on real hardware out-of-sync
node clocks would additionally require timestamp correction (one of the
logical clock's advantages the paper lists in Sec. II).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.measure.trace import RawTrace

__all__ = ["physical_times"]


def physical_times(trace: RawTrace) -> List[np.ndarray]:
    """Per-location arrays of the events' physical timestamps."""
    return [np.fromiter((ev.t for ev in evs), dtype=float, count=len(evs)) for evs in trace.events]
