"""Lamport logical clock replay (Algorithm 1 of the paper).

For event *a* on location *i*: increment the local counter (by the effort
model's amount), merge partner clocks at synchronisation points, record
``C(a)``.  Synchronisation edges in our event model:

* ``MPI_SEND`` -> ``MPI_RECV``: receive takes ``max(own, sender + 1)``.
* ``COLL_END`` (one per participant): all participants take the group
  maximum -- the counter exchange rides on the collective itself.
* ``FORK`` -> ``TEAM_BEGIN``: workers adopt ``master + 1``.
* ``OBAR_LEAVE``: the whole team takes the team maximum.
* ``RESTART``: all ranks take the job-wide maximum -- the restart
  protocol of :mod:`repro.sim.recovery` is a coordinated rollback, so
  the logical clocks re-synchronise across the discontinuity exactly
  like at a collective.

The replay walks events in a topological order of the happens-before DAG
(physical-time merge order, valid because simulated physical timestamps
respect causality).  The resulting logical timestamps depend only on the
DAG and the deterministic work deltas -- repeated noisy runs of the same
deterministic program yield identical logical traces, which is the
noise-resilience property under study.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

import numpy as np

from repro.measure.trace import RawTrace
from repro.sim.events import (
    COLL_END,
    FORK,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
    Ev,
)

__all__ = ["LamportClock"]

IncrementLike = Union[Callable[[Ev], float], "object"]


class LamportClock:
    """Replay a raw trace into logical timestamps.

    Parameters
    ----------
    increment:
        Either a plain callable ``(ev) -> float`` used for every location,
        or an object with ``for_location(loc)`` returning per-location
        callables (the hardware-counter model needs the location to seed
        its noise stream).
    """

    def __init__(self, increment: IncrementLike):
        self._increment = increment

    def _per_location(self, n: int) -> List[Callable[[Ev], float]]:
        if hasattr(self._increment, "for_location"):
            return [self._increment.for_location(loc) for loc in range(n)]
        return [self._increment] * n

    def assign(self, trace: RawTrace) -> List[np.ndarray]:
        """Logical timestamps per location, parallel to ``trace.events``."""
        n = trace.n_locations
        times = [np.zeros(len(evs), dtype=float) for evs in trace.events]
        idx = [0] * n
        counter = [0.0] * n
        inc = self._per_location(n)

        send_clock: Dict[int, float] = {}
        fork_clock: Dict[int, float] = {}
        # (kind, id) -> list of (loc, event index, provisional clock)
        groups: Dict[Tuple[str, int], List[Tuple[int, int, float]]] = {}

        for loc, ev in trace.merged():
            i = idx[loc]
            idx[loc] = i + 1
            c = counter[loc] + inc[loc](ev)
            et = ev.etype

            if et == MPI_SEND:
                counter[loc] = c
                times[loc][i] = c
                send_clock[ev.aux[0]] = c
            elif et == MPI_RECV:
                try:
                    partner = send_clock.pop(ev.aux)
                except KeyError:
                    raise AssertionError(
                        f"receive of message {ev.aux} before/without its send -- "
                        "merged order is not topological"
                    ) from None
                c = max(c, partner + 1.0)
                counter[loc] = c
                times[loc][i] = c
            elif et == COLL_END or et == OBAR_LEAVE or et == RESTART:
                gid, size = ev.aux
                key = ("c" if et == COLL_END else "b" if et == OBAR_LEAVE else "r", gid)
                members = groups.setdefault(key, [])
                members.append((loc, i, c))
                counter[loc] = c  # provisional until the group completes
                if len(members) == size:
                    m = max(pre for (_l, _i, pre) in members)
                    for (l2, i2, _pre) in members:
                        times[l2][i2] = m
                        counter[l2] = m
                    del groups[key]
            elif et == FORK:
                counter[loc] = c
                times[loc][i] = c
                fork_clock[ev.aux] = c
            elif et == TEAM_BEGIN:
                c = max(c, fork_clock[ev.aux] + 1.0)
                counter[loc] = c
                times[loc][i] = c
            else:
                counter[loc] = c
                times[loc][i] = c

        if groups:
            raise AssertionError(
                f"{len(groups)} incomplete synchronisation groups at end of "
                f"trace (first keys: {list(groups)[:3]})"
            )
        return times
