"""Bounded-memory clock replay over streamed (sharded) traces.

:func:`stream_clock_replay` runs the Lamport replay of
:mod:`repro.clocks.lamport` over any trace-like object's ``merged()``
iterator -- including :class:`~repro.measure.shards.ShardedTrace`, which
keeps at most one shard resident -- but keeps only O(locations +
in-flight groups) state instead of materialising per-event timestamp
arrays.  The result is a :class:`ClockReplaySummary`: the final clock
value per location, the global maximum (the mode's makespan measure),
and per-location event counts.

All six modes are supported: ``tsc`` passes the physical timestamps
through (final clock = last event time per location), the static logical
modes use :func:`repro.clocks.increments.make_increment`, and
``lthwctr`` uses :class:`repro.clocks.hwcounter.HwCounterIncrement`
(which needs only the location table, so it streams).  Final values are
bit-identical to the full :func:`repro.clocks.base.timestamp_trace`
replay; the suite checks this per mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.machine.noise import CounterNoise, NoiseConfig
from repro.measure.config import LTHWCTR, TSC, validate_mode
from repro.sim.events import (
    COLL_END,
    FORK,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)
from repro.util.rng import RngStreams

__all__ = ["ClockReplaySummary", "stream_clock_replay"]


@dataclass
class ClockReplaySummary:
    """Bounded-size result of a streaming clock replay."""

    mode: str
    final: List[float]  # last clock value per location
    n_events: List[int]  # events replayed per location
    max_clock: float  # global maximum over all locations

    def __post_init__(self):
        if not self.final:
            self.max_clock = 0.0


def stream_clock_replay(
    trace_like,
    mode: Optional[str] = None,
    counter_seed: int = 0,
    counter_noise_config: Optional[NoiseConfig] = None,
) -> ClockReplaySummary:
    """Replay ``trace_like`` under ``mode`` without storing timestamps.

    ``trace_like`` is anything exposing ``mode``, ``locations``,
    ``n_locations`` and ``merged()`` -- a
    :class:`~repro.measure.trace.RawTrace` or a
    :class:`~repro.measure.shards.ShardedTrace`.  The replay logic
    mirrors :class:`~repro.clocks.lamport.LamportClock.assign` exactly
    (same merge rules, same increment callables) so the final per-location
    clocks are bit-identical to ``timestamp_trace(...)``'s last entries.
    """
    mode = validate_mode(mode or trace_like.mode)
    n = trace_like.n_locations
    counter = [0.0] * n
    idx = [0] * n

    if mode == TSC:
        for loc, ev in trace_like.merged():
            idx[loc] += 1
            counter[loc] = ev.t
        return ClockReplaySummary(mode, counter, idx,
                                  max(counter, default=0.0))

    if mode == LTHWCTR:
        from repro.clocks.hwcounter import HwCounterIncrement

        cfg = (counter_noise_config if counter_noise_config is not None
               else NoiseConfig())
        model = HwCounterIncrement(trace_like,
                                   CounterNoise(RngStreams(counter_seed), cfg))
        inc = [model.for_location(loc) for loc in range(n)]
    else:
        from repro.clocks.increments import make_increment

        inc = [make_increment(mode)] * n

    send_clock: Dict[int, float] = {}
    fork_clock: Dict[int, float] = {}
    # (kind, id) -> list of (loc, provisional clock)
    groups: Dict[Tuple[str, int], List[Tuple[int, float]]] = {}

    for loc, ev in trace_like.merged():
        idx[loc] += 1
        c = counter[loc] + inc[loc](ev)
        et = ev.etype

        if et == MPI_SEND:
            counter[loc] = c
            send_clock[ev.aux[0]] = c
        elif et == MPI_RECV:
            try:
                partner = send_clock.pop(ev.aux)
            except KeyError:
                raise AssertionError(
                    f"receive of message {ev.aux} before/without its send -- "
                    "merged order is not topological"
                ) from None
            counter[loc] = max(c, partner + 1.0)
        elif et == COLL_END or et == OBAR_LEAVE or et == RESTART:
            gid, size = ev.aux
            key = ("c" if et == COLL_END else "b" if et == OBAR_LEAVE else "r",
                   gid)
            members = groups.setdefault(key, [])
            members.append((loc, c))
            counter[loc] = c  # provisional until the group completes
            if len(members) == size:
                m = max(pre for (_l, pre) in members)
                for (l2, _pre) in members:
                    counter[l2] = m
                del groups[key]
        elif et == FORK:
            counter[loc] = c
            fork_clock[ev.aux] = c
        elif et == TEAM_BEGIN:
            counter[loc] = max(c, fork_clock[ev.aux] + 1.0)
        else:
            counter[loc] = c

    if groups:
        raise AssertionError(
            f"{len(groups)} incomplete synchronisation groups at end of "
            f"trace (first keys: {list(groups)[:3]})"
        )
    return ClockReplaySummary(mode, counter, idx, max(counter, default=0.0))
