"""Vector clock (extension beyond the paper's implementation).

The paper (Sec. II) notes that for programs with nondeterministic message
matching the plain Lamport clock cannot capture all causalities, and cites
the vector clock as a remedy.  This module provides a reference vector
clock replay over the same event model, primarily for correctness studies
and tests: ``happens_before`` answers exact causality queries that a
scalar Lamport timestamp can only approximate in one direction.

Storage is O(events x locations); use on small traces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.measure.trace import RawTrace
from repro.sim.events import COLL_END, FORK, MPI_RECV, MPI_SEND, OBAR_LEAVE, TEAM_BEGIN

__all__ = ["VectorClock"]


class VectorClock:
    """Full vector-clock replay of a raw trace."""

    def __init__(self, trace: RawTrace):
        self.trace = trace
        n = trace.n_locations
        self.vectors: List[List[np.ndarray]] = [[] for _ in range(n)]
        self._replay()

    def _replay(self) -> None:
        trace = self.trace
        n = trace.n_locations
        current = [np.zeros(n, dtype=np.int64) for _ in range(n)]
        send_vec: Dict[int, np.ndarray] = {}
        fork_vec: Dict[int, np.ndarray] = {}
        # group key -> list of (loc, appended-event index)
        groups: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}

        for loc, ev in trace.merged():
            v = current[loc]
            v[loc] += 1
            et = ev.etype
            if et == MPI_SEND:
                send_vec[ev.aux[0]] = v.copy()
            elif et == MPI_RECV:
                np.maximum(v, send_vec.pop(ev.aux), out=v)
            elif et == FORK:
                fork_vec[ev.aux] = v.copy()
            elif et == TEAM_BEGIN:
                np.maximum(v, fork_vec[ev.aux], out=v)
            self.vectors[loc].append(v.copy())

            if et in (COLL_END, OBAR_LEAVE):
                gid, size = ev.aux
                key = ("c" if et == COLL_END else "b", gid)
                members = groups.setdefault(key, [])
                members.append((loc, len(self.vectors[loc]) - 1))
                if len(members) == size:
                    merged = np.zeros(n, dtype=np.int64)
                    for (l2, ei) in members:
                        np.maximum(merged, self.vectors[l2][ei], out=merged)
                    for (l2, ei) in members:
                        self.vectors[l2][ei][:] = merged
                        current[l2][:] = merged
                    del groups[key]

    def vector_at(self, loc: int, event_index: int) -> np.ndarray:
        """Vector timestamp of the given event."""
        return self.vectors[loc][event_index]

    def happens_before(self, a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        """True iff event ``a`` (loc, index) causally precedes ``b``."""
        va = self.vector_at(*a)
        vb = self.vector_at(*b)
        return bool(np.all(va <= vb) and np.any(va < vb))

    def concurrent(self, a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        """True iff neither event causally precedes the other."""
        return not self.happens_before(a, b) and not self.happens_before(b, a)
