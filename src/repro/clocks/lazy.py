"""Lazy Lamport clock (extension, after Vo et al. [26] in the paper).

The lazy protocol defers merging the sender's clock into the receiver at
point-to-point receives: the received value is remembered, and the
receiver's counter is reconciled only at the next *strong* synchronisation
(a collective or OpenMP barrier).  Between reconciliations the receiver's
timestamps advance purely by local increments, which keeps piggyback
traffic cheap at the cost of temporarily violating the clock condition
for p2p edges.

This is a simplified study implementation: it reproduces the protocol's
characteristic behaviour -- identical timestamps to the eager clock at and
after every strong sync, potentially smaller ones between -- and is used
by tests and an ablation bench, not by the main reproduction pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.measure.trace import RawTrace
from repro.sim.events import COLL_END, FORK, MPI_RECV, MPI_SEND, OBAR_LEAVE, TEAM_BEGIN, Ev

__all__ = ["LazyLamportClock"]


class LazyLamportClock:
    """Deferred-merge variant of :class:`repro.clocks.lamport.LamportClock`."""

    def __init__(self, increment: Callable[[Ev], float]):
        self._increment = increment

    def assign(self, trace: RawTrace) -> List[np.ndarray]:
        n = trace.n_locations
        times = [np.zeros(len(evs), dtype=float) for evs in trace.events]
        idx = [0] * n
        counter = [0.0] * n
        deferred = [0.0] * n  # largest unmerged incoming clock per location
        send_clock: Dict[int, float] = {}
        fork_clock: Dict[int, float] = {}
        groups: Dict[Tuple[str, int], List[Tuple[int, int, float]]] = {}
        inc = self._increment

        for loc, ev in trace.merged():
            i = idx[loc]
            idx[loc] = i + 1
            c = counter[loc] + inc(ev)
            et = ev.etype
            if et == MPI_SEND:
                counter[loc] = c
                times[loc][i] = c
                send_clock[ev.aux[0]] = c
            elif et == MPI_RECV:
                # Lazy: remember, do not merge yet.
                deferred[loc] = max(deferred[loc], send_clock.pop(ev.aux) + 1.0)
                counter[loc] = c
                times[loc][i] = c
            elif et in (COLL_END, OBAR_LEAVE):
                gid, size = ev.aux
                key = ("c" if et == COLL_END else "b", gid)
                # Reconcile the deferred value at the strong sync.
                pre = max(c, deferred[loc])
                deferred[loc] = 0.0
                members = groups.setdefault(key, [])
                members.append((loc, i, pre))
                counter[loc] = pre
                if len(members) == size:
                    m = max(p for (_l, _i, p) in members)
                    for (l2, i2, _p) in members:
                        times[l2][i2] = m
                        counter[l2] = m
                    del groups[key]
            elif et == FORK:
                counter[loc] = c
                times[loc][i] = c
                fork_clock[ev.aux] = c
            elif et == TEAM_BEGIN:
                c = max(c, fork_clock[ev.aux] + 1.0)
                counter[loc] = c
                times[loc][i] = c
            else:
                counter[loc] = c
                times[loc][i] = c

        if groups:
            raise AssertionError("incomplete synchronisation groups in lazy replay")
        return times
