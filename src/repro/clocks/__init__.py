"""Clocks: timestamp assignment for raw traces.

``timestamp_trace`` is the main entry point: it turns a
:class:`~repro.measure.trace.RawTrace` into per-location timestamp arrays
under the chosen measurement mode -- physical time for ``tsc``, Lamport
logical time with the paper's increment models for the ``lt*`` modes.

Logical timestamps depend only on the event DAG (per-location order plus
message/collective/fork/barrier edges) and the deterministic work counts,
never on the physical timing -- which is precisely the noise-resilience
property the paper investigates.
"""

from repro.clocks.base import TimestampedTrace, timestamp_trace
from repro.clocks.columnar import (
    columnar_increments,
    lamport_assign_columnar,
    timestamp_columns,
)
from repro.clocks.lamport import LamportClock
from repro.clocks.increments import (
    increment_lt1,
    increment_ltloop,
    increment_ltbb,
    increment_ltstmt,
    make_increment,
)
from repro.clocks.hwcounter import HwCounterIncrement
from repro.clocks.physical import physical_times
from repro.clocks.vector import VectorClock
from repro.clocks.lazy import LazyLamportClock
from repro.clocks.sync import SyncMechanism, overhead_for_mechanism

__all__ = [
    "TimestampedTrace",
    "timestamp_trace",
    "LamportClock",
    "columnar_increments",
    "lamport_assign_columnar",
    "timestamp_columns",
    "increment_lt1",
    "increment_ltloop",
    "increment_ltbb",
    "increment_ltstmt",
    "make_increment",
    "HwCounterIncrement",
    "physical_times",
    "VectorClock",
    "LazyLamportClock",
    "SyncMechanism",
    "overhead_for_mechanism",
]
