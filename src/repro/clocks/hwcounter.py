"""The lt_hwctr increment: simulated PERF_COUNT_HW_INSTRUCTIONS deltas.

The simulated counter reading between two events is the kernel-derived
instruction count of the interval -- *including* instructions retired
while busy-polling inside the MPI library (the engine accrues these on
MPI leave/completion events) -- perturbed by
:class:`repro.machine.noise.CounterNoise`.

Two properties of the paper's lt_hwctr findings follow directly:

* effort inside libraries is visible ("an advantage of hardware counters
  is that they also count effort spent in regions not seen by the
  instrumentation"), and
* the measurement is *noisy again*: counter perturbation varies run to
  run, so repeated lt_hwctr measurements differ (Fig. 3/4 circles), unlike
  the other logical modes whose traces are bit-identical.
"""

from __future__ import annotations

from repro.machine.noise import CounterNoise
from repro.measure.trace import RawTrace
from repro.sim.events import Ev

__all__ = ["HwCounterIncrement"]


class HwCounterIncrement:
    """Increment callable: noisy instruction-counter delta per event.

    A reading is taken at every recorded event (aggregated burst events
    take one reading per represented enter/leave, reflected in the offset
    scaling).  The increment is clamped to >= 1 so logical timestamps stay
    strictly increasing per location -- in reality instrumentation itself
    retires instructions between any two readings.
    """

    def __init__(self, trace: RawTrace, noise: CounterNoise):
        self._noise = noise
        self._rank_thread = trace.locations
        self._loc_of_ev_cache = None

    def for_location(self, loc: int):
        rank, thread = self._rank_thread[loc]
        noise = self._noise

        def increment(ev: Ev) -> float:
            reading = noise.perturb(rank, thread, ev.delta.instr)
            return max(1.0, reading)

        return increment
