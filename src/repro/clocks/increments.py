"""Clock increment ("effort") models lt_1, lt_loop, lt_bb, lt_stmt.

Each model is a callable ``(ev) -> float`` returning the clock increment
for one recorded event.  The definitions follow the paper's Sec. II-A
verbatim; the only adaptation is burst handling: an aggregated
:class:`~repro.sim.actions.CallBurst` event *represents* ``2 * calls``
recorded events, so the per-event "+1" scales accordingly (for every
model -- each represented enter/leave would have been a recorded event).

The OpenMP external-effort constants X = 100 basic blocks and Y = 4300
statements per call into the OpenMP runtime are the values the paper
fitted against LULESH (Sec. II-A / V-C3); ``make_increment`` accepts
overrides so the ablation benches can sweep them.
"""

from __future__ import annotations

from typing import Callable

from repro.measure.config import (
    LT1,
    LTBB,
    LTLOOP,
    LTSTMT,
    X_BB_PER_OMP_CALL,
    Y_STMT_PER_OMP_CALL,
)
from repro.sim.events import Ev

__all__ = [
    "increment_lt1",
    "increment_ltloop",
    "increment_ltbb",
    "increment_ltstmt",
    "make_increment",
]


def _base_events(ev: Ev) -> float:
    """Recorded events this trace record stands for (>= 1)."""
    bc = ev.delta.burst_calls
    return 1.0 + 2.0 * bc if bc else 1.0


def increment_lt1(ev: Ev) -> float:
    """lt_1: one unit per recorded event."""
    return _base_events(ev)


def increment_ltloop(ev: Ev) -> float:
    """lt_loop: lt_1 plus one unit per OpenMP loop iteration."""
    return _base_events(ev) + ev.delta.omp_iters


def increment_ltbb(ev: Ev, x_bb: float = X_BB_PER_OMP_CALL) -> float:
    """lt_bb: lt_1 plus executed basic blocks, X per OpenMP runtime call."""
    d = ev.delta
    return _base_events(ev) + d.bb + x_bb * d.omp_calls


def increment_ltstmt(ev: Ev, y_stmt: float = Y_STMT_PER_OMP_CALL) -> float:
    """lt_stmt: lt_1 plus executed statements, Y per OpenMP runtime call."""
    d = ev.delta
    return _base_events(ev) + d.stmt + y_stmt * d.omp_calls


def make_increment(
    mode: str,
    x_bb: float = X_BB_PER_OMP_CALL,
    y_stmt: float = Y_STMT_PER_OMP_CALL,
) -> Callable[[Ev], float]:
    """Build the increment callable for a (non-hwctr) logical mode."""
    if mode == LT1:
        return increment_lt1
    if mode == LTLOOP:
        return increment_ltloop
    if mode == LTBB:
        return lambda ev: increment_ltbb(ev, x_bb)
    if mode == LTSTMT:
        return lambda ev: increment_ltstmt(ev, y_stmt)
    raise ValueError(f"no static increment model for mode {mode!r}")
