"""Generalized Jaccard score for non-negative functions.

The paper generalizes the set Jaccard index to functions
``A, B: X -> R>=0`` (following Costa's multiset generalization):

    |A inter B| = sum_x min(A(x), B(x))
    |A union B| = sum_x max(A(x), B(x))
    J(A, B)     = |A inter B| / |A union B|

Two instantiations are used in the evaluation:

* ``J_(M,C)`` -- X is the set of (metric, call path) pairs, values are
  contributions to total run time in %T (Figs. 3 and 4),
* ``J_C^metric`` -- X is the set of call paths, values are relative
  contributions to one metric in %M (the bar plots, Figs. 5, 6, 9).
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Mapping, Optional, Sequence

from repro.analysis import metrics as M
from repro.cube.profile import CubeProfile

__all__ = [
    "jaccard",
    "jaccard_metric_callpath",
    "jaccard_callpaths_for_metric",
    "min_pairwise_jaccard",
]


def jaccard(a: Mapping[Hashable, float], b: Mapping[Hashable, float]) -> float:
    """Generalized Jaccard score of two non-negative mappings.

    Missing keys count as zero.  Both mappings empty (or all-zero) gives
    1.0 -- identical functions.  Negative values are a caller bug and
    raise.
    """
    inter = 0.0
    union = 0.0
    for k in set(a) | set(b):
        va = a.get(k, 0.0)
        vb = b.get(k, 0.0)
        if va < 0.0 or vb < 0.0:
            raise ValueError(f"negative value at {k!r}: {va}, {vb}")
        inter += min(va, vb)
        union += max(va, vb)
    if union == 0.0:
        return 1.0
    return inter / union


def _default_metrics(profile: CubeProfile) -> Sequence[str]:
    """All time-tree leaves plus the delay metrics present in the profile."""
    present = set(profile.metrics)
    return [m for m in (*M.TIME_LEAVES, *M.DELAY_METRICS) if m in present]


def jaccard_metric_callpath(
    a: CubeProfile, b: CubeProfile, metrics: Optional[Sequence[str]] = None
) -> float:
    """``J_(M,C)``: similarity of (metric, call path) -> %T mappings.

    This is the headline comparison of Figs. 3 and 4: how similar is a
    logical measurement's whole analysis result to the tsc result.
    """
    ma = a.as_mapping(metrics if metrics is not None else _default_metrics(a))
    mb = b.as_mapping(metrics if metrics is not None else _default_metrics(b))
    return jaccard(ma, mb)


def jaccard_callpaths_for_metric(a: CubeProfile, b: CubeProfile, metric: str) -> float:
    """``J_C^metric``: similarity of call-path shares of one metric (%M)."""
    return jaccard(a.metric_selection_percent(metric), b.metric_selection_percent(metric))


def min_pairwise_jaccard(
    profiles: Sequence[CubeProfile], metrics: Optional[Sequence[str]] = None
) -> float:
    """Minimum ``J_(M,C)`` over all pairs of repetitions.

    The paper plots this as the run-to-run similarity floor: 1.0 for
    deterministic logical modes, ~0.9+ for tsc, notably lower for
    lt_hwctr in cache-sensitive configurations (0.67 in TeaLeaf-2).
    """
    if len(profiles) < 2:
        return 1.0
    return min(
        jaccard_metric_callpath(a, b, metrics) for a, b in combinations(profiles, 2)
    )
