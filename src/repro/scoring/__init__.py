"""Generalized Jaccard similarity of profiles (paper Sec. V-B)."""

from repro.scoring.jaccard import (
    jaccard,
    jaccard_metric_callpath,
    jaccard_callpaths_for_metric,
    min_pairwise_jaccard,
)

__all__ = [
    "jaccard",
    "jaccard_metric_callpath",
    "jaccard_callpaths_for_metric",
    "min_pairwise_jaccard",
]
