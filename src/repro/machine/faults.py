"""Seeded fault injectors for the simulated machine.

Where :mod:`repro.machine.noise` perturbs *costs*, this module injects
*faults*: discrete failure events of the kinds HPC fault-tolerance work
cares about (fail-stop rank crashes, lost or duplicated messages,
degraded links, persistently slow cores).  The injectors are
independently switchable and all draws come from
:class:`repro.util.rng.RngStreams`, so a single fault seed fully
determines the fault realization -- the property the fault-sweep
experiment (:mod:`repro.experiments.faultsweep`) relies on to ask the
paper's bit-identity question under faults instead of noise.

Noise independence
------------------
Every injector keys its draws on *logical* coordinates that do not
depend on the noise realization:

* :class:`RankCrash` triggers on a drawn per-rank **progress point**
  (the index of the rank's next program action) by default, not on a
  wall-clock time -- the same program position crashes under every noise
  seed.  A ``"time"`` trigger mode exists for studying the (noise-
  dependent) alternative.
* :class:`MessageLoss` / :class:`MessageDuplication` draw per message
  occurrence on a channel -- ``(src, dst, tag, k)`` for the k-th matched
  message of that channel -- which is program-order deterministic.
* :class:`LinkDegradation` draws once per ordered ``(src, dst)`` pair,
  :class:`StragglerCore` once per ``(rank, thread)``.

All draws use :meth:`RngStreams.fresh`, so they are position-independent:
the recovery protocol's ghost replay (:mod:`repro.sim.recovery`) re-draws
the same values no matter how often an execution prefix is re-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro import obs
from repro.util.rng import RngStreams
from repro.util.validation import check_nonnegative

__all__ = [
    "FaultConfig",
    "ZeroFaults",
    "CrashPoint",
    "RankCrash",
    "MessageLoss",
    "MessageDuplication",
    "LinkDegradation",
    "StragglerCore",
    "FaultModel",
]

#: valid crash trigger modes
_TRIGGERS = ("progress", "time")


@dataclass(frozen=True)
class FaultConfig:
    """Fault intensity per injector kind; everything off by default.

    Probabilities are per drawing unit (rank, message, link, core); the
    companion magnitudes describe the fault's effect on virtual time.
    """

    #: per-rank probability of one fail-stop crash during the run
    crash_probability: float = 0.0
    #: ``"progress"`` (noise-independent, default) or ``"time"``
    crash_trigger: str = "progress"
    #: progress window (program action index) crash points are drawn from
    crash_max_progress: int = 400
    #: sim-time window (seconds) for ``"time"``-triggered crash points
    crash_max_time: float = 1.0
    #: per-message probability that the first delivery attempt is lost
    message_loss_probability: float = 0.0
    #: retransmit timeout added to a lost message's delivery (seconds)
    message_loss_timeout: float = 150e-6
    #: per-message probability of a duplicate delivery
    message_duplication_probability: float = 0.0
    #: receiver-side cost of discarding the duplicate (seconds)
    message_duplication_overhead: float = 3e-6
    #: per-ordered-link probability of a persistent bandwidth collapse
    link_degradation_probability: float = 0.0
    #: transfer-time multiplier on a degraded link
    link_degradation_factor: float = 8.0
    #: per-core probability of being a persistent straggler
    straggler_probability: float = 0.0
    #: compute-time multiplier on a straggler core
    straggler_factor: float = 1.35

    def __post_init__(self):
        if self.crash_trigger not in _TRIGGERS:
            raise ValueError(
                f"crash_trigger must be one of {_TRIGGERS}, "
                f"got {self.crash_trigger!r}"
            )
        for name in ("crash_probability", "message_loss_probability",
                     "message_duplication_probability",
                     "link_degradation_probability", "straggler_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        check_nonnegative("message_loss_timeout", self.message_loss_timeout)
        check_nonnegative("message_duplication_overhead",
                          self.message_duplication_overhead)

    def scaled(self, factor: float) -> "FaultConfig":
        """A config with every fault probability multiplied by ``factor``."""
        check_nonnegative("factor", factor)

        def clamp(p: float) -> float:
            return min(1.0, p * factor)

        return FaultConfig(
            crash_probability=clamp(self.crash_probability),
            crash_trigger=self.crash_trigger,
            crash_max_progress=self.crash_max_progress,
            crash_max_time=self.crash_max_time,
            message_loss_probability=clamp(self.message_loss_probability),
            message_loss_timeout=self.message_loss_timeout,
            message_duplication_probability=clamp(
                self.message_duplication_probability),
            message_duplication_overhead=self.message_duplication_overhead,
            link_degradation_probability=clamp(
                self.link_degradation_probability),
            link_degradation_factor=self.link_degradation_factor,
            straggler_probability=clamp(self.straggler_probability),
            straggler_factor=self.straggler_factor,
        )

    @property
    def any_enabled(self) -> bool:
        return any((
            self.crash_probability > 0.0,
            self.message_loss_probability > 0.0,
            self.message_duplication_probability > 0.0,
            self.link_degradation_probability > 0.0,
            self.straggler_probability > 0.0,
        ))


def ZeroFaults() -> FaultConfig:
    """A config with every injector switched off (the default)."""
    return FaultConfig()


@dataclass(frozen=True)
class CrashPoint:
    """One drawn fail-stop event.

    ``at`` is a program action index for the ``"progress"`` trigger and a
    sim time (seconds) for the ``"time"`` trigger.  ``key`` identifies
    the crash across recovery attempts (each drawn crash fires at most
    once per run).
    """

    rank: int
    trigger: str
    at: Union[int, float]

    @property
    def key(self) -> Tuple[int, str]:
        return (self.rank, self.trigger)


class RankCrash:
    """Fail-stop crashes, one potential crash per rank."""

    def __init__(self, rngs: RngStreams, config: FaultConfig):
        self._rngs = rngs
        self._config = config
        self._injections = obs.counter("faults.injections", kind="crash")

    def schedule(self, n_ranks: int) -> Dict[int, CrashPoint]:
        """Drawn crash points per rank (only ranks that do crash)."""
        cfg = self._config
        out: Dict[int, CrashPoint] = {}
        if cfg.crash_probability <= 0.0:
            return out
        for rank in range(n_ranks):
            rng = self._rngs.fresh("crash", rank=rank)
            if rng.random() >= cfg.crash_probability:
                continue
            if cfg.crash_trigger == "progress":
                at: Union[int, float] = int(
                    rng.integers(1, max(2, cfg.crash_max_progress)))
            else:
                at = float(rng.uniform(0.0, cfg.crash_max_time))
            out[rank] = CrashPoint(rank, cfg.crash_trigger, at)
            self._injections.inc()
        return out


class MessageLoss:
    """Per-message Bernoulli loss; lost messages are retransmitted late."""

    def __init__(self, rngs: RngStreams, config: FaultConfig):
        self._rngs = rngs
        self._p = config.message_loss_probability
        self._injections = obs.counter("faults.injections", kind="msg_loss")

    def lost(self, src: int, dst: int, tag: int, occurrence: int) -> bool:
        if self._p <= 0.0:
            return False
        rng = self._rngs.fresh("msg-loss", src=src, dst=dst, tag=tag,
                               k=occurrence)
        hit = rng.random() < self._p
        if hit:
            self._injections.inc()
        return hit


class MessageDuplication:
    """Per-message Bernoulli duplication; the receiver pays to discard."""

    def __init__(self, rngs: RngStreams, config: FaultConfig):
        self._rngs = rngs
        self._p = config.message_duplication_probability
        self._injections = obs.counter("faults.injections", kind="msg_dup")

    def duplicated(self, src: int, dst: int, tag: int, occurrence: int) -> bool:
        if self._p <= 0.0:
            return False
        rng = self._rngs.fresh("msg-dup", src=src, dst=dst, tag=tag,
                               k=occurrence)
        hit = rng.random() < self._p
        if hit:
            self._injections.inc()
        return hit


class LinkDegradation:
    """Persistent bandwidth collapse on drawn ordered links."""

    def __init__(self, rngs: RngStreams, config: FaultConfig):
        self._rngs = rngs
        self._p = config.link_degradation_probability
        self._factor = config.link_degradation_factor
        self._cache: Dict[Tuple[int, int], float] = {}
        self._injections = obs.counter("faults.injections", kind="link")

    def factor(self, src: int, dst: int) -> float:
        key = (src, dst)
        f = self._cache.get(key)
        if f is None:
            f = 1.0
            if self._p > 0.0:
                rng = self._rngs.fresh("link", src=src, dst=dst)
                if rng.random() < self._p:
                    f = self._factor
                    self._injections.inc()
            self._cache[key] = f
        return f


class StragglerCore:
    """A persistently slow core: compute on it takes a constant factor longer."""

    def __init__(self, rngs: RngStreams, config: FaultConfig):
        self._rngs = rngs
        self._p = config.straggler_probability
        self._factor = config.straggler_factor
        self._cache: Dict[Tuple[int, int], float] = {}
        self._injections = obs.counter("faults.injections", kind="straggler")

    def factor(self, rank: int, thread: int) -> float:
        key = (rank, thread)
        f = self._cache.get(key)
        if f is None:
            f = 1.0
            if self._p > 0.0:
                rng = self._rngs.fresh("straggler", rank=rank, thread=thread)
                if rng.random() < self._p:
                    f = self._factor
                    self._injections.inc()
            self._cache[key] = f
        return f


class FaultModel:
    """Facade bundling all fault injectors behind one seeded object.

    A single instance serves a whole recovery run (all restart attempts):
    its draws are position-independent, so ghost replays observe the same
    fault realization, and the memoized link/straggler factors stay
    stable across attempts.
    """

    def __init__(self, config: FaultConfig, seed: int):
        self.config = config
        self.seed = int(seed)
        rngs = RngStreams(seed)
        self.rngs = rngs
        self.crash = RankCrash(rngs, config)
        self.loss = MessageLoss(rngs, config)
        self.duplication = MessageDuplication(rngs, config)
        self.link = LinkDegradation(rngs, config)
        self.straggler = StragglerCore(rngs, config)
        self._schedule: Optional[Dict[int, CrashPoint]] = None

    def crash_schedule(self, n_ranks: int) -> Dict[int, CrashPoint]:
        """The run's crash schedule (memoized; pure function of the seed)."""
        if self._schedule is None:
            self._schedule = self.crash.schedule(n_ranks)
        return self._schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultModel(seed={self.seed}, config={self.config})"
