"""Memory bandwidth contention and cache capacity models.

Two resource-sharing effects drive the paper's "logical clocks cannot see
this" findings, and both are modelled here:

1. **NUMA bandwidth contention** (MiniFE-2 matvec, LULESH-2 uneven domain
   occupancy).  Threads sharing a NUMA domain split its bandwidth.  The
   split is softened by a *desynchronization credit*: when co-located
   actors start a memory phase at spread-out times they overlap less and
   each sees more bandwidth.  This is the mechanism behind the paper's
   observed *negative* measurement overhead (Fig. 2, citing Afzal et al.:
   "measurement induces a desynchronization between threads, which ...
   increase[s] performance in memory-bound codes").

2. **Last-level cache capacity** (TeaLeaf, Sec. IV-E/V-C5).  A working set
   that fits in L3 streams at cache bandwidth; instrumentation buffers add
   to the footprint and push it out ("Score-P interfering with the cache"),
   which is how the tsc measurement of TeaLeaf acquires its ~40 % overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.topology import Cluster
from repro.util.validation import check_nonnegative

__all__ = ["MemoryModel", "CacheModel"]


@dataclass
class MemoryModel:
    """Effective per-actor memory bandwidth on a NUMA domain.

    Parameters
    ----------
    cluster:
        Topology (supplies per-domain aggregate bandwidth).
    per_core_bw_cap:
        A single core cannot saturate the domain; cap its share (bytes/s).
    contention_exponent:
        1.0 = perfect bandwidth partitioning among overlapping actors;
        values below 1 model partial overlap tolerance of the memory
        subsystem (some concurrency is absorbed by parallelism in the
        memory controllers).
    """

    cluster: Cluster
    per_core_bw_cap: float = 22.0e9
    contention_exponent: float = 1.0

    def effective_accessors(self, pinned_actors: int, desync: float, solo_duration: float) -> float:
        """Number of actors effectively competing for the domain.

        ``pinned_actors`` actors would like to stream concurrently; they
        start with a spread of ``desync`` seconds while a solo execution of
        the phase takes ``solo_duration`` seconds.  Full overlap (desync=0)
        means all compete; once the spread approaches the phase duration the
        executions serialize naturally and stop competing.
        """
        check_nonnegative("pinned_actors", pinned_actors)
        if pinned_actors <= 1:
            return max(1.0, float(pinned_actors))
        if solo_duration <= 0.0:
            overlap = 1.0
        else:
            overlap = math.exp(-max(desync, 0.0) / solo_duration)
        return 1.0 + (pinned_actors - 1) * overlap

    def bandwidth_per_actor(
        self,
        numa_id: int,
        pinned_actors: int,
        desync: float = 0.0,
        solo_duration: float = 0.0,
    ) -> float:
        """Bytes/s available to one actor of ``pinned_actors`` on the domain."""
        domain = self.cluster.numa_domain(numa_id)
        a_eff = self.effective_accessors(pinned_actors, desync, solo_duration)
        share = domain.mem_bandwidth / (a_eff**self.contention_exponent)
        return min(share, self.per_core_bw_cap)


@dataclass
class CacheModel:
    """Bandwidth amplification for working sets that (partially) fit in L3.

    ``bandwidth_factor`` returns a multiplier >= 1 applied to the DRAM
    bandwidth an actor would otherwise get.  With hit fraction ``f`` and
    cache-vs-DRAM speed ratio ``s``, the average time per byte is
    ``(1 - f)/bw + f/(s * bw)``, i.e. the multiplier is
    ``1 / ((1 - f) + f / s)``.
    """

    cluster: Cluster
    cache_speedup: float = 20.0  # L3 stream bandwidth relative to DRAM (per core)

    def hit_fraction(self, socket_working_set: float, extra_footprint: float = 0.0) -> float:
        """Fraction of the (per-socket) working set resident in L3."""
        check_nonnegative("socket_working_set", socket_working_set)
        check_nonnegative("extra_footprint", extra_footprint)
        l3 = self.cluster.nodes[0].sockets[0].l3_capacity
        total = socket_working_set + extra_footprint
        if total <= 0.0:
            return 1.0
        return min(1.0, l3 / total)

    def bandwidth_factor(self, socket_working_set: float, extra_footprint: float = 0.0) -> float:
        """Multiplier on DRAM bandwidth for this working set (>= 1)."""
        f = self.hit_fraction(socket_working_set, extra_footprint)
        s = self.cache_speedup
        return 1.0 / ((1.0 - f) + f / s)
