"""Seeded noise sources (an HPAS-style injector suite).

The paper's premise is that "noise is present on all modern computers" and
classifies it by origin -- CPU, cache, memory, storage, network (Ates et
al.).  This module implements independently switchable, seeded injectors:

* :class:`CpuNoise` -- multiplicative run-time jitter on compute kernels
  (frequency scaling, SMT interference, micro-architectural variation).
* :class:`OsJitter` -- additive detours: the OS steals the core for
  daemons/interrupts at a Poisson rate (Petrini's classic ASCI Q effect).
* :class:`MemoryNoise` -- jitter on achieved memory bandwidth.
* :class:`NetworkNoise` -- multiplicative jitter on message transfer and
  collective costs (shared-fabric interference, cf. Beni et al.).
* :class:`CounterNoise` -- run-to-run variation of the simulated
  ``PERF_COUNT_HW_INSTRUCTIONS`` counter.  Ritter et al. showed instruction
  counters are noisy but *less* noisy than run-time; the default levels
  preserve that ordering.

All draws come from :class:`repro.util.rng.RngStreams`, so a (seed,
repetition) pair fully determines every noise realization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.util.rng import RngStreams
from repro.util.validation import check_nonnegative

__all__ = [
    "NoiseConfig",
    "NoiseModel",
    "CpuNoise",
    "OsJitter",
    "MemoryNoise",
    "NetworkNoise",
    "CounterNoise",
    "ZeroNoise",
]


@dataclass(frozen=True)
class NoiseConfig:
    """Noise intensity per source; all dimensionless unless noted.

    The defaults produce a few-percent run-to-run variation of compute
    phases and a noticeably larger variation of communication, matching the
    qualitative picture in the paper's Sec. I ("run-to-run variation" of
    whole applications on the order of percent, communication micro-
    benchmarks much worse).
    """

    cpu_sigma: float = 0.01  # lognormal sigma of per-kernel compute factor
    os_jitter_rate: float = 25.0  # detours per second per core
    os_jitter_duration: float = 40e-6  # mean seconds per detour
    memory_sigma: float = 0.02  # lognormal sigma on achieved bandwidth
    network_sigma: float = 0.10  # lognormal sigma on transfer times
    counter_sigma: float = 0.004  # lognormal sigma on instruction counts
    counter_offset_instructions: float = 3.0e4  # kernel-entry/-exit count slop

    def scaled(self, factor: float) -> "NoiseConfig":
        """A config with every intensity multiplied by ``factor``."""
        check_nonnegative("factor", factor)
        return NoiseConfig(
            cpu_sigma=self.cpu_sigma * factor,
            os_jitter_rate=self.os_jitter_rate * factor,
            os_jitter_duration=self.os_jitter_duration,
            memory_sigma=self.memory_sigma * factor,
            network_sigma=self.network_sigma * factor,
            counter_sigma=self.counter_sigma * factor,
            counter_offset_instructions=self.counter_offset_instructions * factor,
        )


def ZeroNoise() -> NoiseConfig:
    """A config with every source switched off (fully deterministic runs)."""
    return NoiseConfig(
        cpu_sigma=0.0,
        os_jitter_rate=0.0,
        os_jitter_duration=0.0,
        memory_sigma=0.0,
        network_sigma=0.0,
        counter_sigma=0.0,
        counter_offset_instructions=0.0,
    )


def _lognormal_factor(rng: np.random.Generator, sigma: float) -> float:
    """A mean-1 multiplicative factor; degenerates to 1.0 at sigma=0."""
    if sigma <= 0.0:
        return 1.0
    return float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))


class _FactorBuffer:
    """Prefetched mean-1 lognormal factors for one fixed-parameter stream.

    ``pop()`` yields exactly the sequence of values that repeated
    ``_lognormal_factor(rng, sigma)`` calls would produce on the same
    stream: ``Generator.normal(mu, sigma, size=n)`` consumes the bit
    stream identically to ``n`` scalar draws, and ``np.exp`` over the
    batch equals the scalar ``np.exp`` element by element (both verified
    bitwise in the engine equivalence tests).  Prefetching only moves
    the *raw* bit-generator position ahead; the injector-visible factor
    sequence -- the only thing consumed anywhere -- is unchanged, which
    keeps legacy and vectorized engine runs interchangeable in any
    order on a shared :class:`NoiseModel`.
    """

    __slots__ = ("_rng", "_mu", "_sigma", "_vals")

    BATCH = 256

    def __init__(self, rng: np.random.Generator, sigma: float):
        self._rng = rng
        self._sigma = sigma
        self._mu = -0.5 * sigma * sigma
        self._vals: list = []

    def pop(self) -> float:
        vals = self._vals
        if not vals:
            # reversed so list.pop() replays the draw order
            vals[:] = np.exp(
                self._rng.normal(self._mu, self._sigma, self.BATCH)
            )[::-1].tolist()
        return vals.pop()


class CpuNoise:
    """Multiplicative compute-time jitter per (location, kernel execution)."""

    def __init__(self, rngs: RngStreams, config: NoiseConfig):
        self._rngs = rngs
        self._sigma = config.cpu_sigma
        self._buffers: dict = {}
        # bound once; the shared no-op singleton while observability is off
        self._injections = obs.counter("noise.injections", kind="cpu")

    def factor(self, rank: int, thread: int) -> float:
        self._injections.inc()
        if self._sigma <= 0.0:
            return 1.0
        return self.buffer(rank, thread).pop()

    def buffer(self, rank: int, thread: int) -> _FactorBuffer:
        """The location's prefetched factor stream (requires sigma > 0)."""
        key = (rank, thread)
        buf = self._buffers.get(key)
        if buf is None:
            rng = self._rngs.get("cpu-noise", rank=rank, thread=thread)
            buf = _FactorBuffer(rng, self._sigma)
            self._buffers[key] = buf
        return buf


class OsJitter:
    """Additive OS detour time accumulated over a compute interval."""

    def __init__(self, rngs: RngStreams, config: NoiseConfig):
        self._rngs = rngs
        self._rate = config.os_jitter_rate
        self._duration = config.os_jitter_duration
        self._injections = obs.counter("noise.injections", kind="os")

    def detour_time(self, rank: int, thread: int, interval: float) -> float:
        """Total stolen time while running ``interval`` seconds of work."""
        check_nonnegative("interval", interval)
        if self._rate <= 0.0 or self._duration <= 0.0 or interval <= 0.0:
            return 0.0
        rng = self._rngs.get("os-jitter", rank=rank, thread=thread)
        n = rng.poisson(self._rate * interval)
        if n == 0:
            return 0.0
        self._injections.add(int(n))
        return float(rng.exponential(self._duration, size=n).sum())


class MemoryNoise:
    """Multiplicative jitter on achieved memory bandwidth."""

    def __init__(self, rngs: RngStreams, config: NoiseConfig):
        self._rngs = rngs
        self._sigma = config.memory_sigma
        self._buffers: dict = {}
        self._injections = obs.counter("noise.injections", kind="memory")

    def factor(self, numa_id: int) -> float:
        self._injections.inc()
        if self._sigma <= 0.0:
            return 1.0
        return self.buffer(numa_id).pop()

    def buffer(self, numa_id: int) -> _FactorBuffer:
        """The domain's prefetched factor stream (requires sigma > 0)."""
        buf = self._buffers.get(numa_id)
        if buf is None:
            rng = self._rngs.get("mem-noise", numa=numa_id)
            buf = _FactorBuffer(rng, self._sigma)
            self._buffers[numa_id] = buf
        return buf


class NetworkNoise:
    """Multiplicative jitter on message / collective transfer times."""

    def __init__(self, rngs: RngStreams, config: NoiseConfig):
        self._rngs = rngs
        self._sigma = config.network_sigma
        self._gens: dict = {}
        self._injections = obs.counter("noise.injections", kind="network")

    def factor(self, key) -> float:
        self._injections.inc()
        # one level of memoization above RngStreams.get: transfer keys
        # recur every run, and the kwargs/sort dance there is hot
        rng = self._gens.get(key)
        if rng is None:
            rng = self._rngs.get("net-noise", key=key)
            self._gens[key] = rng
        return _lognormal_factor(rng, self._sigma)


class CounterNoise:
    """Run-to-run variation of the simulated instruction counter."""

    def __init__(self, rngs: RngStreams, config: NoiseConfig):
        self._rngs = rngs
        self._sigma = config.counter_sigma
        self._offset = config.counter_offset_instructions
        self._injections = obs.counter("noise.injections", kind="counter")

    def perturb(self, rank: int, thread: int, instructions: float) -> float:
        """Counter reading for a true count of ``instructions``."""
        check_nonnegative("instructions", instructions)
        self._injections.inc()
        rng = self._rngs.get("ctr-noise", rank=rank, thread=thread)
        value = instructions * _lognormal_factor(rng, self._sigma)
        if self._offset > 0.0:
            value += float(rng.exponential(self._offset))
        return value

    def perturb_many(self, rank: int, thread: int, instructions) -> np.ndarray:
        """Readings for a whole sequence of counts on one location.

        Bit-compatible with calling :meth:`perturb` once per element in
        order: the lognormal and offset draws stay *interleaved* per event
        (they share one bitstream, so batching the draws by kind would
        change every value after the first).  The loop merely strips the
        per-call wrapper overhead of the scalar path.
        """
        self._injections.add(len(instructions))
        rng = self._rngs.get("ctr-noise", rank=rank, thread=thread)
        sigma = self._sigma
        offset = self._offset
        mu = -0.5 * sigma * sigma
        out = np.empty(len(instructions), dtype=np.float64)
        normal = rng.normal
        exponential = rng.exponential
        if sigma > 0.0 and offset > 0.0:
            for k, instr in enumerate(instructions):
                out[k] = instr * float(np.exp(normal(mu, sigma))) \
                    + float(exponential(offset))
        elif sigma > 0.0:
            for k, instr in enumerate(instructions):
                out[k] = instr * float(np.exp(normal(mu, sigma)))
        elif offset > 0.0:
            for k, instr in enumerate(instructions):
                out[k] = instr + float(exponential(offset))
        else:
            out[:] = np.asarray(instructions, dtype=np.float64)
        return out


class NoiseModel:
    """Facade bundling all injectors behind one seeded object."""

    def __init__(self, config: NoiseConfig, seed: int):
        self.config = config
        self.seed = int(seed)
        rngs = RngStreams(seed)
        self.rngs = rngs
        self.cpu = CpuNoise(rngs, config)
        self.os = OsJitter(rngs, config)
        self.memory = MemoryNoise(rngs, config)
        self.network = NetworkNoise(rngs, config)
        self.counter = CounterNoise(rngs, config)

    def compute_time(self, rank: int, thread: int, base: float) -> float:
        """Noisy duration of a compute interval of noiseless length ``base``."""
        check_nonnegative("base", base)
        noisy = base * self.cpu.factor(rank, thread)
        return noisy + self.os.detour_time(rank, thread, noisy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NoiseModel(seed={self.seed}, config={self.config})"
