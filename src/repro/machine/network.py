"""Network and collective cost models.

Point-to-point transfers follow the classic latency/bandwidth (Hockney)
model with a shared-memory fast path for intra-node pairs.  Collectives use
textbook log-tree / ring cost formulas.  These costs set the *floor* of MPI
time; the interesting MPI time in the paper's experiments is waiting, which
the simulator derives from rank arrival times, not from this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.topology import Cluster, Pinning
from repro.util.validation import check_nonnegative

__all__ = ["NetworkModel", "CollectiveCostModel"]


@dataclass
class NetworkModel:
    """Point-to-point transfer times over the cluster interconnect.

    Intra-node messages go through shared memory (lower latency, higher
    bandwidth); inter-node messages over the fabric.  ``eager_threshold``
    selects the MPI protocol: eager sends complete locally, rendezvous
    sends block until the receiver arrives (the source of the
    *late receiver* pattern).
    """

    cluster: Cluster
    eager_threshold: int = 16 * 1024  # bytes; typical MPI default magnitude
    shm_latency: float = 1.0e-6  # incl. per-call software overhead at high process counts
    shm_bandwidth_factor: float = 2.0  # shared-memory bw relative to NIC bw

    def latency(self, same_node: bool) -> float:
        return self.shm_latency if same_node else self.cluster.network_latency

    def bandwidth(self, same_node: bool) -> float:
        bw = self.cluster.network_bandwidth
        return bw * self.shm_bandwidth_factor if same_node else bw

    def transfer_time(self, nbytes: float, same_node: bool) -> float:
        """Latency + serialization time for a point-to-point message."""
        check_nonnegative("nbytes", nbytes)
        return self.latency(same_node) + nbytes / self.bandwidth(same_node)

    def is_eager(self, nbytes: float) -> bool:
        return nbytes <= self.eager_threshold


@dataclass
class CollectiveCostModel:
    """Intrinsic (zero-imbalance) cost of MPI collectives.

    Cost formulas (n ranks, m bytes per rank, alpha latency, beta inv-bw):

    * barrier:    ceil(log2 n) * alpha
    * bcast:      ceil(log2 n) * (alpha + m * beta)
    * reduce:     like bcast plus a small per-byte reduction term
    * allreduce:  reduce + bcast (2 log n stages)
    * allgather / alltoall: ring, (n-1) steps

    The model intentionally ignores topology details beyond intra-node vs
    inter-node; the paper's wait-state severities are dominated by arrival
    imbalance, which the simulator captures exactly.
    """

    network: NetworkModel
    reduce_flop_time: float = 0.25e-9  # seconds per reduced byte (SUM on doubles)

    def _alpha_beta(self, pinning: Pinning, ranks) -> tuple:
        ranks = list(ranks)
        same_node = all(pinning.node_of(r) == pinning.node_of(ranks[0]) for r in ranks)
        alpha = self.network.latency(same_node)
        beta = 1.0 / self.network.bandwidth(same_node)
        return alpha, beta

    @staticmethod
    def _log2ceil(n: int) -> int:
        return max(1, int(math.ceil(math.log2(max(n, 2)))))

    def barrier(self, pinning: Pinning, ranks) -> float:
        n = len(list(ranks))
        if n <= 1:
            return 0.0
        alpha, _ = self._alpha_beta(pinning, ranks)
        return self._log2ceil(n) * alpha

    def bcast(self, pinning: Pinning, ranks, nbytes: float) -> float:
        n = len(list(ranks))
        if n <= 1:
            return 0.0
        alpha, beta = self._alpha_beta(pinning, ranks)
        return self._log2ceil(n) * (alpha + nbytes * beta)

    def reduce(self, pinning: Pinning, ranks, nbytes: float) -> float:
        n = len(list(ranks))
        if n <= 1:
            return 0.0
        alpha, beta = self._alpha_beta(pinning, ranks)
        stages = self._log2ceil(n)
        return stages * (alpha + nbytes * (beta + self.reduce_flop_time))

    def allreduce(self, pinning: Pinning, ranks, nbytes: float) -> float:
        n = len(list(ranks))
        if n <= 1:
            return 0.0
        return self.reduce(pinning, ranks, nbytes) + self.bcast(pinning, ranks, nbytes)

    def allgather(self, pinning: Pinning, ranks, nbytes_per_rank: float) -> float:
        ranks = list(ranks)
        n = len(ranks)
        if n <= 1:
            return 0.0
        alpha, beta = self._alpha_beta(pinning, ranks)
        return (n - 1) * (alpha + nbytes_per_rank * beta)

    def alltoall(self, pinning: Pinning, ranks, nbytes_per_pair: float) -> float:
        ranks = list(ranks)
        n = len(ranks)
        if n <= 1:
            return 0.0
        alpha, beta = self._alpha_beta(pinning, ranks)
        return (n - 1) * (alpha + nbytes_per_pair * beta)

    def cost(self, op: str, pinning: Pinning, ranks, nbytes: float) -> float:
        """Dispatch by operation name (as used in trace events)."""
        dispatch = {
            "barrier": lambda: self.barrier(pinning, ranks),
            "bcast": lambda: self.bcast(pinning, ranks, nbytes),
            "reduce": lambda: self.reduce(pinning, ranks, nbytes),
            "allreduce": lambda: self.allreduce(pinning, ranks, nbytes),
            "allgather": lambda: self.allgather(pinning, ranks, nbytes),
            "alltoall": lambda: self.alltoall(pinning, ranks, nbytes),
        }
        try:
            return dispatch[op]()
        except KeyError:
            raise ValueError(f"unknown collective op {op!r}") from None
