"""Machine presets.

``jureca_dc`` mirrors the hardware specification in Sec. IV-A of the paper:

* 2 x AMD EPYC 7742 per node (2 x 64 cores @ 2.25 GHz),
* 512 GB DDR4-3200 in 8 NUMA domains of 64 GB each,
* InfiniBand HDR100.

The per-core sustained flop rate and per-domain bandwidth are order-of-
magnitude figures; the reproduction compares *shapes* (ratios, rankings,
crossovers), not absolute seconds, so only the relative magnitudes of
compute speed, memory bandwidth and network cost matter.
"""

from __future__ import annotations

from repro.machine.topology import Cluster, build_cluster

__all__ = ["jureca_dc", "small_test_cluster"]

GIB = 1024.0**3
GB = 1e9


def jureca_dc(n_nodes: int = 2) -> Cluster:
    """The Jureca-DC standard node model used in all paper experiments.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the allocation.  LULESH-1 uses two full nodes;
        everything else in the paper fits on one.
    """
    return build_cluster(
        name=f"jureca-dc-{n_nodes}n",
        n_nodes=n_nodes,
        sockets_per_node=2,
        numa_per_socket=4,
        cores_per_numa=16,
        # ~2.25 GHz Zen2; a few flops/cycle sustained for mixed scalar/SIMD code.
        flops_per_core=9.0e9,
        # DDR4-3200, 2 channels per NUMA domain: ~45 GB/s effective.
        mem_bandwidth_per_numa=45.0 * GB,
        mem_capacity_per_numa=64.0 * GIB,
        # 16 MB L3 per CCX, 4 CCX per NUMA domain, 4 domains per socket:
        # 256 MB per socket -> 512 MB per node (cf. the TeaLeaf cache
        # arithmetic in Sec. IV-E: "8 x 4 x 16 MB = 512 MB L3 on the node").
        l3_per_socket=256.0 * 1024**2,
        # InfiniBand HDR100: ~1.2 us MPI latency, ~12 GB/s per port.
        network_latency=1.2e-6,
        network_bandwidth=12.0 * GB,
    )


def small_test_cluster(
    n_nodes: int = 1,
    cores_per_numa: int = 2,
    numa_per_socket: int = 2,
    sockets_per_node: int = 1,
) -> Cluster:
    """A tiny cluster for unit tests: fast to simulate, easy to reason about."""
    return build_cluster(
        name="testbox",
        n_nodes=n_nodes,
        sockets_per_node=sockets_per_node,
        numa_per_socket=numa_per_socket,
        cores_per_numa=cores_per_numa,
        flops_per_core=1.0e9,
        mem_bandwidth_per_numa=10.0 * GB,
        mem_capacity_per_numa=4.0 * GIB,
        l3_per_socket=8.0 * 1024**2,
        network_latency=1.0e-6,
        network_bandwidth=10.0 * GB,
    )
