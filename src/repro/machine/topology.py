"""Cluster topology: cluster -> node -> socket -> NUMA domain -> core.

The topology is static metadata; dynamic behaviour (contention, noise)
lives in :mod:`repro.machine.memory` and :mod:`repro.machine.noise`.
:class:`Pinning` maps (rank, thread) pairs onto cores, mirroring the way
the paper distributes ranks over NUMA domains (e.g. MiniFE-1 pins one rank
per NUMA domain; LULESH-2 deliberately fills domains unevenly).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Tuple

from repro.util.validation import check_positive

__all__ = ["Core", "NumaDomain", "Socket", "Node", "Cluster", "Pinning"]


@dataclass(frozen=True)
class Core:
    """A hardware core, identified globally and by its NUMA domain."""

    global_id: int
    node_id: int
    socket_id: int
    numa_id: int  # global NUMA domain id across the cluster
    local_id: int  # index within the NUMA domain


@dataclass(frozen=True)
class NumaDomain:
    """A NUMA domain: cores plus a local memory with finite bandwidth."""

    global_id: int
    node_id: int
    socket_id: int
    cores: Tuple[Core, ...]
    mem_bandwidth: float  # bytes/s aggregate for the domain
    mem_capacity: float  # bytes

    @property
    def n_cores(self) -> int:
        return len(self.cores)


@dataclass(frozen=True)
class Socket:
    """A CPU socket: NUMA domains plus a shared last-level cache."""

    global_id: int
    node_id: int
    numa_domains: Tuple[NumaDomain, ...]
    l3_capacity: float  # bytes, aggregate over the socket's L3 slices

    @cached_property
    def cores(self) -> Tuple[Core, ...]:
        return tuple(c for d in self.numa_domains for c in d.cores)


@dataclass(frozen=True)
class Node:
    """A compute node (the unit the paper's job configurations fill)."""

    node_id: int
    sockets: Tuple[Socket, ...]

    @cached_property
    def numa_domains(self) -> Tuple[NumaDomain, ...]:
        return tuple(d for s in self.sockets for d in s.numa_domains)

    @cached_property
    def cores(self) -> Tuple[Core, ...]:
        return tuple(c for s in self.sockets for c in s.cores)

    @cached_property
    def l3_capacity(self) -> float:
        return sum(s.l3_capacity for s in self.sockets)


@dataclass(frozen=True)
class Cluster:
    """A homogeneous cluster plus per-core compute capability.

    ``flops_per_core`` and per-domain ``mem_bandwidth`` drive the roofline
    cost model in :mod:`repro.sim.costmodel`.
    """

    name: str
    nodes: Tuple[Node, ...]
    flops_per_core: float  # flop/s per core (sustained, not peak marketing)
    network_latency: float  # seconds, nearest-neighbour
    network_bandwidth: float  # bytes/s per link

    @cached_property
    def cores(self) -> Tuple[Core, ...]:
        return tuple(c for n in self.nodes for c in n.cores)

    @cached_property
    def numa_domains(self) -> Tuple[NumaDomain, ...]:
        return tuple(d for n in self.nodes for d in n.numa_domains)

    @cached_property
    def _numa_by_id(self) -> Dict[int, NumaDomain]:
        return {d.global_id: d for d in self.numa_domains}

    @cached_property
    def _core_by_id(self) -> Dict[int, Core]:
        return {c.global_id: c for c in self.cores}

    def numa_domain(self, numa_id: int) -> NumaDomain:
        try:
            return self._numa_by_id[numa_id]
        except KeyError:
            raise KeyError(f"no NUMA domain {numa_id}") from None

    def core(self, global_id: int) -> Core:
        try:
            return self._core_by_id[global_id]
        except KeyError:
            raise KeyError(f"no core {global_id}") from None


def build_cluster(
    name: str,
    n_nodes: int,
    sockets_per_node: int,
    numa_per_socket: int,
    cores_per_numa: int,
    flops_per_core: float,
    mem_bandwidth_per_numa: float,
    mem_capacity_per_numa: float,
    l3_per_socket: float,
    network_latency: float,
    network_bandwidth: float,
) -> Cluster:
    """Construct a homogeneous :class:`Cluster` from per-level counts."""
    for label, v in [
        ("n_nodes", n_nodes),
        ("sockets_per_node", sockets_per_node),
        ("numa_per_socket", numa_per_socket),
        ("cores_per_numa", cores_per_numa),
        ("flops_per_core", flops_per_core),
        ("mem_bandwidth_per_numa", mem_bandwidth_per_numa),
    ]:
        check_positive(label, v)
    nodes: List[Node] = []
    core_id = 0
    numa_id = 0
    socket_id = 0
    for node_id in range(n_nodes):
        sockets: List[Socket] = []
        for _s in range(sockets_per_node):
            domains: List[NumaDomain] = []
            for _d in range(numa_per_socket):
                cores = []
                for local in range(cores_per_numa):
                    cores.append(
                        Core(
                            global_id=core_id,
                            node_id=node_id,
                            socket_id=socket_id,
                            numa_id=numa_id,
                            local_id=local,
                        )
                    )
                    core_id += 1
                domains.append(
                    NumaDomain(
                        global_id=numa_id,
                        node_id=node_id,
                        socket_id=socket_id,
                        cores=tuple(cores),
                        mem_bandwidth=mem_bandwidth_per_numa,
                        mem_capacity=mem_capacity_per_numa,
                    )
                )
                numa_id += 1
            sockets.append(
                Socket(
                    global_id=socket_id,
                    node_id=node_id,
                    numa_domains=tuple(domains),
                    l3_capacity=l3_per_socket,
                )
            )
            socket_id += 1
        nodes.append(Node(node_id=node_id, sockets=tuple(sockets)))
    return Cluster(
        name=name,
        nodes=tuple(nodes),
        flops_per_core=flops_per_core,
        network_latency=network_latency,
        network_bandwidth=network_bandwidth,
    )


class Pinning:
    """Mapping of (rank, thread) -> :class:`Core`.

    The default policy packs ranks in order, giving each rank
    ``threads_per_rank`` consecutive cores; ``spread_ranks_over_numa``
    instead places one rank per NUMA domain (MiniFE's one-rank-per-domain
    configurations).  Custom mappings can be supplied directly.
    """

    def __init__(self, cluster: Cluster, mapping: Dict[Tuple[int, int], Core]):
        self.cluster = cluster
        self._map = dict(mapping)
        self._ranks = sorted({r for (r, _t) in self._map})
        threads: Dict[int, int] = {}
        for (r, t) in self._map:
            threads[r] = max(threads.get(r, 0), t + 1)
        self._threads_per_rank = threads

    # -- constructors ---------------------------------------------------
    @classmethod
    def packed(cls, cluster: Cluster, n_ranks: int, threads_per_rank: int) -> "Pinning":
        """Fill cores in global order, one rank after another."""
        cores = cluster.cores
        needed = n_ranks * threads_per_rank
        if needed > len(cores):
            raise ValueError(
                f"need {needed} cores for {n_ranks} ranks x {threads_per_rank} threads, "
                f"cluster has {len(cores)}"
            )
        mapping = {}
        i = 0
        for r in range(n_ranks):
            for t in range(threads_per_rank):
                mapping[(r, t)] = cores[i]
                i += 1
        return cls(cluster, mapping)

    @classmethod
    def balanced_numa(cls, cluster: Cluster, n_ranks: int, threads_per_rank: int) -> "Pinning":
        """Distribute ranks over NUMA domains as evenly as the count allows.

        With 27 ranks on 8 domains this produces the paper's LULESH-2
        placement: "Three NUMA domains are filled completely with four
        ranks (16 threads) each.  The other five domains are assigned
        three ranks (12 threads) each."  The resulting *uneven* bandwidth
        contention is that experiment's deliberate performance problem.
        """
        domains = cluster.numa_domains
        n_dom = len(domains)
        base = n_ranks // n_dom
        extra = n_ranks % n_dom
        mapping = {}
        rank = 0
        for di, d in enumerate(domains):
            count = base + (1 if di < extra else 0)
            if count * threads_per_rank > d.n_cores:
                raise ValueError(
                    f"domain {d.global_id}: {count} ranks x {threads_per_rank} threads "
                    f"exceed {d.n_cores} cores"
                )
            slot = 0
            for _ in range(count):
                if rank >= n_ranks:
                    break
                for t in range(threads_per_rank):
                    mapping[(rank, t)] = d.cores[slot]
                    slot += 1
                rank += 1
        return cls(cluster, mapping)

    @classmethod
    def spread_ranks_over_numa(
        cls, cluster: Cluster, n_ranks: int, threads_per_rank: int
    ) -> "Pinning":
        """One rank per NUMA domain, round-robin over domains."""
        domains = cluster.numa_domains
        mapping = {}
        for r in range(n_ranks):
            d = domains[r % len(domains)]
            if threads_per_rank > d.n_cores:
                raise ValueError(
                    f"rank {r}: {threads_per_rank} threads exceed the "
                    f"{d.n_cores} cores of NUMA domain {d.global_id}"
                )
            for t in range(threads_per_rank):
                mapping[(r, t)] = d.cores[t]
        return cls(cluster, mapping)

    # -- queries ---------------------------------------------------------
    @property
    def ranks(self) -> List[int]:
        return list(self._ranks)

    @property
    def n_ranks(self) -> int:
        return len(self._ranks)

    def threads_of(self, rank: int) -> int:
        return self._threads_per_rank[rank]

    def core_of(self, rank: int, thread: int) -> Core:
        return self._map[(rank, thread)]

    def numa_of(self, rank: int, thread: int) -> int:
        return self._map[(rank, thread)].numa_id

    def node_of(self, rank: int) -> int:
        return self._map[(rank, 0)].node_id

    def locations(self) -> Iterator[Tuple[int, int]]:
        """All (rank, thread) pairs in rank-major order."""
        for r in self._ranks:
            for t in range(self._threads_per_rank[r]):
                yield (r, t)

    def numa_occupancy(self) -> Dict[int, int]:
        """Number of pinned hardware threads per NUMA domain id."""
        occ: Dict[int, int] = {}
        for core in self._map.values():
            occ[core.numa_id] = occ.get(core.numa_id, 0) + 1
        return occ

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of(rank_a) == self.node_of(rank_b)
