"""Hardware model: topology, memory/cache contention, network, noise.

The paper's evaluation runs on Jureca-DC standard nodes (2x AMD EPYC 7742,
8 NUMA domains with 64 GB each, InfiniBand HDR100).  This package provides
an explicit, queryable model of that machine so the simulator can reproduce
the resource-sharing effects the paper relies on:

* per-NUMA-domain memory-bandwidth contention (MiniFE-2 matvec slowdown,
  LULESH-2 uneven NUMA occupancy),
* an aggregate last-level-cache capacity model (TeaLeaf's working set fits
  in L3 until instrumentation buffers evict it),
* a latency/bandwidth network with collective cost models,
* seeded noise sources for CPU/OS, memory, network and hardware counters
  (an HPAS-style injector suite).
"""

from repro.machine.topology import Core, NumaDomain, Socket, Node, Cluster, Pinning
from repro.machine.presets import jureca_dc, small_test_cluster
from repro.machine.network import NetworkModel, CollectiveCostModel
from repro.machine.memory import MemoryModel, CacheModel
from repro.machine.noise import (
    NoiseConfig,
    NoiseModel,
    CpuNoise,
    OsJitter,
    MemoryNoise,
    NetworkNoise,
    CounterNoise,
    ZeroNoise,
)
from repro.machine.faults import (
    FaultConfig,
    FaultModel,
    ZeroFaults,
    CrashPoint,
    RankCrash,
    MessageLoss,
    MessageDuplication,
    LinkDegradation,
    StragglerCore,
)

__all__ = [
    "Core",
    "NumaDomain",
    "Socket",
    "Node",
    "Cluster",
    "Pinning",
    "jureca_dc",
    "small_test_cluster",
    "NetworkModel",
    "CollectiveCostModel",
    "MemoryModel",
    "CacheModel",
    "NoiseConfig",
    "NoiseModel",
    "CpuNoise",
    "OsJitter",
    "MemoryNoise",
    "NetworkNoise",
    "CounterNoise",
    "ZeroNoise",
    "FaultConfig",
    "FaultModel",
    "ZeroFaults",
    "CrashPoint",
    "RankCrash",
    "MessageLoss",
    "MessageDuplication",
    "LinkDegradation",
    "StragglerCore",
]
