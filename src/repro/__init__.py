"""repro: noise-resilient logical timers for performance analysis.

A full-stack reproduction of "Are Noise-Resilient Logical Timers Useful
for Performance Analysis?" (SC 2024) on a simulated MPI+OpenMP substrate:
simulator (:mod:`repro.sim`), machine/noise models (:mod:`repro.machine`),
Score-P-style measurement (:mod:`repro.measure`), clocks
(:mod:`repro.clocks`), Scalasca-style analysis (:mod:`repro.analysis`),
Cube profiles (:mod:`repro.cube`), Jaccard scoring (:mod:`repro.scoring`),
the three mini-apps (:mod:`repro.miniapps`) and the experiment harness
(:mod:`repro.experiments`).

Quick start::

    from repro import quick_measure
    from repro.miniapps.minife import MiniFE, MiniFEConfig

    profile = quick_measure(MiniFE(MiniFEConfig.tiny()), mode="ltbb")
    print(profile.percent_of_time("comp"))
"""

from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.machine import jureca_dc, small_test_cluster
from repro.machine.noise import NoiseConfig, NoiseModel, ZeroNoise
from repro.measure import MODES, Measurement
from repro.sim import CostModel, Engine, Program

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "quick_measure",
    "analyze_trace",
    "timestamp_trace",
    "jureca_dc",
    "small_test_cluster",
    "NoiseConfig",
    "NoiseModel",
    "ZeroNoise",
    "MODES",
    "Measurement",
    "CostModel",
    "Engine",
    "Program",
]


def quick_measure(program, mode: str = "tsc", cluster=None, seed: int = 0):
    """Instrument, run, timestamp and analyze ``program`` in one call.

    Returns the :class:`~repro.cube.profile.CubeProfile` of the run --
    the shortest path from a :class:`~repro.sim.program.Program` to
    Scalasca-style analysis results.
    """
    if cluster is None:
        cluster = jureca_dc(1)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    result = Engine(program, cluster, cost, measurement=Measurement(mode)).run()
    return analyze_trace(timestamp_trace(result.trace, mode, counter_seed=seed))
