"""Static determinism prover for rank programs.

The paper's headline claim -- deterministic logical timers produce
bit-identical traces across noise realizations -- holds only for
programs whose *event structure* is itself noise-oblivious.  This pass
proves (or refutes) that property statically, without running the
engine: it dry-runs every rank (:mod:`repro.verify.dryrun`), classifies
every communication site as order-deterministic or racy, and emits a
**determinism certificate** asserting, per clock mode, whether traces
must be bit-identical across noise seeds.

Site classification
-------------------

``order-racy``
    The *sequence of recorded events* can depend on physical timing:
    wildcard (``ANY_SOURCE``) receives (DET001), several senders racing
    for one wildcard channel (DET002), and generators that change their
    action stream between dry-runs (DET003).  Any order-racy site voids
    bit-identity for **every** mode, logical clocks included -- a
    wildcard match is resolved by physical arrival order, and programs
    can branch on the matched source.

``value-racy``
    Only a computed *value* is order-sensitive while the event structure
    and all timestamps stay deterministic: non-commutative reductions
    (DET004) and unsynchronised OpenMP shared writes (DET005).
    Value-racy sites do not flip trace verdicts.

Why bit-identity is provable statically: the engine resolves every
named-source match, collective and barrier in program order; physical
noise moves *timestamps*, never the event sequence, and logical clocks
ignore physical time entirely.  The only constructs whose outcome feeds
back from timing into the event stream are the ones enumerated above --
so their absence is a proof, not a heuristic.

The certificate is sha256-stamped via :func:`repro.obs.provenance.
build_manifest`; :func:`repro.experiments.faultsweep.run_fault_sweep`
cross-checks it against observed bit-identity so a wrong verdict is a
test failure, not a footnote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.measure.config import MODES, NOISY_MODES
from repro.obs.provenance import build_manifest
from repro.sim import actions as A
from repro.sim.program import Program
from repro.verify.diagnostics import Diagnostic
from repro.verify.dryrun import (
    DEFAULT_MAX_ACTIONS,
    ActionRecord,
    dry_run_program,
)

__all__ = [
    "BIT_IDENTICAL",
    "NOISE_SENSITIVE",
    "CommSite",
    "DeterminismReport",
    "analyze_determinism",
]

#: certificate verdict: traces of this mode must be byte-identical
#: across noise realizations
BIT_IDENTICAL = "bit-identical"
#: certificate verdict: traces of this mode may (and for physical
#: clocks, will) differ across noise realizations
NOISE_SENSITIVE = "noise-sensitive"

#: site verdicts
_DETERMINISTIC = "deterministic"
_ORDER_RACY = "order-racy"
_VALUE_RACY = "value-racy"


@dataclass(frozen=True)
class CommSite:
    """One classified communication site of the program.

    ``verdict`` is ``"deterministic"``, ``"order-racy"`` (the event
    sequence can depend on timing) or ``"value-racy"`` (only a computed
    value is order-sensitive).  ``rule_id`` names the DET rule that
    classified a non-deterministic site, ``""`` for deterministic ones.
    """

    rank: int
    action_index: int
    call_path: Tuple[str, ...]
    kind: str  # "send" | "recv" | "recv_any" | "collective" | "parallel_for"
    detail: str
    verdict: str = _DETERMINISTIC
    rule_id: str = ""
    #: peer rank of a point-to-point site (dest for sends, source for
    #: named receives; None for wildcards and non-p2p sites)
    peer: Optional[int] = None
    #: message tag of a point-to-point site
    tag: Optional[int] = None


@dataclass
class DeterminismReport:
    """Result of :func:`analyze_determinism`.

    ``mode_verdicts`` maps every clock mode to :data:`BIT_IDENTICAL` or
    :data:`NOISE_SENSITIVE`; ``certificate`` is the sha256-stamped
    provenance manifest asserting those verdicts.
    """

    program_name: str
    n_ranks: int
    sites: List[CommSite] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: two dry-runs yielded identical action streams on every rank
    generator_deterministic: bool = True
    mode_verdicts: Dict[str, str] = field(default_factory=dict)
    mode_reasons: Dict[str, str] = field(default_factory=dict)
    certificate: dict = field(default_factory=dict)

    @property
    def order_deterministic(self) -> bool:
        """No site can change the recorded event sequence under noise."""
        return self.generator_deterministic and not any(
            s.verdict == _ORDER_RACY for s in self.sites
        )

    @property
    def n_racy_sites(self) -> int:
        return sum(1 for s in self.sites if s.verdict != _DETERMINISTIC)

    def report(self) -> str:
        lines = [
            f"determinism analysis of {self.program_name!r} "
            f"({self.n_ranks} ranks): "
            f"{len(self.sites)} communication sites, "
            f"{self.n_racy_sites} racy",
        ]
        for d in self.diagnostics:
            lines.append("  " + d.format(with_hint=False).replace("\n", "\n  "))
        for mode in self.mode_verdicts:
            lines.append(
                f"  mode {mode:8s} {self.mode_verdicts[mode]:15s} "
                f"({self.mode_reasons[mode]})"
            )
        lines.append(f"  certificate sha256: {self.certificate.get('hash', '?')}")
        return "\n".join(lines)


def _stream_signature(records: List[ActionRecord]) -> List[Tuple[str, str]]:
    """Comparable rendering of a rank's action stream."""
    return [(type(r.action).__name__, repr(r.action)) for r in records]


def _classify_rank(
    rank: int,
    records: List[ActionRecord],
    sites: List[CommSite],
    sends_by_channel: Dict[Tuple[int, int], List[CommSite]],
    any_recvs: List[CommSite],
) -> None:
    """First pass: collect per-rank sites into the shared indexes."""
    for rec in records:
        a = rec.action
        if isinstance(a, (A.Send, A.Isend)):
            site = CommSite(
                rank, rec.index, rec.call_path, "send",
                f"{rec.describe()}", peer=a.dest, tag=a.tag,
            )
            sites.append(site)
            sends_by_channel.setdefault((a.dest, a.tag), []).append(site)
        elif isinstance(a, (A.Recv, A.Irecv)):
            if a.source == A.ANY_SOURCE:
                site = CommSite(
                    rank, rec.index, rec.call_path, "recv_any",
                    f"{rec.describe()}", tag=a.tag,
                    verdict=_ORDER_RACY, rule_id="DET001",
                )
                any_recvs.append(site)
            else:
                site = CommSite(
                    rank, rec.index, rec.call_path, "recv",
                    f"{rec.describe()}", peer=a.source, tag=a.tag,
                )
            sites.append(site)
        elif isinstance(a, (A.Allreduce, A.Reduce)) and not a.commutative:
            sites.append(CommSite(
                rank, rec.index, rec.call_path, "collective",
                f"{type(a).__name__}(commutative=False)",
                verdict=_VALUE_RACY, rule_id="DET004",
            ))
        elif isinstance(a, A.ParallelFor) and a.shared_writes:
            sites.append(CommSite(
                rank, rec.index, rec.call_path, "parallel_for",
                f"ParallelFor({a.region!r}) shared_writes="
                f"{list(a.shared_writes)}",
                verdict=_VALUE_RACY, rule_id="DET005",
            ))


def _site_ref(site: CommSite) -> str:
    path = "/".join(site.call_path) or "<top>"
    return f"rank {site.rank} {site.detail} at {path} (action #{site.action_index})"


def analyze_determinism(
    program: Program,
    max_actions: int = DEFAULT_MAX_ACTIONS,
) -> DeterminismReport:
    """Prove or refute noise-obliviousness of ``program`` statically.

    Dry-runs the program twice (generator-nondeterminism check, DET003),
    classifies every communication site, derives a per-clock-mode
    verdict and stamps the result into a provenance certificate.
    """
    with obs.span("verify.determinism", program=program.name):
        report = DeterminismReport(
            program_name=program.name, n_ranks=program.n_ranks
        )
        runs = dry_run_program(program, max_actions=max_actions)
        runs2 = dry_run_program(program, max_actions=max_actions)

        sends_by_channel: Dict[Tuple[int, int], List[CommSite]] = {}
        any_recvs: List[CommSite] = []
        for rank in range(program.n_ranks):
            # Generator nondeterminism: same stub inputs, different
            # action stream -> the program randomises outside rank-seeded
            # state and nothing downstream can be trusted.
            if _stream_signature(runs[rank].records) != _stream_signature(
                runs2[rank].records
            ):
                report.generator_deterministic = False
                first = next(
                    (
                        i
                        for i, (x, y) in enumerate(zip(
                            _stream_signature(runs[rank].records),
                            _stream_signature(runs2[rank].records),
                        ))
                        if x != y
                    ),
                    min(len(runs[rank].records), len(runs2[rank].records)),
                )
                report.diagnostics.append(Diagnostic(
                    "DET003",
                    f"rank {rank}: dry-runs diverge at action #{first}",
                    rank=rank, action_index=first,
                    witness=(
                        f"run 1 action #{first}: "
                        + (runs[rank].records[first].describe()
                           if first < len(runs[rank].records) else "<end>"),
                        f"run 2 action #{first}: "
                        + (runs2[rank].records[first].describe()
                           if first < len(runs2[rank].records) else "<end>"),
                    ),
                ))
            _classify_rank(
                rank, runs[rank].records, report.sites,
                sends_by_channel, any_recvs,
            )

        # DET001 (each wildcard site) + DET002 (senders racing for it).
        for site in any_recvs:
            report.diagnostics.append(Diagnostic(
                "DET001",
                f"{site.detail} matches by physical arrival order",
                rank=site.rank, call_path=site.call_path,
                action_index=site.action_index,
                witness=(_site_ref(site),),
            ))
            racing = [
                s
                for s in sends_by_channel.get((site.rank, site.tag), [])
                if s.rank != site.rank
            ]
            racing_ranks = sorted({s.rank for s in racing})
            if len(racing_ranks) >= 2:
                witness = [_site_ref(site)] + [
                    _site_ref(s) for s in racing[:4]
                ]
                witness.append(
                    "no happened-before edge orders these sends at the "
                    "receiver: either may match first"
                )
                report.diagnostics.append(Diagnostic(
                    "DET002",
                    f"{len(racing_ranks)} ranks ({racing_ranks}) race for "
                    f"the wildcard channel (dst={site.rank}, tag={site.tag})",
                    rank=site.rank, call_path=site.call_path,
                    action_index=site.action_index,
                    witness=tuple(witness),
                ))

        # DET004 / DET005 diagnostics from value-racy sites.
        for site in report.sites:
            if site.rule_id == "DET004":
                report.diagnostics.append(Diagnostic(
                    "DET004",
                    f"{site.detail}: reduced value depends on combine order",
                    rank=site.rank, call_path=site.call_path,
                    action_index=site.action_index,
                    witness=(_site_ref(site),),
                ))
            elif site.rule_id == "DET005":
                report.diagnostics.append(Diagnostic(
                    "DET005",
                    f"{site.detail}: team threads write shared state "
                    "without synchronisation",
                    rank=site.rank, call_path=site.call_path,
                    action_index=site.action_index,
                    witness=(_site_ref(site),),
                ))

        # Per-mode verdicts.  Physical clocks are never bit-identical;
        # logical clocks are bit-identical iff the event structure cannot
        # depend on timing.
        order_det = report.order_deterministic
        for mode in MODES:
            if mode in NOISY_MODES:
                report.mode_verdicts[mode] = NOISE_SENSITIVE
                report.mode_reasons[mode] = (
                    "physical/noisy clock: timestamps follow machine noise"
                )
            elif order_det:
                report.mode_verdicts[mode] = BIT_IDENTICAL
                report.mode_reasons[mode] = (
                    "no order-racy site: event sequence and logical "
                    "timestamps are noise-oblivious"
                )
            else:
                why = (
                    "generator nondeterministic across dry-runs"
                    if not report.generator_deterministic
                    else "order-racy site(s): "
                    + ", ".join(sorted({
                        s.rule_id for s in report.sites
                        if s.verdict == _ORDER_RACY
                    }))
                )
                report.mode_verdicts[mode] = NOISE_SENSITIVE
                report.mode_reasons[mode] = why

        report.certificate = build_manifest(
            "determinism-certificate",
            {
                "program": program.name,
                "n_ranks": program.n_ranks,
                "threads_per_rank": program.threads_per_rank,
                "n_sites": len(report.sites),
                "racy_sites": [
                    {
                        "rank": s.rank,
                        "action_index": s.action_index,
                        "kind": s.kind,
                        "verdict": s.verdict,
                        "rule": s.rule_id,
                        "detail": s.detail,
                    }
                    for s in report.sites
                    if s.verdict != _DETERMINISTIC
                ],
                "generator_deterministic": report.generator_deterministic,
                "order_deterministic": order_det,
                "mode_verdicts": dict(report.mode_verdicts),
            },
        )
        obs.counter(
            "verify.determinism.analyzed",
            order_deterministic=order_det,
        ).inc()
        return report
