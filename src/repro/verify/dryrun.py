"""Symbolic dry-run of rank generator programs.

The linter needs each rank's *action sequence* without paying for a full
simulation: no cost model, no noise, no virtual time.  A rank generator
only ever consumes the request ids the engine feeds back for
``Isend``/``Irecv`` and the source rank of a blocking ``Recv``, so
driving it with stub results reproduces an action stream the engine
could dispatch.  (A wildcard receive gets a fixed stub source: the
dry-run explores one deterministic matching; flagging the others is the
determinism prover's job.)

The dry-run also performs the per-rank structural checks that need the
call-path context while it is live: ``Enter``/``Leave`` discipline
(STR001..STR004) and ``ParallelFor`` share validation (OMP001).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import actions as A
from repro.sim.program import Program, ProgramContext
from repro.verify.diagnostics import Diagnostic

__all__ = ["ActionRecord", "RankDryRun", "dry_run_rank", "dry_run_program", "DEFAULT_MAX_ACTIONS"]

#: hard cap on actions per rank; guards against unbounded generators
DEFAULT_MAX_ACTIONS = 2_000_000


@dataclass(frozen=True)
class ActionRecord:
    """One action a rank yielded, with its static context."""

    index: int
    action: A.Action
    call_path: Tuple[str, ...]
    #: stub result fed back (request id for Isend/Irecv, source rank for
    #: a blocking Recv), else None
    result: Optional[int] = None

    def describe(self) -> str:
        name = type(self.action).__name__
        a = self.action
        if isinstance(a, (A.Send, A.Isend)):
            return f"{name}(dest={a.dest}, tag={a.tag})"
        if isinstance(a, (A.Recv, A.Irecv)):
            src = "ANY" if a.source == A.ANY_SOURCE else a.source
            return f"{name}(source={src}, tag={a.tag})"
        if isinstance(a, A.Wait):
            return f"{name}(request={a.request})"
        if isinstance(a, A.Waitall):
            return f"{name}(requests={list(a.requests)})"
        if isinstance(a, (A.Enter, A.Leave)):
            return f"{name}({getattr(a, 'region', None)!r})"
        if isinstance(a, A.Bcast) or isinstance(a, A.Reduce):
            return f"{name}(root={a.root})"
        return name


@dataclass
class RankDryRun:
    """Dry-run result of one rank."""

    rank: int
    records: List[ActionRecord] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: True when the generator ran to completion within the action limit
    completed: bool = False


def dry_run_rank(
    program: Program,
    rank: int,
    max_actions: int = DEFAULT_MAX_ACTIONS,
) -> RankDryRun:
    """Drive one rank generator to completion with stub results."""
    ctx = ProgramContext(
        rank=rank, n_ranks=program.n_ranks, n_threads=program.threads_per_rank
    )
    run = RankDryRun(rank=rank)
    stack: List[str] = []
    next_req = 0
    result: Optional[int] = None

    try:
        gen = program.make_rank(ctx)
    except Exception as exc:  # construction itself may blow up
        run.diagnostics.append(Diagnostic(
            "PRG001", f"make_rank failed: {exc!r}", rank=rank,
        ))
        return run

    index = 0
    while True:
        if index >= max_actions:
            run.diagnostics.append(Diagnostic(
                "PRG002",
                f"dry-run stopped after {max_actions} actions",
                rank=rank, call_path=tuple(stack), action_index=index,
            ))
            break
        try:
            action = gen.send(result)
        except StopIteration:
            run.completed = True
            break
        except Exception as exc:
            tb = traceback.extract_tb(exc.__traceback__)
            site = f"{tb[-1].filename}:{tb[-1].lineno}" if tb else "?"
            run.diagnostics.append(Diagnostic(
                "PRG001",
                f"generator raised {type(exc).__name__}: {exc} ({site})",
                rank=rank, call_path=tuple(stack), action_index=index,
            ))
            break

        result = None
        path = tuple(stack)
        cls = type(action)

        if cls is A.Enter:
            stack.append(action.region)
        elif cls is A.Leave:
            if action.region is None:
                run.diagnostics.append(Diagnostic(
                    "STR004",
                    f"bare Leave() closing {stack[-1]!r}" if stack
                    else "bare Leave() with nothing open",
                    rank=rank, call_path=path, action_index=index,
                ))
            if not stack:
                run.diagnostics.append(Diagnostic(
                    "STR001", "Leave with no open region",
                    rank=rank, call_path=path, action_index=index,
                ))
            else:
                top = stack.pop()
                if action.region is not None and action.region != top:
                    run.diagnostics.append(Diagnostic(
                        "STR002",
                        f"Leave({action.region!r}) closes Enter({top!r})",
                        rank=rank, call_path=path, action_index=index,
                    ))
        elif cls is A.ParallelFor:
            try:
                action.thread_units(program.threads_per_rank)
            except ValueError as exc:
                run.diagnostics.append(Diagnostic(
                    "OMP001", str(exc),
                    rank=rank, call_path=path, action_index=index,
                ))
        elif cls is A.Isend or cls is A.Irecv:
            result = next_req
            next_req += 1
        elif cls is A.Recv:
            # Blocking receives yield the matched source rank; feed the
            # named source, or a fixed stub for wildcards (the dry-run
            # explores exactly one -- deterministic -- matching).
            if action.source != A.ANY_SOURCE:
                result = action.source
            else:
                result = 0 if rank != 0 else (1 if program.n_ranks > 1 else 0)
        elif not isinstance(action, A.Action):
            run.diagnostics.append(Diagnostic(
                "PRG001",
                f"yielded non-action object {action!r}",
                rank=rank, call_path=path, action_index=index,
            ))
            break

        run.records.append(ActionRecord(index, action, path, result))
        index += 1

    if run.completed and stack:
        run.diagnostics.append(Diagnostic(
            "STR003",
            "still open at end: " + " > ".join(repr(r) for r in stack),
            rank=rank, call_path=tuple(stack), action_index=index,
        ))
    return run


def dry_run_program(
    program: Program,
    max_actions: int = DEFAULT_MAX_ACTIONS,
) -> Dict[int, RankDryRun]:
    """Dry-run every rank of ``program``; returns ``{rank: RankDryRun}``."""
    return {
        r: dry_run_rank(program, r, max_actions=max_actions)
        for r in range(program.n_ranks)
    }
