"""Happened-before trace sanitizer.

Verifies a recorded :class:`~repro.measure.trace.RawTrace` and the
logical/physical timestamps derived from it against the invariants the
paper's analysis relies on:

* **structure** (mode-independent): per-location physical monotonicity
  (TRC001), ENTER/LEAVE balance per location (TRC006), message-matching
  integrity -- every match id on exactly one ``MPI_SEND`` and one
  ``MPI_RECV`` (TRC002) -- and complete synchronisation groups: each
  collective / OpenMP-barrier instance with exactly its group size of
  member events, each ``TEAM_BEGIN`` preceded by its ``FORK`` (TRC007),
  plus equal physical completion times within a group (TRC004);
  recovered traces additionally need consistent ``RESTART`` groups --
  one record per rank at one common resume time (TRC008) -- and every
  ``FAULT`` marker referencing a message that completes (TRC009);

* **clock condition** (per timestamp mode): derived timestamps must be
  non-decreasing per location (TRC005), every send->recv edge must
  satisfy the Lamport condition ``C(send) < C(recv)`` (TRC003), and all
  members of a synchronisation group must carry the group timestamp
  (TRC004).

``sanitize_trace`` bundles both passes over any subset of the paper's
six clock modes; ``check_timestamps`` takes an existing
:class:`~repro.clocks.base.TimestampedTrace` so externally supplied (or
forged) timestamp arrays can be audited too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.measure.config import LOGICAL_MODES, MODES
from repro.measure.trace import RawTrace
from repro.sim.events import (
    COLL_END,
    ENTER,
    FAULT,
    FORK,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)
from repro.verify.diagnostics import Diagnostic, format_diagnostics, has_errors

__all__ = ["SanitizeReport", "StructuralPass", "sanitize_raw",
           "sanitize_stream", "check_timestamps", "sanitize_trace"]

#: tolerance for "equal" physical timestamps within a group
_REL_TOL = 1e-9
#: cap duplicate findings of one rule per pass (keeps reports readable)
_MAX_PER_RULE = 8


@dataclass
class SanitizeReport:
    """Outcome of sanitizing one trace over one or more modes."""

    trace_mode: str
    n_locations: int
    n_events: int
    modes: Tuple[str, ...]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rule id -> findings dropped beyond the per-rule cap; nothing is
    #: lost silently, the remainder is counted here
    suppressed: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    @property
    def n_suppressed(self) -> int:
        return sum(self.suppressed.values())

    def rule_ids(self) -> Set[str]:
        return {d.rule_id for d in self.diagnostics}

    def format(self, with_hints: bool = True) -> str:
        status = "clean" if not self.diagnostics else (
            f"{len(self.diagnostics)} finding(s)"
        )
        if self.n_suppressed:
            status += f" (+{self.n_suppressed} suppressed)"
        header = (
            f"sanitize trace [{self.trace_mode}]: {self.n_locations} "
            f"locations, {self.n_events} events, modes "
            f"{'/'.join(self.modes)} -- {status}"
        )
        if not self.diagnostics:
            return header
        out = format_diagnostics(self.diagnostics, header=header,
                                 with_hints=with_hints)
        for rule_id in sorted(self.suppressed):
            out += (
                f"\n[{rule_id}] (+{self.suppressed[rule_id]} more suppressed)"
            )
        return out


class _Capped:
    """Collects diagnostics, truncating repeats of the same rule.

    Truncation is never silent: :attr:`suppressed` counts the findings
    dropped beyond the cap, per rule, for the report to surface.
    """

    def __init__(self, limit: int = _MAX_PER_RULE):
        self.out: List[Diagnostic] = []
        self._limit = limit
        self._counts: Dict[str, int] = {}

    def add(self, diag: Diagnostic) -> None:
        n = self._counts.get(diag.rule_id, 0) + 1
        self._counts[diag.rule_id] = n
        if n <= self._limit:
            self.out.append(diag)

    @property
    def suppressed(self) -> Dict[str, int]:
        return {
            rule_id: n - self._limit
            for rule_id, n in sorted(self._counts.items())
            if n > self._limit
        }

    def finish(self) -> List[Diagnostic]:
        return self.out


# ---------------------------------------------------------------------------
# structural pass (mode-independent)
# ---------------------------------------------------------------------------


class StructuralPass:
    """Incremental form of the mode-independent structural checks.

    Feed events one at a time in any order that preserves per-location
    order (per-location walks and global merged order both qualify);
    :meth:`finish` closes every location and runs the cross-location
    checks.  :func:`sanitize_raw` drives it per location over an
    in-memory trace; :func:`sanitize_stream` drives it in merged order
    over a sharded archive, so state stays bounded by open regions and
    in-flight synchronisation groups rather than trace length.
    """

    def __init__(self, regions, n_locations: int):
        self._regions = regions
        self._cap = _Capped()
        self._sends: Dict[int, int] = {}  # match id -> send location
        self._recvs: Dict[int, int] = {}
        self._groups: Dict[Tuple[str, int], List[Tuple[int, float]]] = {}
        self._group_size: Dict[Tuple[str, int], int] = {}
        self._forks: Set[int] = set()
        self._restart_groups: Dict[int, List[Tuple[int, float]]] = {}
        self._restart_size: Dict[int, int] = {}
        self._fault_refs: List[Tuple[int, int]] = []  # (loc, match id)
        self._prev_t = [-float("inf")] * n_locations
        self._stack: List[List[int]] = [[] for _ in range(n_locations)]
        self._idx = [0] * n_locations
        self._closed = [False] * n_locations
        self._finished = False

    def _region(self, rid: int) -> str:
        try:
            return self._regions.name(rid)
        except IndexError:
            return f"<region {rid}>"

    def feed(self, loc: int, ev) -> None:
        """Check one event of location ``loc`` (events per location in order)."""
        cap = self._cap
        region = self._region
        i = self._idx[loc]
        self._idx[loc] = i + 1
        prev_t = self._prev_t[loc]
        if ev.t < prev_t - 1e-15:
            cap.add(Diagnostic(
                "TRC001",
                f"event #{i} ({region(ev.region)}) at t={ev.t:.9g} "
                f"after t={prev_t:.9g}",
                location=loc,
            ))
        self._prev_t[loc] = max(prev_t, ev.t)
        et = ev.etype
        stack = self._stack[loc]
        if et == ENTER:
            stack.append(ev.region)
        elif et == LEAVE:
            if not stack:
                cap.add(Diagnostic(
                    "TRC006",
                    f"LEAVE {region(ev.region)} (event #{i}) with no "
                    "open ENTER",
                    location=loc,
                ))
            elif stack[-1] != ev.region:
                cap.add(Diagnostic(
                    "TRC006",
                    f"LEAVE {region(ev.region)} (event #{i}) closes "
                    f"ENTER {region(stack[-1])}",
                    location=loc,
                ))
                stack.pop()
            else:
                stack.pop()
        elif et == MPI_SEND:
            mid = ev.aux[0]
            if mid in self._sends:
                cap.add(Diagnostic(
                    "TRC002",
                    f"duplicate MPI_SEND for match id {mid} (also on "
                    f"location {self._sends[mid]})",
                    location=loc,
                ))
            self._sends[mid] = loc
        elif et == MPI_RECV:
            mid = ev.aux
            if mid in self._recvs:
                cap.add(Diagnostic(
                    "TRC002",
                    f"duplicate MPI_RECV for match id {mid} (also on "
                    f"location {self._recvs[mid]})",
                    location=loc,
                ))
            self._recvs[mid] = loc
        elif et == COLL_END or et == OBAR_LEAVE:
            gid, size = ev.aux
            key = ("coll" if et == COLL_END else "obar", gid)
            self._groups.setdefault(key, []).append((loc, ev.t))
            if self._group_size.setdefault(key, size) != size:
                cap.add(Diagnostic(
                    "TRC007",
                    f"{key[0]} instance {gid}: conflicting group sizes "
                    f"{self._group_size[key]} and {size}",
                    location=loc,
                ))
        elif et == RESTART:
            gid, size = ev.aux
            self._restart_groups.setdefault(gid, []).append((loc, ev.t))
            if self._restart_size.setdefault(gid, size) != size:
                cap.add(Diagnostic(
                    "TRC008",
                    f"restart {gid}: conflicting group sizes "
                    f"{self._restart_size[gid]} and {size}",
                    location=loc,
                ))
        elif et == FAULT:
            self._fault_refs.append((loc, ev.aux))
        elif et == FORK:
            self._forks.add(ev.aux)
        elif et == TEAM_BEGIN:
            if ev.aux not in self._forks:
                cap.add(Diagnostic(
                    "TRC007",
                    f"TEAM_BEGIN for OpenMP construct {ev.aux} without "
                    "a FORK on the master",
                    location=loc,
                ))

    def end_location(self, loc: int) -> None:
        """Close location ``loc``: report ENTERs never left (idempotent)."""
        if self._closed[loc]:
            return
        self._closed[loc] = True
        if self._stack[loc]:
            self._cap.add(Diagnostic(
                "TRC006",
                "ENTER(s) never left: "
                + " > ".join(self._region(r) for r in self._stack[loc]),
                location=loc,
            ))

    def finish(self, suppressed: Optional[Dict[str, int]] = None) -> List[Diagnostic]:
        """Close all locations, run cross-location checks, return findings."""
        if self._finished:
            raise RuntimeError("StructuralPass.finish() called twice")
        self._finished = True
        for loc in range(len(self._closed)):
            self.end_location(loc)
        cap = self._cap
        sends, recvs = self._sends, self._recvs
        groups, group_size = self._groups, self._group_size
        restart_groups, restart_size = self._restart_groups, self._restart_size
        fault_refs = self._fault_refs
        for mid in sorted(set(sends) - set(recvs)):
            cap.add(Diagnostic(
                "TRC002",
                f"MPI_SEND with match id {mid} has no MPI_RECV (dropped "
                "receive record?)",
                location=sends[mid],
            ))
        for mid in sorted(set(recvs) - set(sends)):
            cap.add(Diagnostic(
                "TRC002",
                f"MPI_RECV with match id {mid} has no MPI_SEND (dropped send "
                "record?)",
                location=recvs[mid],
            ))

        for key in sorted(groups):
            kind, gid = key
            members = groups[key]
            size = group_size[key]
            if len(members) != size:
                cap.add(Diagnostic(
                    "TRC007",
                    f"{kind} instance {gid} has {len(members)} member event(s) "
                    f"but group size {size}",
                    location=members[0][0],
                ))
                continue
            ts = [t for (_loc, t) in members]
            lo, hi = min(ts), max(ts)
            if hi - lo > _REL_TOL * max(1.0, abs(hi)):
                cap.add(Diagnostic(
                    "TRC004",
                    f"{kind} instance {gid}: physical completion times spread "
                    f"over [{lo:.9g}, {hi:.9g}]",
                    location=members[0][0],
                ))

        for gid in sorted(restart_groups):
            members = restart_groups[gid]
            size = restart_size[gid]
            if len(members) != size:
                cap.add(Diagnostic(
                    "TRC008",
                    f"restart {gid} has {len(members)} record(s) but "
                    f"{size} rank(s)",
                    location=members[0][0],
                ))
                continue
            ts = [t for (_loc, t) in members]
            lo, hi = min(ts), max(ts)
            if hi - lo > _REL_TOL * max(1.0, abs(hi)):
                cap.add(Diagnostic(
                    "TRC008",
                    f"restart {gid}: resume times spread over "
                    f"[{lo:.9g}, {hi:.9g}] instead of one common time",
                    location=members[0][0],
                ))

        for loc, mid in fault_refs:
            if mid not in recvs:
                cap.add(Diagnostic(
                    "TRC009",
                    f"FAULT marker references message {mid} which has no "
                    "receive record",
                    location=loc,
                ))
        if suppressed is not None:
            for rule_id, n in cap.suppressed.items():
                suppressed[rule_id] = suppressed.get(rule_id, 0) + n
        return cap.finish()


def sanitize_raw(
    trace: RawTrace,
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Diagnostic]:
    """Mode-independent structural checks on a raw trace.

    ``suppressed``, when given, accumulates per-rule counts of findings
    dropped beyond the per-rule cap.
    """
    p = StructuralPass(trace.regions, trace.n_locations)
    for loc, evs in enumerate(trace.events):
        feed = p.feed
        for ev in evs:
            feed(loc, ev)
        p.end_location(loc)
    return p.finish(suppressed)


def sanitize_stream(
    trace_like,
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Diagnostic]:
    """Structural checks over any trace-like object via its ``merged()``
    iterator -- the bounded-memory entry point for sharded archives.

    Accepts anything exposing ``regions``, ``n_locations`` and
    ``merged()`` (:class:`~repro.measure.trace.RawTrace`,
    :class:`~repro.measure.shards.ShardedTrace`).  Findings are identical
    to :func:`sanitize_raw` up to diagnostic order (compare sorted, or
    via :class:`SanitizeReport` fingerprints, when the per-rule cap may
    bite -- the cap keeps the *first* findings seen, and merged order
    interleaves locations).
    """
    p = StructuralPass(trace_like.regions, trace_like.n_locations)
    feed = p.feed
    for loc, ev in trace_like.merged():
        feed(loc, ev)
    return p.finish(suppressed)


# ---------------------------------------------------------------------------
# timestamp pass (per mode)
# ---------------------------------------------------------------------------


def check_timestamps(
    tt,
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Diagnostic]:
    """Clock-condition checks on a :class:`TimestampedTrace`.

    Works for physical (``tsc``) and all logical modes; forged or
    corrupted timestamp arrays are reported against the event structure
    of the underlying raw trace.  ``suppressed`` accumulates per-rule
    counts of findings beyond the per-rule cap.
    """
    trace: RawTrace = tt.trace
    mode: str = tt.mode
    logical = mode in LOGICAL_MODES
    cap = _Capped()

    # per-location monotonicity of the derived timestamps
    for loc, ts in enumerate(tt.times):
        prev = -float("inf")
        for i in range(len(ts)):
            if ts[i] < prev - 1e-12:
                cap.add(Diagnostic(
                    "TRC005",
                    f"timestamp of event #{i} ({ts[i]:.9g}) below its "
                    f"predecessor ({prev:.9g})",
                    location=loc, mode=mode,
                ))
            prev = max(prev, float(ts[i]))

    # send->recv Lamport condition; sends collected first because the
    # per-location walk does not follow the global causal order
    send_ts: Dict[int, Tuple[int, float]] = {}
    for loc, evs in enumerate(trace.events):
        for i, ev in enumerate(evs):
            if ev.etype == MPI_SEND:
                send_ts[ev.aux[0]] = (loc, float(tt.times[loc][i]))

    groups: Dict[Tuple[str, int], List[Tuple[int, float]]] = {}
    for loc, evs in enumerate(trace.events):
        for i, ev in enumerate(evs):
            et = ev.etype
            if et == MPI_RECV:
                hit = send_ts.get(ev.aux)
                if hit is None:
                    continue  # structural pass reports the missing send
                _sloc, c_send = hit
                c_recv = float(tt.times[loc][i])
                # Lamport: C(recv) >= C(send) + 1 for logical clocks;
                # physical time needs strict order only
                bound = c_send + 1.0 - 1e-9 if logical else c_send
                if c_recv < bound:
                    cap.add(Diagnostic(
                        "TRC003",
                        f"message {ev.aux}: recv timestamp {c_recv:.9g} "
                        f"does not follow send timestamp {c_send:.9g}",
                        location=loc, mode=mode,
                    ))
            elif et == COLL_END or et == OBAR_LEAVE or et == RESTART:
                kind = ("coll" if et == COLL_END
                        else "obar" if et == OBAR_LEAVE else "restart")
                key = (kind, ev.aux[0])
                groups.setdefault(key, []).append((loc, float(tt.times[loc][i])))

    for key in sorted(groups):
        kind, gid = key
        ts = [t for (_loc, t) in groups[key]]
        lo, hi = min(ts), max(ts)
        if hi - lo > _REL_TOL * max(1.0, abs(hi)):
            cap.add(Diagnostic(
                "TRC004",
                f"{kind} instance {gid}: group timestamps spread over "
                f"[{lo:.9g}, {hi:.9g}] instead of one group value",
                location=groups[key][0][0], mode=mode,
            ))
    if suppressed is not None:
        for rule_id, n in cap.suppressed.items():
            suppressed[rule_id] = suppressed.get(rule_id, 0) + n
    return cap.finish()


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def sanitize_trace(
    trace: RawTrace,
    modes: Optional[Sequence[str]] = None,
    counter_seed: int = 0,
) -> SanitizeReport:
    """Run the structural pass plus the timestamp pass for each mode.

    ``modes`` defaults to all six of the paper's clock modes; pass e.g.
    ``("tsc", "lt1")`` to restrict.  ``counter_seed`` feeds the simulated
    hardware-counter noise of ``lthwctr``.
    """
    from repro.clocks import timestamp_trace

    mode_list = tuple(modes) if modes is not None else MODES
    suppressed: Dict[str, int] = {}
    diagnostics = sanitize_raw(trace, suppressed=suppressed)
    structural_errors = has_errors(diagnostics)
    for mode in mode_list:
        if structural_errors:
            # replaying clocks over a structurally broken trace can crash
            # (incomplete groups) or mislead; report structure first
            break
        tt = timestamp_trace(trace, mode, counter_seed=counter_seed)
        diagnostics.extend(check_timestamps(tt, suppressed=suppressed))
    return SanitizeReport(
        trace_mode=trace.mode,
        n_locations=trace.n_locations,
        n_events=trace.n_events,
        modes=mode_list,
        diagnostics=diagnostics,
        suppressed=suppressed,
    )
