"""Static MPI/OpenMP program linter.

Checks each rank's dry-run action sequence (see
:mod:`repro.verify.dryrun`) for communication misuse *before* any
simulation time is spent:

* point-to-point matching per ``(src, dst, tag)`` channel in posting
  order, mirroring the engine's FIFO matching (MPI001/MPI002),
* request hygiene -- every ``Isend``/``Irecv`` id completed exactly once
  (MPI003/MPI004),
* positional collective consistency across ranks (MPI005/MPI006),
* peer validity (MPI007),
* potential deadlock via an abstract execution of the blocking semantics
  plus wait-for-graph cycle detection (MPI008), and
* checkpoint quiescence -- no message may be sent before a
  :class:`~repro.sim.actions.Checkpoint` and received after it (MPI009),
  since such a message would be lost on a rollback to that checkpoint.

Blocking ``Send`` above the eager threshold is treated as rendezvous (it
blocks until the matching receive is posted), mirroring the engine's
protocol selection; eager sends complete locally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sim import actions as A
from repro.sim.program import Program
from repro.verify.diagnostics import (
    Diagnostic,
    format_diagnostics,
    has_errors,
)
from repro.verify.dryrun import (
    DEFAULT_MAX_ACTIONS,
    ActionRecord,
    RankDryRun,
    dry_run_program,
)

__all__ = ["LintReport", "lint_program", "DEFAULT_EAGER_THRESHOLD"]

#: protocol cutoff for blocking sends in the deadlock analysis; matches
#: repro.machine.network.NetworkModel.eager_threshold
DEFAULT_EAGER_THRESHOLD = 16 * 1024


@dataclass
class LintReport:
    """Outcome of linting one program."""

    program_name: str
    n_ranks: int
    n_actions: int
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def rule_ids(self) -> Set[str]:
        return {d.rule_id for d in self.diagnostics}

    def format(self, with_hints: bool = True) -> str:
        status = "clean" if not self.diagnostics else (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        header = (
            f"lint {self.program_name}: {self.n_ranks} ranks, "
            f"{self.n_actions} actions -- {status}"
        )
        if not self.diagnostics:
            return header
        return format_diagnostics(self.diagnostics, header=header,
                                  with_hints=with_hints)


def lint_program(
    program: Program,
    max_actions: int = DEFAULT_MAX_ACTIONS,
    eager_threshold: float = DEFAULT_EAGER_THRESHOLD,
) -> LintReport:
    """Statically lint ``program``; returns the full diagnostic report."""
    runs = dry_run_program(program, max_actions=max_actions)
    diagnostics: List[Diagnostic] = []
    for run in runs.values():
        diagnostics.extend(run.diagnostics)

    diagnostics.extend(_check_peers(runs, program.n_ranks))
    diagnostics.extend(_check_p2p_matching(runs))
    diagnostics.extend(_check_requests(runs))
    diagnostics.extend(_check_collectives(runs))
    diagnostics.extend(_check_checkpoint_epochs(runs))
    # the abstract execution needs complete sequences; a crashed or
    # truncated rank would show up as a bogus deadlock
    if all(run.completed for run in runs.values()):
        diagnostics.extend(_check_deadlock(runs, eager_threshold))

    return LintReport(
        program_name=program.name,
        n_ranks=program.n_ranks,
        n_actions=sum(len(r.records) for r in runs.values()),
        diagnostics=diagnostics,
    )


# ---------------------------------------------------------------------------
# peer validity
# ---------------------------------------------------------------------------


def _peer_of(action: A.Action) -> Optional[Tuple[str, int, int]]:
    """(direction, peer, tag) of a point-to-point action, else None."""
    if isinstance(action, (A.Send, A.Isend)):
        return ("send", action.dest, action.tag)
    if isinstance(action, (A.Recv, A.Irecv)):
        return ("recv", action.source, action.tag)
    return None


def _check_peers(runs: Dict[int, RankDryRun], n_ranks: int) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    seen: Set[Tuple[int, str, int, int]] = set()
    for rank, run in runs.items():
        for rec in run.records:
            p = _peer_of(rec.action)
            if p is None:
                continue
            kind, peer, tag = p
            if kind == "recv" and peer == A.ANY_SOURCE:
                continue  # wildcard; the determinism prover owns this
            bad = peer < 0 or peer >= n_ranks or peer == rank
            if not bad:
                continue
            key = (rank, kind, peer, tag)
            if key in seen:
                continue
            seen.add(key)
            why = "itself" if peer == rank else f"nonexistent rank {peer}"
            out.append(Diagnostic(
                "MPI007",
                f"{rec.describe()} targets {why} (job has {n_ranks} ranks)",
                rank=rank, call_path=rec.call_path, action_index=rec.index,
            ))
    return out


# ---------------------------------------------------------------------------
# point-to-point matching
# ---------------------------------------------------------------------------


def _check_p2p_matching(runs: Dict[int, RankDryRun]) -> List[Diagnostic]:
    """Count sends vs. receives per (src, dst, tag) channel.

    Wildcard (``ANY_SOURCE``) receives form a per-``(dst, tag)`` pool
    that absorbs surplus sends from *any* source channel: count-level
    matching cannot know which sender a wildcard picks, so the check is
    exact on totals and silent about the racy order (that is DET/RACE
    territory).
    """
    sends: Dict[Tuple[int, int, int], List[Tuple[int, ActionRecord]]] = {}
    recvs: Dict[Tuple[int, int, int], List[Tuple[int, ActionRecord]]] = {}
    any_recvs: Dict[Tuple[int, int], List[Tuple[int, ActionRecord]]] = {}
    for rank, run in runs.items():
        for rec in run.records:
            a = rec.action
            if isinstance(a, (A.Send, A.Isend)):
                sends.setdefault((rank, a.dest, a.tag), []).append((rank, rec))
            elif isinstance(a, (A.Recv, A.Irecv)):
                if a.source == A.ANY_SOURCE:
                    any_recvs.setdefault((rank, a.tag), []).append((rank, rec))
                else:
                    recvs.setdefault((a.source, rank, a.tag), []).append((rank, rec))

    out: List[Diagnostic] = []
    #: (dst, tag) -> surplus sends not covered by a named receive
    surplus_sends: Dict[Tuple[int, int], List[Tuple[int, ActionRecord]]] = {}
    for key in sorted(set(sends) | set(recvs)):
        src, dst, tag = key
        s = sends.get(key, [])
        r = recvs.get(key, [])
        if len(s) > len(r):
            if (dst, tag) in any_recvs:
                surplus_sends.setdefault((dst, tag), []).extend(s[len(r):])
            else:
                rank, rec = s[len(r)]  # first surplus send, FIFO matching
                out.append(Diagnostic(
                    "MPI001",
                    f"{len(s)} send(s) but {len(r)} receive(s) on channel "
                    f"{src}->{dst} tag {tag}; first unmatched: "
                    f"{rec.describe()}",
                    rank=rank, call_path=rec.call_path,
                    action_index=rec.index,
                ))
        elif len(r) > len(s):
            rank, rec = r[len(s)]
            out.append(Diagnostic(
                "MPI002",
                f"{len(r)} receive(s) but {len(s)} send(s) on channel "
                f"{src}->{dst} tag {tag}; first unmatched: {rec.describe()}",
                rank=rank, call_path=rec.call_path, action_index=rec.index,
            ))
    for pool_key in sorted(set(surplus_sends) | set(any_recvs)):
        dst, tag = pool_key
        extra = surplus_sends.get(pool_key, [])
        wild = any_recvs.get(pool_key, [])
        if len(extra) > len(wild):
            rank, rec = extra[len(wild)]
            out.append(Diagnostic(
                "MPI001",
                f"{len(extra)} surplus send(s) but only {len(wild)} "
                f"wildcard receive(s) toward rank {dst} tag {tag}; "
                f"first unmatched: {rec.describe()}",
                rank=rank, call_path=rec.call_path, action_index=rec.index,
            ))
        elif len(wild) > len(extra):
            rank, rec = wild[len(extra)]
            out.append(Diagnostic(
                "MPI002",
                f"{len(wild)} wildcard receive(s) but only {len(extra)} "
                f"unclaimed send(s) toward rank {dst} tag {tag}; "
                f"first unmatched: {rec.describe()}",
                rank=rank, call_path=rec.call_path, action_index=rec.index,
            ))
    return out


# ---------------------------------------------------------------------------
# request hygiene
# ---------------------------------------------------------------------------


def _check_requests(runs: Dict[int, RankDryRun]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for rank, run in runs.items():
        outstanding: Dict[int, ActionRecord] = {}
        for rec in run.records:
            a = rec.action
            if isinstance(a, (A.Isend, A.Irecv)):
                outstanding[rec.result] = rec
            elif isinstance(a, (A.Wait, A.Waitall)):
                rids = (a.request,) if isinstance(a, A.Wait) else a.requests
                for rid in rids:
                    if rid in outstanding:
                        del outstanding[rid]
                    else:
                        out.append(Diagnostic(
                            "MPI004",
                            f"{rec.describe()} waits on request {rid} that "
                            "is not outstanding (never issued, or already "
                            "completed)",
                            rank=rank, call_path=rec.call_path,
                            action_index=rec.index,
                        ))
        if not run.completed:
            continue  # leaks past a crash point are noise
        # group leaks by issuing call path so a leaky loop is one finding
        grouped: Dict[Tuple[str, Tuple[str, ...]], List[ActionRecord]] = {}
        for rec in outstanding.values():
            kind = type(rec.action).__name__
            grouped.setdefault((kind, rec.call_path), []).append(rec)
        for (kind, path), recs in sorted(grouped.items()):
            first = min(recs, key=lambda r: r.index)
            out.append(Diagnostic(
                "MPI003",
                f"{len(recs)} {kind} request(s) never completed by "
                f"Wait/Waitall; first leaked: {first.describe()}",
                rank=rank, call_path=path, action_index=first.index,
            ))
    return out


# ---------------------------------------------------------------------------
# checkpoint quiescence
# ---------------------------------------------------------------------------


def _check_checkpoint_epochs(runs: Dict[int, RankDryRun]) -> List[Diagnostic]:
    """Warn about messages that straddle a checkpoint boundary (MPI009).

    A rank's *checkpoint epoch* is the number of ``Checkpoint`` actions it
    has issued; since checkpoints are collective, matched operations see
    consistent epochs across ranks.  Sends count the epoch at initiation;
    receives count the epoch at completion (the ``Wait``/``Waitall`` for
    non-blocking receives), because that is when the data materializes in
    application state.  FIFO pairing mirrors the engine's matching.
    """
    sends: Dict[Tuple[int, int, int], List[Tuple[int, int, ActionRecord]]] = {}
    recvs: Dict[Tuple[int, int, int], List[Tuple[int, int, ActionRecord]]] = {}
    any_checkpoint = False
    for rank, run in runs.items():
        epoch = 0
        pending: Dict[int, Tuple[Tuple[int, int, int], ActionRecord]] = {}
        for rec in run.records:
            a = rec.action
            cls = type(a)
            if cls is A.Checkpoint:
                epoch += 1
                any_checkpoint = True
            elif cls is A.Send or cls is A.Isend:
                sends.setdefault((rank, a.dest, a.tag), []).append((epoch, rank, rec))
            elif cls is A.Recv:
                recvs.setdefault((a.source, rank, a.tag), []).append((epoch, rank, rec))
            elif cls is A.Irecv:
                pending[rec.result] = ((a.source, rank, a.tag), rec)
            elif cls is A.Wait or cls is A.Waitall:
                rids = (a.request,) if cls is A.Wait else a.requests
                for rid in rids:
                    hit = pending.pop(rid, None)
                    if hit is not None:
                        key, r_rec = hit
                        recvs.setdefault(key, []).append((epoch, rank, r_rec))
    if not any_checkpoint:
        return []

    out: List[Diagnostic] = []
    for key in sorted(set(sends) & set(recvs)):
        src, dst, tag = key
        for (s_ep, s_rank, s_rec), (r_ep, _r_rank, _r_rec) in zip(
            sends[key], recvs[key]
        ):
            if s_ep != r_ep:
                out.append(Diagnostic(
                    "MPI009",
                    f"message on channel {src}->{dst} tag {tag} sent in "
                    f"checkpoint epoch {s_ep} but received in epoch {r_ep}",
                    rank=s_rank, call_path=s_rec.call_path,
                    action_index=s_rec.index,
                ))
                break  # one finding per channel keeps the report readable
    return out


# ---------------------------------------------------------------------------
# collective consistency
# ---------------------------------------------------------------------------


def _coll_signature(action: A.Action) -> Optional[Tuple[str, Optional[int]]]:
    if type(action) in A.COLLECTIVE_INFO:
        op, _region = A.COLLECTIVE_INFO[type(action)]
        return (op, getattr(action, "root", None))
    return None


def _check_collectives(runs: Dict[int, RankDryRun]) -> List[Diagnostic]:
    seqs: Dict[int, List[Tuple[Tuple[str, Optional[int]], ActionRecord]]] = {}
    for rank, run in runs.items():
        seq = []
        for rec in run.records:
            sig = _coll_signature(rec.action)
            if sig is not None:
                seq.append((sig, rec))
        seqs[rank] = seq

    out: List[Diagnostic] = []
    counts = {rank: len(seq) for rank, seq in seqs.items()}
    if len(set(counts.values())) > 1:
        lo = min(counts, key=counts.get)
        hi = max(counts, key=counts.get)
        out.append(Diagnostic(
            "MPI006",
            f"collective counts differ across ranks: rank {lo} issues "
            f"{counts[lo]}, rank {hi} issues {counts[hi]}",
            rank=lo,
        ))
    n_common = min(counts.values()) if counts else 0
    ref_rank = min(seqs)
    for k in range(n_common):
        ref_sig, ref_rec = seqs[ref_rank][k]
        for rank in sorted(seqs):
            sig, rec = seqs[rank][k]
            if sig != ref_sig:
                out.append(Diagnostic(
                    "MPI005",
                    f"collective #{k}: rank {rank} calls "
                    f"{_sig_name(sig)} at {'/'.join(rec.call_path) or '<top>'}"
                    f" but rank {ref_rank} calls {_sig_name(ref_sig)}",
                    rank=rank, call_path=rec.call_path,
                    action_index=rec.index,
                ))
                return out  # later positions are all skewed; stop at first
    return out


def _sig_name(sig: Tuple[str, Optional[int]]) -> str:
    op, root = sig
    return f"{op}(root={root})" if root is not None else op


# ---------------------------------------------------------------------------
# deadlock detection (abstract execution + wait-for graph)
# ---------------------------------------------------------------------------


class _AbstractRank:
    """Replay cursor over one rank's dry-run records."""

    __slots__ = ("rank", "records", "pc", "requests", "blocked_on",
                 "blocked_entry", "coll_k")

    def __init__(self, rank: int, records: Sequence[ActionRecord]):
        self.rank = rank
        self.records = records
        self.pc = 0
        #: rid -> _ChanEntry for outstanding non-blocking operations
        self.requests: Dict[int, "_ChanEntry"] = {}
        self.blocked_on: Optional[ActionRecord] = None
        self.blocked_entry: Optional["_ChanEntry"] = None
        self.coll_k = 0  # next collective instance index

    @property
    def done(self) -> bool:
        return self.pc >= len(self.records)


class _ChanEntry:
    """One posted send or receive in the abstract channel state."""

    __slots__ = ("rank", "peer", "matched")

    def __init__(self, rank: int, peer: int):
        self.rank = rank
        self.peer = peer
        self.matched = False


def _check_deadlock(
    runs: Dict[int, RankDryRun],
    eager_threshold: float = DEFAULT_EAGER_THRESHOLD,
) -> List[Diagnostic]:
    ranks = {r: _AbstractRank(r, run.records) for r, run in runs.items()}
    n_ranks = len(ranks)
    chan_sends: Dict[Tuple[int, int, int], deque] = {}
    chan_recvs: Dict[Tuple[int, int, int], deque] = {}
    any_recvs: Dict[Tuple[int, int], deque] = {}  # (dst, tag) -> wildcards
    coll_arrived: Dict[int, Set[int]] = {}  # instance -> ranks present

    def _take_match(table, key) -> Optional[_ChanEntry]:
        q = table.get(key)
        if q:
            e = q.popleft()
            e.matched = True
            return e
        return None

    def _take_any_send(dst: int, tag: int) -> Optional[_ChanEntry]:
        """Pop a queued send from any source toward (dst, tag).

        Which sender a wildcard picks is timing-dependent; for
        deadlock-freedom any completion order suffices (the abstraction
        over-approximates liveness, never reports a false cycle)."""
        for key in sorted(chan_sends):
            if key[1] == dst and key[2] == tag and chan_sends[key]:
                return _take_match(chan_sends, key)
        return None

    def _step(st: _AbstractRank) -> bool:
        """Try to advance one action; returns False when the rank blocks."""
        rec = st.records[st.pc]
        a = rec.action
        cls = type(a)
        if cls is A.Isend or cls is A.Send:
            key = (st.rank, a.dest, a.tag)
            entry = _ChanEntry(st.rank, a.dest)
            if (_take_match(chan_recvs, key) is not None
                    or _take_match(any_recvs, (a.dest, a.tag)) is not None):
                entry.matched = True
            else:
                chan_sends.setdefault(key, deque()).append(entry)
            if cls is A.Isend:
                st.requests[rec.result] = entry
            elif not entry.matched and a.nbytes > eager_threshold:
                st.blocked_on, st.blocked_entry = rec, entry
                return False  # rendezvous send parks until matched
        elif cls is A.Irecv or cls is A.Recv:
            entry = _ChanEntry(st.rank, a.source)
            if a.source == A.ANY_SOURCE:
                if _take_any_send(st.rank, a.tag) is not None:
                    entry.matched = True
                else:
                    any_recvs.setdefault((st.rank, a.tag), deque()).append(entry)
            elif _take_match(chan_sends, (a.source, st.rank, a.tag)) is not None:
                entry.matched = True
            else:
                chan_recvs.setdefault((a.source, st.rank, a.tag), deque()).append(entry)
            if cls is A.Irecv:
                st.requests[rec.result] = entry
            elif not entry.matched:
                st.blocked_on, st.blocked_entry = rec, entry
                return False
        elif cls is A.Wait or cls is A.Waitall:
            rids = (a.request,) if cls is A.Wait else a.requests
            if any(r in st.requests and not st.requests[r].matched
                   for r in rids):
                st.blocked_on = rec
                return False
            for r in rids:
                st.requests.pop(r, None)
        elif cls in A.COLLECTIVE_INFO:
            arrived = coll_arrived.setdefault(st.coll_k, set())
            arrived.add(st.rank)
            if len(arrived) < n_ranks:
                st.blocked_on = rec
                return False
            # all ranks arrived: this one was last in; the others are
            # released when the sweep re-examines them
            st.coll_k += 1
        st.pc += 1
        st.blocked_on = None
        st.blocked_entry = None
        return True

    def _release_if_runnable(st: _AbstractRank) -> bool:
        """Unblock a parked rank whose condition is now satisfied."""
        a = st.blocked_on.action
        cls = type(a)
        if cls is A.Send or cls is A.Recv:
            runnable = st.blocked_entry.matched
        elif cls is A.Wait or cls is A.Waitall:
            rids = (a.request,) if cls is A.Wait else a.requests
            runnable = all(
                r not in st.requests or st.requests[r].matched for r in rids
            )
            if runnable:
                for r in rids:
                    st.requests.pop(r, None)
        else:  # collective
            runnable = len(coll_arrived.get(st.coll_k, ())) >= n_ranks
            if runnable:
                st.coll_k += 1
        if not runnable:
            return False
        st.pc += 1
        st.blocked_on = None
        st.blocked_entry = None
        return True

    # sweep until global quiescence
    progress = True
    while progress:
        progress = False
        for st in ranks.values():
            if st.blocked_on is not None:
                if not _release_if_runnable(st):
                    continue
                progress = True
            while not st.done and _step(st):
                progress = True

    stuck = [st for st in ranks.values() if not st.done]
    if not stuck:
        return []

    # wait-for edges for the cycle report
    waits_on: Dict[int, Set[int]] = {}
    for st in stuck:
        a = st.blocked_on.action
        cls = type(a)
        if cls is A.Send or cls is A.Recv:
            peers = {st.blocked_entry.peer}
        elif cls is A.Wait or cls is A.Waitall:
            rids = (a.request,) if cls is A.Wait else a.requests
            peers = {st.requests[r].peer for r in rids
                     if r in st.requests and not st.requests[r].matched}
        else:  # collective
            peers = set(ranks) - coll_arrived.get(st.coll_k, set())
        # a blocked wildcard receive could be satisfied by any other rank
        if A.ANY_SOURCE in peers:
            peers = (peers - {A.ANY_SOURCE}) | (set(ranks) - {st.rank})
        waits_on[st.rank] = peers

    cycle = _find_cycle(waits_on)
    out: List[Diagnostic] = []
    if cycle:
        out.append(Diagnostic(
            "MPI008",
            "wait-for cycle: " + " -> ".join(str(r) for r in cycle),
            rank=cycle[0],
        ))
    for st in sorted(stuck, key=lambda s: s.rank):
        rec = st.blocked_on
        done_peers = sorted(
            p for p in waits_on[st.rank] if p in ranks and ranks[p].done
        )
        extra = (
            f"; waits on terminated rank(s) {done_peers}" if done_peers else ""
        )
        out.append(Diagnostic(
            "MPI008",
            f"blocked forever in {rec.describe()}{extra}",
            rank=st.rank, call_path=rec.call_path, action_index=rec.index,
        ))
    return out


def _find_cycle(graph: Dict[int, Set[int]]) -> Optional[List[int]]:
    """First directed cycle among the stuck ranks, as a closed walk."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    path: List[int] = []

    def visit(n: int) -> Optional[List[int]]:
        color[n] = GREY
        path.append(n)
        for m in sorted(graph.get(n, ())):
            if m not in color:
                continue
            if color[m] == GREY:
                i = path.index(m)
                return path[i:] + [m]
            if color[m] == WHITE:
                found = visit(m)
                if found:
                    return found
        path.pop()
        color[n] = BLACK
        return None

    for n in sorted(graph):
        if color[n] == WHITE:
            found = visit(n)
            if found:
                return found
    return None
