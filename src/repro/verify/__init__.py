"""Static program linting and happened-before trace sanitizing.

Two analysis passes guard the correctness assumptions everything else in
this repository rests on:

* the **static linter** (:func:`lint_program`) symbolically dry-runs each
  rank's generator program and flags MPI/OpenMP misuse -- unmatched
  point-to-point traffic, leaked requests, mismatched collective
  sequences, ``Enter``/``Leave`` imbalance and potential deadlock --
  before a single simulated second is spent;

* the **trace sanitizer** (:func:`sanitize_trace`) verifies recorded
  :class:`~repro.measure.trace.RawTrace` archives and the timestamps
  derived from them against the happened-before relation: per-location
  monotonicity under every clock mode, the Lamport condition on every
  send->recv edge, collective-epoch consistency and matching-id
  integrity;

* the **determinism prover** (:func:`analyze_determinism`) statically
  classifies every communication site of a program as
  order-deterministic or racy and emits a sha256-stamped certificate
  asserting which clock modes must produce bit-identical traces across
  noise (cross-checked empirically by the faultsweep harness);

* the **race detector** (:func:`find_races`) replays a recorded trace
  under vector clocks and reports happened-before-concurrent conflicting
  accesses -- wildcard message races and OpenMP shared-write races --
  each with a witness path.

Both report structured :class:`~repro.verify.diagnostics.Diagnostic`
objects carrying a rule id from :mod:`repro.verify.rules`, the rank or
location, the call path and a fix hint.  The ``repro-lint`` CLI and the
pre-flight check in :mod:`repro.experiments.workflow` wire the passes
into the measurement pipeline; ``Measurement(..., sanitize=True)`` (or
``Engine(..., sanitize=True)``) checks trace invariants online while
events are emitted.  See ``docs/verify.md`` for the rule catalogue.
"""

from repro.verify.determinism import (
    BIT_IDENTICAL,
    NOISE_SENSITIVE,
    CommSite,
    DeterminismReport,
    analyze_determinism,
)
from repro.verify.diagnostics import (
    Diagnostic,
    VerificationError,
    format_diagnostics,
    has_errors,
    worst_severity,
)
from repro.verify.dryrun import (
    ActionRecord,
    RankDryRun,
    dry_run_program,
    dry_run_rank,
)
from repro.verify.fixtures import FIXTURES, fixture_names, make_fixture
from repro.verify.linter import LintReport, lint_program
from repro.verify.online import OnlineSanitizer, TraceInvariantError
from repro.verify.races import RaceReport, find_races
from repro.verify.rules import RULES, Rule, Severity, get_rule, rule
from repro.verify.sanitizer import (
    SanitizeReport,
    check_timestamps,
    sanitize_raw,
    sanitize_trace,
)

__all__ = [
    "ActionRecord",
    "BIT_IDENTICAL",
    "CommSite",
    "DeterminismReport",
    "Diagnostic",
    "FIXTURES",
    "LintReport",
    "NOISE_SENSITIVE",
    "OnlineSanitizer",
    "RaceReport",
    "RankDryRun",
    "Rule",
    "RULES",
    "SanitizeReport",
    "Severity",
    "TraceInvariantError",
    "VerificationError",
    "analyze_determinism",
    "check_timestamps",
    "dry_run_program",
    "dry_run_rank",
    "find_races",
    "fixture_names",
    "format_diagnostics",
    "get_rule",
    "has_errors",
    "lint_program",
    "make_fixture",
    "rule",
    "sanitize_raw",
    "sanitize_trace",
    "worst_severity",
]
