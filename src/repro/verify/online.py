"""Online trace-invariant checking while events are emitted.

The :class:`OnlineSanitizer` plugs into the measurement layer (opt in via
``Measurement(..., sanitize=True)`` or ``Engine(..., sanitize=True)``)
and validates every event at recording time: per-location monotonicity
(TRC001), ENTER/LEAVE discipline (TRC006), match-id integrity (TRC002)
and synchronisation-group membership (TRC007).  A violation raises
:class:`TraceInvariantError` immediately, pointing at the exact emitting
location instead of leaving a corrupt archive for the analyzer to choke
on later.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.sim.events import (
    COLL_END,
    ENTER,
    FORK,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    TEAM_BEGIN,
    Ev,
)
from repro.verify.diagnostics import Diagnostic, format_diagnostics

__all__ = ["OnlineSanitizer", "TraceInvariantError"]


class TraceInvariantError(RuntimeError):
    """A trace invariant was violated during event emission."""

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        super().__init__(format_diagnostics(
            diagnostics, header="trace invariant violated during emission:"
        ))


class OnlineSanitizer:
    """Incremental invariant checker over one run's event stream."""

    def __init__(self, region_names=None):
        #: optional resolver (rid -> name) for readable messages
        self._region_names = region_names
        self._last_t: Dict[int, float] = {}
        self._stacks: Dict[int, List[int]] = {}
        self._sends: Set[int] = set()
        self._recvs: Set[int] = set()
        self._groups: Dict[Tuple[str, int], int] = {}
        self._group_sizes: Dict[Tuple[str, int], int] = {}
        self._forks: Set[int] = set()

    # -- helpers ----------------------------------------------------------
    def _region(self, rid: int) -> str:
        if self._region_names is not None:
            try:
                return self._region_names(rid)
            except Exception:
                pass
        return f"<region {rid}>"

    def _fail(self, rule_id: str, message: str, loc: Optional[int] = None):
        raise TraceInvariantError([
            Diagnostic(rule_id, message, location=loc)
        ])

    # -- per-event check --------------------------------------------------
    def observe(self, loc: int, ev: Ev) -> None:
        last = self._last_t.get(loc)
        if last is not None and ev.t < last - 1e-15:
            self._fail(
                "TRC001",
                f"event at t={ev.t:.9g} emitted after t={last:.9g}", loc,
            )
        self._last_t[loc] = max(ev.t, last) if last is not None else ev.t

        et = ev.etype
        if et == ENTER:
            self._stacks.setdefault(loc, []).append(ev.region)
        elif et == LEAVE:
            stack = self._stacks.get(loc)
            if not stack:
                self._fail(
                    "TRC006",
                    f"LEAVE {self._region(ev.region)} with no open ENTER",
                    loc,
                )
            if stack[-1] != ev.region:
                self._fail(
                    "TRC006",
                    f"LEAVE {self._region(ev.region)} closes ENTER "
                    f"{self._region(stack[-1])}",
                    loc,
                )
            stack.pop()
        elif et == MPI_SEND:
            mid = ev.aux[0]
            if mid in self._sends:
                self._fail("TRC002", f"duplicate MPI_SEND match id {mid}", loc)
            self._sends.add(mid)
        elif et == MPI_RECV:
            mid = ev.aux
            if mid not in self._sends:
                self._fail(
                    "TRC002",
                    f"MPI_RECV match id {mid} before/without its MPI_SEND",
                    loc,
                )
            if mid in self._recvs:
                self._fail("TRC002", f"duplicate MPI_RECV match id {mid}", loc)
            self._recvs.add(mid)
        elif et == COLL_END or et == OBAR_LEAVE:
            gid, size = ev.aux
            key = ("coll" if et == COLL_END else "obar", gid)
            known = self._group_sizes.setdefault(key, size)
            if known != size:
                self._fail(
                    "TRC007",
                    f"{key[0]} instance {gid}: conflicting group sizes "
                    f"{known} and {size}",
                    loc,
                )
            n = self._groups.get(key, 0) + 1
            self._groups[key] = n
            if n > size:
                self._fail(
                    "TRC007",
                    f"{key[0]} instance {gid} has {n} members for group "
                    f"size {size}",
                    loc,
                )
        elif et == FORK:
            self._forks.add(ev.aux)
        elif et == TEAM_BEGIN:
            if ev.aux not in self._forks:
                self._fail(
                    "TRC007",
                    f"TEAM_BEGIN for construct {ev.aux} without its FORK",
                    loc,
                )

    # -- end-of-run check -------------------------------------------------
    def final_check(self) -> None:
        """Invariants that only hold once the run is complete."""
        problems: List[Diagnostic] = []
        for loc, stack in sorted(self._stacks.items()):
            if stack:
                problems.append(Diagnostic(
                    "TRC006",
                    "ENTER(s) never left: "
                    + " > ".join(self._region(r) for r in stack),
                    location=loc,
                ))
        unreceived = self._sends - self._recvs
        if unreceived:
            some = sorted(unreceived)[:5]
            problems.append(Diagnostic(
                "TRC002",
                f"{len(unreceived)} MPI_SEND(s) without a receive record "
                f"(match ids {some}{'...' if len(unreceived) > 5 else ''})",
            ))
        for key, n in sorted(self._groups.items()):
            size = self._group_sizes[key]
            if n != size:
                problems.append(Diagnostic(
                    "TRC007",
                    f"{key[0]} instance {key[1]} ended with {n}/{size} "
                    "member events",
                ))
        if problems:
            raise TraceInvariantError(problems)
