"""Structured diagnostics emitted by the verification passes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.verify.rules import RULES, Severity

__all__ = [
    "Diagnostic",
    "VerificationError",
    "format_diagnostics",
    "has_errors",
    "worst_severity",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the linter or the sanitizer.

    Attributes
    ----------
    rule_id:      id of the violated :class:`~repro.verify.rules.Rule`
    message:      specific description of this violation
    rank:         MPI rank the finding belongs to (program linter), if any
    location:     trace location id (sanitizer), if any
    call_path:    region call path at the offending action, outermost first
    action_index: index of the offending action in the rank's dry-run
    mode:         timestamp mode (sanitizer timestamp checks), if any
    witness:      happened-before witness: one line per step of the
                  evidence path (race detector / determinism prover)
    """

    rule_id: str
    message: str
    rank: Optional[int] = None
    location: Optional[int] = None
    call_path: Tuple[str, ...] = ()
    action_index: Optional[int] = None
    mode: Optional[str] = None
    witness: Tuple[str, ...] = ()

    @property
    def severity(self) -> str:
        return RULES[self.rule_id].severity

    @property
    def hint(self) -> str:
        return RULES[self.rule_id].hint

    def format(self, with_hint: bool = True) -> str:
        where = []
        if self.rank is not None:
            where.append(f"rank {self.rank}")
        if self.location is not None:
            where.append(f"location {self.location}")
        if self.mode is not None:
            where.append(f"mode {self.mode}")
        if self.call_path:
            where.append("at " + "/".join(self.call_path))
        if self.action_index is not None:
            where.append(f"action #{self.action_index}")
        place = ", ".join(where)
        head = f"[{self.rule_id} {self.severity}]"
        body = f"{place}: {self.message}" if place else self.message
        out = f"{head} {body}"
        for step in self.witness:
            out += f"\n    witness: {step}"
        if with_hint and self.hint:
            out += f"\n    hint: {self.hint}"
        return out


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    return any(d.severity == Severity.ERROR for d in diagnostics)


def worst_severity(diagnostics: Sequence[Diagnostic]) -> Optional[str]:
    """Highest severity present, or ``None`` for a clean result."""
    if not diagnostics:
        return None
    return max(diagnostics, key=lambda d: Severity.rank(d.severity)).severity


def format_diagnostics(
    diagnostics: Sequence[Diagnostic],
    header: Optional[str] = None,
    with_hints: bool = True,
) -> str:
    """Human-readable multi-line report (worst findings first)."""
    lines: List[str] = []
    if header:
        lines.append(header)
    ordered = sorted(
        diagnostics,
        key=lambda d: (-Severity.rank(d.severity), d.rule_id,
                       d.rank if d.rank is not None else -1,
                       d.location if d.location is not None else -1),
    )
    for d in ordered:
        lines.append(d.format(with_hint=with_hints))
    if not diagnostics:
        lines.append("no findings")
    return "\n".join(lines)


@dataclass
class VerificationError(RuntimeError):
    """Raised when a verification pass finds error-severity diagnostics."""

    message: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def __post_init__(self):
        super().__init__(self.message)

    def __str__(self) -> str:
        if not self.diagnostics:
            return self.message
        return self.message + "\n" + format_diagnostics(self.diagnostics)
