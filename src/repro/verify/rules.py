"""The verification rule registry.

Every check the linter or the trace sanitizer can report is a
:class:`Rule` with a stable id, a severity and a fix hint.  Rules are
registered at import time; adding a new check is one :func:`rule` call
plus the code that emits its diagnostics.

Rule id families
----------------

=======  ==================================================================
``STR``  Call-path structure (``Enter``/``Leave`` discipline) in programs.
``OMP``  OpenMP construct misuse in programs.
``MPI``  MPI misuse in programs (matching, requests, collectives, deadlock).
``PRG``  Problems with the rank generator itself (crash, runaway).
``TRC``  Trace-level invariants (happened-before, matching, clock condition).
``DET``  Static determinism analysis (wildcards, send races, nondeterminism).
``RACE`` Happened-before races found in a recorded trace (vector clocks).
``ING``  Foreign-trace ingestion (:mod:`repro.ingest`): resource caps,
         parse/validation failures and salvage repairs on untrusted input.
=======  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Severity", "Rule", "RULES", "rule", "get_rule"]


class Severity:
    """Diagnostic severity levels, ordered by :func:`severity_rank`."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {ERROR: 2, WARNING: 1, INFO: 0}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER[severity]


@dataclass(frozen=True)
class Rule:
    """One registered check.

    Attributes
    ----------
    id:       stable identifier (``MPI002``); referenced by tests and docs
    severity: default severity of diagnostics carrying this rule
    summary:  one-line description of what the rule detects
    hint:     how to fix a typical violation
    """

    id: str
    severity: str
    summary: str
    hint: str = ""


#: id -> Rule for every registered check
RULES: Dict[str, Rule] = {}


def rule(rule_id: str, severity: str, summary: str, hint: str = "") -> Rule:
    """Register (and return) a rule; ids must be unique."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    r = Rule(rule_id, severity, summary, hint)
    RULES[rule_id] = r
    return r


def get_rule(rule_id: str) -> Rule:
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}; known: {sorted(RULES)}") from None


# ---------------------------------------------------------------------------
# call-path structure (static)
# ---------------------------------------------------------------------------

STR001 = rule(
    "STR001", Severity.ERROR,
    "Leave with an empty region stack",
    "every Leave must pair with an earlier Enter on the same rank",
)
STR002 = rule(
    "STR002", Severity.ERROR,
    "Leave(region) does not match the innermost Enter",
    "close regions in strict LIFO order; check for a missing or extra Leave",
)
STR003 = rule(
    "STR003", Severity.ERROR,
    "regions still open when the rank program ends",
    "add the missing Leave actions before the generator returns",
)
STR004 = rule(
    "STR004", Severity.WARNING,
    "bare Leave() without a region name",
    "pass the region name (Leave('region')) so mismatches are caught early",
)

# ---------------------------------------------------------------------------
# OpenMP (static)
# ---------------------------------------------------------------------------

OMP001 = rule(
    "OMP001", Severity.ERROR,
    "ParallelFor with invalid per-thread shares",
    "supply exactly n_threads non-negative shares with a positive sum",
)

# ---------------------------------------------------------------------------
# MPI (static)
# ---------------------------------------------------------------------------

MPI001 = rule(
    "MPI001", Severity.ERROR,
    "send without a matching receive",
    "post a Recv/Irecv with the same (source, tag) on the destination rank",
)
MPI002 = rule(
    "MPI002", Severity.ERROR,
    "receive without a matching send",
    "post a Send/Isend with the same (dest, tag) on the source rank",
)
MPI003 = rule(
    "MPI003", Severity.ERROR,
    "non-blocking request never completed by Wait/Waitall",
    "complete every Isend/Irecv request id with Wait or Waitall",
)
MPI004 = rule(
    "MPI004", Severity.ERROR,
    "Wait/Waitall on an unknown or already-completed request id",
    "wait exactly once on each request id returned by Isend/Irecv",
)
MPI005 = rule(
    "MPI005", Severity.ERROR,
    "ranks disagree on the collective operation at the same sequence position",
    "all ranks must issue the same collective (and root) in the same order",
)
MPI006 = rule(
    "MPI006", Severity.ERROR,
    "ranks issue different numbers of collective operations",
    "make every rank execute the same collective sequence (check rank-"
    "dependent branches around collectives)",
)
MPI007 = rule(
    "MPI007", Severity.ERROR,
    "point-to-point peer rank is invalid",
    "dest/source must name another rank in [0, n_ranks)",
)
MPI008 = rule(
    "MPI008", Severity.ERROR,
    "potential deadlock (communication cannot complete)",
    "break the wait-for cycle, e.g. order sends before receives on one "
    "side or switch to non-blocking communication",
)
MPI009 = rule(
    "MPI009", Severity.WARNING,
    "point-to-point message crosses a checkpoint boundary",
    "place Checkpoint actions at quiescent points: a message sent before "
    "a checkpoint but received after it is lost on rollback, so recovery "
    "would replay the job inconsistently",
)

# ---------------------------------------------------------------------------
# program execution (static dry-run)
# ---------------------------------------------------------------------------

PRG001 = rule(
    "PRG001", Severity.ERROR,
    "rank generator raised an exception during the dry-run",
    "fix the crash; the linter dry-runs programs with stub request ids",
)
PRG002 = rule(
    "PRG002", Severity.WARNING,
    "rank generator exceeded the dry-run action limit",
    "raise max_actions if the program is genuinely this long",
)

# ---------------------------------------------------------------------------
# trace invariants (sanitizer)
# ---------------------------------------------------------------------------

TRC001 = rule(
    "TRC001", Severity.ERROR,
    "physical timestamps decrease within one location",
    "events of one location must be recorded in non-decreasing time order",
)
TRC002 = rule(
    "TRC002", Severity.ERROR,
    "message-matching ids are inconsistent",
    "every match id must appear on exactly one MPI_SEND and one MPI_RECV",
)
TRC003 = rule(
    "TRC003", Severity.ERROR,
    "clock condition violated on a send->recv edge",
    "the receive timestamp must exceed the matching send timestamp "
    "(Lamport condition); the trace or its timestamps are corrupt",
)
TRC004 = rule(
    "TRC004", Severity.ERROR,
    "participants of one collective epoch have diverging timestamps",
    "all COLL_END/OBAR_LEAVE records of one instance must carry the group "
    "timestamp",
)
TRC005 = rule(
    "TRC005", Severity.ERROR,
    "derived timestamps decrease within one location",
    "logical clocks are monotone by construction; a decrease means the "
    "timestamp arrays were tampered with or the replay order is wrong",
)
TRC006 = rule(
    "TRC006", Severity.ERROR,
    "ENTER/LEAVE events are imbalanced on a location",
    "each LEAVE must close the innermost open ENTER of the same region",
)
TRC007 = rule(
    "TRC007", Severity.ERROR,
    "synchronisation group is incomplete or over-subscribed",
    "each collective/barrier instance must have exactly its group size of "
    "member events, and TEAM_BEGIN must follow its FORK",
)
TRC008 = rule(
    "TRC008", Severity.ERROR,
    "restart group is inconsistent across ranks",
    "a RESTART instance must appear exactly once per rank, all at the one "
    "common resume time; anything else means the recovery rollback "
    "truncated the per-location event lists inconsistently",
)
TRC009 = rule(
    "TRC009", Severity.WARNING,
    "FAULT event references a message without a receive record",
    "a fault marker's match id should belong to a message that completes "
    "in the trace; a dangling reference usually means the rollback kept "
    "the fault marker but discarded the message records",
)

# ---------------------------------------------------------------------------
# static determinism analysis (repro.verify.determinism)
# ---------------------------------------------------------------------------

DET001 = rule(
    "DET001", Severity.ERROR,
    "wildcard (ANY_SOURCE) receive makes message matching timing-dependent",
    "name the source rank explicitly, or accept that logical traces of "
    "this program are not bit-identical across noise realizations",
)
DET002 = rule(
    "DET002", Severity.ERROR,
    "multiple senders race for the same wildcard-receive channel",
    "the matched order depends on physical arrival times; serialise the "
    "senders (distinct tags or named receives) to restore determinism",
)
DET003 = rule(
    "DET003", Severity.ERROR,
    "rank generator is itself nondeterministic across dry-runs",
    "two dry-runs of the program yielded different action sequences; "
    "seed any randomness from the rank id, not wall-clock or global RNGs",
)
DET004 = rule(
    "DET004", Severity.WARNING,
    "non-commutative reduction: result value depends on combine order",
    "the event structure and timestamps stay deterministic, but the "
    "reduced value is order-sensitive; use a commutative operator or a "
    "fixed reduction tree if bit-identical values matter",
)
DET005 = rule(
    "DET005", Severity.ERROR,
    "OpenMP threads write shared state without synchronisation",
    "add a reduction clause / privatise the variable; the computed value "
    "is racy even though trace timestamps stay deterministic",
)

# ---------------------------------------------------------------------------
# happened-before races over a recorded trace (repro.verify.races)
# ---------------------------------------------------------------------------

RACE001 = rule(
    "RACE001", Severity.ERROR,
    "wildcard message race: concurrent sends matched by one receive site",
    "the two sends are not ordered by happened-before, so either could "
    "have matched first; the recorded order is one noise realization",
)
RACE002 = rule(
    "RACE002", Severity.ERROR,
    "concurrent unsynchronised writes to OpenMP shared state",
    "the writing regions are happened-before-concurrent on different "
    "locations; guard the writes or use a reduction",
)
RACE003 = rule(
    "RACE003", Severity.INFO,
    "wildcard receive whose candidate sends are totally ordered",
    "this wildcard is benign in the recorded trace: every candidate send "
    "is ordered by happened-before, so only one match was possible",
)

# ---------------------------------------------------------------------------
# foreign-trace ingestion (repro.ingest)
# ---------------------------------------------------------------------------

ING001 = rule(
    "ING001", Severity.ERROR,
    "input exceeds an ingestion resource cap",
    "raise the IngestLimits bound (max bytes/events/locations/regions/"
    "ranks) if the input is genuinely this large; caps exist so hostile "
    "input cannot exhaust memory",
)
ING002 = rule(
    "ING002", Severity.ERROR,
    "unrecognized or unparseable trace container",
    "supply Chrome trace-event JSON (object with a traceEvents array, a "
    "bare event array, or JSON lines) or a repro-commops-1 document",
)
ING003 = rule(
    "ING003", Severity.WARNING,
    "malformed record dropped during tolerant parsing",
    "the record was not valid JSON or failed schema validation; it was "
    "skipped and the rest of the input parsed normally",
)
ING004 = rule(
    "ING004", Severity.WARNING,
    "truncated tail discarded",
    "the input ends mid-record (interrupted capture or copy); the "
    "complete prefix was kept and the partial tail dropped",
)
ING005 = rule(
    "ING005", Severity.WARNING,
    "non-monotonic timestamps repaired",
    "per-location timestamps were clamped to non-decreasing order "
    "(recorder clock stepped backwards or a record was bit-flipped)",
)
ING006 = rule(
    "ING006", Severity.WARNING,
    "message matching repaired",
    "an orphaned or duplicated send/receive record was dropped so every "
    "match id pairs exactly one send with one receive",
)
ING007 = rule(
    "ING007", Severity.WARNING,
    "synchronisation group repaired",
    "an incomplete collective/barrier/restart instance was dropped, its "
    "recorded size corrected, or member completion times aligned to the "
    "group maximum",
)
ING008 = rule(
    "ING008", Severity.WARNING,
    "per-location clock skew normalized",
    "one location's clock ran systematically behind its peers (receives "
    "before their sends); the location's timeline was shifted forward",
)
ING009 = rule(
    "ING009", Severity.WARNING,
    "ENTER/LEAVE imbalance repaired",
    "a stray LEAVE was dropped or missing LEAVEs synthesized so every "
    "location's region stack balances",
)
ING010 = rule(
    "ING010", Severity.ERROR,
    "ingestion wall-clock timeout exceeded",
    "the input took longer than IngestLimits.timeout_seconds to process; "
    "raise the timeout or split the input",
)
ING011 = rule(
    "ING011", Severity.WARNING,
    "duplicate record dropped",
    "a record carrying a must-be-unique id (match id, group member) "
    "appeared more than once; the first occurrence was kept",
)
ING012 = rule(
    "ING012", Severity.WARNING,
    "dangling reference dropped",
    "an event referenced a nonexistent peer (FAULT without its message, "
    "TEAM_BEGIN without its FORK) and was removed",
)
ING013 = rule(
    "ING013", Severity.ERROR,
    "comm-op program is not replayable",
    "after salvage the reconstructed rank programs still fail the static "
    "linter (unmatched traffic, deadlock, invalid peers); the input is "
    "rejected rather than replayed unsafely",
)
ING014 = rule(
    "ING014", Severity.ERROR,
    "salvage abandoned",
    "repairs did not converge to a sanitizer-clean trace within the "
    "bounded number of passes; the damage is beyond salvage and the "
    "input is quarantined",
)
