"""Happened-before race detection over a recorded trace.

A FastTrack-style vector-clock pass over a :class:`~repro.measure.trace.
RawTrace`: every location carries a vector clock, synchronisation events
join them (message matches, collective/barrier groups, fork/team-begin,
restart groups), and two kinds of conflicting accesses are tested for
concurrency:

``RACE001`` *wildcard message races*
    Two messages consumed by the same wildcard receive site (region
    ``MPI_Recv_any`` / ``MPI_Irecv_any``) whose *sends* are concurrent
    under happened-before -- either could have matched first, so the
    recorded order is one noise realization out of several.  The static
    prover (DET001/DET002) predicts these; this pass confirms them in
    the trace and attaches the witness.

``RACE002`` *OpenMP shared-write races*
    ``omp_shared_write_<var>`` region entries (emitted by the engine for
    :attr:`~repro.sim.actions.ParallelFor.shared_writes`) that are
    concurrent on different locations for the same variable.

``RACE003`` (info) marks wildcard receive sites whose candidate sends
are all happened-before-ordered: the wildcard was benign *in this
trace*.

Each diagnostic carries a ``witness``: the two concurrent events with
their vector clocks, plus the receive site that exposes the race.  Like
the sanitizer, the reporter caps diagnostics per rule and counts the
suppressed remainder instead of dropping it silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro import obs
from repro.measure.trace import RawTrace
from repro.sim.events import (
    COLL_END,
    ENTER,
    FORK,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)
from repro.verify.diagnostics import Diagnostic
from repro.verify.rules import Severity

__all__ = ["RaceReport", "find_races"]

#: per-rule diagnostic cap (suppressed remainder is counted, not dropped)
_MAX_PER_RULE = 8

#: region-name prefix the engine uses for declared OpenMP shared writes
_SHARED_WRITE_PREFIX = "omp_shared_write_"

#: wildcard receive region names (see Engine._do_recv/_do_irecv)
_ANY_REGIONS = ("MPI_Recv_any", "MPI_Irecv_any")


@dataclass(frozen=True)
class _EvRef:
    """An event pinned by (location, per-location index) with context."""

    loc: int
    index: int
    region: str
    vec: Tuple[int, ...]

    def describe(self, trace: RawTrace) -> str:
        rank, thread = trace.locations[self.loc]
        return (
            f"rank {rank} thread {thread} event #{self.index} "
            f"[{self.region}] vc={list(self.vec)}"
        )


def _concurrent(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    va, vb = np.asarray(a), np.asarray(b)
    return not (
        bool(np.all(va <= vb)) or bool(np.all(vb <= va))
    )


@dataclass
class RaceReport:
    """Result of :func:`find_races` on one trace."""

    n_locations: int
    n_events: int
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rule id -> diagnostics suppressed beyond the per-rule cap
    suppressed: Dict[str, int] = field(default_factory=dict)
    #: wildcard receive sites seen (region name -> matches consumed)
    wildcard_sites: Dict[str, int] = field(default_factory=dict)

    @property
    def has_races(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def add(self, diag: Diagnostic) -> None:
        n = sum(1 for d in self.diagnostics if d.rule_id == diag.rule_id)
        if n >= _MAX_PER_RULE:
            self.suppressed[diag.rule_id] = (
                self.suppressed.get(diag.rule_id, 0) + 1
            )
            return
        self.diagnostics.append(diag)

    def format(self) -> str:
        lines = [
            f"race detection: {self.n_events} events on "
            f"{self.n_locations} locations, "
            f"{len(self.diagnostics)} finding(s)"
        ]
        for d in self.diagnostics:
            lines.append(d.format())
        for rule_id in sorted(self.suppressed):
            lines.append(f"[{rule_id}] (+{self.suppressed[rule_id]} more suppressed)")
        return "\n".join(lines)


def find_races(trace: RawTrace) -> RaceReport:
    """Vector-clock happened-before race detection over ``trace``.

    Replays the merged event stream once, maintaining one vector clock
    per location; group synchronisations (collectives, OpenMP barriers,
    restarts) buffer members until the group is complete, which is safe
    because group members share one timestamp and every member's *next*
    event is strictly later.
    """
    with obs.span("verify.races", n_events=trace.n_events):
        report = RaceReport(
            n_locations=trace.n_locations, n_events=trace.n_events
        )
        n = trace.n_locations
        current = [np.zeros(n, dtype=np.int64) for _ in range(n)]
        ev_index = [0] * n

        #: match id -> (vector at send, _EvRef of the send)
        send_info: Dict[int, Tuple[np.ndarray, _EvRef]] = {}
        fork_vec: Dict[int, np.ndarray] = {}
        #: group key -> [(loc, vector ref)], joined when complete
        groups: Dict[Tuple[str, int], List[int]] = {}
        group_max: Dict[Tuple[str, int], np.ndarray] = {}

        #: wildcard receive site (loc, region) -> consumed matches
        any_matches: Dict[Tuple[int, str], List[Tuple[_EvRef, _EvRef]]] = {}
        #: shared variable -> [(write _EvRef)]
        shared_writes: Dict[str, List[_EvRef]] = {}

        def _join_group(key: Tuple[str, int], size: int, loc: int) -> None:
            members = groups.setdefault(key, [])
            members.append(loc)
            gm = group_max.get(key)
            if gm is None:
                group_max[key] = current[loc].copy()
            else:
                np.maximum(gm, current[loc], out=gm)
            if len(members) == size:
                merged = group_max.pop(key)
                for l2 in groups.pop(key):
                    np.maximum(current[l2], merged, out=current[l2])

        for loc, ev in trace.merged():
            v = current[loc]
            v[loc] += 1
            idx = ev_index[loc]
            ev_index[loc] += 1
            et = ev.etype
            region = trace.regions.name(ev.region)

            if et == MPI_SEND:
                ref = _EvRef(loc, idx, region, tuple(int(x) for x in v))
                send_info[ev.aux[0]] = (v.copy(), ref)
            elif et == MPI_RECV:
                info = send_info.pop(ev.aux, None)
                if info is not None:
                    send_v, send_ref = info
                    np.maximum(v, send_v, out=v)
                    if region in _ANY_REGIONS:
                        recv_ref = _EvRef(
                            loc, idx, region, tuple(int(x) for x in v)
                        )
                        any_matches.setdefault((loc, region), []).append(
                            (send_ref, recv_ref)
                        )
            elif et == FORK:
                fork_vec[ev.aux] = v.copy()
            elif et == TEAM_BEGIN:
                fv = fork_vec.get(ev.aux)
                if fv is not None:
                    np.maximum(v, fv, out=v)
            elif et == COLL_END:
                gid, size = ev.aux
                _join_group(("c", gid), size, loc)
            elif et == OBAR_LEAVE:
                gid, size = ev.aux
                _join_group(("b", gid), size, loc)
            elif et == RESTART:
                gid, size = ev.aux
                _join_group(("r", gid), size, loc)
            elif et == ENTER and region.startswith(_SHARED_WRITE_PREFIX):
                var = region[len(_SHARED_WRITE_PREFIX):]
                shared_writes.setdefault(var, []).append(
                    _EvRef(loc, idx, region, tuple(int(x) for x in v))
                )

        # RACE001 / RACE003: wildcard message races.  Within one receive
        # site, test successive matches' *send* events for concurrency:
        # concurrent sends mean the matching order was a timing accident.
        for (loc, region), matches in sorted(any_matches.items()):
            report.wildcard_sites[region] = (
                report.wildcard_sites.get(region, 0) + len(matches)
            )
            racy = False
            for i in range(len(matches)):
                for j in range(i + 1, len(matches)):
                    s_a, _r_a = matches[i]
                    s_b, r_b = matches[j]
                    if s_a.loc == s_b.loc:
                        continue  # same sender: program-ordered
                    if _concurrent(s_a.vec, s_b.vec):
                        racy = True
                        rank, _ = trace.locations[loc]
                        report.add(Diagnostic(
                            "RACE001",
                            f"wildcard receives at {region} matched "
                            "concurrent sends: the recorded order is one "
                            "noise realization",
                            rank=rank, location=loc,
                            witness=(
                                "send A: " + s_a.describe(trace),
                                "send B: " + s_b.describe(trace),
                                "neither vector clock dominates: "
                                "sends are concurrent",
                                "consumed by: " + r_b.describe(trace),
                            ),
                        ))
            if matches and not racy:
                rank, _ = trace.locations[loc]
                first_send, first_recv = matches[0]
                report.add(Diagnostic(
                    "RACE003",
                    f"wildcard receive site {region}: all "
                    f"{len(matches)} candidate send(s) are "
                    "happened-before ordered (benign in this trace)",
                    rank=rank, location=loc,
                    witness=(
                        "first match: " + first_send.describe(trace)
                        + " -> " + first_recv.describe(trace),
                    ),
                ))

        # RACE002: concurrent unsynchronised writes to one shared var.
        for var, writes in sorted(shared_writes.items()):
            reported = 0
            for i in range(len(writes)):
                for j in range(i + 1, len(writes)):
                    w_a, w_b = writes[i], writes[j]
                    if w_a.loc == w_b.loc:
                        continue
                    if _concurrent(w_a.vec, w_b.vec):
                        rank_a, thr_a = trace.locations[w_a.loc]
                        report.add(Diagnostic(
                            "RACE002",
                            f"shared variable {var!r} written "
                            "concurrently by two locations",
                            rank=rank_a, location=w_a.loc,
                            witness=(
                                "write A: " + w_a.describe(trace),
                                "write B: " + w_b.describe(trace),
                                "neither vector clock dominates: "
                                "writes are concurrent",
                            ),
                        ))
                        reported += 1
                        break  # one pair per left-hand write is enough
                if reported >= _MAX_PER_RULE:
                    break

        obs.counter(
            "verify.races.checked", has_races=report.has_races,
        ).inc()
        return report
