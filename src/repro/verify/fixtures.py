"""Seeded-buggy fixture programs for the linter and the race passes.

Each fixture is a small program with exactly one planted class of
MPI/OpenMP misuse, together with the rule ids the linter must raise for
it -- and, for the racy fixtures, the DET rules the determinism prover
and the RACE rules the trace race detector must raise.  They serve
three audiences: the test suite (every fixture must trigger its
expected rules and nothing of higher severity), the ``repro-lint
--selftest`` command (a deployment smoke test for the rule registry),
and documentation by example.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Generator

from repro.sim.actions import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Compute,
    Enter,
    Irecv,
    Isend,
    Leave,
    ParallelFor,
    Recv,
    Send,
    Waitall,
)
from repro.sim.kernels import KernelSpec
from repro.sim.program import Program, ProgramContext

__all__ = ["FIXTURES", "LintFixture", "fixture_names", "make_fixture"]

#: featherweight kernel so fixtures can also be simulated in tests
_K = KernelSpec.balanced("fixture_kernel", flops_per_unit=1e4,
                         bytes_per_unit=0.0, memory_scope="none")


class _TwoRankProgram(Program):
    """Program defined by a single two-rank generator function."""

    threads_per_rank = 1

    def __init__(self, name: str, body: Callable[[ProgramContext], Generator],
                 n_ranks: int = 2, n_threads: int = 1):
        self.name = name
        self.n_ranks = n_ranks
        self.threads_per_rank = n_threads
        self._body = body

    def make_rank(self, ctx: ProgramContext) -> Generator:
        return self._body(ctx)


def _clean(ctx: ProgramContext) -> Generator:
    """Correct halo-style exchange + collective; must lint clean."""
    other = 1 - ctx.rank
    yield Enter("main")
    yield Barrier()
    yield Enter("exchange")
    reqs = [(yield Irecv(source=other, tag=1))]
    reqs.append((yield Isend(dest=other, tag=1, nbytes=1024.0)))
    yield Waitall(reqs)
    yield Leave("exchange")
    yield Compute(_K, 5.0)
    yield Allreduce(nbytes=8.0)
    yield Leave("main")


def _unmatched_recv(ctx: ProgramContext) -> Generator:
    """Rank 1 receives a message rank 0 never sends."""
    yield Enter("main")
    yield Compute(_K, 5.0)
    if ctx.rank == 1:
        yield Enter("lonely_recv")
        yield Recv(source=0, tag=42)
        yield Leave("lonely_recv")
    yield Leave("main")


def _unmatched_send(ctx: ProgramContext) -> Generator:
    """Rank 0 sends a message nobody receives (eager, so it returns)."""
    yield Enter("main")
    if ctx.rank == 0:
        yield Send(dest=1, tag=3, nbytes=8.0)
    yield Compute(_K, 5.0)
    yield Barrier()
    yield Leave("main")


def _leaked_request(ctx: ProgramContext) -> Generator:
    """Waits only on the receive requests; the Isend requests leak."""
    other = 1 - ctx.rank
    yield Enter("main")
    yield Enter("exchange")
    recv_req = yield Irecv(source=other, tag=7)
    yield Isend(dest=other, tag=7, nbytes=256.0)  # request id dropped!
    yield Waitall([recv_req])
    yield Leave("exchange")
    yield Leave("main")


def _double_wait(ctx: ProgramContext) -> Generator:
    """Waits twice on the same request id."""
    other = 1 - ctx.rank
    yield Enter("main")
    recv_req = yield Irecv(source=other, tag=2)
    send_req = yield Isend(dest=other, tag=2, nbytes=64.0)
    yield Waitall([recv_req, send_req])
    yield Waitall([recv_req])  # already completed
    yield Leave("main")


def _collective_mismatch(ctx: ProgramContext) -> Generator:
    """Rank 0 calls Allreduce where rank 1 calls Barrier."""
    yield Enter("main")
    if ctx.rank == 0:
        yield Allreduce(nbytes=8.0)
    else:
        yield Barrier()
    yield Leave("main")


def _collective_count_mismatch(ctx: ProgramContext) -> Generator:
    """Rank 1 skips the second Barrier (classic branch-around bug)."""
    yield Enter("main")
    yield Barrier()
    if ctx.rank == 0:
        yield Barrier()
    yield Leave("main")


def _deadlock_cycle(ctx: ProgramContext) -> Generator:
    """Head-to-head blocking receives: the canonical wait-for cycle."""
    other = 1 - ctx.rank
    yield Enter("main")
    yield Recv(source=other, tag=1)
    yield Send(dest=other, tag=1, nbytes=8.0)
    yield Leave("main")


def _bare_leave(ctx: ProgramContext) -> Generator:
    """Closes a region with an unnamed Leave()."""
    yield Enter("main")
    yield Enter("phase")
    yield Compute(_K, 2.0)
    yield Leave()  # should name the region
    yield Leave("main")


def _region_mismatch(ctx: ProgramContext) -> Generator:
    """Leave names a region that is not the innermost Enter."""
    yield Enter("main")
    yield Enter("inner")
    yield Compute(_K, 2.0)
    yield Leave("main")  # closes "inner"
    yield Leave("main")


def _invalid_peer(ctx: ProgramContext) -> Generator:
    """Sends to a rank outside the job."""
    yield Enter("main")
    if ctx.rank == 0:
        yield Isend(dest=5, tag=1, nbytes=8.0)
    yield Barrier()
    yield Leave("main")


def _wildcard_recv(ctx: ProgramContext) -> Generator:
    """Single-sender wildcard receive: order-racy statically (DET001),
    but benign in any recorded trace (RACE003) -- only one candidate."""
    yield Enter("main")
    if ctx.rank == 0:
        yield Recv(source=ANY_SOURCE, tag=4)
    else:
        yield Compute(_K, 5.0)
        yield Send(dest=0, tag=4, nbytes=64.0)
    yield Leave("main")


def _send_race(ctx: ProgramContext) -> Generator:
    """Two ranks race for one wildcard channel; the receiver branches on
    the matched source, so even *logical* traces diverge across noise."""
    yield Enter("main")
    if ctx.rank == 0:
        src = yield Recv(source=ANY_SOURCE, tag=5)
        if src == 1:
            yield Enter("handle_rank1_first")
            yield Leave("handle_rank1_first")
        yield Recv(source=ANY_SOURCE, tag=5)
    else:
        yield Enter("worker")
        yield Compute(_K, 500.0)
        yield Send(dest=0, tag=5, nbytes=64.0)
        yield Leave("worker")
    yield Leave("main")


def _omp_shared_write(ctx: ProgramContext) -> Generator:
    """Missing reduction clause: every thread writes shared 'acc'."""
    yield Enter("main")
    yield ParallelFor("accumulate", _K, total_units=8.0,
                      shared_writes=("acc",))
    yield Leave("main")


#: planted bug: global mutable state shared by every instantiation, so
#: two successive dry-runs of the fixture always disagree
_nondet_counter = itertools.count()


def _nondet_generator(ctx: ProgramContext) -> Generator:
    """Branches on global mutable state: two dry-runs disagree."""
    yield Enter("main")
    yield Compute(_K, 2.0)
    if next(_nondet_counter) % 2:  # not derived from ctx.rank!
        yield Enter("lucky")
        yield Leave("lucky")
    yield Leave("main")


@dataclass(frozen=True)
class LintFixture:
    """One buggy (or clean) fixture and the rule ids it must trigger.

    ``expected_rules`` come from the linter; ``expected_det_rules`` from
    the static determinism prover (:mod:`repro.verify.determinism`);
    ``expected_race_rules`` from the trace race detector
    (:mod:`repro.verify.races`) when the fixture is actually simulated.
    """

    name: str
    make: Callable[[], Program]
    expected_rules: FrozenSet[str]
    description: str
    expected_det_rules: FrozenSet[str] = frozenset()
    expected_race_rules: FrozenSet[str] = frozenset()


def _fixture(name, body, expected, description, n_ranks=2, n_threads=1,
             det=(), race=()) -> LintFixture:
    return LintFixture(
        name=name,
        make=lambda: _TwoRankProgram(f"fixture-{name}", body,
                                     n_ranks=n_ranks, n_threads=n_threads),
        expected_rules=frozenset(expected),
        description=description,
        expected_det_rules=frozenset(det),
        expected_race_rules=frozenset(race),
    )


FIXTURES: Dict[str, LintFixture] = {
    f.name: f
    for f in [
        _fixture("clean", _clean, (),
                 "correct exchange + collective; lints clean"),
        _fixture("unmatched-recv", _unmatched_recv, ("MPI002", "MPI008"),
                 "Recv with no matching send (also hangs)"),
        _fixture("unmatched-send", _unmatched_send, ("MPI001",),
                 "eager Send nobody receives"),
        _fixture("leaked-request", _leaked_request, ("MPI003",),
                 "Isend request ids never completed by Wait/Waitall"),
        _fixture("double-wait", _double_wait, ("MPI004",),
                 "Waitall on an already-completed request id"),
        _fixture("collective-mismatch", _collective_mismatch, ("MPI005",),
                 "ranks disagree on the collective at one position"),
        _fixture("collective-count-mismatch", _collective_count_mismatch,
                 ("MPI006", "MPI008"),
                 "one rank skips a collective"),
        _fixture("deadlock-cycle", _deadlock_cycle, ("MPI008",),
                 "head-to-head blocking receives"),
        _fixture("bare-leave", _bare_leave, ("STR004",),
                 "Leave() without a region name"),
        _fixture("region-mismatch", _region_mismatch, ("STR002",),
                 "Leave closes the wrong region"),
        _fixture("invalid-peer", _invalid_peer,
                 ("MPI007", "MPI001", "MPI003"),
                 "Isend to a rank outside the job (and leaked)"),
        _fixture("wildcard-recv", _wildcard_recv, (),
                 "single-sender ANY_SOURCE receive (statically racy, "
                 "benign in any one trace)",
                 det=("DET001",), race=("RACE003",)),
        _fixture("send-race", _send_race, (),
                 "two senders race for one wildcard channel; receiver "
                 "branches on the matched source",
                 n_ranks=3, det=("DET001", "DET002"), race=("RACE001",)),
        _fixture("omp-shared-write", _omp_shared_write, (),
                 "ParallelFor writes shared state without a reduction",
                 n_ranks=1, n_threads=4,
                 det=("DET005",), race=("RACE002",)),
        _fixture("nondet-generator", _nondet_generator, (),
                 "generator branches on an unseeded global RNG",
                 n_ranks=1, det=("DET003",)),
    ]
}


def fixture_names():
    return list(FIXTURES)


def make_fixture(name: str) -> Program:
    try:
        return FIXTURES[name].make()
    except KeyError:
        raise KeyError(
            f"unknown fixture {name!r}; known: {fixture_names()}"
        ) from None
