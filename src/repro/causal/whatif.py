"""What-if replay: edit a trace's cost vectors and re-run the clocks.

The causal counterpart of profiling: *what would the run look like if
this kernel were twice as fast / this straggler were fixed / this
injected delay had not happened?*  Edits operate on the recorded
work-delta columns -- every event attributed to the edited region (or
rank) has its work fields multiplied by the edit factor, as if the
program had performed scaled work -- and the **vectorized columnar
clock replay** (:func:`repro.clocks.columnar.lamport_assign_columnar`,
reusing the trace's compiled replay plan) produces the edited logical
timeline.  Synchronisation structure is preserved: every event, message
match and collective group of the original trace survives the edit,
which is exactly the regime in which logical-clock replay is a faithful
predictor (see ``docs/causal.md`` for the validity conditions).

Validation (:func:`validate_whatif`) is deliberately expensive and
independent: it re-runs the **full engine simulation** from scratch
(deterministic programs regenerate the trace), applies the same edits
through a *scalar per-event* walk that mirrors
:func:`repro.clocks.streaming.stream_clock_replay`, and demands the
final clock of every location match the vectorized prediction **bit for
bit**.  Scaling factors that are powers of two keep even the float
multiplications exact, so ``factor=2.0``/``0.5``/``0.0`` edits carry the
bit-identity guarantee end to end.

Only the four deterministic static modes (``lt1``, ``ltloop``, ``ltbb``,
``ltstmt``) support what-if replay: ``tsc`` waits are physical and
cannot be re-derived from edited work, and ``lthwctr``'s counter
perturbation is magnitude-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clocks.columnar import columnar_increments, lamport_assign_columnar
from repro.measure.config import (
    LT1,
    LTBB,
    LTLOOP,
    LTSTMT,
    X_BB_PER_OMP_CALL,
    Y_STMT_PER_OMP_CALL,
    validate_mode,
)
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    FORK,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)

__all__ = [
    "REPLAYABLE_MODES",
    "WhatIfEdit",
    "WhatIfResult",
    "WhatIfValidation",
    "scale_region",
    "scale_rank",
    "drop_region",
    "run_whatif",
    "validate_whatif",
]

#: modes whose edited replay is exact (deterministic static increments)
REPLAYABLE_MODES = (LT1, LTLOOP, LTBB, LTSTMT)


@dataclass(frozen=True)
class WhatIfEdit:
    """One edit of the trace's cost vectors.

    ``kind`` is ``"scale_region"`` (scale all work attributed inside the
    named region subtree, optionally on one rank) or ``"scale_rank"``
    (scale every location of one rank -- ``factor < 1`` removes a
    straggler, ``factor > 1`` injects one).  ``factor = 0`` drops the
    work entirely (see :func:`drop_region`).  Multiple edits compose
    multiplicatively where they overlap.
    """

    kind: str
    region: Optional[str] = None
    rank: Optional[int] = None
    factor: float = 1.0

    def __post_init__(self):
        if self.kind not in ("scale_region", "scale_rank"):
            raise ValueError(f"unknown what-if edit kind {self.kind!r}")
        if self.kind == "scale_region" and not self.region:
            raise ValueError("scale_region edit needs a region name")
        if self.factor < 0.0:
            raise ValueError(f"negative what-if factor {self.factor}")

    def describe(self) -> str:
        if self.kind == "scale_rank":
            return f"rank {self.rank} x{self.factor:g}"
        where = f" on rank {self.rank}" if self.rank is not None else ""
        return f"{self.region} x{self.factor:g}{where}"

    def to_json(self) -> dict:
        return {"kind": self.kind, "region": self.region,
                "rank": self.rank, "factor": self.factor}


def scale_region(region: str, factor: float,
                 rank: Optional[int] = None) -> WhatIfEdit:
    """Scale all work attributed inside ``region`` by ``factor``."""
    return WhatIfEdit("scale_region", region=region, rank=rank,
                      factor=factor)


def scale_rank(rank: int, factor: float) -> WhatIfEdit:
    """Scale every location of ``rank`` (straggler removal/injection)."""
    return WhatIfEdit("scale_rank", rank=rank, factor=factor)


def drop_region(region: str, rank: Optional[int] = None) -> WhatIfEdit:
    """Remove the work of ``region`` entirely (an injected one-off delay).

    The region's *events* survive (structure-preserving edit); only
    their work goes to zero -- exactly the increments a run of the same
    program with the delay's units set to zero would record.
    """
    return WhatIfEdit("scale_region", region=region, rank=rank, factor=0.0)


@dataclass
class WhatIfResult:
    """Prediction of the edited run's logical timeline."""

    mode: str
    edits: Tuple[WhatIfEdit, ...]
    baseline_final: List[float]  # per-location final clock, unedited
    final: List[float]  # per-location final clock, edited
    baseline_makespan: float
    makespan: float
    n_events: int

    @property
    def speedup(self) -> float:
        return (self.baseline_makespan / self.makespan
                if self.makespan > 0 else float("inf"))

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "edits": [e.to_json() for e in self.edits],
            "baseline_makespan": self.baseline_makespan,
            "makespan": self.makespan,
            "speedup": self.speedup,
            "n_events": self.n_events,
            "baseline_final": self.baseline_final,
            "final": self.final,
        }


@dataclass
class WhatIfValidation:
    """Outcome of the engine re-simulation oracle."""

    ok: bool
    predicted_final: List[float]
    oracle_final: List[float]
    max_abs_diff: float = field(default=0.0)

    def to_json(self) -> dict:
        return {"ok": self.ok, "max_abs_diff": self.max_abs_diff}


def _trace_columns(trace_like):
    """Columnar view of a RawTrace or ShardedTrace."""
    columns = getattr(trace_like, "columns", None)
    if columns is not None:
        return columns()
    return trace_like.to_raw().columns()


# ---------------------------------------------------------------------------
# edit application: per-event scale factors
# ---------------------------------------------------------------------------


def _region_edit_plan(edits: Sequence[WhatIfEdit], regions):
    """Split edits into (region edits with interned target id, rank factors)."""
    region_edits = []
    rank_factors: Dict[int, float] = {}
    for e in edits:
        if e.kind == "scale_rank":
            rank_factors[e.rank] = rank_factors.get(e.rank, 1.0) * e.factor
        else:
            if e.region in regions:
                region_edits.append((regions.id_of(e.region), e))
            # a region absent from the trace matches nothing: no-op
    return region_edits, rank_factors


def _event_scales(cols, edits: Sequence[WhatIfEdit]) -> List[np.ndarray]:
    """Per-location per-event work scale factors for ``edits``.

    Attribution convention (matches the DAG builder): an event's work
    delta covers the interval since the previous event on the location,
    so it is attributed to the region stack *before* the event -- an
    ``ENTER``'s delta belongs to the parent, a ``LEAVE``'s to the region
    being left, and a ``BURST``'s to the burst's own region.  A region
    edit applies to the whole subtree below its target region.
    """
    region_edits, rank_factors = _region_edit_plan(edits, cols.regions)
    out: List[np.ndarray] = []
    for loc, lc in enumerate(cols.locs):
        n = len(lc)
        rank = cols.locations[loc][0]
        rf = rank_factors.get(rank, 1.0)
        factor_of: Dict[int, float] = {}
        for rid, e in region_edits:
            if e.rank is None or e.rank == rank:
                factor_of[rid] = factor_of.get(rid, 1.0) * e.factor
        s = np.full(n, rf, dtype=np.float64) if rf != 1.0 \
            else np.ones(n, dtype=np.float64)
        if factor_of:
            ets = lc.etype.tolist()
            rids = lc.region.tolist()
            depth = {rid: 0 for rid in factor_of}
            stack: List[int] = []
            active = 0  # number of open target regions (any edit)
            for i in range(n):
                et = ets[i]
                if active or (et == BURST and rids[i] in factor_of):
                    f = rf
                    for rid, d in depth.items():
                        if d:
                            f *= factor_of[rid]
                    if et == BURST and rids[i] in factor_of and not depth[rids[i]]:
                        f *= factor_of[rids[i]]
                    s[i] = f
                if et == ENTER:
                    rid = rids[i]
                    stack.append(rid)
                    if rid in depth:
                        depth[rid] += 1
                        active += 1
                elif et == LEAVE and stack:
                    rid = stack.pop()
                    if rid in depth:
                        depth[rid] -= 1
                        active -= 1
        out.append(s)
    return out


# ---------------------------------------------------------------------------
# the fast path: vectorized edited replay
# ---------------------------------------------------------------------------


def run_whatif(
    trace_like,
    edits: Sequence[WhatIfEdit],
    mode: Optional[str] = None,
    x_bb: float = X_BB_PER_OMP_CALL,
    y_stmt: float = Y_STMT_PER_OMP_CALL,
) -> WhatIfResult:
    """Predict the edited run's timeline via the columnar clock replay.

    Computes edited increment arrays (work-delta fields scaled per
    event) and re-executes the trace's compiled replay plan over them --
    the same vectorized machinery as :func:`repro.clocks.
    timestamp_columns`, so an empty edit list reproduces the unedited
    timestamps bit for bit.
    """
    mode = validate_mode(mode or trace_like.mode)
    if mode not in REPLAYABLE_MODES:
        raise ValueError(
            f"what-if replay needs a deterministic logical mode "
            f"{REPLAYABLE_MODES}, not {mode!r}"
        )
    edits = tuple(edits)
    cols = _trace_columns(trace_like)
    base_inc = columnar_increments(cols, mode, x_bb=x_bb, y_stmt=y_stmt)
    base_times = lamport_assign_columnar(cols, base_inc)
    scales = _event_scales(cols, edits)
    edited_inc = columnar_increments(cols, mode, x_bb=x_bb, y_stmt=y_stmt,
                                     scales=scales)
    edited_times = lamport_assign_columnar(cols, edited_inc)
    baseline_final = [float(t[-1]) if len(t) else 0.0 for t in base_times]
    final = [float(t[-1]) if len(t) else 0.0 for t in edited_times]
    return WhatIfResult(
        mode=mode,
        edits=edits,
        baseline_final=baseline_final,
        final=final,
        baseline_makespan=max(baseline_final, default=0.0),
        makespan=max(final, default=0.0),
        n_events=cols.n_events,
    )


# ---------------------------------------------------------------------------
# the oracle: engine re-simulation + independent scalar edited replay
# ---------------------------------------------------------------------------


def _scalar_inc(mode: str, x_bb: float, y_stmt: float):
    """Scaled scalar increment ``(delta, s) -> float``.

    Performs the exact float operations of the ``scales`` path of
    :func:`repro.clocks.columnar.columnar_increments`, element for
    element, so scalar and vectorized edited replays are bit-identical.
    """
    if mode == LT1:
        def inc(d, s):
            return 1.0 + 2.0 * (d.burst_calls * s)
    elif mode == LTLOOP:
        def inc(d, s):
            return 1.0 + 2.0 * (d.burst_calls * s) + d.omp_iters * s
    elif mode == LTBB:
        def inc(d, s):
            return (1.0 + 2.0 * (d.burst_calls * s) + d.bb * s
                    + x_bb * (d.omp_calls * s))
    else:  # LTSTMT
        def inc(d, s):
            return (1.0 + 2.0 * (d.burst_calls * s) + d.stmt * s
                    + y_stmt * (d.omp_calls * s))
    return inc


def _edited_stream_finals(
    trace, edits: Sequence[WhatIfEdit], mode: str,
    x_bb: float, y_stmt: float,
) -> List[float]:
    """Per-event edited clock replay (the independent oracle path).

    Mirrors :func:`repro.clocks.streaming.stream_clock_replay`'s state
    machine over ``trace.merged()`` with per-event scale factors tracked
    through a live region stack -- no columnar arrays, no replay plan.
    """
    region_edits, rank_factors = _region_edit_plan(edits, trace.regions)
    n = trace.n_locations
    inc = _scalar_inc(mode, x_bb, y_stmt)

    rank_f = [rank_factors.get(trace.locations[loc][0], 1.0)
              for loc in range(n)]
    applicable: List[Dict[int, float]] = []
    for loc in range(n):
        rank = trace.locations[loc][0]
        f_of: Dict[int, float] = {}
        for rid, e in region_edits:
            if e.rank is None or e.rank == rank:
                f_of[rid] = f_of.get(rid, 1.0) * e.factor
        applicable.append(f_of)
    depth: List[Dict[int, int]] = [{rid: 0 for rid in applicable[loc]}
                                   for loc in range(n)]
    stacks: List[List[int]] = [[] for _ in range(n)]

    counter = [0.0] * n
    send_clock: Dict[int, float] = {}
    fork_clock: Dict[int, float] = {}
    groups: Dict[Tuple[int, int], List[Tuple[int, float]]] = {}

    for loc, ev in trace.merged():
        et = ev.etype
        s = rank_f[loc]
        dep = depth[loc]
        for rid, d in dep.items():
            if d:
                s *= applicable[loc][rid]
        if et == BURST and ev.region in applicable[loc] \
                and not dep.get(ev.region):
            s *= applicable[loc][ev.region]
        c = counter[loc] + inc(ev.delta, s)

        if et == ENTER:
            stacks[loc].append(ev.region)
            if ev.region in dep:
                dep[ev.region] += 1
            counter[loc] = c
            continue
        if et == LEAVE:
            if stacks[loc]:
                rid = stacks[loc].pop()
                if rid in dep:
                    dep[rid] -= 1
            counter[loc] = c
            continue

        if et == MPI_SEND:
            counter[loc] = c
            send_clock[ev.aux[0]] = c
        elif et == MPI_RECV:
            partner = send_clock.pop(ev.aux)
            counter[loc] = max(c, partner + 1.0)
        elif et == COLL_END or et == OBAR_LEAVE or et == RESTART:
            gid, size = ev.aux
            key = (et, gid)
            members = groups.setdefault(key, [])
            members.append((loc, c))
            counter[loc] = c
            if len(members) == size:
                m = max(pre for (_l, pre) in members)
                for (l2, _pre) in members:
                    counter[l2] = m
                del groups[key]
        elif et == FORK:
            counter[loc] = c
            fork_clock[ev.aux] = c
        elif et == TEAM_BEGIN:
            counter[loc] = max(c, fork_clock[ev.aux] + 1.0)
        else:
            counter[loc] = c

    if groups:
        raise AssertionError(
            f"{len(groups)} incomplete synchronisation groups in oracle "
            "replay"
        )
    return counter


def validate_whatif(
    result: WhatIfResult,
    rerun: Callable[[], "object"],
    x_bb: float = X_BB_PER_OMP_CALL,
    y_stmt: float = Y_STMT_PER_OMP_CALL,
) -> WhatIfValidation:
    """Validate a what-if prediction against a full engine re-simulation.

    ``rerun()`` must re-execute the original simulation from scratch and
    return the fresh :class:`~repro.measure.trace.RawTrace`; for a
    deterministic program it is bit-identical to the trace the
    prediction was computed from.  The oracle applies ``result.edits``
    through an independent scalar per-event replay over the fresh trace
    and compares every location's final clock **bit for bit** with the
    vectorized prediction.
    """
    fresh = rerun()
    oracle = _edited_stream_finals(fresh, result.edits, result.mode,
                                   x_bb, y_stmt)
    predicted = result.final
    ok = len(oracle) == len(predicted) and all(
        o == p for o, p in zip(oracle, predicted)
    )
    diff = max((abs(o - p) for o, p in zip(oracle, predicted)),
               default=float("inf") if len(oracle) != len(predicted) else 0.0)
    return WhatIfValidation(ok=ok, predicted_final=list(predicted),
                            oracle_final=list(oracle), max_abs_diff=diff)
