"""Cross-rank / cross-run timeline alignment against reference markers.

Physical-timer traces of the same program under different noise seeds
drift apart: identical logical progress lands at different wall-clock
offsets, so overlaying two Perfetto timelines compares nothing.  The
:class:`ClockAligner` (after byteprofile-analysis's aligner) uses the
program's own global synchronisation points as **reference markers** --
collective completions and restart barriers, which every rank passes in
the same order -- and warps each location's timeline piecewise-linearly
so the k-th marker of the aligned trace lands exactly on the k-th marker
of the reference trace.  Between markers, time is interpolated; outside
the marker range, the edge offset is applied.  Logical-mode traces need
no alignment (they are bit-identical across seeds); the aligner maps
them through unchanged when their markers already coincide.

Markers are matched by *occurrence index per location*, which is exactly
the noise-invariant coordinate system the paper's logical timers induce:
the program structure pins which collective is "the k-th", regardless of
when it happened physically.

The aligned trace exports to Chrome trace-event JSON through
:func:`repro.obs.export.write_trace_chrome` (streamed, so ``.shards``
archives align with bounded memory); each aligned run gets its own pid
namespace so Perfetto shows the runs side by side on one clock.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Dict, List, Optional

from repro.sim.events import COLL_END, RESTART

__all__ = ["MARKER_KINDS", "collect_markers", "ClockAligner", "AlignedExport"]

#: event kinds usable as global reference markers: every participant
#: records them at the common completion time, in program order
MARKER_KINDS = (COLL_END, RESTART)


def collect_markers(trace_like) -> Dict[int, List[float]]:
    """Per-location marker timestamps, in occurrence order (streamed)."""
    markers: Dict[int, List[float]] = {}
    for loc, ev in trace_like.merged():
        if ev.etype in MARKER_KINDS:
            markers.setdefault(loc, []).append(ev.t)
    return markers


def _piecewise_map(xs: List[float], fs: List[float]) -> Optional[Callable[[float], float]]:
    """Monotone piecewise-linear map sending ``xs[k] -> fs[k]``."""
    k = min(len(xs), len(fs))
    if k == 0:
        return None
    xs, fs = xs[:k], fs[:k]
    if k == 1:
        off = fs[0] - xs[0]
        return lambda t: t + off
    lo_off = fs[0] - xs[0]
    hi_off = fs[-1] - xs[-1]

    def mapped(t: float) -> float:
        if t <= xs[0]:
            return t + lo_off
        if t >= xs[-1]:
            return t + hi_off
        j = bisect_right(xs, t)
        x0, x1 = xs[j - 1], xs[j]
        f0, f1 = fs[j - 1], fs[j]
        if x1 == x0:
            return f1
        return f0 + (t - x0) * (f1 - f0) / (x1 - x0)

    return mapped


class AlignedExport:
    """A trace plus the per-location time warp aligning it to a reference.

    ``map_t(loc, t)`` is the warped timestamp; pass the pair to
    :func:`repro.obs.export.write_trace_chrome`.
    """

    def __init__(self, trace_like, maps: Dict[int, Callable[[float], float]],
                 label: str = ""):
        self.trace = trace_like
        self._maps = maps
        self.label = label

    def map_t(self, loc: int, t: float) -> float:
        m = self._maps.get(loc)
        return m(t) if m is not None else t


class ClockAligner:
    """Aligns other runs' timelines onto a reference run's markers."""

    def __init__(self, reference):
        self.ref_markers = collect_markers(reference)

    def n_markers(self) -> int:
        return max((len(v) for v in self.ref_markers.values()), default=0)

    def align(self, other, label: str = "") -> AlignedExport:
        """Build the marker-matched time warp for ``other``.

        Locations absent from the reference, or without any common
        marker, pass through unchanged.
        """
        maps: Dict[int, Callable[[float], float]] = {}
        for loc, xs in collect_markers(other).items():
            fs = self.ref_markers.get(loc)
            if not fs:
                continue
            m = _piecewise_map(xs, fs)
            if m is not None:
                maps[loc] = m
        return AlignedExport(other, maps, label=label)

    def residual_skew(self, aligned: AlignedExport) -> float:
        """Worst marker misalignment *after* warping (0 up to float error).

        A sanity measure for reports: markers shared with the reference
        land exactly; the residual only reflects markers beyond the
        common prefix."""
        worst = 0.0
        for loc, xs in collect_markers(aligned.trace).items():
            fs = self.ref_markers.get(loc)
            if not fs:
                continue
            for k in range(min(len(xs), len(fs))):
                worst = max(worst, abs(aligned.map_t(loc, xs[k]) - fs[k]))
        return worst

    def raw_skew(self, other) -> float:
        """Worst marker offset *before* alignment (the drift being fixed)."""
        worst = 0.0
        for loc, xs in collect_markers(other).items():
            fs = self.ref_markers.get(loc)
            if not fs:
                continue
            for k in range(min(len(xs), len(fs))):
                worst = max(worst, abs(xs[k] - fs[k]))
        return worst
