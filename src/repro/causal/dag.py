"""Happened-before DAG with per-edge cost attribution and blame analysis.

:func:`build_dag` streams any trace-like object's ``merged()`` iterator
(a :class:`~repro.measure.trace.RawTrace` or an out-of-core
:class:`~repro.measure.shards.ShardedTrace`) through the exact clock
state machine of :func:`repro.clocks.streaming.stream_clock_replay` and
materializes **only the synchronisation events** as DAG nodes -- sends,
receives, collective/barrier/restart completions, forks and team begins,
typically a third of a trace.  Everything between two synchronisation
events on a location collapses into the *program edge* connecting them,
whose cost is the clock advance over the stretch, broken down by the
call path in which the work happened.  Memory is therefore bounded by
the synchronisation structure (plus one resident shard when streaming),
not by the event count.

Per-edge costs follow the active clock mode: physical seconds under
``tsc``, logical units under the ``lt*`` modes (the per-location clock
values are bit-identical to :func:`repro.clocks.timestamp_trace`, locked
by the tests).  Under the Lamport semantics a node's clock value *is*
its longest-path distance from the source, so critical-path extraction
is a backward walk along whichever predecessor determined each clock
value -- no second fixpoint pass.

Wait-state **root-cause attribution** (the blame profile): every wait
interval -- a late-sender max-exchange jump at a receive, the group-max
jump of an early arriver at a collective, and their physical-timer
analogues via :mod:`repro.analysis.patterns` -- is traced *backwards*
through the DAG along the chain of edges that determined the delaying
partner's arrival, consuming compute-edge work (latest first) and
transfer edges until the wait is fully explained.  The blame lands on
the call paths that performed the originating work, aggregated into a
:class:`~repro.cube.profile.CubeProfile` so
:func:`repro.cube.diff.profile_diff` can compare blame across runs,
modes or code versions.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Tuple

from repro.analysis.patterns import late_sender_wait, nxn_waits
from repro.cube.profile import CubeProfile
from repro.cube.systemtree import SystemTree
from repro.machine.noise import CounterNoise, NoiseConfig
from repro.measure.config import LTHWCTR, TSC, validate_mode
from repro.sim.events import (
    BURST,
    COLL_END,
    ENTER,
    FORK,
    LEAVE,
    MPI_RECV,
    MPI_SEND,
    OBAR_LEAVE,
    RESTART,
    TEAM_BEGIN,
)
from repro.util.rng import RngStreams

__all__ = [
    "BLAME_COMPUTE",
    "BLAME_TRANSFER",
    "BLAME_RESIDUAL",
    "BLAME_LEAVES",
    "CAUSAL_WAIT",
    "CausalDag",
    "build_dag",
    "blame_profile",
    "critical_path_table",
]

#: blame metrics: work on the delayer's critical chain that explains a
#: wait (compute edges / transfer edges), plus the residual that reaches
#: the program source unexplained.  Their sum over the profile equals the
#: total attributed wait, so they form the profile's *time* leaves.
BLAME_COMPUTE = "blame_compute"
BLAME_TRANSFER = "blame_transfer"
BLAME_RESIDUAL = "blame_residual"
BLAME_LEAVES: Tuple[str, ...] = (BLAME_COMPUTE, BLAME_TRANSFER, BLAME_RESIDUAL)

#: the wait severities themselves, recorded at the *waiting* call path
#: (outside the blame time tree, like Scalasca's delay metrics)
CAUSAL_WAIT = "causal_wait"

#: synthetic event kind of the per-location terminal node
TERMINAL = -1

#: hard bound on DAG nodes visited per blame walk (a walk consumes
#: ``wait`` units of edge cost, so it terminates on its own; the cap
#: guards degenerate traces with near-zero edge costs)
_MAX_BLAME_HOPS = 100_000


class CausalDag:
    """The happened-before DAG of one trace under one clock mode.

    Nodes are stored as parallel lists (structure-of-arrays, like the
    trace itself); node ``0..n_nodes-1`` in creation order, which is the
    global merged order of the underlying synchronisation events plus
    one :data:`TERMINAL` node per location at the end.

    Per node: ``loc``/``idx`` locate the event, ``etype``/``region``
    describe it, ``t`` is its physical timestamp, ``clock`` its (final)
    clock value under :attr:`mode`, ``work`` the cost of the program
    edge from the previous node on the location, ``wait`` the wait-state
    severity ending at this node, ``pred_prog``/``pred_remote`` the
    program-order and remote predecessors (``-1`` when absent), and
    ``remote_critical`` whether the remote edge determined the clock
    value.  ``seg[k]`` breaks node ``k``'s program-edge work down by call
    path (``(callpath id, work)`` in first-touch order); ``callpaths``
    interns the tuples.
    """

    def __init__(self, mode: str, region_names: List[str],
                 locations: List[Tuple[int, int]]):
        self.mode = mode
        self.region_names = region_names
        self.locations = locations
        self.loc: List[int] = []
        self.idx: List[int] = []
        self.etype: List[int] = []
        self.region: List[int] = []
        self.t: List[float] = []
        self.clock: List[float] = []
        self.work: List[float] = []
        self.wait: List[float] = []
        self.pred_prog: List[int] = []
        self.pred_remote: List[int] = []
        self.remote_critical: List[bool] = []
        self.cpid: List[int] = []
        self.seg: List[List[Tuple[int, float]]] = []
        self.callpaths: List[Tuple[str, ...]] = []
        self.final: List[float] = []
        self.n_events = 0

    @property
    def n_nodes(self) -> int:
        return len(self.loc)

    @property
    def makespan(self) -> float:
        return max(self.final, default=0.0)

    def callpath(self, nid: int) -> Tuple[str, ...]:
        path = self.callpaths[self.cpid[nid]]
        return path if path else ("<program>",)

    def node_name(self, nid: int) -> str:
        if self.etype[nid] == TERMINAL:
            return "<end>"
        rid = self.region[nid]
        return self.region_names[rid] if rid >= 0 else "<none>"

    # -- critical path ---------------------------------------------------
    def sink(self) -> int:
        """Terminal node of the location with the maximal final clock."""
        best, best_c = -1, float("-inf")
        for nid in range(self.n_nodes):
            if self.etype[nid] != TERMINAL:
                continue
            c = self.clock[nid]
            if c > best_c:
                best, best_c = nid, c
        return best

    def critical_path(self) -> List[int]:
        """Node ids from the program source to the makespan sink.

        Backward walk along whichever predecessor determined each node's
        clock value: the remote edge where a max-exchange won (strictly),
        the program edge otherwise.  Under the Lamport semantics the
        resulting chain's edge costs sum to the sink's clock value.
        """
        path: List[int] = []
        cur = self.sink()
        while cur >= 0:
            path.append(cur)
            cur = (self.pred_remote[cur] if self.remote_critical[cur]
                   else self.pred_prog[cur])
        path.reverse()
        return path

    def critical_path_fingerprint(self) -> str:
        """SHA-256 over the critical path's structure and edge costs.

        Hashes, per node on the path: location, event kind, region name
        and the raw IEEE-754 bits of the program-edge work and the wait
        severity.  Two runs share a fingerprint iff their critical paths
        are bit-identical -- the paper's noise-resilience claim extended
        to causal structure.
        """
        h = hashlib.sha256()
        for nid in self.critical_path():
            h.update(struct.pack("<qq", self.loc[nid], self.etype[nid]))
            h.update(self.node_name(nid).encode("utf-8"))
            h.update(struct.pack("<dd", self.work[nid], self.wait[nid]))
        return h.hexdigest()

    def total_wait(self) -> float:
        return sum(self.wait)


def build_dag(
    trace_like,
    mode: Optional[str] = None,
    counter_seed: int = 0,
    counter_noise_config: Optional[NoiseConfig] = None,
) -> CausalDag:
    """Construct the happened-before DAG of ``trace_like`` under ``mode``.

    ``trace_like`` is anything exposing ``mode``, ``regions``,
    ``locations``, ``n_locations`` and ``merged()`` -- a ``RawTrace`` or
    a ``ShardedTrace`` (streamed shard-at-a-time).  The clock rules
    mirror :func:`repro.clocks.streaming.stream_clock_replay` exactly,
    so per-location final clocks are bit-identical to the full replay.
    """
    mode = validate_mode(mode or trace_like.mode)
    n = trace_like.n_locations
    regions = trace_like.regions
    dag = CausalDag(mode, list(regions.names), list(trace_like.locations))
    is_tsc = mode == TSC

    if mode == LTHWCTR:
        from repro.clocks.hwcounter import HwCounterIncrement

        cfg = (counter_noise_config if counter_noise_config is not None
               else NoiseConfig())
        model = HwCounterIncrement(
            trace_like, CounterNoise(RngStreams(counter_seed), cfg))
        inc_of = [model.for_location(loc) for loc in range(n)]
    elif not is_tsc:
        from repro.clocks.increments import make_increment

        inc_of = [make_increment(mode)] * n

    clock = [0.0] * n
    ev_idx = [0] * n
    last_node = [-1] * n
    last_node_clock = [0.0] * n
    stacks: List[List[str]] = [[] for _ in range(n)]
    cp_index: Dict[Tuple[str, ...], int] = {}
    seg_acc: List[Dict[int, float]] = [{} for _ in range(n)]

    def intern(path: Tuple[str, ...]) -> int:
        cid = cp_index.get(path)
        if cid is None:
            cid = cp_index[path] = len(dag.callpaths)
            dag.callpaths.append(path)
        return cid

    root = intern(())
    cur_cpid = [root] * n

    def new_node(loc: int, i: int, et: int, rid: int, t: float,
                 c: float, wait: float, pred_remote: int,
                 remote_critical: bool) -> int:
        nid = dag.n_nodes
        dag.loc.append(loc)
        dag.idx.append(i)
        dag.etype.append(et)
        dag.region.append(rid)
        dag.t.append(t)
        dag.clock.append(c)
        dag.work.append(c - last_node_clock[loc])
        dag.wait.append(wait)
        dag.pred_prog.append(last_node[loc])
        dag.pred_remote.append(pred_remote)
        dag.remote_critical.append(remote_critical)
        dag.cpid.append(cur_cpid[loc])
        acc = seg_acc[loc]
        dag.seg.append(list(acc.items()))
        acc.clear()
        last_node[loc] = nid
        last_node_clock[loc] = c
        return nid

    # match id -> (send node, send clock); omp id -> (fork node, fork clock)
    send_info: Dict[int, Tuple[int, float]] = {}
    fork_info: Dict[int, Tuple[int, float]] = {}
    # (etype, group id) -> list of (loc, provisional clock, node, enter clock)
    groups: Dict[Tuple[int, int], List[Tuple[int, float, int, float]]] = {}

    for loc, ev in trace_like.merged():
        i = ev_idx[loc]
        ev_idx[loc] = i + 1
        prev = clock[loc]
        if is_tsc:
            c = ev.t
            step = c - prev
        else:
            step = inc_of[loc](ev)
            c = prev + step
        et = ev.etype

        # attribute the step to the call path active *before* the event
        # (a BURST's work belongs to the burst's own child call path)
        if et == BURST:
            cp = intern(dag.callpaths[cur_cpid[loc]]
                        + (regions.name(ev.region),))
        else:
            cp = cur_cpid[loc]
        acc = seg_acc[loc]
        acc[cp] = acc.get(cp, 0.0) + step

        if et == ENTER:
            stk = stacks[loc]
            stk.append(regions.name(ev.region))
            cur_cpid[loc] = intern(tuple(stk))
            clock[loc] = c
            continue
        if et == LEAVE:
            stk = stacks[loc]
            if stk:
                stk.pop()
            cur_cpid[loc] = intern(tuple(stk))
            clock[loc] = c
            continue

        if et == MPI_SEND:
            clock[loc] = c
            nid = new_node(loc, i, et, ev.region, ev.t, c, 0.0, -1, False)
            send_info[ev.aux[0]] = (nid, c)
        elif et == MPI_RECV:
            try:
                snid, sclk = send_info.pop(ev.aux)
            except KeyError:
                raise AssertionError(
                    f"receive of message {ev.aux} before/without its send -- "
                    "merged order is not topological"
                ) from None
            if is_tsc:
                new = c
                wait = late_sender_wait(sclk, prev, c)
                rc = wait > 0.0
            else:
                p1 = sclk + 1.0
                rc = p1 > c
                wait = p1 - c if rc else 0.0
                new = p1 if rc else c
            clock[loc] = new
            nid = new_node(loc, i, et, ev.region, ev.t, c, wait, snid, rc)
            if rc:
                dag.clock[nid] = new
                last_node_clock[loc] = new
        elif et == COLL_END or et == OBAR_LEAVE or et == RESTART:
            gid, size = ev.aux
            clock[loc] = c
            nid = new_node(loc, i, et, ev.region, ev.t, c, 0.0, -1, False)
            key = (et, gid)
            members = groups.setdefault(key, [])
            members.append((loc, c, nid, prev))
            if len(members) == size:
                if is_tsc:
                    completion = ev.t
                    waits = nxn_waits([en for (_l, _c, _n, en) in members],
                                      completion)
                    win = max(range(len(members)),
                              key=lambda k: members[k][3])
                else:
                    m = max(cm for (_l, cm, _n, _e) in members)
                    waits = [m - cm for (_l, cm, _n, _e) in members]
                    win = next(k for k, mem in enumerate(members)
                               if mem[1] == m)
                win_nid = members[win][2]
                for k, (l2, _c2, nid2, _en) in enumerate(members):
                    dag.wait[nid2] = waits[k]
                    if k != win and waits[k] > 0.0:
                        dag.pred_remote[nid2] = win_nid
                        dag.remote_critical[nid2] = True
                    if not is_tsc:
                        clock[l2] = m
                        dag.clock[nid2] = m
                        last_node_clock[l2] = m
                del groups[key]
        elif et == FORK:
            clock[loc] = c
            nid = new_node(loc, i, et, ev.region, ev.t, c, 0.0, -1, False)
            fork_info[ev.aux] = (nid, c)
        elif et == TEAM_BEGIN:
            fnid, fclk = fork_info[ev.aux]
            if is_tsc:
                new = c
                rc = last_node[loc] < 0 or fclk > prev
                wait = 0.0
            else:
                p1 = fclk + 1.0
                rc = p1 > c or last_node[loc] < 0
                wait = p1 - c if p1 > c else 0.0
                new = p1 if p1 > c else c
            clock[loc] = new
            nid = new_node(loc, i, et, ev.region, ev.t, c, wait, fnid, rc)
            if new != c:
                dag.clock[nid] = new
                last_node_clock[loc] = new
        else:
            clock[loc] = c

    if groups:
        raise AssertionError(
            f"{len(groups)} incomplete synchronisation groups at end of "
            f"trace (first keys: {list(groups)[:3]})"
        )

    for loc in range(n):
        new_node(loc, ev_idx[loc], TERMINAL, -1, 0.0, clock[loc],
                 0.0, -1, False)
    dag.final = list(clock)
    dag.n_events = sum(ev_idx)
    return dag


def blame_profile(dag: CausalDag, pinning=None) -> CubeProfile:
    """Aggregate the DAG's wait root causes into a blame profile.

    For every node with a positive wait, walks the chain of edges that
    determined the delaying partner's arrival: transfer edges contribute
    to :data:`BLAME_TRANSFER`, program-edge work (consumed latest-first
    from the segment's call-path breakdown) to :data:`BLAME_COMPUTE`,
    and whatever reaches the program source unexplained to
    :data:`BLAME_RESIDUAL`.  The wait severities themselves are recorded
    under :data:`CAUSAL_WAIT` at the *waiting* call path, so the profile
    shows both sides of every wait.  The result plugs directly into
    :func:`repro.cube.diff.profile_diff` and
    :func:`repro.cube.io.write_profile`.
    """
    nodes_of_ranks = None
    if pinning is not None:
        nodes_of_ranks = {
            r: pinning.node_of(r) for (r, _t) in dag.locations
        }
    system = SystemTree(dag.locations, nodes_of_ranks)
    prof = CubeProfile(system, BLAME_LEAVES, mode=dag.mode,
                       meta={"kind": "causal_blame"})
    for nid in range(dag.n_nodes):
        w = dag.wait[nid]
        if w <= 0.0:
            continue
        prof.add(CAUSAL_WAIT, dag.callpath(nid), dag.loc[nid], w)
        _distribute_blame(dag, nid, w, prof)
    return prof


def _distribute_blame(dag: CausalDag, nid: int, wait: float,
                      prof: CubeProfile) -> None:
    """Charge ``wait`` units to the edges that caused node ``nid``'s wait."""
    remaining = wait
    cur = dag.pred_remote[nid]
    if cur < 0:
        prof.add(BLAME_RESIDUAL, ("<source>",), dag.loc[nid], remaining)
        return
    # the transfer edge that ended the wait (its cost delayed the waiter
    # beyond the partner's publication)
    edge = dag.clock[nid] - dag.clock[cur]
    if edge > 0.0:
        take = min(edge, remaining)
        prof.add(BLAME_TRANSFER, dag.callpath(cur), dag.loc[cur], take)
        remaining -= take
    hops = 0
    last_loc = dag.loc[cur]
    while cur >= 0 and remaining > 0.0 and hops < _MAX_BLAME_HOPS:
        hops += 1
        last_loc = dag.loc[cur]
        if dag.remote_critical[cur]:
            prev = dag.pred_remote[cur]
            edge = dag.clock[cur] - (dag.clock[prev] if prev >= 0 else 0.0)
            if edge > 0.0:
                take = min(edge, remaining)
                prof.add(BLAME_TRANSFER, dag.callpath(cur),
                         dag.loc[cur], take)
                remaining -= take
            cur = prev
        else:
            loc = dag.loc[cur]
            for cpid, w in reversed(dag.seg[cur]):
                if w <= 0.0:
                    continue
                take = min(w, remaining)
                path = dag.callpaths[cpid] or ("<program>",)
                prof.add(BLAME_COMPUTE, path, loc, take)
                remaining -= take
                if remaining <= 0.0:
                    break
            cur = dag.pred_prog[cur]
    if remaining > 0.0:
        prof.add(BLAME_RESIDUAL, ("<source>",), last_loc, remaining)


def critical_path_table(dag: CausalDag, top: int = 10) -> List[Tuple[str, int, float, float]]:
    """Critical path aggregated by call path: (path, hops, work, wait).

    Rows are sorted by descending work share; ``top`` bounds the list.
    """
    agg: Dict[Tuple[str, ...], List[float]] = {}
    order: List[Tuple[str, ...]] = []
    for nid in dag.critical_path():
        path = dag.callpath(nid)
        row = agg.get(path)
        if row is None:
            row = agg[path] = [0, 0.0, 0.0]
            order.append(path)
        row[0] += 1
        row[1] += dag.work[nid]
        row[2] += dag.wait[nid]
    rows = [(" / ".join(p), int(agg[p][0]), agg[p][1], agg[p][2])
            for p in order]
    rows.sort(key=lambda r: -r[2])
    return rows[:top]
