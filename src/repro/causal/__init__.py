"""repro.causal: causal observability over recorded traces.

The analysis layer (:mod:`repro.analysis`) *reports* wait-states; this
package explains them.  It builds the happened-before DAG of a trace with
per-edge cost attribution under any clock mode (:mod:`repro.causal.dag`),
extracts the critical path and traces every wait interval back through
the DAG to the originating compute/transfer edges (the blame profile,
which plugs into :func:`repro.cube.diff.profile_diff`), aligns per-rank
timelines of different runs against reference markers so physical-timer
traces become comparable (:mod:`repro.causal.align`), and answers
what-if questions by re-running the vectorized clock replay over edited
cost vectors (:mod:`repro.causal.whatif`) -- validated bit-identically
against a full engine re-simulation for deterministic programs.

See ``docs/causal.md`` for the DAG construction rules, the blame
semantics and the what-if validity conditions.
"""

from repro.causal.align import AlignedExport, ClockAligner, collect_markers
from repro.causal.dag import (
    BLAME_COMPUTE,
    BLAME_LEAVES,
    BLAME_RESIDUAL,
    BLAME_TRANSFER,
    CAUSAL_WAIT,
    CausalDag,
    blame_profile,
    build_dag,
    critical_path_table,
)
from repro.causal.whatif import (
    WhatIfEdit,
    WhatIfResult,
    WhatIfValidation,
    drop_region,
    run_whatif,
    scale_rank,
    scale_region,
    validate_whatif,
)

__all__ = [
    "CausalDag",
    "build_dag",
    "blame_profile",
    "critical_path_table",
    "BLAME_COMPUTE",
    "BLAME_TRANSFER",
    "BLAME_RESIDUAL",
    "BLAME_LEAVES",
    "CAUSAL_WAIT",
    "ClockAligner",
    "AlignedExport",
    "collect_markers",
    "WhatIfEdit",
    "WhatIfResult",
    "WhatIfValidation",
    "run_whatif",
    "validate_whatif",
    "scale_region",
    "scale_rank",
    "drop_region",
]
