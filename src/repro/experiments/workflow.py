"""The measurement workflow (paper Sec. IV-B) plus result caching.

"To obtain reference timings, the application is run five times without
instrumentation.  Then, we perform an instrumented measurement and
Scalasca trace analysis with the physical clock ... and each of the
logical clocks ...  Additionally, tsc and lt_hwctr measurements are
influenced by noise, therefore we repeat these measurements five times.
We base our evaluation ... on the arithmetic mean of the five call-path
profiles."
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.cube import CubeProfile, read_profile, write_profile
from repro.experiments.configs import EXPERIMENTS, make_app, make_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import MODES, Measurement
from repro.measure.config import NOISY_MODES
from repro.sim import CostModel, Engine
from repro.util.rng import stream_seed

__all__ = [
    "ExperimentResult",
    "preflight_lint",
    "run_experiment",
    "clear_cache",
    "CACHE_VERSION",
]

#: bump to invalidate cached results after calibration/code changes
CACHE_VERSION = 3

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".results_cache"


@dataclass
class ExperimentResult:
    """Everything the tables/figures need for one configuration."""

    name: str
    seed: int
    ref_runtimes: List[float]
    ref_phases: Dict[str, List[float]]
    #: mode -> list of total runtimes (one per repetition)
    runtimes: Dict[str, List[float]]
    #: mode -> {phase: [durations per repetition]}
    phases: Dict[str, Dict[str, List[float]]]
    #: mode -> per-repetition normalized profiles
    profiles: Dict[str, List[CubeProfile]]
    #: mode -> arithmetic mean of the normalized repetition profiles
    mean_profiles: Dict[str, CubeProfile] = field(default_factory=dict)

    def overhead(self, mode: str, phase: Optional[str] = None) -> float:
        """Mean overhead in percent vs. the mean reference (Table I/II)."""
        if phase is None:
            ref = float(np.mean(self.ref_runtimes))
            val = float(np.mean(self.runtimes[mode]))
        else:
            ref = float(np.mean(self.ref_phases[phase]))
            val = float(np.mean(self.phases[mode][phase]))
        return 100.0 * (val - ref) / ref

    def mean_profile(self, mode: str) -> CubeProfile:
        return self.mean_profiles[mode]


def _reps_for(mode: str, spec) -> int:
    return spec.reps_noisy if mode in NOISY_MODES else 1


def _run_once(name: str, mode: Optional[str], seed: int, rep: int):
    """One (possibly instrumented) run; returns (SimResult, Measurement|None)."""
    app = make_app(name)
    cluster = make_cluster(name)
    noise = NoiseModel(NoiseConfig(), seed=stream_seed(seed, name, mode or "ref", rep))
    cost = CostModel(cluster, noise=noise)
    measurement = Measurement(mode) if mode is not None else None
    engine = Engine(app, cluster, cost, measurement=measurement)
    return engine.run()


def preflight_lint(name: str) -> None:
    """Statically lint the experiment's mini-app before burning CPU on it.

    Raises :class:`repro.verify.VerificationError` when the linter finds
    an error-severity diagnostic (warnings are tolerated); a buggy
    program would otherwise deadlock or corrupt the archive hours into
    the measurement campaign.
    """
    from repro.verify import VerificationError, lint_program

    report = lint_program(make_app(name))
    if not report.ok:
        raise VerificationError(
            f"pre-flight lint of {name!r} found "
            f"{len(report.errors)} error(s)",
            report.diagnostics,
        )


def run_experiment(
    name: str,
    seed: int = 0,
    use_cache: bool = True,
    verbose: bool = False,
    preflight: bool = True,
) -> ExperimentResult:
    """Run (or load from cache) the complete workflow for ``name``."""
    spec = EXPERIMENTS[name]
    cache = _cache_path(name, seed)
    if use_cache and cache.exists():
        try:
            return _load(cache, name, seed)
        except Exception:
            shutil.rmtree(cache, ignore_errors=True)

    if preflight:
        preflight_lint(name)

    ref_runtimes: List[float] = []
    ref_phases: Dict[str, List[float]] = {p: [] for p in spec.phases}
    for rep in range(spec.reps_ref):
        res = _run_once(name, None, seed, rep)
        ref_runtimes.append(res.runtime)
        for p in spec.phases:
            ref_phases[p].append(res.phase(p))
        if verbose:
            print(f"[{name}] ref rep {rep}: {res.runtime:.3f}s")

    runtimes: Dict[str, List[float]] = {}
    phases: Dict[str, Dict[str, List[float]]] = {}
    profiles: Dict[str, List[CubeProfile]] = {}
    for mode in MODES:
        runtimes[mode] = []
        phases[mode] = {p: [] for p in spec.phases}
        profiles[mode] = []
        for rep in range(_reps_for(mode, spec)):
            res = _run_once(name, mode, seed, rep)
            runtimes[mode].append(res.runtime)
            for p in spec.phases:
                phases[mode][p].append(res.phase(p))
            tt = timestamp_trace(
                res.trace, mode, counter_seed=stream_seed(seed, name, "ctr", rep)
            )
            profiles[mode].append(analyze_trace(tt).normalized())
            if verbose:
                print(f"[{name}] {mode} rep {rep}: {res.runtime:.3f}s, "
                      f"{res.trace.n_events} events")

    result = ExperimentResult(
        name=name,
        seed=seed,
        ref_runtimes=ref_runtimes,
        ref_phases=ref_phases,
        runtimes=runtimes,
        phases=phases,
        profiles=profiles,
    )
    for mode in MODES:
        result.mean_profiles[mode] = CubeProfile.mean(profiles[mode])
    if use_cache:
        _store(result, cache)
    return result


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def _cache_path(name: str, seed: int) -> Path:
    return _CACHE_DIR / f"v{CACHE_VERSION}-{name}-s{seed}"


def clear_cache() -> None:
    """Delete all cached experiment results."""
    shutil.rmtree(_CACHE_DIR, ignore_errors=True)


def _store(result: ExperimentResult, path: Path) -> None:
    tmp = path.with_suffix(".tmp")
    shutil.rmtree(tmp, ignore_errors=True)
    tmp.mkdir(parents=True)
    doc = {
        "name": result.name,
        "seed": result.seed,
        "ref_runtimes": result.ref_runtimes,
        "ref_phases": result.ref_phases,
        "runtimes": result.runtimes,
        "phases": result.phases,
        "reps": {m: len(result.profiles[m]) for m in result.profiles},
    }
    (tmp / "summary.json").write_text(json.dumps(doc))
    for mode, profs in result.profiles.items():
        for i, prof in enumerate(profs):
            write_profile(prof, tmp / f"profile-{mode}-{i}.json.gz")
        write_profile(result.mean_profiles[mode], tmp / f"profile-{mode}-mean.json.gz")
    shutil.rmtree(path, ignore_errors=True)
    tmp.rename(path)


def _load(path: Path, name: str, seed: int) -> ExperimentResult:
    doc = json.loads((path / "summary.json").read_text())
    if doc["name"] != name or doc["seed"] != seed:
        raise ValueError("cache mismatch")
    profiles = {}
    mean_profiles = {}
    for mode, n in doc["reps"].items():
        profiles[mode] = [read_profile(path / f"profile-{mode}-{i}.json.gz") for i in range(n)]
        mean_profiles[mode] = read_profile(path / f"profile-{mode}-mean.json.gz")
    return ExperimentResult(
        name=doc["name"],
        seed=doc["seed"],
        ref_runtimes=doc["ref_runtimes"],
        ref_phases=doc["ref_phases"],
        runtimes=doc["runtimes"],
        phases={m: dict(v) for m, v in doc["phases"].items()},
        profiles=profiles,
        mean_profiles=mean_profiles,
    )
