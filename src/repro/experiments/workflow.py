"""The measurement workflow (paper Sec. IV-B) plus result caching.

"To obtain reference timings, the application is run five times without
instrumentation.  Then, we perform an instrumented measurement and
Scalasca trace analysis with the physical clock ... and each of the
logical clocks ...  Additionally, tsc and lt_hwctr measurements are
influenced by noise, therefore we repeat these measurements five times.
We base our evaluation ... on the arithmetic mean of the five call-path
profiles."

Every (reference | mode, repetition) run of a campaign is independently
seeded via :func:`repro.util.rng.stream_seed`, so runs are embarrassingly
parallel: ``run_experiment(..., workers=N)`` fans the runs out over a
process pool and reassembles the results in canonical order, making the
campaign **bit-identical** to the serial execution (``workers=1``, the
default; the ``REPRO_WORKERS`` environment variable overrides it).
Completed runs are also checkpointed individually, so an interrupted
campaign resumes instead of recomputing.

A campaign supervisor makes long campaigns self-healing (paper campaigns
are hours of simulated measurement; losing them to one flaky worker or a
truncated file is not acceptable):

* **bounded retry** -- a task failing with :class:`CampaignTaskError` is
  re-attempted up to ``max_task_attempts`` times with exponential backoff
  plus deterministic jitter (derived from the task seed, so schedules are
  reproducible); retries surface as the ``workflow.retries`` counter.
* **watchdog** -- ``task_timeout`` bounds how long the supervisor waits
  on any pool task; a stuck worker is abandoned and the task resubmitted
  (``workflow.task_timeouts``).
* **checksummed checkpoints** -- per-run checkpoint files carry a CRC-32
  over their payload; a corrupt or truncated file is *quarantined*
  (renamed ``*.corrupt-N``) and the run recomputed
  (``workflow.checkpoint_corrupt``), never silently trusted.  The
  aggregate result cache quarantines the same way
  (``workflow.cache_corrupt``).
* **atomic persistence** -- every checkpoint/result write goes through
  tmp + fsync + rename (:mod:`repro.measure.io` helpers), so a kill at
  any instant leaves either the old file or the new file, never a
  partial one.
* **graceful interrupt** -- ``KeyboardInterrupt`` drains already-finished
  pool results into checkpoints before cancelling the rest
  (``workflow.interrupted``), making ``Ctrl-C`` + rerun a lossless
  resume.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
import traceback
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs as _obs
from repro.analysis import analyze_trace
from repro.clocks import timestamp_trace
from repro.cube import CubeProfile, read_profile, write_profile
from repro.cube.io import profile_doc, profile_from_doc
from repro.experiments.configs import EXPERIMENTS, make_app, make_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import MODES, Measurement
from repro.measure.config import NOISY_MODES
from repro.measure.io import atomic_write_text
from repro.obs.provenance import canonical_json
from repro.serve.store import ResultStore
from repro.sim import CostModel, Engine
from repro.util.rng import stream_seed

__all__ = [
    "CampaignTaskError",
    "ExperimentResult",
    "experiment_manifest",
    "preflight_lint",
    "run_experiment",
    "resolve_workers",
    "cache_key",
    "cache_store",
    "serialize_result",
    "deserialize_result",
    "result_document",
    "clear_cache",
    "CACHE_VERSION",
    "RESULT_FORMAT",
]

#: bump to invalidate cached results after calibration/code changes
CACHE_VERSION = 6

#: format tag of the canonical served-result serialization
RESULT_FORMAT = "repro-result-1"

_CACHE_DIR = Path(__file__).resolve().parents[3] / ".results_cache"

#: task key for uninstrumented reference runs (``mode`` is otherwise a
#: measurement mode name)
_REF = "ref"


class CampaignTaskError(RuntimeError):
    """A campaign run failed inside a pool worker.

    Exceptions raised in a worker cross the process-pool boundary
    stripped of their traceback, so the worker wraps them here carrying
    the failing ``(name, mode, seed, rep)`` task tag and the original
    formatted traceback.
    """

    def __init__(self, name: str, mode: str, seed: int, rep: int,
                 original_tb: str):
        super().__init__(
            f"campaign task ({name!r}, mode={mode!r}, seed={seed}, "
            f"rep={rep}) failed in worker; original traceback:\n{original_tb}"
        )
        self.task = (name, mode, seed, rep)
        self.original_tb = original_tb

    def __reduce__(self):
        return (CampaignTaskError, (*self.task, self.original_tb))


@dataclass
class ExperimentResult:
    """Everything the tables/figures need for one configuration."""

    name: str
    seed: int
    ref_runtimes: List[float]
    ref_phases: Dict[str, List[float]]
    #: mode -> list of total runtimes (one per repetition)
    runtimes: Dict[str, List[float]]
    #: mode -> {phase: [durations per repetition]}
    phases: Dict[str, Dict[str, List[float]]]
    #: mode -> per-repetition normalized profiles
    profiles: Dict[str, List[CubeProfile]]
    #: mode -> arithmetic mean of the normalized repetition profiles
    mean_profiles: Dict[str, CubeProfile] = field(default_factory=dict)
    #: provenance manifest (see :mod:`repro.obs.provenance`); persisted
    #: with the cached result so loaded artifacts stay traceable
    manifest: Optional[dict] = None

    def overhead(self, mode: str, phase: Optional[str] = None) -> float:
        """Mean overhead in percent vs. the mean reference (Table I/II)."""
        if phase is None:
            ref = float(np.mean(self.ref_runtimes))
            val = float(np.mean(self.runtimes[mode]))
        else:
            ref = float(np.mean(self.ref_phases[phase]))
            val = float(np.mean(self.phases[mode][phase]))
        return 100.0 * (val - ref) / ref

    def mean_profile(self, mode: str) -> CubeProfile:
        return self.mean_profiles[mode]


def _reps_for(mode: str, spec) -> int:
    return spec.reps_noisy if mode in NOISY_MODES else 1


def _run_once(name: str, mode: Optional[str], seed: int, rep: int):
    """One (possibly instrumented) run; returns the engine's SimResult."""
    app = make_app(name)
    cluster = make_cluster(name)
    noise = NoiseModel(NoiseConfig(), seed=stream_seed(seed, name, mode or _REF, rep))
    cost = CostModel(cluster, noise=noise)
    measurement = Measurement(mode) if mode is not None else None
    engine = Engine(app, cluster, cost, measurement=measurement)
    return engine.run()


def _run_task(name: str, mode: str, seed: int, rep: int):
    """One campaign task, self-contained for process-pool workers.

    Returns ``(runtime, {phase: duration})`` for reference runs
    (``mode == "ref"``) and ``(runtime, {phase: duration}, profile)`` for
    instrumented runs, where ``profile`` is the normalized analysis
    result.  Every output is a pure function of the arguments (the run's
    noise and counter seeds derive from them), which is what makes the
    parallel campaign bit-identical to the serial one.
    """
    spec = EXPERIMENTS[name]
    if mode == _REF:
        res = _run_once(name, None, seed, rep)
        return res.runtime, {p: res.phase(p) for p in spec.phases}
    res = _run_once(name, mode, seed, rep)
    tt = timestamp_trace(
        res.trace, mode, counter_seed=stream_seed(seed, name, "ctr", rep)
    )
    profile = analyze_trace(tt).normalized()
    return res.runtime, {p: res.phase(p) for p in spec.phases}, profile


def _pool_task(name: str, mode: str, seed: int, rep: int, with_obs: bool):
    """One campaign task as executed inside a pool worker.

    Wraps :func:`_run_task` twice over: any failure is re-raised as
    :class:`CampaignTaskError` carrying the task tag and the *original*
    traceback (which would otherwise be lost at the pool boundary), and
    when observability is on the task runs under a fresh scoped session
    whose snapshot rides back with the payload so the parent can merge
    per-worker metrics into campaign totals.
    """
    try:
        if with_obs:
            parent = _obs.active()
            session = _obs.ObsSession(
                t_base=parent.spans.t_base if parent is not None else None
            )
            with _obs.scoped(session), session.labels(experiment=name):
                payload = _run_task(name, mode, seed, rep)
            return payload, {"pid": os.getpid(), **session.snapshot()}
        return _run_task(name, mode, seed, rep), None
    except Exception:
        raise CampaignTaskError(
            name, mode, seed, rep, traceback.format_exc()
        ) from None


def experiment_manifest(name: str, seed: int, workers: int = 1) -> dict:
    """Provenance manifest of one campaign.

    The hashed config covers everything that determines the result
    (experiment spec, seed, clock modes, package/cache versions); the
    worker count is environment-only because the parallel campaign is
    bit-identical to the serial one.
    """
    spec = EXPERIMENTS[name]
    config = {
        "experiment": name,
        "seed": seed,
        "nodes": spec.nodes,
        "reps_ref": spec.reps_ref,
        "reps_noisy": spec.reps_noisy,
        "phases": list(spec.phases),
        "modes": list(MODES),
        "noisy_modes": list(NOISY_MODES),
        "cache_version": CACHE_VERSION,
        "version": _obs.package_version(),
    }
    return _obs.build_manifest(
        "experiment", config,
        environment=_obs.default_environment(workers=workers),
    )


def resolve_workers(workers: Optional[int]) -> int:
    """Campaign parallelism: explicit argument, else ``REPRO_WORKERS``, else 1.

    Raises :class:`ValueError` naming the source of the bad value -- a
    misspelled ``REPRO_WORKERS=auto`` in a batch script should fail the
    campaign loudly at startup, not crash a worker pool later.
    """
    source = "workers argument"
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "1")
        source = f"REPRO_WORKERS environment variable ({raw!r})"
        try:
            workers = int(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"invalid worker count from {source}: expected a positive "
                f"integer"
            ) from None
    if workers < 1:
        raise ValueError(
            f"invalid worker count from {source}: must be >= 1, got {workers}"
        )
    return workers


def preflight_lint(name: str) -> None:
    """Statically check the experiment's mini-app before burning CPU.

    Runs the linter and the determinism prover.  Raises
    :class:`repro.verify.VerificationError` when either finds an
    error-severity diagnostic (warnings are tolerated): a buggy program
    would deadlock or corrupt the archive hours into the measurement
    campaign, and an order-racy one would silently void the
    bit-identity claim every downstream analysis leans on.
    """
    from repro.verify import (
        VerificationError,
        analyze_determinism,
        has_errors,
        lint_program,
    )

    program = make_app(name)
    report = lint_program(program)
    if not report.ok:
        raise VerificationError(
            f"pre-flight lint of {name!r} found "
            f"{len(report.errors)} error(s)",
            report.diagnostics,
        )
    det = analyze_determinism(program)
    if has_errors(det.diagnostics):
        raise VerificationError(
            f"pre-flight determinism check of {name!r} failed: logical "
            "traces would not be bit-identical across noise",
            det.diagnostics,
        )


def _retry_delay(seed: int, name: str, mode: str, rep: int, attempt: int,
                 base: float) -> float:
    """Backoff before retry ``attempt`` (1-based): exponential with
    deterministic jitter derived from the task seed."""
    jitter = random.Random(
        stream_seed(seed, name, mode, rep, "retry", attempt)
    ).random()
    return base * (2.0 ** (attempt - 1)) * (1.0 + jitter)


def run_experiment(
    name: str,
    seed: int = 0,
    use_cache: bool = True,
    verbose: bool = False,
    preflight: bool = True,
    workers: Optional[int] = None,
    obs: Optional["_obs.ObsSession"] = None,
    task_timeout: Optional[float] = None,
    max_task_attempts: int = 3,
    retry_backoff: float = 0.25,
) -> ExperimentResult:
    """Run (or load from cache) the complete workflow for ``name``.

    ``workers`` sets the campaign fan-out (process pool); ``None`` reads
    ``REPRO_WORKERS`` and defaults to serial.  Results are reassembled in
    canonical (reference first, then mode, repetition) order and each run
    is seeded independently, so the outcome is bit-identical for any
    worker count.  With ``use_cache`` enabled, finished runs checkpoint
    individually, letting an interrupted campaign resume where it
    stopped; the per-run checkpoints are dropped once the aggregate
    result is stored.

    Campaign supervision (see the module docstring): a task failing with
    :class:`CampaignTaskError` is retried up to ``max_task_attempts``
    times with exponential backoff starting at ``retry_backoff`` seconds;
    ``task_timeout`` (seconds, parallel campaigns only) bounds how long
    the supervisor waits on a pool task before abandoning the worker and
    resubmitting; a timeout consumes one attempt.  Corrupt checkpoint or
    cache files are quarantined and recomputed, and ``KeyboardInterrupt``
    persists all finished runs before propagating.

    ``obs`` makes an :class:`repro.obs.ObsSession` active for the
    campaign (default: whatever session ``REPRO_OBS``/:func:`repro.obs.
    enable` activated, if any).  Pool workers observe their tasks under
    fresh sessions whose snapshots are merged back here, so parallel
    metric totals equal the serial ones.
    """
    if max_task_attempts < 1:
        raise ValueError(
            f"max_task_attempts must be >= 1, got {max_task_attempts}"
        )
    session = obs if obs is not None else _obs.active()
    with _obs.scoped(session):
        return _run_campaign(
            name, seed, use_cache, verbose, preflight, workers, session,
            task_timeout, max_task_attempts, retry_backoff,
        )


def _run_campaign(
    name: str,
    seed: int,
    use_cache: bool,
    verbose: bool,
    preflight: bool,
    workers: Optional[int],
    session: Optional["_obs.ObsSession"],
    task_timeout: Optional[float],
    max_task_attempts: int,
    retry_backoff: float,
) -> ExperimentResult:
    spec = EXPERIMENTS[name]
    with _obs.span("experiment", experiment=name, seed=seed), \
            _obs.labels(experiment=name):
        store = cache_store() if use_cache else None
        lease = None
        if use_cache:
            store.sweep_staging()
            cache = _cache_path(name, seed)
            result = _load_cached(cache, name, seed, store, session)
            if result is not None:
                return result
            # Cross-process single flight: concurrent campaigns racing
            # on the same cache key must not all compute.  One takes the
            # lease; the rest wait for its publish and load it.  A stale
            # lease (holder died) is taken over, and a wait that ends
            # without a loadable entry falls through to computing --
            # duplicated work is the safe failure mode, the atomic
            # publish keeps whichever copy lands last consistent.
            lease = store.acquire(cache.name)
            if lease is None:
                if store.wait_for(cache.name):
                    result = _load_cached(cache, name, seed, store, session)
                    if result is not None:
                        return result
                lease = store.acquire(cache.name)
        _obs.counter("workflow.cache_misses").inc()
        try:
            return _compute_campaign(
                name, seed, spec, use_cache, verbose, preflight, workers,
                session, task_timeout, max_task_attempts, retry_backoff,
                store, lease)
        finally:
            if lease is not None:
                lease.release()


def _load_cached(
    cache: Path,
    name: str,
    seed: int,
    store: ResultStore,
    session: Optional["_obs.ObsSession"],
) -> Optional[ExperimentResult]:
    """Load the aggregate cache entry; quarantine corruption."""
    if not cache.exists():
        return None
    try:
        result = _load(cache, name, seed)
    except Exception:
        _obs.counter("workflow.cache_corrupt").inc()
        _quarantine(cache)
        return None
    _obs.counter("workflow.cache_hits").inc()
    store.touch(cache.name)
    if session is not None and result.manifest is not None:
        session.add_manifest(result.manifest)
    return result


def _compute_campaign(
    name: str,
    seed: int,
    spec,
    use_cache: bool,
    verbose: bool,
    preflight: bool,
    workers: Optional[int],
    session: Optional["_obs.ObsSession"],
    task_timeout: Optional[float],
    max_task_attempts: int,
    retry_backoff: float,
    store: Optional[ResultStore],
    lease,
) -> ExperimentResult:
    heartbeat = lease.refresh if lease is not None else (lambda: None)
    if preflight:
        preflight_lint(name)

    tasks: List[Tuple[str, int]] = [
        (_REF, rep) for rep in range(spec.reps_ref)
    ]
    for mode in MODES:
        tasks.extend((mode, rep) for rep in range(_reps_for(mode, spec)))

    runs_dir = _runs_dir(name, seed)
    payloads = {}
    if use_cache:
        for task in tasks:
            payload = _load_run(runs_dir, task)
            if payload is not None:
                payloads[task] = payload
    _obs.counter("workflow.checkpoint_hits").add(len(payloads))

    pending = [t for t in tasks if t not in payloads]
    _obs.counter("workflow.runs_executed").add(len(pending))
    n_workers = min(resolve_workers(workers), max(1, len(pending)))
    _obs.gauge("workflow.workers").set(n_workers)
    if pending and n_workers > 1:
        _run_parallel(name, seed, pending, payloads, runs_dir,
                      use_cache, verbose, n_workers, session,
                      task_timeout, max_task_attempts, retry_backoff,
                      heartbeat)
    else:
        _run_serial(name, seed, pending, payloads, runs_dir, use_cache,
                    verbose, max_task_attempts, retry_backoff, heartbeat)

    return _assemble(name, seed, spec, payloads, use_cache, n_workers,
                     session, store)


def _run_serial(name, seed, pending, payloads, runs_dir, use_cache,
                verbose, max_task_attempts, retry_backoff,
                heartbeat=lambda: None) -> None:
    """Serial campaign path with bounded retry."""
    for task in pending:
        for attempt in range(1, max_task_attempts + 1):
            try:
                payload, _ = _pool_task(name, task[0], seed, task[1], False)
            except CampaignTaskError:
                if attempt >= max_task_attempts:
                    raise
                _obs.counter("workflow.retries").inc()
                time.sleep(_retry_delay(seed, name, task[0], task[1],
                                        attempt, retry_backoff))
            else:
                break
        payloads[task] = payload
        heartbeat()
        if use_cache:
            _store_run(runs_dir, task, payload)
        if verbose:
            print(f"[{name}] {task[0]} rep {task[1]}: {payload[0]:.3f}s")


def _run_parallel(name, seed, pending, payloads, runs_dir, use_cache,
                  verbose, n_workers, session, task_timeout,
                  max_task_attempts, retry_backoff,
                  heartbeat=lambda: None) -> None:
    """Parallel campaign path: process pool under the supervisor.

    Fork inherits the experiment registry (including entries added at
    runtime, e.g. by tests or the benchmark harness) and the parent
    writes all checkpoints, so workers stay side-effect-free.  Each task
    gets a per-wait watchdog (``task_timeout``) and bounded retries;
    ``KeyboardInterrupt`` checkpoints every already-finished task before
    cancelling the rest, so a rerun resumes losslessly.
    """
    ctx = get_context("fork")
    with_obs = session is not None
    attempts = {t: 1 for t in pending}
    pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
    futures: Dict[Tuple[str, int], object] = {}
    try:
        futures = {
            t: pool.submit(_pool_task, name, t[0], seed, t[1], with_obs)
            for t in pending
        }

        def harvest(task, payload, wdoc) -> None:
            payloads[task] = payload
            heartbeat()
            if wdoc is not None:
                session.merge_worker(wdoc)
                _obs.counter("workflow.worker_runs", pid=wdoc["pid"]).inc()
            if use_cache:
                _store_run(runs_dir, task, payload)
            if verbose:
                print(f"[{name}] {task[0]} rep {task[1]}: "
                      f"{payload[0]:.3f}s")

        for task in pending:
            while task not in payloads:
                try:
                    payload, wdoc = futures[task].result(
                        timeout=task_timeout)
                except _FuturesTimeout:
                    # Watchdog: the worker is stuck (or the task is
                    # pathologically slow).  Abandon the old future and
                    # resubmit; the stale result, if it ever arrives, is
                    # simply never read.
                    attempts[task] += 1
                    _obs.counter("workflow.task_timeouts").inc()
                    if attempts[task] > max_task_attempts:
                        futures[task].cancel()
                        raise CampaignTaskError(
                            name, task[0], seed, task[1],
                            f"task exceeded the {task_timeout}s watchdog "
                            f"timeout on all {max_task_attempts} attempts",
                        )
                    futures[task].cancel()
                    futures[task] = pool.submit(
                        _pool_task, name, task[0], seed, task[1], with_obs)
                except CampaignTaskError:
                    attempts[task] += 1
                    if attempts[task] > max_task_attempts:
                        raise
                    _obs.counter("workflow.retries").inc()
                    time.sleep(_retry_delay(seed, name, task[0], task[1],
                                            attempts[task] - 1,
                                            retry_backoff))
                    futures[task] = pool.submit(
                        _pool_task, name, task[0], seed, task[1], with_obs)
                else:
                    harvest(task, payload, wdoc)
    except KeyboardInterrupt:
        # Drain whatever already finished into checkpoints before
        # cancelling the rest -- the interrupted campaign resumes without
        # recomputing any completed run.
        _obs.counter("workflow.interrupted").inc()
        for task, fut in futures.items():
            if task in payloads or not fut.done() or fut.cancelled():
                continue
            if fut.exception() is None:
                payload, wdoc = fut.result()
                harvest(task, payload, wdoc)
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)


def _assemble(
    name: str,
    seed: int,
    spec,
    payloads: dict,
    use_cache: bool,
    n_workers: int,
    session: Optional["_obs.ObsSession"],
    store: Optional[ResultStore] = None,
) -> ExperimentResult:
    """Reassemble payloads in canonical order into an ExperimentResult."""
    ref_runtimes: List[float] = []
    ref_phases: Dict[str, List[float]] = {p: [] for p in spec.phases}
    for rep in range(spec.reps_ref):
        runtime, phase_times = payloads[(_REF, rep)]
        ref_runtimes.append(runtime)
        for p in spec.phases:
            ref_phases[p].append(phase_times[p])

    runtimes: Dict[str, List[float]] = {}
    phases: Dict[str, Dict[str, List[float]]] = {}
    profiles: Dict[str, List[CubeProfile]] = {}
    for mode in MODES:
        runtimes[mode] = []
        phases[mode] = {p: [] for p in spec.phases}
        profiles[mode] = []
        for rep in range(_reps_for(mode, spec)):
            runtime, phase_times, profile = payloads[(mode, rep)]
            runtimes[mode].append(runtime)
            for p in spec.phases:
                phases[mode][p].append(phase_times[p])
            profiles[mode].append(profile)

    result = ExperimentResult(
        name=name,
        seed=seed,
        ref_runtimes=ref_runtimes,
        ref_phases=ref_phases,
        runtimes=runtimes,
        phases=phases,
        profiles=profiles,
        manifest=experiment_manifest(name, seed, workers=n_workers),
    )
    for mode in MODES:
        result.mean_profiles[mode] = CubeProfile.mean(profiles[mode])
    if session is not None:
        session.add_manifest(result.manifest)
    if use_cache:
        cache = _cache_path(name, seed)
        _store(result, cache)
        shutil.rmtree(_runs_dir(name, seed), ignore_errors=True)
        # Honor the size budget *after* publishing: the freshest entry
        # is protected, older least-recently-used ones make room.
        (store if store is not None else cache_store()).evict(
            protect=(cache.name,))
    return result


# ---------------------------------------------------------------------------
# canonical result serialization (the service's wire format)
# ---------------------------------------------------------------------------


def result_document(result: ExperimentResult) -> dict:
    """JSON document capturing everything in an :class:`ExperimentResult`.

    Profiles are embedded via :func:`repro.cube.io.profile_doc` (the
    same encoding the disk cache uses, so values survive a cache round
    trip bit-for-bit).  The manifest's hash-exempt ``environment`` block
    is dropped: two bit-identical computations of the same manifest hash
    must serialize to the same bytes even when produced under different
    worker counts or interpreter builds.
    """
    manifest = {k: v for k, v in (result.manifest or {}).items()
                if k != "environment"}
    return {
        "format": RESULT_FORMAT,
        "name": result.name,
        "seed": result.seed,
        "ref_runtimes": result.ref_runtimes,
        "ref_phases": result.ref_phases,
        "runtimes": result.runtimes,
        "phases": result.phases,
        "profiles": {m: [profile_doc(p) for p in profs]
                     for m, profs in result.profiles.items()},
        "mean_profiles": {m: profile_doc(p)
                          for m, p in result.mean_profiles.items()},
        "manifest": manifest or None,
    }


def serialize_result(result: ExperimentResult) -> bytes:
    """Canonical bytes of ``result`` (sorted keys, no whitespace).

    This is the payload ``repro-serve`` returns: because the encoding is
    canonical and every float round-trips exactly through JSON, a served
    response is byte-identical to serializing a direct
    :func:`run_experiment` call for the same manifest hash.
    """
    return (canonical_json(result_document(result)) + "\n").encode("utf-8")


def deserialize_result(data: bytes) -> ExperimentResult:
    """Invert :func:`serialize_result` (used by the service client)."""
    doc = json.loads(data.decode("utf-8"))
    if doc.get("format") != RESULT_FORMAT:
        raise ValueError(f"not a {RESULT_FORMAT} document "
                         f"(format={doc.get('format')!r})")
    return ExperimentResult(
        name=doc["name"],
        seed=doc["seed"],
        ref_runtimes=doc["ref_runtimes"],
        ref_phases=doc["ref_phases"],
        runtimes=doc["runtimes"],
        phases={m: dict(v) for m, v in doc["phases"].items()},
        profiles={m: [profile_from_doc(d) for d in docs]
                  for m, docs in doc["profiles"].items()},
        mean_profiles={m: profile_from_doc(d)
                       for m, d in doc["mean_profiles"].items()},
        manifest=doc.get("manifest"),
    )


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def cache_key(name: str, seed: int) -> str:
    """Content address of one campaign's result in the shared store.

    Derived from the experiment's provenance-manifest hash (which covers
    the spec geometry, seed, clock modes and cache version), so the
    service and ``run_experiment`` agree on the entry without sharing
    any state beyond the cache directory; the human-readable
    ``name``/``seed`` suffix is informational only.
    """
    return ResultStore.entry_name(
        experiment_manifest(name, seed)["hash"], f"{name}-s{seed}")


def cache_store(max_bytes: Optional[int] = None) -> ResultStore:
    """The shared content-addressed store over the result cache dir.

    ``max_bytes`` defaults to ``REPRO_CACHE_MAX_BYTES`` (unset =
    unbounded).  Constructed per call so tests (and the service) can
    repoint ``_CACHE_DIR``/the env between uses.
    """
    return ResultStore(_CACHE_DIR, max_bytes=max_bytes)


def _cache_path(name: str, seed: int) -> Path:
    return cache_store().entry_path(cache_key(name, seed))


def _runs_dir(name: str, seed: int) -> Path:
    """Per-run checkpoints of an unfinished campaign (resume support)."""
    return _CACHE_DIR / f"v{CACHE_VERSION}-{name}-s{seed}.runs"


def clear_cache() -> None:
    """Delete all cached experiment results."""
    shutil.rmtree(_CACHE_DIR, ignore_errors=True)


def _store(result: ExperimentResult, path: Path) -> None:
    # Stage into a unique temp dir (mkdtemp) so concurrent campaigns of
    # the same experiment never scribble into each other's staging area;
    # the final rename publishes atomically, and losing a publish race
    # just discards this copy of the identical result.
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=path.parent, prefix=path.name + ".tmp-"))
    try:
        doc = {
            "name": result.name,
            "seed": result.seed,
            "ref_runtimes": result.ref_runtimes,
            "ref_phases": result.ref_phases,
            "runtimes": result.runtimes,
            "phases": result.phases,
            "reps": {m: len(result.profiles[m]) for m in result.profiles},
            "manifest": result.manifest,
        }
        (tmp / "summary.json").write_text(json.dumps(doc))
        for mode, profs in result.profiles.items():
            for i, prof in enumerate(profs):
                write_profile(prof, tmp / f"profile-{mode}-{i}.json.gz")
            write_profile(result.mean_profiles[mode], tmp / f"profile-{mode}-mean.json.gz")
        shutil.rmtree(path, ignore_errors=True)
        tmp.rename(path)
    except Exception:
        shutil.rmtree(tmp, ignore_errors=True)
        raise


def _load(path: Path, name: str, seed: int) -> ExperimentResult:
    doc = json.loads((path / "summary.json").read_text())
    if doc["name"] != name or doc["seed"] != seed:
        raise ValueError("cache mismatch")
    profiles = {}
    mean_profiles = {}
    for mode, n in doc["reps"].items():
        profiles[mode] = [read_profile(path / f"profile-{mode}-{i}.json.gz") for i in range(n)]
        mean_profiles[mode] = read_profile(path / f"profile-{mode}-mean.json.gz")
    return ExperimentResult(
        name=doc["name"],
        seed=doc["seed"],
        ref_runtimes=doc["ref_runtimes"],
        ref_phases=doc["ref_phases"],
        runtimes=doc["runtimes"],
        phases={m: dict(v) for m, v in doc["phases"].items()},
        profiles=profiles,
        mean_profiles=mean_profiles,
        manifest=doc.get("manifest"),
    )


def _quarantine(path: Path) -> Optional[Path]:
    """Move a corrupt cache/checkpoint file (or directory) aside.

    Renamed to ``<name>.corrupt-N`` next to the original so the bad bytes
    stay inspectable while the supervisor recomputes; returns the new
    path (``None`` when ``path`` vanished or the rename failed, in which
    case it is deleted as a last resort so the corruption cannot be
    re-read).
    """
    for n in range(1000):
        dest = path.with_name(f"{path.name}.corrupt-{n}")
        if dest.exists():
            continue
        try:
            path.rename(dest)
        except FileNotFoundError:
            return None
        except OSError:
            break
        return dest
    if path.is_dir():
        shutil.rmtree(path, ignore_errors=True)
    else:
        path.unlink(missing_ok=True)
    return None


def _run_tag(task: Tuple[str, int]) -> str:
    return f"{task[0]}-r{task[1]}"


def _store_run(runs_dir: Path, task: Tuple[str, int], payload) -> None:
    """Checkpoint one finished run, atomically and checksummed.

    The summary JSON wraps its document with a CRC-32 over the canonical
    payload encoding, plus the CRC-32 of the profile archive's bytes for
    instrumented runs, so :func:`_load_run` detects truncation or bit rot
    in either file.  The summary is written last: its presence marks the
    checkpoint complete.
    """
    runs_dir.mkdir(parents=True, exist_ok=True)
    tag = _run_tag(task)
    if len(payload) == 3:
        runtime, phase_times, profile = payload
        write_profile(profile, runs_dir / f"{tag}-profile.json.gz")
        profile_crc = zlib.crc32((runs_dir / f"{tag}-profile.json.gz").read_bytes())
    else:
        runtime, phase_times = payload
        profile_crc = None
    doc = {"runtime": runtime, "phases": phase_times}
    body = json.dumps(doc, sort_keys=True)
    atomic_write_text(
        runs_dir / f"{tag}.json",
        json.dumps({"crc32": zlib.crc32(body.encode("utf-8")),
                    "profile_crc32": profile_crc,
                    "doc": doc}),
    )


def _load_run(runs_dir: Path, task: Tuple[str, int]):
    """Load one checkpointed run, or ``None`` if absent or corrupt.

    Any unreadable or checksum-failing file is quarantined (see
    :func:`_quarantine`) and counted on ``workflow.checkpoint_corrupt``;
    the supervisor then recomputes the run, so corruption degrades to a
    cache miss rather than poisoning the campaign result.
    """
    tag = _run_tag(task)
    summary = runs_dir / f"{tag}.json"
    profile_path = runs_dir / f"{tag}-profile.json.gz"
    if not summary.exists():
        return None
    try:
        wrapper = json.loads(summary.read_text())
        doc = wrapper["doc"]
        body = json.dumps(doc, sort_keys=True)
        if wrapper["crc32"] != zlib.crc32(body.encode("utf-8")):
            raise ValueError(f"{summary}: summary checksum mismatch")
        if task[0] == _REF:
            return doc["runtime"], doc["phases"]
        if wrapper["profile_crc32"] != zlib.crc32(profile_path.read_bytes()):
            raise ValueError(f"{profile_path}: profile checksum mismatch")
        profile = read_profile(profile_path)
        return doc["runtime"], doc["phases"], profile
    except Exception:
        _obs.counter("workflow.checkpoint_corrupt").inc()
        _quarantine(summary)
        if task[0] != _REF and profile_path.exists():
            _quarantine(profile_path)
        return None
