"""Delay propagation: how a one-off injected delay travels and decays.

Afzal, Hager and Wellein study how a single excess-runtime event on one
MPI rank propagates through the communication topology: in a ring of
eager sends, the delay travels one neighbour per iteration, forming a
diagonal wavefront in the (rank, iteration) plane, and is damped
wherever slack absorbs it.  This experiment reproduces that wavefront in
the simulator and asks the paper's question about it: *which clock modes
see the same propagation picture regardless of machine noise?*

Two runs of :class:`DelayRing` are compared per noise seed -- one with an
``injected_delay`` region carrying real work on ``(delay_rank,
delay_iter)``, one with the same region carrying zero units (so both
traces have identical event structure).  The per-rank, per-iteration
**deviation matrix** is the difference of the two runs' receive-complete
clocks:

* Under the deterministic logical modes the matrix is *bit-identical
  across noise seeds* and shows the undamped logical wavefront (logical
  clocks have no slack: every downstream rank inherits the full delay).
* Under ``tsc`` the matrix differs per seed and decays with distance as
  physical slack and noise absorb the delay.

The delayed trace also round-trips through the causal what-if engine:
``drop_region("injected_delay")`` on the delayed trace must reproduce
the baseline run's final clocks **bit for bit** under every replayable
mode -- the what-if replay's end-to-end ground truth
(:mod:`repro.causal.whatif`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.causal.whatif import REPLAYABLE_MODES, drop_region, run_whatif
from repro.clocks import timestamp_trace
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.machine.presets import small_test_cluster
from repro.measure import Measurement
from repro.measure.config import validate_mode
from repro.sim import (
    Compute,
    CostModel,
    Engine,
    Enter,
    KernelSpec,
    Leave,
    Program,
    Recv,
    Send,
)
from repro.sim.events import MPI_RECV

__all__ = ["DelayRing", "DelayPropResult", "run_delay_propagation"]


_STEP_KERNEL = KernelSpec.balanced(
    "ring-step", flops_per_unit=1e5, bytes_per_unit=0.0, memory_scope="none"
)
_DELAY_KERNEL = KernelSpec.balanced(
    "delay", flops_per_unit=1e5, bytes_per_unit=0.0, memory_scope="none"
)

#: region name of the injected delay (the ``drop_region`` target)
DELAY_REGION = "injected_delay"


class DelayRing(Program):
    """Eager nearest-neighbour ring with one injected one-off delay.

    Each iteration: fixed compute, an ``injected_delay`` region (real
    work only on ``(delay_rank, delay_iter)``; zero units -- but the same
    recorded events -- everywhere else), an eager send to the right
    neighbour and a blocking receive from the left.  With
    ``delay_units=0`` the program *is* its own baseline: identical event
    structure, no delay anywhere.
    """

    name = "delay-ring"
    phases = ("iterate",)

    def __init__(self, n_ranks: int = 4, iters: int = 10,
                 delay_rank: int = 0, delay_iter: int = 2,
                 delay_units: float = 0.0, step_units: float = 5.0):
        self.n_ranks = n_ranks
        self.threads_per_rank = 1
        self.iters = iters
        self.delay_rank = delay_rank
        self.delay_iter = delay_iter
        self.delay_units = delay_units
        self.step_units = step_units

    def make_rank(self, ctx):
        right = (ctx.rank + 1) % ctx.n_ranks
        left = (ctx.rank - 1) % ctx.n_ranks
        yield Enter("iterate")
        for it in range(self.iters):
            yield Compute(_STEP_KERNEL, self.step_units)
            yield Enter(DELAY_REGION)
            hit = ctx.rank == self.delay_rank and it == self.delay_iter
            yield Compute(_DELAY_KERNEL, self.delay_units if hit else 0.0)
            yield Leave(DELAY_REGION)
            yield Send(dest=right, tag=17, nbytes=64.0)
            yield Recv(source=left, tag=17)
        yield Leave("iterate")


def _run(mode: str, seed: int, delay_units: float, *, n_ranks: int,
         iters: int, delay_rank: int, delay_iter: int):
    cluster = small_test_cluster()
    app = DelayRing(n_ranks=n_ranks, iters=iters, delay_rank=delay_rank,
                    delay_iter=delay_iter, delay_units=delay_units)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=seed))
    return Engine(app, cluster, cost, measurement=Measurement(mode)).run().trace


def _recv_clocks(trace, mode: str) -> List[List[float]]:
    """Per rank, the clock at each iteration's receive completion."""
    tt = timestamp_trace(trace, mode)
    marks: List[List[float]] = []
    for loc, evs in enumerate(trace.events):
        times = tt.times[loc]
        marks.append([float(times[i]) for i, ev in enumerate(evs)
                      if ev.etype == MPI_RECV])
    return marks


@dataclass
class DelayPropResult:
    """Deviation matrices of one delay-propagation study."""

    mode: str
    seeds: Tuple[int, ...]
    delay_rank: int
    delay_iter: int
    #: seed -> matrix[rank][iter] = delayed recv clock - baseline recv clock
    deviation: Dict[int, List[List[float]]]
    #: bitwise equality of the deviation matrices across seeds
    seed_invariant: bool
    #: ``drop_region`` what-if == baseline finals, per replayable mode
    whatif_ok: Optional[Dict[str, bool]]

    def wavefront(self, seed: Optional[int] = None) -> List[Optional[int]]:
        """First iteration at which each rank sees the delay (or None)."""
        m = self.deviation[seed if seed is not None else self.seeds[0]]
        eps = 1e-12
        return [next((it for it, d in enumerate(row) if d > eps), None)
                for row in m]

    def report(self) -> str:
        out = [f"== delay propagation [{self.mode}] "
               f"(delay at rank {self.delay_rank}, iter {self.delay_iter}) =="]
        m = self.deviation[self.seeds[0]]
        iters = len(m[0]) if m else 0
        out.append("deviation matrix, seed "
                   f"{self.seeds[0]} (rank x iteration):")
        header = "  rank " + "".join(f"{it:>10}" for it in range(iters))
        out.append(header)
        for rank, row in enumerate(m):
            out.append(f"  {rank:>4} " + "".join(f"{d:>10.3g}" for d in row))
        out.append(f"wavefront arrival iterations: {self.wavefront()}")
        out.append("deviation matrix invariant across noise seeds "
                   f"{list(self.seeds)}: {self.seed_invariant}")
        if self.whatif_ok is not None:
            for mode, ok in sorted(self.whatif_ok.items()):
                out.append(f"what-if drop({DELAY_REGION}) == baseline "
                           f"[{mode}]: {ok}")
        return "\n".join(out)

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "seeds": list(self.seeds),
            "delay_rank": self.delay_rank,
            "delay_iter": self.delay_iter,
            "seed_invariant": self.seed_invariant,
            "whatif_ok": self.whatif_ok,
            "wavefront": self.wavefront(),
            "deviation": {str(s): m for s, m in self.deviation.items()},
        }


def run_delay_propagation(
    mode: str = "lt1",
    seeds: Sequence[int] = (1, 2, 3),
    n_ranks: int = 4,
    iters: int = 10,
    delay_rank: int = 0,
    delay_iter: int = 2,
    delay_units: float = 200.0,
    check_whatif: bool = True,
) -> DelayPropResult:
    """Run the delayed/baseline pair per seed and difference their clocks.

    ``check_whatif`` additionally validates, for every replayable
    logical mode, that ``drop_region("injected_delay")`` applied to the
    delayed trace reproduces the baseline run's final clocks bit for
    bit (using the first seed's traces).
    """
    mode = validate_mode(mode)
    seeds = tuple(seeds)
    kw = dict(n_ranks=n_ranks, iters=iters, delay_rank=delay_rank,
              delay_iter=delay_iter)
    deviation: Dict[int, List[List[float]]] = {}
    whatif_ok: Optional[Dict[str, bool]] = None
    for k, seed in enumerate(seeds):
        delayed = _run(mode, seed, delay_units, **kw)
        baseline = _run(mode, seed, 0.0, **kw)
        dm = _recv_clocks(delayed, mode)
        bm = _recv_clocks(baseline, mode)
        deviation[seed] = [[d - b for d, b in zip(dr, br)]
                           for dr, br in zip(dm, bm)]
        obs.counter("experiments.delayprop.runs", mode=mode).add(2)
        if check_whatif and k == 0:
            whatif_ok = {}
            for wmode in REPLAYABLE_MODES:
                res = run_whatif(delayed, [drop_region(DELAY_REGION)], wmode)
                from repro.clocks.streaming import stream_clock_replay

                base_final = stream_clock_replay(baseline, wmode).final
                whatif_ok[wmode] = res.final == base_final
    first = deviation[seeds[0]]
    seed_invariant = all(deviation[s] == first for s in seeds[1:])
    return DelayPropResult(
        mode=mode,
        seeds=seeds,
        delay_rank=delay_rank,
        delay_iter=delay_iter,
        deviation=deviation,
        seed_invariant=seed_invariant,
        whatif_ok=whatif_ok,
    )
