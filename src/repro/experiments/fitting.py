"""Fitting the OpenMP external-effort constants (paper Sec. II-A/V-C3).

The paper assigns X = 100 basic blocks / Y = 4300 statements to every
call into the OpenMP runtime, "fitted to our observations in the LULESH
benchmark".  The numeric values are specific to *their* LLVM pass's count
scale; this module reproduces the fitting *procedure* against our kernel
count scale: choose X (resp. Y) such that the lt_bb (resp. lt_stmt)
profile attributes the same fraction of total time to the OpenMP runtime
as the tsc profile does in LULESH-1.

Because the OpenMP share is monotone in the constant, a few iterations of
proportional scaling converge.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis import analyze_trace
from repro.analysis.metrics import OMP_LEAVES
from repro.clocks.base import TimestampedTrace
from repro.clocks.increments import make_increment
from repro.clocks.lamport import LamportClock
from repro.experiments.configs import make_app, make_cluster
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.measure import Measurement
from repro.measure.config import LTBB, LTSTMT, TSC
from repro.sim import CostModel, Engine

__all__ = ["fit_omp_effort_constants"]


def _omp_fraction(tt: TimestampedTrace) -> float:
    prof = analyze_trace(tt)
    total = prof.total_time()
    if total <= 0:
        return 0.0
    return sum(prof.metric_total(m) for m in OMP_LEAVES) / total


def fit_omp_effort_constants(
    experiment: str = "LULESH-1",
    seed: int = 0,
    iterations: int = 6,
    x0: float = 100.0,
    y0: float = 4300.0,
) -> Dict[str, float]:
    """Fit X (bb) and Y (stmt) so the logical OpenMP share matches tsc.

    Returns ``{"x_bb", "y_stmt", "target_omp_fraction", "x_omp_fraction",
    "y_omp_fraction"}``.  One trace per mode is enough: the fit only
    re-timestamps and re-analyzes, it never re-simulates.
    """
    results = {}
    traces = {}
    for mode in (TSC, LTBB, LTSTMT):
        app = make_app(experiment)
        cluster = make_cluster(experiment)
        noise = NoiseModel(NoiseConfig(), seed=seed)
        res = Engine(app, cluster, CostModel(cluster, noise=noise),
                     measurement=Measurement(mode)).run()
        traces[mode] = res.trace

    from repro.clocks import physical_times

    target = _omp_fraction(TimestampedTrace(traces[TSC], physical_times(traces[TSC]), TSC))

    def fit(mode: str, start: float) -> Tuple[float, float]:
        value = start
        frac = 0.0
        for _ in range(iterations):
            inc = make_increment(mode, x_bb=value, y_stmt=value)
            tt = TimestampedTrace(traces[mode], LamportClock(inc).assign(traces[mode]), mode)
            frac = _omp_fraction(tt)
            if frac <= 0.0:
                value *= 4.0
                continue
            ratio = target / frac
            if abs(ratio - 1.0) < 0.02:
                break
            # Damped proportional update: the share saturates for huge
            # constants, so full Newton steps overshoot.
            value *= min(4.0, max(0.25, ratio))
        return value, frac

    x_bb, x_frac = fit(LTBB, x0)
    y_stmt, y_frac = fit(LTSTMT, y0)
    results.update(
        x_bb=x_bb,
        y_stmt=y_stmt,
        target_omp_fraction=target,
        x_omp_fraction=x_frac,
        y_omp_fraction=y_frac,
    )
    return results
