"""Regeneration of every table and figure in the paper's evaluation.

Each ``table*``/``fig*`` function returns the underlying data structure
*and* a rendered text block, so the benchmark harness can both assert on
the numbers and print the same rows/series the paper reports.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis import metrics as M
from repro.analysis.metrics import group_totals, render_metric_tree
from repro.cube import CubeProfile
from repro.experiments.workflow import run_experiment
from repro.measure.config import MODE_LABELS, MODES, NOISY_MODES, TSC
from repro.scoring import jaccard_metric_callpath, min_pairwise_jaccard
from repro.util.tables import format_grouped_bars, format_table

__all__ = [
    "table1_overheads",
    "table2_tealeaf",
    "fig1_metric_tree",
    "fig2_minife_init",
    "fig3_jaccard_minife_lulesh",
    "fig4_jaccard_tealeaf",
    "fig5_minife_comp",
    "fig6_minife_waitnxn",
    "fig7_minife2_paradigms",
    "fig8_lulesh1_paradigms",
    "fig9_lulesh1_comp_and_delay",
    "callpath_shares",
]


def _labels(modes: Sequence[str] = MODES) -> List[str]:
    return [MODE_LABELS[m] for m in modes]


# ---------------------------------------------------------------------------
# call-path aggregation helpers
# ---------------------------------------------------------------------------


def callpath_shares(
    profile: CubeProfile, metric: str, buckets: Sequence[str], other: str = "other"
) -> Dict[str, float]:
    """%M of ``metric`` aggregated into named buckets.

    A call path contributes to the first bucket name appearing anywhere in
    it -- the aggregation an analyst performs when reading the Cube tree
    at the granularity of the paper's bar charts.
    """
    shares = profile.metric_selection_percent(metric)
    agg: Counter = Counter()
    for path, value in shares.items():
        key = next((b for b in buckets if b in path), other)
        agg[key] += value
    return {b: agg.get(b, 0.0) for b in list(buckets) + [other]}


MINIFE_COMP_BUCKETS = (
    "generate_matrix_structure",
    "assemble_FE_data",
    "make_local_matrix",
    "matvec",
    "dot",
    "waxpby",
)
MINIFE_WAIT_BUCKETS = ("generate_matrix_structure", "make_local_matrix", "dot")
LULESH_BUCKETS = (
    "CalcForceForNodes",
    "ApplyMaterialPropertiesForElems",
    "CalcLagrangeElements",
    "CalcQForElems",
    "CalcAccelerationForNodes",
    "CalcTimeConstraintsForElems",
)


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def table1_overheads(seed: int = 0) -> Tuple[dict, str]:
    """Table I: measurement overheads per mode for the selected configs."""
    minife2 = run_experiment("MiniFE-2", seed)
    lulesh1 = run_experiment("LULESH-1", seed)
    tealeaf2 = run_experiment("TeaLeaf-2", seed)
    data = {}
    rows = []
    for mode in MODES:
        row = {
            "minife2_init": minife2.overhead(mode, "init"),
            "minife2_solve": minife2.overhead(mode, "solve"),
            "minife2_total": minife2.overhead(mode),
            "lulesh1": lulesh1.overhead(mode),
            "tealeaf2": tealeaf2.overhead(mode),
        }
        data[mode] = row
        rows.append(
            [MODE_LABELS[mode]] + [row[k] for k in
             ("minife2_init", "minife2_solve", "minife2_total", "lulesh1", "tealeaf2")]
        )
    text = format_table(
        ["Mode", "MiniFE-2 init", "MiniFE-2 solve", "MiniFE-2 total", "LULESH-1", "TeaLeaf-2"],
        rows,
        title="Table I: measurement overheads / %",
        floatfmt="+.1f",
    )
    return data, text


def table2_tealeaf(seed: int = 0) -> Tuple[dict, str]:
    """Table II: TeaLeaf run times and tsc overheads for all configs."""
    data = {}
    rows = []
    for n in (1, 2, 3, 4):
        name = f"TeaLeaf-{n}"
        res = run_experiment(name, seed)
        ref = float(np.mean(res.ref_runtimes))
        tsc = float(np.mean(res.runtimes[TSC]))
        ov = res.overhead(TSC)
        spec_ranks = {1: 1, 2: 2, 3: 8, 4: 128}[n]
        data[name] = {"ranks": spec_ranks, "ref": ref, "tsc": tsc, "overhead": ov}
        rows.append([name, spec_ranks, ref, tsc, ov])
    text = format_table(
        ["Name", "Ranks", "Ref / s", "tsc / s", "overhead / %"],
        rows,
        title="Table II: TeaLeaf run times and tsc measurement overheads",
        floatfmt=".2f",
    )
    return data, text


# ---------------------------------------------------------------------------
# figures
# ---------------------------------------------------------------------------


def fig1_metric_tree() -> Tuple[None, str]:
    """Fig. 1: the metric hierarchy used in the analysis."""
    return None, render_metric_tree()


def fig2_minife_init(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 2: MiniFE-2 matrix-structure-generation (init) run times.

    Individual repetitions plus means per measurement method, against the
    reference band.
    """
    res = run_experiment("MiniFE-2", seed)
    data = {"ref": list(res.ref_phases["init"])}
    for mode in MODES:
        data[MODE_LABELS[mode]] = list(res.phases[mode]["init"])
    rows = [
        [label, float(np.mean(vals)), float(np.min(vals)), float(np.max(vals)), len(vals)]
        for label, vals in data.items()
    ]
    text = format_table(
        ["Method", "mean / s", "min / s", "max / s", "reps"],
        rows,
        title="Fig. 2: MiniFE-2 matrix structure generation run time",
        floatfmt=".3f",
    )
    return data, text


def _jaccard_block(names: Sequence[str], seed: int) -> Tuple[dict, str]:
    data: Dict[str, dict] = {}
    for name in names:
        res = run_experiment(name, seed)
        tsc_mean = res.mean_profile(TSC)
        entry = {
            "scores": {
                MODE_LABELS[m]: jaccard_metric_callpath(res.mean_profile(m), tsc_mean)
                for m in MODES if m != TSC
            },
            "min_run_to_run": {
                MODE_LABELS[m]: min_pairwise_jaccard(res.profiles[m]) for m in NOISY_MODES
            },
        }
        data[name] = entry
    bars = {
        name: dict(entry["scores"]) for name, entry in data.items()
    }
    lines = [format_grouped_bars(bars, title="J_(M,C) vs tsc (mean profiles)")]
    rows = [
        [name, entry["min_run_to_run"]["tsc"], entry["min_run_to_run"]["lt_hwctr"]]
        for name, entry in data.items()
    ]
    lines.append("")
    lines.append(format_table(
        ["Experiment", "min J tsc reps", "min J lt_hwctr reps"],
        rows,
        title="Run-to-run similarity floor (deterministic logical modes are 1.0)",
        floatfmt=".3f",
    ))
    return data, "\n".join(lines)


def fig3_jaccard_minife_lulesh(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 3: J_(M,C) similarity to tsc for MiniFE and LULESH."""
    return _jaccard_block(["MiniFE-1", "MiniFE-2", "LULESH-1", "LULESH-2"], seed)


def fig4_jaccard_tealeaf(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 4: J_(M,C) similarity to tsc for the TeaLeaf configurations."""
    return _jaccard_block([f"TeaLeaf-{n}" for n in (1, 2, 3, 4)], seed)


def _share_figure(
    names: Sequence[str], metric: str, buckets: Sequence[str], title: str, seed: int
) -> Tuple[dict, str]:
    data = {}
    blocks = []
    for name in names:
        res = run_experiment(name, seed)
        per_mode = {
            MODE_LABELS[m]: callpath_shares(res.mean_profile(m), metric, buckets)
            for m in MODES
        }
        data[name] = per_mode
        blocks.append(format_grouped_bars(per_mode, title=f"{title} -- {name} (%M)", floatfmt=".1f"))
    return data, "\n\n".join(blocks)


def fig5_minife_comp(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 5: MiniFE call-path contributions to computation time."""
    return _share_figure(
        ["MiniFE-1", "MiniFE-2"], M.COMP, MINIFE_COMP_BUCKETS,
        "Fig. 5: contributions to comp", seed,
    )


def fig6_minife_waitnxn(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 6: MiniFE call-path contributions to all-to-all wait time."""
    return _share_figure(
        ["MiniFE-1", "MiniFE-2"], M.MPI_COLL_WAIT_NXN, MINIFE_WAIT_BUCKETS,
        "Fig. 6: contributions to wait_nxn", seed,
    )


def _paradigm_figure(name: str, title: str, seed: int) -> Tuple[dict, str]:
    res = run_experiment(name, seed)
    data = {MODE_LABELS[m]: group_totals(res.mean_profile(m)) for m in MODES}
    text = format_grouped_bars(data, title=title, floatfmt=".1f")
    return data, text


def fig7_minife2_paradigms(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 7: MiniFE-2 comp/MPI/OpenMP/idle split per mode (%T)."""
    return _paradigm_figure("MiniFE-2", "Fig. 7: MiniFE-2 paradigm split (%T)", seed)


def fig8_lulesh1_paradigms(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 8: LULESH-1 comp/MPI/OpenMP/idle split per mode (%T)."""
    return _paradigm_figure("LULESH-1", "Fig. 8: LULESH-1 paradigm split (%T)", seed)


def fig9_lulesh1_comp_and_delay(seed: int = 0) -> Tuple[dict, str]:
    """Fig. 9: LULESH-1 contributions to comp and to N x N delay costs."""
    res = run_experiment("LULESH-1", seed)
    comp = {
        MODE_LABELS[m]: callpath_shares(res.mean_profile(m), M.COMP, LULESH_BUCKETS)
        for m in MODES
    }
    delay_buckets = LULESH_BUCKETS + ("MPI_Waitall",)
    delay = {
        MODE_LABELS[m]: callpath_shares(res.mean_profile(m), M.DELAY_N2N, delay_buckets)
        for m in MODES
    }
    data = {"comp": comp, "delay_n2n": delay}
    text = (
        format_grouped_bars(comp, title="Fig. 9a: LULESH-1 contributions to comp (%M)", floatfmt=".1f")
        + "\n\n"
        + format_grouped_bars(delay, title="Fig. 9b: LULESH-1 contributions to delay_mpi_collective_n2n (%M)", floatfmt=".1f")
    )
    return data, text
