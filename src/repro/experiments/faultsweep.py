"""Fault-sweep experiment: does noise resilience survive faults?

The paper's central claim is that the deterministic logical timers
(``lt1``, ``ltloop``, ``ltbb``, ``ltstmt``) produce *bit-identical*
traces across noise realizations.  This experiment asks the same
question in a harsher world: a checkpointed ring application is run
under a **fixed fault realization** (rank crashes recovered through the
simulated checkpoint/restart protocol, message loss and duplication,
degraded links, straggler cores) while the machine noise seed varies
across repetitions.

Expected outcome, mirroring the paper's mode taxonomy
(:data:`repro.measure.config.NOISY_MODES`):

* ``lt1``/``ltloop``/``ltbb``/``ltstmt`` -- bit-identical across noise
  repetitions.  The fault schedule is keyed on logical coordinates
  (program progress, message occurrence counts), so the faults, the
  recovery trajectory and every logical timestamp are noise-independent.
* ``tsc`` -- differs: it *is* the noisy physical clock.
* ``lthwctr`` -- differs even with a fixed counter seed: the hardware
  counter charges spin-wait instructions for MPI waiting, and waiting
  times are physical.

``run_fault_sweep`` also sanitizes every recovered trace
(:func:`repro.verify.sanitize_raw`), demonstrating that the
ghost-replayed restart protocol yields traces indistinguishable from a
continuous measurement -- and cross-checks the static **determinism
certificate** (:func:`repro.verify.analyze_determinism`) against the
observed fingerprints: a mode the prover certified ``bit-identical``
must never diverge, and the noisy physical modes must.  A wrong verdict
is a test failure, not a footnote.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.clocks import timestamp_trace
from repro.machine.faults import FaultConfig, FaultModel
from repro.machine.noise import NoiseConfig, NoiseModel
from repro.machine.presets import small_test_cluster
from repro.measure import MODES, Measurement
from repro.measure.config import NOISY_MODES
from repro.sim import (
    Allreduce,
    Checkpoint,
    Compute,
    CostModel,
    Enter,
    Irecv,
    Isend,
    KernelSpec,
    Leave,
    Program,
    Waitall,
    run_with_recovery,
)
from repro.sim.recovery import RecoveryConfig
from repro.util.rng import stream_seed
from repro.verify import (
    BIT_IDENTICAL,
    Severity,
    analyze_determinism,
    has_errors,
    sanitize_raw,
)

__all__ = [
    "CheckpointedRing",
    "FaultSweepResult",
    "default_fault_config",
    "trace_fingerprint",
    "run_fault_sweep",
]


_KERNEL = KernelSpec.balanced(
    "ring-step", flops_per_unit=1e5, bytes_per_unit=0.0, memory_scope="none"
)


class CheckpointedRing(Program):
    """A nearest-neighbour ring with periodic application checkpoints.

    Each iteration: unbalanced compute, a nonblocking ring exchange, an
    allreduce; every ``ckpt_every``-th iteration ends with a coordinated
    :class:`~repro.sim.actions.Checkpoint`.  Small enough to sweep, yet it
    exercises every fault injector: point-to-point traffic (loss,
    duplication, link degradation), compute (stragglers) and enough
    program progress for crash points to land in distinct epochs.
    """

    name = "ring-ckpt"
    phases = ("iterate",)

    def __init__(self, n_ranks: int = 4, iters: int = 12,
                 ckpt_every: int = 4, ckpt_nbytes: float = 1e6):
        self.n_ranks = n_ranks
        self.threads_per_rank = 1
        self.iters = iters
        self.ckpt_every = ckpt_every
        self.ckpt_nbytes = ckpt_nbytes

    def make_rank(self, ctx):
        right = (ctx.rank + 1) % ctx.n_ranks
        left = (ctx.rank - 1) % ctx.n_ranks
        yield Enter("iterate")
        for it in range(self.iters):
            yield Compute(_KERNEL, 5 + ctx.rank)
            r1 = yield Isend(dest=right, tag=7, nbytes=256)
            r2 = yield Irecv(source=left, tag=7)
            yield Waitall([r1, r2])
            yield Allreduce(nbytes=8.0)
            if (it + 1) % self.ckpt_every == 0:
                yield Checkpoint(nbytes=self.ckpt_nbytes)
        yield Leave("iterate")


def default_fault_config() -> FaultConfig:
    """The sweep's default fault intensity: every injector active, and a
    crash window sized to the ring program so crashes actually fire."""
    return FaultConfig(
        crash_probability=0.5,
        crash_max_progress=60,
        message_loss_probability=0.08,
        message_duplication_probability=0.08,
        link_degradation_probability=0.15,
        straggler_probability=0.2,
    )


def trace_fingerprint(tt) -> str:
    """SHA-256 over the trace's logical structure and timestamps.

    Hashes, per location and event: the location id, event type, region
    *name* (names survive re-runs; interned ids do too, but names make
    the fingerprint self-describing) and the raw IEEE-754 bits of the
    timestamp.  Two traces share a fingerprint iff they are bit-identical
    in structure and timing.  Event aux payloads are excluded: match and
    collective ids are arbitrary labels.
    """
    h = hashlib.sha256()
    names = tt.trace.regions.names
    for loc, (evs, ts) in enumerate(zip(tt.trace.events, tt.times)):
        h.update(struct.pack("<qq", loc, len(evs)))
        for ev, t in zip(evs, ts):
            h.update(struct.pack("<q", ev.etype))
            h.update(names[ev.region].encode("utf-8"))
            h.update(struct.pack("<d", t))
    return h.hexdigest()


@dataclass
class FaultSweepResult:
    """Outcome of :func:`run_fault_sweep`."""

    fault_seed: int
    noise_seeds: Tuple[int, ...]
    #: mode -> one trace fingerprint per noise repetition
    fingerprints: Dict[str, List[str]] = field(default_factory=dict)
    #: mode -> restarts survived per repetition
    n_restarts: Dict[str, List[int]] = field(default_factory=dict)
    #: mode -> sanitizer error-diagnostic count summed over repetitions
    sanitizer_errors: Dict[str, int] = field(default_factory=dict)
    #: static certificate verdict per mode (empty when certify=False)
    certificate_verdicts: Dict[str, str] = field(default_factory=dict)
    #: sha256 stamp of the certificate manifest ("" when certify=False)
    certificate_hash: str = ""

    def identical(self, mode: str) -> bool:
        """Whether all repetitions of ``mode`` are bit-identical."""
        fps = self.fingerprints[mode]
        return len(set(fps)) == 1

    @property
    def deterministic_ok(self) -> bool:
        """Bit-identity holds for every swept deterministic logical mode
        and every recovered trace sanitized cleanly."""
        return all(
            self.identical(m) for m in self.fingerprints
            if m not in NOISY_MODES
        ) and not any(self.sanitizer_errors.values())

    def certificate_mismatches(self) -> List[str]:
        """Disagreements between the static certificate and observation.

        The check is directional (the certificate is a *soundness*
        claim): a ``bit-identical`` verdict must never be contradicted
        by an observed divergence, and the noisy physical modes must
        actually diverge when more than one noise seed was swept.  A
        ``noise-sensitive`` verdict on a logical mode accepts either
        observed outcome -- finitely many seeds cannot refute "may
        differ".
        """
        out: List[str] = []
        for mode, fps in self.fingerprints.items():
            verdict = self.certificate_verdicts.get(mode)
            if verdict is None:
                continue
            identical = len(set(fps)) == 1
            if verdict == BIT_IDENTICAL and not identical:
                out.append(
                    f"{mode}: certified {BIT_IDENTICAL} but "
                    f"{len(set(fps))} distinct fingerprints observed"
                )
            if mode in NOISY_MODES and len(fps) >= 2 and identical:
                out.append(
                    f"{mode}: noisy physical mode unexpectedly "
                    "bit-identical across noise seeds"
                )
        return out

    @property
    def certificate_ok(self) -> Optional[bool]:
        """Certificate/observation agreement; ``None`` if not certified."""
        if not self.certificate_verdicts:
            return None
        return not self.certificate_mismatches()

    def report(self) -> str:
        lines = [
            f"fault sweep: fault_seed={self.fault_seed}, "
            f"noise_seeds={list(self.noise_seeds)}"
        ]
        for mode, fps in self.fingerprints.items():
            verdict = self.certificate_verdicts.get(mode)
            expected = (
                f"certified {verdict}" if verdict is not None
                else "may differ (noisy)" if mode in NOISY_MODES
                else "must be identical"
            )
            status = "identical" if self.identical(mode) else "differs"
            lines.append(
                f"  {mode:8s} {status:10s} ({expected}; restarts "
                f"{self.n_restarts[mode]}, sanitizer errors "
                f"{self.sanitizer_errors[mode]})"
            )
        if self.certificate_verdicts:
            for mismatch in self.certificate_mismatches():
                lines.append(f"  certificate mismatch: {mismatch}")
            lines.append(
                f"  certificate sha256: {self.certificate_hash} "
                f"({'agrees with observation' if self.certificate_ok else 'REFUTED'})"
            )
        lines.append(
            "PASS: deterministic logical timers are bit-identical across "
            "noise under faults" if self.deterministic_ok
            else "FAIL: a deterministic mode diverged (or a trace failed "
                 "to sanitize)"
        )
        return "\n".join(lines)


def run_fault_sweep(
    fault_seed: int = 99,
    reps: int = 3,
    base_noise_seed: int = 3,
    modes: Tuple[str, ...] = MODES,
    fault_config: Optional[FaultConfig] = None,
    program: Optional[Program] = None,
    sanitize: bool = True,
    certify: bool = True,
    max_restarts: int = 8,
) -> FaultSweepResult:
    """Sweep noise seeds under one fixed fault realization.

    For each mode in ``modes`` and each of ``reps`` noise seeds
    (``base_noise_seed + rep``), runs ``program`` (default: a 4-rank
    :class:`CheckpointedRing`) through :func:`repro.sim.run_with_recovery`
    with a :class:`~repro.machine.faults.FaultModel` seeded by
    ``fault_seed``, timestamps the recovered trace and fingerprints it.
    The ``lthwctr`` counter seed is held fixed (derived from
    ``fault_seed`` only) so any divergence is attributable to machine
    noise, not counter noise.

    With ``certify`` (the default), the static determinism prover runs
    first and its per-mode verdicts are stored on the result; use
    :attr:`FaultSweepResult.certificate_ok` /
    :meth:`FaultSweepResult.certificate_mismatches` to check the
    certificate against the observed fingerprints.
    """
    cluster = small_test_cluster()
    result = FaultSweepResult(
        fault_seed=fault_seed,
        noise_seeds=tuple(base_noise_seed + r for r in range(reps)),
    )
    if certify:
        cert = analyze_determinism(
            program if program is not None else CheckpointedRing()
        )
        result.certificate_verdicts = dict(cert.mode_verdicts)
        result.certificate_hash = cert.certificate.get("hash", "")
    with obs.span("faultsweep", fault_seed=fault_seed, reps=reps):
        for mode in modes:
            result.fingerprints[mode] = []
            result.n_restarts[mode] = []
            result.sanitizer_errors[mode] = 0
            for noise_seed in result.noise_seeds:
                prog = program if program is not None else CheckpointedRing()
                faults = FaultModel(
                    fault_config if fault_config is not None
                    else default_fault_config(),
                    seed=fault_seed,
                )
                measurement = Measurement(mode)

                def cost_factory(seed=noise_seed):
                    return CostModel(
                        cluster,
                        noise=NoiseModel(NoiseConfig(), seed=seed),
                    )

                outcome = run_with_recovery(
                    prog, cluster, cost_factory, faults,
                    measurement=measurement,
                    recovery=RecoveryConfig(max_restarts=max_restarts),
                )
                trace = outcome.result.trace
                if sanitize:
                    diags = sanitize_raw(trace)
                    if has_errors(diags):
                        result.sanitizer_errors[mode] += sum(
                            1 for d in diags if d.severity == Severity.ERROR
                        )
                tt = timestamp_trace(
                    trace, mode,
                    counter_seed=stream_seed(fault_seed, "faultsweep-ctr"),
                )
                result.fingerprints[mode].append(trace_fingerprint(tt))
                result.n_restarts[mode].append(outcome.n_restarts)
            obs.counter(
                "faultsweep.modes_swept", mode=mode,
                identical=result.identical(mode),
            ).inc()
    return result
