"""The eight benchmark configurations of the paper (Sec. IV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.machine import Cluster, jureca_dc
from repro.sim.program import Program

__all__ = ["ExperimentSpec", "EXPERIMENTS", "experiment_names", "make_app", "make_cluster"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One named experiment: app factory plus job geometry."""

    name: str
    app: Callable[[], Program]
    nodes: int = 1
    #: repetitions of the uninstrumented reference run (paper: five)
    reps_ref: int = 5
    #: repetitions of the noisy measurements tsc and lt_hwctr (paper: five)
    reps_noisy: int = 5
    #: phases reported in the overhead tables ("total" is always included)
    phases: Tuple[str, ...] = ()


def _minife1() -> Program:
    from repro.miniapps.minife import MiniFE, MiniFEConfig

    return MiniFE(MiniFEConfig.minife1())


def _minife2() -> Program:
    from repro.miniapps.minife import MiniFE, MiniFEConfig

    return MiniFE(MiniFEConfig.minife2())


def _lulesh1() -> Program:
    from repro.miniapps.lulesh import Lulesh, LuleshConfig

    return Lulesh(LuleshConfig.lulesh1(steps=10))


def _lulesh2() -> Program:
    from repro.miniapps.lulesh import Lulesh, LuleshConfig

    return Lulesh(LuleshConfig.lulesh2(steps=10))


def _tealeaf(n: int) -> Callable[[], Program]:
    def make() -> Program:
        from repro.miniapps.tealeaf import TeaLeaf, TeaLeafConfig

        return TeaLeaf(TeaLeafConfig.tealeaf(n))

    return make


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "MiniFE-1": ExperimentSpec("MiniFE-1", _minife1, nodes=1, phases=("init", "solve")),
    "MiniFE-2": ExperimentSpec("MiniFE-2", _minife2, nodes=1, phases=("init", "solve")),
    "LULESH-1": ExperimentSpec("LULESH-1", _lulesh1, nodes=2, phases=("lagrange",)),
    "LULESH-2": ExperimentSpec("LULESH-2", _lulesh2, nodes=1, phases=("lagrange",)),
    "TeaLeaf-1": ExperimentSpec("TeaLeaf-1", _tealeaf(1), nodes=1, phases=("solve",)),
    "TeaLeaf-2": ExperimentSpec("TeaLeaf-2", _tealeaf(2), nodes=1, phases=("solve",)),
    "TeaLeaf-3": ExperimentSpec("TeaLeaf-3", _tealeaf(3), nodes=1, phases=("solve",)),
    "TeaLeaf-4": ExperimentSpec("TeaLeaf-4", _tealeaf(4), nodes=1, phases=("solve",)),
}


def experiment_names():
    """All experiment names in the paper's order."""
    return list(EXPERIMENTS)


def make_app(name: str) -> Program:
    try:
        return EXPERIMENTS[name].app()
    except KeyError:
        raise KeyError(f"unknown experiment {name!r}; known: {list(EXPERIMENTS)}") from None


def make_cluster(name: str) -> Cluster:
    return jureca_dc(EXPERIMENTS[name].nodes)
