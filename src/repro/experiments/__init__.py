"""Experiment harness: the paper's eight configurations, end to end.

``run_experiment`` executes the full measurement workflow of the paper's
Sec. IV-B for one configuration -- five uninstrumented reference runs,
an instrumented run per timer mode (five repetitions for the noisy modes
tsc and lt_hwctr, one for the deterministic logical modes), Scalasca-style
analysis of every trace, and averaging of the repeated profiles.  Results
are cached on disk so the benchmark suite can regenerate every table and
figure without re-simulating.
"""

from repro.experiments.configs import EXPERIMENTS, experiment_names, make_app, make_cluster
from repro.experiments.workflow import ExperimentResult, run_experiment, clear_cache
from repro.experiments.faultsweep import (
    FaultSweepResult,
    run_fault_sweep,
    trace_fingerprint,
)
from repro.experiments import reports
from repro.experiments.fitting import fit_omp_effort_constants

__all__ = [
    "EXPERIMENTS",
    "experiment_names",
    "make_app",
    "make_cluster",
    "ExperimentResult",
    "run_experiment",
    "clear_cache",
    "FaultSweepResult",
    "run_fault_sweep",
    "trace_fingerprint",
    "reports",
    "fit_omp_effort_constants",
]
