"""Shared helpers for the simulated mini-apps."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["imbalanced_weights", "region_multipliers", "ring_neighbors"]


def imbalanced_weights(n_ranks: int, imbalance: float, factor: float = 3.0) -> np.ndarray:
    """Per-rank work weights for MiniFE's artificial imbalance option.

    MiniFE's docs (quoted in the paper, Sec. IV-C): "An imbalance of 50 %
    means that one-half of the ranks is assigned three times as many
    elements as the other half."  ``imbalance`` is the fraction of ranks
    that get ``factor`` times the base load; weights are normalised to
    mean 1 so the total work is imbalance-independent.
    """
    check_positive("n_ranks", n_ranks)
    check_nonnegative("imbalance", imbalance)
    if imbalance > 1.0:
        raise ValueError(f"imbalance must be in [0, 1], got {imbalance}")
    heavy = int(round(n_ranks * imbalance))
    w = np.ones(n_ranks)
    w[:heavy] = factor
    return w * (n_ranks / w.sum())


def region_multipliers(n_ranks: int, amplitude: float, seed: int = 12345) -> np.ndarray:
    """Deterministic per-rank cost multipliers for LULESH's material model.

    LULESH's ``-r``/cost option makes ``ApplyMaterialPropertiesForElems``
    artificially more expensive on some ranks.  The multipliers are a
    fixed pseudo-random pattern (independent of the noise seed!) so the
    *same* imbalance appears in every run and in every clock's counts --
    it is an algorithmic property, which is exactly why logical clocks
    can detect it (paper Sec. V-C3).
    """
    check_positive("n_ranks", n_ranks)
    rng = np.random.default_rng(seed)
    return 1.0 + amplitude * rng.random(n_ranks)


def ring_neighbors(rank: int, n_ranks: int) -> List[int]:
    """Left/right neighbours on a 1-D ring (MiniFE's exchange pattern)."""
    if n_ranks <= 1:
        return []
    left = (rank - 1) % n_ranks
    right = (rank + 1) % n_ranks
    return [left] if left == right else [left, right]
