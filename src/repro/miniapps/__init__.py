"""The three mini-apps of the paper's evaluation (Sec. IV).

Each subpackage provides

* ``app``      -- the simulated distributed program (call tree, phase
  structure, communication pattern and imbalance options mirroring the
  real code) executed on :mod:`repro.sim`,
* ``calibration`` -- the kernel work models (flops/bytes/counts per unit)
  with the paper observations they encode documented inline,
* ``numeric``  -- a real (NumPy/SciPy) implementation of the app's core
  computation at reduced scale, used by the examples and to validate the
  algorithmic structure the simulation claims to represent.
"""

from repro.miniapps.minife import MiniFE, MiniFEConfig

__all__ = ["MiniFE", "MiniFEConfig"]


def __getattr__(name):
    """Lazy imports so the subpackages stay independently importable."""
    if name in ("Lulesh", "LuleshConfig"):
        from repro.miniapps import lulesh

        return getattr(lulesh, name)
    if name in ("TeaLeaf", "TeaLeafConfig"):
        from repro.miniapps import tealeaf

        return getattr(tealeaf, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
