"""TeaLeaf: 2-D implicit heat-conduction proxy (C++ port, UoB-HPC)."""

from repro.miniapps.tealeaf.app import TeaLeaf, TeaLeafConfig
from repro.miniapps.tealeaf import calibration
from repro.miniapps.tealeaf.numeric import HeatProblem, solve_step, cg_5point

__all__ = [
    "TeaLeaf",
    "TeaLeafConfig",
    "calibration",
    "HeatProblem",
    "solve_step",
    "cg_5point",
]
