"""Real TeaLeaf numerics at laptop scale.

Implicit 2-D heat conduction: each time step solves
``(I - dt * div(k grad)) u_new = u_old`` with an unpreconditioned CG on
the 5-point stencil -- TeaLeaf's exact algorithm.  Validated against a
dense/scipy reference in the tests and used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.validation import check_positive

__all__ = ["HeatProblem", "cg_5point", "solve_step", "apply_operator"]


@dataclass
class HeatProblem:
    """State of the heat equation on an n x n unit grid."""

    n: int
    u: np.ndarray  # temperature field, shape (n, n)
    conductivity: float = 1.0
    dt: float = 1e-3
    t: float = 0.0

    @staticmethod
    def benchmark(n: int = 128, hot_fraction: float = 0.25) -> "HeatProblem":
        """A tea_bm-style initial state: one hot rectangular region."""
        check_positive("n", n)
        u = np.full((n, n), 0.1)
        k = max(1, int(n * hot_fraction))
        u[:k, :k] = 10.0
        return HeatProblem(n=n, u=u)


def apply_operator(v: np.ndarray, coeff: float) -> np.ndarray:
    """(I - coeff * Laplacian) v with insulated (Neumann) boundaries."""
    lap = np.zeros_like(v)
    lap[1:, :] += v[:-1, :] - v[1:, :]
    lap[:-1, :] += v[1:, :] - v[:-1, :]
    lap[:, 1:] += v[:, :-1] - v[:, 1:]
    lap[:, :-1] += v[:, 1:] - v[:, :-1]
    return v - coeff * lap


def cg_5point(
    rhs: np.ndarray,
    coeff: float,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iters: int = 1000,
) -> Tuple[np.ndarray, int, float]:
    """CG for (I - coeff*Lap) x = rhs; returns (x, iterations, residual).

    The loop body mirrors TeaLeaf's ``tea_leaf_cg_*`` kernels: one stencil
    application (w), two scalar reductions (pw, rrn -- the MPI_Allreduce
    sites in the distributed code) and three vector updates.
    """
    check_positive("max_iters", max_iters)
    x = np.zeros_like(rhs) if x0 is None else x0.astype(float).copy()
    r = rhs - apply_operator(x, coeff)
    p = r.copy()
    rr = float((r * r).sum())
    norm0 = np.sqrt(float((rhs * rhs).sum())) or 1.0
    for it in range(1, max_iters + 1):
        w = apply_operator(p, coeff)  # tea_leaf_cg_calc_w
        pw = float((p * w).sum())  # reduction -> allreduce
        alpha = rr / pw
        x += alpha * p  # tea_leaf_cg_calc_ur
        r -= alpha * w
        rr_new = float((r * r).sum())  # reduction -> allreduce
        if np.sqrt(rr_new) / norm0 < tol:
            return x, it, float(np.sqrt(rr_new))
        p = r + (rr_new / rr) * p  # tea_leaf_cg_calc_p
        rr = rr_new
    return x, max_iters, float(np.sqrt(rr))


def solve_step(problem: HeatProblem, tol: float = 1e-10) -> int:
    """Advance one implicit step in place; returns CG iterations used."""
    coeff = problem.dt * problem.conductivity * problem.n**2  # scaled kappa
    x, iters, _res = cg_5point(problem.u, coeff, x0=problem.u, tol=tol)
    problem.u = x
    problem.t += problem.dt
    return iters
