"""TeaLeaf kernel work models.

TeaLeaf's distinguishing property (paper Sec. IV-E): the 4000^2 problem
"fits neatly into L3 cache" -- 64M doubles = 512 MB against 512 MB of
node-aggregate L3.  All stencil/vector kernels therefore stream at cache
bandwidth until the measurement's trace buffers evict them (the Table II
overheads), and work per thread is almost perfectly balanced (the paper
finds only 2.3-2.6 %T barrier waiting in the counting modes).

A "unit" is one grid row of the rank's strip (ROW_CELLS cells).  Per-row
bytes are *effective* traffic after in-cache reuse, so the absolute
durations come out at a laptop-simulation scale; only ratios matter.

``ITER_COMPRESSION`` is the construct/collective compression factor: the
real benchmark runs tens of thousands of CG iterations; we simulate
``steps x cg_iters`` representative iterations and scale every
per-iteration runtime/instrumentation cost by this factor, which is what
makes the per-construct OpenMP instrumentation cost the dominant TeaLeaf
overhead exactly as in the paper.
"""

from __future__ import annotations

from repro.sim.kernels import KernelSpec

__all__ = [
    "ROW_CELLS",
    "ITER_COMPRESSION",
    "STENCIL",
    "VECTOR_OP",
    "REDUCE_OP",
    "HALO_ROW_BYTES",
]

#: cells per grid row (the benchmark's tea_bm_5: 4000^2 cells)
ROW_CELLS = 4000.0

#: real CG iterations represented by one simulated iteration
ITER_COMPRESSION = 400.0

#: halo exchange: one row of doubles per neighbour
HALO_ROW_BYTES = ROW_CELLS * 8.0

# 5-point stencil w = A p: ~6 flops/cell, effective in-cache traffic.
STENCIL = KernelSpec(
    name="stencil_row",
    flops_per_unit=6.0e3,
    bytes_per_unit=24.0e3,
    omp_iters_per_unit=1.0,
    bb_per_unit=60.0,
    stmt_per_unit=190.0,
    # memory-stalled code retires few instructions per second -- far fewer
    # than MPI's busy-poll loop, which is why lt_hwctr *over*-reports the
    # TeaLeaf-4 all-to-all waits (44 %T vs tsc's 12 %T in the paper)
    instr_per_unit=1.5e3,
    memory_scope="numa",
    additive=True,
    jitter=0.02,
)

# BLAS-1 style u/r/p updates.
VECTOR_OP = KernelSpec(
    name="vector_row",
    flops_per_unit=3.0e3,
    bytes_per_unit=16.0e3,
    omp_iters_per_unit=1.0,
    bb_per_unit=45.0,
    stmt_per_unit=140.0,
    instr_per_unit=1.1e3,
    memory_scope="numa",
    additive=True,
    jitter=0.02,
)

# local dot-product partials
REDUCE_OP = KernelSpec(
    name="reduce_row",
    flops_per_unit=2.0e3,
    bytes_per_unit=12.0e3,
    omp_iters_per_unit=1.0,
    bb_per_unit=40.0,
    stmt_per_unit=120.0,
    instr_per_unit=0.9e3,
    memory_scope="numa",
    additive=True,
    jitter=0.02,
)
