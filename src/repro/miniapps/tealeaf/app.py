"""The simulated TeaLeaf program (paper Sec. IV-E).

Per time step an implicit solve by unpreconditioned CG; per iteration:

::

    update_halo            row exchange with strip neighbours
    tea_leaf_cg_calc_w     w = A p   (5-point stencil) + pw reduction
    MPI_Allreduce          pw        ("the frequent MPI all-to-all
                                       exchanges" of the paper)
    tea_leaf_cg_calc_ur    u/r update + rrn reduction
    MPI_Allreduce          rrn
    tea_leaf_cg_calc_p     p update

Configurations (all one node, 128 hardware threads, benchmark tea_bm_5):

* TeaLeaf-1: 1 rank x 128 threads  (team spans both sockets)
* TeaLeaf-2: 2 ranks x 64 threads  (one socket each -- the optimum)
* TeaLeaf-3: 8 ranks x 16 threads  (one NUMA domain each)
* TeaLeaf-4: 128 ranks x 1 thread  (all-to-all dominated)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.miniapps.tealeaf import calibration as C
from repro.sim.actions import (
    Allreduce,
    Barrier,
    Enter,
    Irecv,
    Isend,
    Leave,
    ParallelFor,
    Waitall,
)
from repro.sim.program import Program, ProgramContext
from repro.util.validation import check_positive

__all__ = ["TeaLeafConfig", "TeaLeaf"]


@dataclass(frozen=True)
class TeaLeafConfig:
    """Job-level knobs of a TeaLeaf run."""

    name: str = "TeaLeaf-2"
    n_ranks: int = 2
    threads_per_rank: int = 64
    grid: int = 4000  # grid edge (grid^2 cells)
    steps: int = 2
    cg_iters: int = 12  # simulated iterations per step
    iter_compression: float = C.ITER_COMPRESSION
    scale: float = 1.0

    @staticmethod
    def tealeaf(n: int, **kw) -> "TeaLeafConfig":
        """The paper's configuration *n* in 1..4."""
        ranks_threads = {1: (1, 128), 2: (2, 64), 3: (8, 16), 4: (128, 1)}
        try:
            ranks, threads = ranks_threads[n]
        except KeyError:
            raise ValueError(f"TeaLeaf configuration must be 1..4, got {n}") from None
        defaults = dict(name=f"TeaLeaf-{n}", n_ranks=ranks, threads_per_rank=threads)
        defaults.update(kw)
        return TeaLeafConfig(**defaults)

    @staticmethod
    def tiny(**kw) -> "TeaLeafConfig":
        defaults = dict(name="TeaLeaf-tiny", n_ranks=2, threads_per_rank=2,
                        grid=256, steps=1, cg_iters=3, iter_compression=4.0)
        defaults.update(kw)
        return TeaLeafConfig(**defaults)


class TeaLeaf(Program):
    """Simulated TeaLeaf; see :class:`TeaLeafConfig`."""

    pinning_policy = "packed"
    phases = ("solve",)

    def __init__(self, config: TeaLeafConfig):
        check_positive("grid", config.grid)
        check_positive("cg_iters", config.cg_iters)
        self.config = config
        self.name = config.name
        self.n_ranks = config.n_ranks
        self.threads_per_rank = config.threads_per_rank
        self.rows_per_rank = config.grid / config.n_ranks  # strip decomposition
        # "the main calculation operates on 4000^2 x 4 = 64M double values"
        self.working_set_bytes = float(config.grid) ** 2 * 4 * 8.0 * config.scale

    def make_rank(self, ctx: ProgramContext) -> Generator:
        cfg = self.config
        ic = cfg.iter_compression
        # narrow strips pay disproportionate halo/packing/blocking costs --
        # part of why the 128-rank configuration loses performance
        surcharge = 1.0 + 12.0 / max(1.0, self.rows_per_rank)
        rows = self.rows_per_rank * cfg.scale * surcharge
        neighbors = []
        if ctx.rank > 0:
            neighbors.append(ctx.rank - 1)
        if ctx.rank < ctx.n_ranks - 1:
            neighbors.append(ctx.rank + 1)

        def halo():
            yield Enter("update_halo")
            reqs = []
            for nb in neighbors:
                reqs.append((yield Irecv(source=nb, tag=9)))
            for nb in neighbors:
                reqs.append((yield Isend(dest=nb, tag=9, nbytes=C.HALO_ROW_BYTES)))
            if reqs:
                yield Waitall(reqs)
            yield Leave("update_halo")

        yield Enter("main")
        yield Barrier()
        yield Enter("solve")
        for _step in range(cfg.steps):
            yield Enter("timestep")
            yield Enter("tea_leaf_init")
            yield ParallelFor("tea_leaf_common_init", C.VECTOR_OP, total_units=rows * 2.0)
            yield Allreduce(nbytes=8.0)
            yield Leave("tea_leaf_init")
            # static scheduling distributes whole rows: with 4000 rows on
            # e.g. 64 threads x 2 ranks some threads get one row more --
            # a *count* imbalance every effort model can see (the paper's
            # 2.3-2.6 %T logical barrier waits)
            t = ctx.n_threads
            base_rows = int(rows // t)
            extra = int(round((rows - base_rows * t)))
            shares = tuple(float(base_rows + (1 if i < extra else 0)) for i in range(t))
            for _it in range(cfg.cg_iters):
                yield from halo()
                yield Enter("tea_leaf_cg_calc_w")
                yield ParallelFor("cg_w_loop", C.STENCIL, total_units=rows * ic,
                                  shares=shares, represents=ic)
                yield ParallelFor("cg_pw_reduce", C.REDUCE_OP, total_units=rows * ic,
                                  shares=shares, represents=ic)
                yield Allreduce(nbytes=8.0, represents=ic)
                yield Leave("tea_leaf_cg_calc_w")
                yield Enter("tea_leaf_cg_calc_ur")
                yield ParallelFor("cg_ur_loop", C.VECTOR_OP, total_units=rows * 2.0 * ic,
                                  shares=shares, represents=ic)
                yield Allreduce(nbytes=8.0, represents=ic)
                yield Leave("tea_leaf_cg_calc_ur")
                yield Enter("tea_leaf_cg_calc_p")
                yield ParallelFor("cg_p_loop", C.VECTOR_OP, total_units=rows * ic,
                                  shares=shares, represents=ic)
                yield Leave("tea_leaf_cg_calc_p")
            yield Leave("timestep")
        yield Leave("solve")
        yield Leave("main")
