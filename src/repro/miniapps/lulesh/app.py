"""The simulated LULESH program (paper Sec. IV-D).

Per time step, mirroring the real code:

::

    TimeIncrement                MPI_Allreduce of the global dt
    LagrangeNodal
      CalcForceForNodes
        IntegrateStressForElems  (parallel loop, memory-heavy)
        CalcHourglassControlForElems
        CommSBN                  (Irecv/Isend/Waitall with face neighbours)
      CalcAccelerationForNodes / CalcPositionForNodes
    LagrangeElements
      CalcLagrangeElements / CalcQForElems
      ApplyMaterialPropertiesForElems   (MATERIAL_LOOPS small OpenMP
                                         loops; artificial rank imbalance)
      CommElements               (second halo exchange)
    CalcTimeConstraintsForElems

Configurations:

* **LULESH-1** -- 64 ranks x 4 threads on two full nodes, artificial
  imbalance on the material update enabled.
* **LULESH-2** -- 27 ranks on one node, imbalance disabled; ranks cannot
  be distributed evenly over the 8 NUMA domains (3 domains carry 4
  ranks, 5 carry 3), so "the main performance problem is the uneven
  contention for memory bandwidth" -- visible to tsc (late senders) but
  to no logical clock except, partially, lt_hwctr.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.miniapps import base
from repro.miniapps.lulesh import calibration as C
from repro.sim.actions import (
    Allreduce,
    Barrier,
    Compute,
    Enter,
    Irecv,
    Isend,
    Leave,
    ParallelFor,
    Waitall,
)
from repro.sim.program import Program, ProgramContext
from repro.util.validation import check_positive

__all__ = ["LuleshConfig", "Lulesh"]


def _cube_root(n: int) -> int:
    r = round(n ** (1.0 / 3.0))
    for c in (r - 1, r, r + 1):
        if c > 0 and c**3 == n:
            return c
    raise ValueError(f"LULESH requires a cube number of ranks, got {n}")


@dataclass(frozen=True)
class LuleshConfig:
    """Job-level knobs of a LULESH run."""

    name: str = "LULESH-1"
    n_ranks: int = 64
    threads_per_rank: int = 4
    edge_elems: int = 50  # elements per rank edge (50^3 per rank)
    steps: int = 12
    #: amplitude of the artificial per-rank cost multiplier on the
    #: material update (0 disables it, as in LULESH-2)
    imbalance: float = 0.2
    pinning: str = "packed"
    scale: float = 1.0

    @staticmethod
    def lulesh1(**kw) -> "LuleshConfig":
        defaults = dict(name="LULESH-1", n_ranks=64, threads_per_rank=4,
                        imbalance=0.2, pinning="packed")
        defaults.update(kw)
        return LuleshConfig(**defaults)

    @staticmethod
    def lulesh2(**kw) -> "LuleshConfig":
        defaults = dict(name="LULESH-2", n_ranks=27, threads_per_rank=4,
                        imbalance=0.0, pinning="balanced_numa")
        defaults.update(kw)
        return LuleshConfig(**defaults)

    @staticmethod
    def tiny(**kw) -> "LuleshConfig":
        defaults = dict(name="LULESH-tiny", n_ranks=8, threads_per_rank=2,
                        edge_elems=10, steps=3)
        defaults.update(kw)
        return LuleshConfig(**defaults)


class Lulesh(Program):
    """Simulated LULESH; see :class:`LuleshConfig`."""

    phases = ("lagrange",)

    def __init__(self, config: LuleshConfig):
        check_positive("steps", config.steps)
        self.config = config
        self.name = config.name
        self.n_ranks = config.n_ranks
        self.threads_per_rank = config.threads_per_rank
        self.pinning_policy = config.pinning
        self._dims3 = (_cube_root(config.n_ranks),) * 3
        self.elems = float(config.edge_elems) ** 3 * config.scale
        self.nodes = float(config.edge_elems + 1) ** 3 * config.scale
        self.material_mult = base.region_multipliers(config.n_ranks, config.imbalance)
        # field data per rank: ~30 element fields + nodal fields
        self.working_set_bytes = self.elems * config.n_ranks * 45 * 8.0

    def make_rank(self, ctx: ProgramContext) -> Generator:
        cfg = self.config
        elems = self.elems
        nodes = self.nodes
        mult = float(self.material_mult[ctx.rank])
        neighbors = sorted(ctx.neighbors_3d(self._dims3).values())

        def halo_post(region: str, tag: int):
            """Pack and post the exchange (communication/compute overlap:
            the real code posts receives early and waits much later)."""
            yield Enter(region)
            yield Compute(C.COMM_PACK, units=len(neighbors) * 800.0)
            reqs = []
            for nb in neighbors:
                reqs.append((yield Irecv(source=nb, tag=tag)))
            for nb in neighbors:
                reqs.append((yield Isend(dest=nb, tag=tag, nbytes=C.FACE_BYTES)))
            yield Leave(region)
            return reqs

        def halo_wait(region: str, reqs):
            yield Enter(region)
            if reqs:
                yield Waitall(reqs)
            yield Compute(C.COMM_PACK, units=len(neighbors) * 800.0)
            yield Leave(region)

        yield Enter("main")
        yield Barrier()
        yield Enter("lagrange")
        for _step in range(cfg.steps):
            yield Enter("TimeIncrement")
            # the global dt selection runs serially on the master
            yield Compute(C.COMM_PACK, units=6000.0)
            yield Allreduce(nbytes=8.0)
            yield Leave("TimeIncrement")

            yield Enter("LagrangeNodal")
            yield Enter("CalcForceForNodes")
            yield ParallelFor("IntegrateStressForElems", C.STRESS, total_units=elems)
            yield ParallelFor("CalcHourglassControlForElems", C.HOURGLASS, total_units=elems)
            # the force exchange waits right after posting: skew between
            # neighbouring ranks accumulated over the force kernels shows
            # up here as late-sender waiting (dominant in LULESH-2, where
            # uneven NUMA occupancy makes some ranks persistently slower)
            reqs = yield from halo_post("CommSBN", tag=3)
            yield from halo_wait("CommSBN", reqs)
            yield Leave("CalcForceForNodes")
            yield ParallelFor("CalcAccelerationForNodes", C.NODAL_UPDATE, total_units=nodes)
            yield ParallelFor("CalcPositionForNodes", C.NODAL_UPDATE, total_units=nodes)
            yield Leave("LagrangeNodal")

            yield Enter("LagrangeElements")
            yield ParallelFor("CalcLagrangeElements", C.KINEMATICS, total_units=elems)
            yield ParallelFor("CalcQForElems", C.Q_CALC, total_units=elems)
            reqs = yield from halo_post("CommMonoQ", tag=5)
            # The monotonic-Q halo exchange completes before the material
            # update, as in the real code; the artificial EOS imbalance
            # therefore accrues *after* the step's last point-to-point
            # synchronisation and lands squarely on the next TimeIncrement
            # allreduce -- which is exactly where the paper's logical
            # measurements see it.
            yield from halo_wait("CommMonoQ", reqs)
            yield Enter("ApplyMaterialPropertiesForElems")
            per_loop = elems * mult / C.MATERIAL_LOOPS
            for _r in range(C.MATERIAL_LOOPS):
                # each emitted construct stands for EOS_SUBLOOPS real
                # "OpenMP loops doing little work each" (paper Sec. V-C3)
                yield ParallelFor(
                    "EvalEOSForElems", C.EOS, total_units=per_loop,
                    represents=C.EOS_SUBLOOPS,
                )
            yield Leave("ApplyMaterialPropertiesForElems")
            yield Leave("LagrangeElements")

            yield Enter("CalcTimeConstraintsForElems")
            yield ParallelFor("CalcCourantConstraint", C.TIME_CONSTRAINTS, total_units=elems)
            # final dt reduction over elements runs serially on the master
            yield Compute(C.COMM_PACK, units=12000.0)
            yield Leave("CalcTimeConstraintsForElems")
        yield Leave("lagrange")
        yield Leave("main")
