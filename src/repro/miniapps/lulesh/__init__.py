"""LULESH: shock-hydrodynamics proxy (LLNL)."""

from repro.miniapps.lulesh.app import Lulesh, LuleshConfig
from repro.miniapps.lulesh import calibration
from repro.miniapps.lulesh.numeric import HydroState, hydro_step, sedov_init, total_energy

__all__ = [
    "Lulesh",
    "LuleshConfig",
    "calibration",
    "HydroState",
    "hydro_step",
    "sedov_init",
    "total_energy",
]
