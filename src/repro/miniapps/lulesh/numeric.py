"""A real (simplified) explicit hydrodynamics step at laptop scale.

A single-domain, staggered-grid compressible hydro solver on a regular
3-D mesh with the structure of LULESH's Lagrange leapfrog: a global
stable-timestep reduction, a nodal update (forces -> acceleration ->
velocity -> position) and an element update (kinematics -> artificial
viscosity -> equation of state).  The physics is deliberately reduced
(fixed mesh connectivity, ideal-gas EOS, linear+quadratic artificial
viscosity) but every phase is real NumPy computation, so the examples
exercise an actual hydro code whose phase structure the simulated LULESH
replays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = ["HydroState", "sedov_init", "hydro_step", "total_energy"]

GAMMA = 5.0 / 3.0


@dataclass
class HydroState:
    """Cell-centred state on an n^3 mesh (1-D arrays of length n^3)."""

    n: int
    dx: float
    rho: np.ndarray  # density
    e: np.ndarray  # specific internal energy
    v: np.ndarray  # cell-centred velocity, shape (3, n^3)
    t: float = 0.0
    step: int = 0

    @property
    def pressure(self) -> np.ndarray:
        return (GAMMA - 1.0) * self.rho * self.e

    def reshaped(self, a: np.ndarray) -> np.ndarray:
        return a.reshape(self.n, self.n, self.n)


def sedov_init(n: int = 24, e0: float = 1.0) -> HydroState:
    """LULESH's standard problem: an energy deposit at a corner.

    The deposit is spread over a small corner block (a single-cell spike
    makes the simplified explicit scheme unstable) and scaled to a
    moderate pressure ratio.
    """
    check_positive("n", n)
    rho = np.ones(n**3)
    e3 = np.full((n, n, n), 1e-6)
    k = max(2, n // 8)
    e3[:k, :k, :k] = e0
    v = np.zeros((3, n**3))
    return HydroState(n=n, dx=1.0 / n, rho=rho, e=e3.ravel(), v=v)


def _grad(field3: np.ndarray, axis: int, dx: float) -> np.ndarray:
    """Central difference with one-sided boundaries."""
    return np.gradient(field3, dx, axis=axis)


def stable_timestep(state: HydroState, cfl: float = 0.3) -> float:
    """Courant limit from the maximum sound + flow speed (the global
    reduction that LULESH's ``TimeIncrement`` performs with
    ``MPI_Allreduce``)."""
    cs = np.sqrt(GAMMA * (GAMMA - 1.0) * np.maximum(state.e, 1e-12))
    vmax = np.abs(state.v).max()
    return cfl * state.dx / float(cs.max() + vmax + 1e-12)


def hydro_step(state: HydroState, q_lin: float = 0.06, q_quad: float = 1.5) -> float:
    """Advance one step in place; returns the dt used.

    Phases correspond to the simulated program's call tree:
    TimeIncrement -> LagrangeNodal (acceleration from pressure gradient,
    velocity, position/compression) -> LagrangeElements (kinematics,
    artificial viscosity, EOS/energy update).
    """
    n, dx = state.n, state.dx
    dt = stable_timestep(state)

    # --- LagrangeNodal: acceleration from grad(p + q), velocity update ---
    p3 = state.reshaped(state.pressure)
    for ax in range(3):
        acc = -_grad(p3, ax, dx).ravel() / np.maximum(state.rho, 1e-12)
        state.v[ax] += dt * acc

    # --- LagrangeElements: kinematics (divergence), viscosity, EOS ---
    div = np.zeros(n**3)
    for ax in range(3):
        div += _grad(state.reshaped(state.v[ax]), ax, dx).ravel()
    # artificial viscosity on compression
    compressing = div < 0.0
    cs = np.sqrt(GAMMA * (GAMMA - 1.0) * np.maximum(state.e, 1e-12))
    q = np.where(
        compressing,
        state.rho * (q_quad * (div * dx) ** 2 + q_lin * cs * np.abs(div) * dx),
        0.0,
    )
    # density and energy updates (Lagrangian mass conservation linearised)
    state.rho = np.maximum(state.rho * (1.0 - dt * div), 1e-8)
    de = -(state.pressure + q) * div * dt / np.maximum(state.rho, 1e-12)
    state.e = np.maximum(state.e + de, 1e-12)

    state.t += dt
    state.step += 1
    return dt


def total_energy(state: HydroState) -> float:
    """Internal + kinetic energy (bounded for a stable run)."""
    cell_vol = state.dx**3
    internal = float((state.rho * state.e).sum() * cell_vol)
    kinetic = float((0.5 * state.rho * (state.v**2).sum(axis=0)).sum() * cell_vol)
    return internal + kinetic
