"""LULESH kernel work models.

Character of the kernels, encoding the paper's Sec. V-C3 observations:

* The **nodal force** kernels (stress integration, hourglass control)
  dominate computation ("CalcForceForNodes ... is responsible for most of
  the computation time") and are *balanced in every static count* but
  carry physical ``jitter`` (data-dependent memory access on gathered
  nodes).  Their imbalance is therefore visible only to tsc (directly)
  and lt_hwctr (as spin instructions in ``MPI_Waitall``) -- "a possible
  explanation is that the nodal calculations are balanced in terms of
  instructions, but timing variations lead to waiting time".

* The **material update** (EOS evaluation) runs many small OpenMP loops
  ("contains many OpenMP loops doing little work each") -- it produces
  most of the OpenMP management overhead -- and carries the *artificial,
  deterministic* rank imbalance, which every effort model from lt_loop up
  can detect.

A "unit" is one element (or node) of the 50^3-per-rank subdomain.
"""

from __future__ import annotations

from repro.sim.kernels import KernelSpec

__all__ = [
    "STRESS",
    "HOURGLASS",
    "NODAL_UPDATE",
    "KINEMATICS",
    "Q_CALC",
    "EOS",
    "TIME_CONSTRAINTS",
    "COMM_PACK",
    "FACE_BYTES",
    "MATERIAL_LOOPS",
    "EOS_SUBLOOPS",
]

#: per-face halo message: 50 x 50 doubles x 3 fields
FACE_BYTES = 50.0 * 50.0 * 8.0 * 3.0

#: number of small OpenMP loops in ApplyMaterialPropertiesForElems (the
#: real code iterates over material regions; each pass is its own
#: ``omp parallel for`` -- the source of its OpenMP management overhead)
MATERIAL_LOOPS = 8

#: real constructs represented by each emitted EvalEOSForElems construct
EOS_SUBLOOPS = 10.0

# Nodal force: memory-heavy gather/scatter with physical jitter.
STRESS = KernelSpec(
    name="integrate_stress_elem",
    flops_per_unit=180.0,
    bytes_per_unit=700.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=27.0,
    stmt_per_unit=112.0,
    instr_per_unit=260.0,
    memory_scope="numa",
    additive=True,
    jitter=0.05,
)

HOURGLASS = KernelSpec(
    name="hourglass_elem",
    flops_per_unit=420.0,
    bytes_per_unit=520.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=41.0,
    stmt_per_unit=95.0,
    instr_per_unit=380.0,
    memory_scope="numa",
    additive=True,
    jitter=0.05,
)

NODAL_UPDATE = KernelSpec(
    name="nodal_update_node",
    flops_per_unit=24.0,
    bytes_per_unit=96.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=5.0,
    stmt_per_unit=15.0,
    instr_per_unit=34.0,
    memory_scope="numa",
    additive=True,
    jitter=0.04,
)

KINEMATICS = KernelSpec(
    name="kinematics_elem",
    flops_per_unit=210.0,
    bytes_per_unit=340.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=19.0,
    stmt_per_unit=60.0,
    instr_per_unit=230.0,
    memory_scope="numa",
    additive=True,
    jitter=0.06,
)

Q_CALC = KernelSpec(
    name="qcalc_elem",
    flops_per_unit=160.0,
    bytes_per_unit=260.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=15.0,
    stmt_per_unit=45.0,
    instr_per_unit=190.0,
    memory_scope="numa",
    additive=True,
    jitter=0.04,
)

# EOS: compute-bound iteration, little data -- per-loop work is small.
EOS = KernelSpec(
    name="eos_elem",
    flops_per_unit=95.0,
    bytes_per_unit=30.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=6.0,
    stmt_per_unit=7.0,
    instr_per_unit=130.0,
    memory_scope="numa",
    jitter=0.02,
)

TIME_CONSTRAINTS = KernelSpec(
    name="time_constraint_elem",
    flops_per_unit=40.0,
    bytes_per_unit=64.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=3.5,
    stmt_per_unit=10.6,
    instr_per_unit=55.0,
    memory_scope="numa",
    jitter=0.02,
)

#: serial halo pack/unpack on the master thread (per exchanged byte-unit)
COMM_PACK = KernelSpec(
    name="comm_pack_unit",
    flops_per_unit=40.0,
    bytes_per_unit=480.0,
    omp_iters_per_unit=0.0,
    bb_per_unit=4.1,
    stmt_per_unit=11.8,
    instr_per_unit=60.0,
    memory_scope="numa",
)
