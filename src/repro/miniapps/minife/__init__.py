"""MiniFE: implicit finite-element proxy (matrix assembly + CG solve)."""

from repro.miniapps.minife.app import MiniFE, MiniFEConfig
from repro.miniapps.minife import calibration
from repro.miniapps.minife.numeric import (
    assemble_poisson_3d,
    cg_solve,
    generate_matrix_structure,
)

__all__ = [
    "MiniFE",
    "MiniFEConfig",
    "calibration",
    "assemble_poisson_3d",
    "cg_solve",
    "generate_matrix_structure",
]
