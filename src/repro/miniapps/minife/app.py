"""The simulated MiniFE program (paper Sec. IV-C).

Phase structure and call tree follow the real mini-app:

::

    main
      generate_matrix_structure        (serial; operator() call bursts,
        MPI_Allreduce                   global size reduction)
      assemble_FE_data                 (OpenMP-parallel element loop)
      make_local_matrix                (serial; MPI_Alltoall exchanges)
      cg_solve                         (iterative CG)
        matvec / exchange_externals    (halo p2p + SpMV parallel loop)
        dot                            (reduction loop + MPI_Allreduce)
        waxpby                         (vector update loops)

The two configurations of the paper:

* **MiniFE-1** -- 8 ranks, one per NUMA domain, 1 thread, 400^3 grid,
  50 % artificial imbalance: "a single, well-defined performance problem"
  (rank-level load imbalance -> Wait-at-NxN).
* **MiniFE-2** -- same with 16 threads per rank: adds single-threaded
  init phases (idle threads) and memory-bandwidth contention in CG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.miniapps import base
from repro.miniapps.minife import calibration as C
from repro.sim.actions import (
    Allreduce,
    Alltoall,
    Barrier,
    CallBurst,
    Enter,
    Irecv,
    Isend,
    Leave,
    ParallelFor,
    Waitall,
)
from repro.sim.program import Program, ProgramContext
from repro.util.validation import check_positive

__all__ = ["MiniFEConfig", "MiniFE"]


@dataclass(frozen=True)
class MiniFEConfig:
    """Job-level knobs of a MiniFE run."""

    name: str = "MiniFE-1"
    nx: int = 400  # global grid edge (nx^3 elements)
    n_ranks: int = 8
    threads_per_rank: int = 1
    imbalance: float = 0.5  # fraction of ranks with 3x elements
    cg_iters: int = 10
    #: burst segments per serial init phase (event-count control)
    init_segments: int = 6
    #: global work multiplier for fast tests
    scale: float = 1.0

    @staticmethod
    def minife1(**kw) -> "MiniFEConfig":
        return MiniFEConfig(name="MiniFE-1", threads_per_rank=1, **kw)

    @staticmethod
    def minife2(**kw) -> "MiniFEConfig":
        return MiniFEConfig(name="MiniFE-2", threads_per_rank=16, **kw)

    @staticmethod
    def tiny(**kw) -> "MiniFEConfig":
        """A seconds-scale configuration for unit tests."""
        defaults = dict(
            name="MiniFE-tiny", nx=64, n_ranks=4, threads_per_rank=2,
            cg_iters=4, init_segments=2,
        )
        defaults.update(kw)
        return MiniFEConfig(**defaults)


class MiniFE(Program):
    """Simulated MiniFE; see :class:`MiniFEConfig` for knobs."""

    #: one rank per NUMA domain, as in both paper configurations
    pinning_policy = "spread_numa"
    phases = ("init", "solve")

    # relative duration weights of the serial init phases, chosen so the
    # tsc Wait-at-NxN attribution lands near the paper's 20/44/31 %M split
    # over generate_matrix_structure / make_local_matrix / cg_solve-dot
    GEN_WEIGHT = 1.1
    ASSEMBLE_WEIGHT = 0.35
    MAKE_LOCAL_WEIGHT = 1.0
    #: make_local_matrix handles external rows, whose count grows faster
    #: than linearly with the subdomain load (bigger subdomains touch more
    #: remote rows per neighbour exchange); the exponent makes the heavy
    #: ranks disproportionately slow here, which is what puts
    #: make_local_matrix at the top of the paper's Wait-at-NxN attribution
    #: (44 %M) ahead of the CG dot products (31 %M).
    MAKE_LOCAL_EXP = 2.2
    #: fraction of the *average* row count added to every rank's matvec as
    #: imbalance-independent work (halo unpacking, vector setup, boundary
    #: rows).  It raises matvec's computation share (paper: 37 %M of comp)
    #: without raising the per-iteration imbalance that feeds the dot
    #: allreduce waits (paper: 31 %M of wait_nxn).
    MATVEC_FIXED_FRAC = 0.35

    def __init__(self, config: MiniFEConfig):
        check_positive("nx", config.nx)
        check_positive("cg_iters", config.cg_iters)
        self.config = config
        self.name = config.name
        self.n_ranks = config.n_ranks
        self.threads_per_rank = config.threads_per_rank
        total_rows = float(config.nx) ** 3 * config.scale
        self.weights = base.imbalanced_weights(config.n_ranks, config.imbalance)
        self.rows_of = self.weights * (total_rows / config.n_ranks)
        self._mean_rows = float(np.mean(self.rows_of))
        # CG vectors + matrix dominate memory; far larger than L3, so the
        # cache model contributes ~nothing here (unlike TeaLeaf).
        self.working_set_bytes = total_rows * (C.MATVEC.bytes_per_unit + 50.0)

    # -- rank program ----------------------------------------------------
    def make_rank(self, ctx: ProgramContext) -> Generator:
        cfg = self.config
        rows = float(self.rows_of[ctx.rank])
        blocks = rows / C.ROWS_PER_UNIT
        mean_rows = self._mean_rows
        mv_rows = rows + self.MATVEC_FIXED_FRAC * mean_rows
        neighbors = base.ring_neighbors(ctx.rank, ctx.n_ranks)

        yield Enter("main")
        yield Barrier()  # MPI_Init / setup synchronisation

        # ---------------- initialisation ----------------
        yield Enter("init")

        yield Enter("generate_matrix_structure")
        seg = blocks * self.GEN_WEIGHT / cfg.init_segments
        # actions are frozen value objects, so loop-invariant ones are
        # built once and re-yielded (the engine keys site caches by value)
        gen_burst = CallBurst("operator()", calls=seg * C.CALLS_PER_UNIT,
                              kernel=C.GEN_STRUCTURE, units=seg)
        for _ in range(cfg.init_segments):
            yield gen_burst
        yield Allreduce(nbytes=64.0)  # global row-count reduction
        yield Leave("generate_matrix_structure")

        yield Enter("assemble_FE_data")
        yield ParallelFor("assemble_loop", C.ASSEMBLE,
                          total_units=blocks * self.ASSEMBLE_WEIGHT)
        yield Leave("assemble_FE_data")

        yield Enter("make_local_matrix")
        w = float(self.weights[ctx.rank])
        ml_blocks = blocks * self.MAKE_LOCAL_WEIGHT * (w ** (self.MAKE_LOCAL_EXP - 1.0))
        seg = ml_blocks / cfg.init_segments
        ml_burst = CallBurst("find_external_rows", calls=seg * C.CALLS_PER_UNIT,
                             kernel=C.MAKE_LOCAL, units=seg)
        for _ in range(cfg.init_segments):
            yield ml_burst
        yield Alltoall(nbytes_per_pair=2048.0)  # external index exchange
        yield Alltoall(nbytes_per_pair=512.0)  # external row owners
        yield Leave("make_local_matrix")

        yield Leave("init")

        # ---------------- CG solve ----------------
        # loop-invariant actions of the CG iteration, built once (value-
        # identical to constructing them inline on every iteration)
        e_matvec, l_matvec = Enter("matvec"), Leave("matvec")
        e_exch, l_exch = Enter("exchange_externals"), Leave("exchange_externals")
        e_dot, l_dot = Enter("dot"), Leave("dot")
        e_wax, l_wax = Enter("waxpby"), Leave("waxpby")
        halo_recvs = [Irecv(source=nb, tag=7) for nb in neighbors]
        halo_sends = [Isend(dest=nb, tag=7, nbytes=C.HALO_BYTES) for nb in neighbors]
        pf_matvec = ParallelFor("matvec_loop", C.MATVEC, total_units=mv_rows)
        pf_dot = ParallelFor("dot_loop", C.DOT, total_units=rows)
        pf_wax2 = ParallelFor("waxpby_loop", C.WAXPBY, total_units=rows * 2.0)
        pf_wax = ParallelFor("waxpby_loop", C.WAXPBY, total_units=rows)
        ar_dot = Allreduce(nbytes=C.ALLREDUCE_BYTES)

        yield Enter("solve")
        yield Enter("cg_solve")
        for _ in range(cfg.cg_iters):
            yield e_matvec
            yield e_exch
            reqs = []
            for irecv in halo_recvs:
                reqs.append((yield irecv))
            for isend in halo_sends:
                reqs.append((yield isend))
            if reqs:
                yield Waitall(reqs)
            yield l_exch
            yield pf_matvec
            yield l_matvec

            yield e_dot
            yield pf_dot
            yield ar_dot
            yield l_dot

            yield e_wax
            yield pf_wax2
            yield l_wax

            yield e_dot
            yield pf_dot
            yield ar_dot
            yield l_dot

            yield e_wax
            yield pf_wax
            yield l_wax
        yield Leave("cg_solve")
        yield Leave("solve")
        yield Leave("main")
