"""Real MiniFE-style numerics at laptop scale.

A 3-D Poisson problem on a regular hexahedral grid: sparse matrix
structure generation, finite-difference assembly (the 7-point analogue of
MiniFE's element stencil), and an unpreconditioned conjugate-gradient
solver -- the same algorithmic skeleton whose distributed execution the
simulation layer models.  Used by the examples and validated against
``scipy.sparse.linalg`` in the tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.util.validation import check_positive

__all__ = ["generate_matrix_structure", "assemble_poisson_3d", "cg_solve"]


def generate_matrix_structure(nx: int) -> Tuple[np.ndarray, np.ndarray]:
    """CSR structure (indptr, indices) of the 7-point stencil on nx^3 nodes.

    Mirrors MiniFE's ``generate_matrix_structure``: pure index arithmetic,
    no floating point -- the phase whose instrumented call density drives
    the paper's lt_1 discussion.
    """
    check_positive("nx", nx)
    n = nx**3
    idx = np.arange(n)
    ix = idx % nx
    iy = (idx // nx) % nx
    iz = idx // (nx * nx)

    cols = [idx]  # diagonal
    masks = []
    for (d, cond) in (
        (-1, ix > 0),
        (+1, ix < nx - 1),
        (-nx, iy > 0),
        (+nx, iy < nx - 1),
        (-nx * nx, iz > 0),
        (+nx * nx, iz < nx - 1),
    ):
        cols.append(np.where(cond, idx + d, -1))
        masks.append(cond)

    all_cols = np.stack(cols, axis=1)
    valid = np.concatenate([np.ones((n, 1), bool), np.stack(masks, axis=1)], axis=1)
    counts = valid.sum(axis=1)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # sort each row's column indices for canonical CSR
    indices = np.empty(indptr[-1], dtype=np.int64)
    flat_cols = all_cols[valid]
    # rows are already grouped; sort within each row
    order = np.argsort(np.repeat(idx, counts) * (7 * n) + flat_cols, kind="stable")
    indices[:] = flat_cols[order]
    return indptr, indices


def assemble_poisson_3d(nx: int) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Assemble the 7-point Poisson operator and a unit source vector.

    The matrix is symmetric positive definite (homogeneous Dirichlet
    boundary handled by the diagonal), so CG is guaranteed to converge.
    """
    check_positive("nx", nx)
    indptr, indices = generate_matrix_structure(nx)
    n = nx**3
    data = np.where(indices == np.repeat(np.arange(n), np.diff(indptr)), 6.0, -1.0)
    a = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    b = np.ones(n)
    return a, b


def cg_solve(
    a: sp.csr_matrix,
    b: np.ndarray,
    max_iters: int = 200,
    tol: float = 1e-8,
    x0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, float]:
    """Unpreconditioned CG (MiniFE's solver).

    Returns ``(x, iterations, final_residual_norm)``.  Structured exactly
    like MiniFE's ``cg_solve``: one matvec, two dots and three waxpby-type
    vector updates per iteration -- the loop shape the simulated program
    replays.
    """
    check_positive("max_iters", max_iters)
    x = np.zeros_like(b) if x0 is None else x0.astype(float).copy()
    r = b - a @ x
    p = r.copy()
    rr = float(r @ r)
    norm_b = float(np.linalg.norm(b)) or 1.0
    for it in range(1, max_iters + 1):
        ap = a @ p  # matvec
        alpha = rr / float(p @ ap)  # dot
        x += alpha * p  # waxpby
        r -= alpha * ap  # waxpby
        rr_new = float(r @ r)  # dot
        if np.sqrt(rr_new) / norm_b < tol:
            return x, it, float(np.sqrt(rr_new))
        p = r + (rr_new / rr) * p  # waxpby
        rr = rr_new
    return x, max_iters, float(np.sqrt(rr))
