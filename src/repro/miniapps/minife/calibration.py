"""MiniFE kernel work models.

The kernels encode the performance character the paper relies on:

* The **assembly** phases (``generate_matrix_structure``,
  ``assemble_FE_data``, ``make_local_matrix``) are call-dense,
  integer/pointer-heavy code: many instrumented calls per unit of time
  (so lt_1 over-weights them -- "unsurprisingly, lt_1 highlights parts of
  the code that contain many inexpensive function calls, i.e., the matrix
  assembly"), high statement counts per flop, *no* OpenMP loop
  iterations (so lt_loop under-weights them and misses the idle threads
  they cause in MiniFE-2), and socket-scope memory traffic (so
  measurement-induced desynchronisation gives the Fig. 2 negative
  overheads).

* The **CG kernels** are classic memory-bound BLAS-1/SpMV code: few
  instrumented calls, one OpenMP loop iteration per row (so lt_loop
  over-weights the cheap vector updates -- "the lt_loop measurement
  overemphasizes regions with many inexpensive loop iterations, i.e.,
  the vector operations in the CG solver"), and NUMA-scope bandwidth
  contention that threads feel but counts do not (the MiniFE-2 memory
  contention that no logical clock can see).

A "unit" is a block of ``ROWS_PER_UNIT`` matrix rows for assembly kernels
and one matrix row for CG kernels.
"""

from __future__ import annotations

from repro.sim.kernels import KernelSpec

__all__ = [
    "ROWS_PER_UNIT",
    "CALLS_PER_UNIT",
    "GEN_STRUCTURE",
    "ASSEMBLE",
    "MAKE_LOCAL",
    "MATVEC",
    "DOT",
    "WAXPBY",
    "HALO_BYTES",
    "ALLREDUCE_BYTES",
]

#: assembly kernels operate on blocks of rows
ROWS_PER_UNIT = 64.0
#: instrumented operator() calls represented per assembly unit (drives the
#: per-event overheads: with the default OverheadModel this puts lt_hwctr's
#: MiniFE-init overhead near the paper's +90 %)
CALLS_PER_UNIT = 3.0

# -- assembly ----------------------------------------------------------------
# ~4.5 us per 64-row block on the reference machine.  Latency-bound pointer
# chasing (``additive=True``): the ALU part does not hide under memory
# stalls, so basic-block/statement counting instrumentation is fully
# exposed here (Table I: MiniFE init +95 % for lt_bb/lt_stmt) while the
# socket-scope memory part responds to measurement-induced
# desynchronisation (the negative tsc/lt_1/lt_loop overheads of Fig. 2).
GEN_STRUCTURE = KernelSpec(
    name="gen_structure_block",
    flops_per_unit=18.0e3,  # ~2 us of serial ALU/index work per block
    bytes_per_unit=108.0e3,  # ~2.4 us at a 45 GB/s socket share
    omp_iters_per_unit=0.0,  # not an OpenMP loop
    bb_per_unit=8.0e3,
    stmt_per_unit=24.0e3,
    instr_per_unit=60.0e3,
    memory_scope="socket",
    additive=True,
)

# Element assembly is streaming/vectorizable: max-roofline, OpenMP-parallel.
ASSEMBLE = KernelSpec(
    name="assemble_block",
    flops_per_unit=18.0e3,
    bytes_per_unit=180.0e3,
    omp_iters_per_unit=64.0,  # one OpenMP loop iteration per row
    bb_per_unit=7.0e3,
    stmt_per_unit=21.0e3,
    instr_per_unit=52.0e3,
    memory_scope="socket",
)

MAKE_LOCAL = KernelSpec(
    name="make_local_block",
    flops_per_unit=16.0e3,
    bytes_per_unit=106.0e3,
    omp_iters_per_unit=0.0,
    bb_per_unit=7.6e3,
    stmt_per_unit=22.8e3,
    instr_per_unit=56.8e3,
    memory_scope="socket",
    additive=True,
)

# -- CG solver (units of one matrix row) --------------------------------------
# 27-point stencil SpMV: ~54 flops and ~250 B of matrix+vector traffic per
# row; firmly memory-bound (the MiniFE-2 contention victim).
MATVEC = KernelSpec(
    name="matvec_row",
    flops_per_unit=54.0,
    bytes_per_unit=320.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=9.0,
    stmt_per_unit=28.0,
    instr_per_unit=70.0,
    memory_scope="numa",
)

DOT = KernelSpec(
    name="dot_row",
    flops_per_unit=2.0,
    bytes_per_unit=16.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=1.2,
    stmt_per_unit=3.5,
    instr_per_unit=9.0,
    memory_scope="numa",
)

WAXPBY = KernelSpec(
    name="waxpby_row",
    flops_per_unit=3.0,
    bytes_per_unit=24.0,
    omp_iters_per_unit=1.0,
    bb_per_unit=1.4,
    stmt_per_unit=4.0,
    instr_per_unit=10.0,
    memory_scope="numa",
)

#: halo exchange message size per neighbour (boundary rows x 8 B)
HALO_BYTES = 400.0 * 400 * 8.0
#: a CG dot product reduces one double
ALLREDUCE_BYTES = 8.0
