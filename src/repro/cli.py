"""Command-line tools.

* ``repro-run``      -- simulate one configuration under one mode and write
  the trace archive.
* ``repro-analyze``  -- analyze a trace archive into a Cube profile.
* ``repro-score``    -- generalized Jaccard score of two profiles.
* ``repro-report``   -- regenerate the paper's tables/figures.
* ``repro-lint``     -- statically lint experiment programs / sanitize
  trace archives (see ``docs/verify.md``).
* ``repro-bench``    -- time the toolchain's hot paths and write
  ``BENCH_repro.json`` (see ``docs/performance.md``).
* ``repro-obs``      -- summarize/export observability archives and diff
  provenance manifests (see ``docs/observability.md``).
* ``repro-faults``   -- run the fault sweep: fixed fault realization,
  varying noise, checks the logical timers' bit-identity (see
  ``docs/robustness.md``).
* ``repro-causal``   -- causal profiler: critical path + wait-state blame,
  cross-run trace alignment, what-if replay, delay propagation (see
  ``docs/causal.md``).
* ``repro-serve``    -- asyncio analysis service over the shared
  content-addressed result cache: single-flight coalescing, adaptive
  batching, backpressure, quotas (see ``docs/serving.md``).
* ``repro-ingest``   -- hardened ingestion of untrusted foreign traces:
  convert, replay, and fuzz (see ``docs/ingest.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main_run", "main_analyze", "main_score", "main_report", "main_lint",
           "main_bench", "main_obs", "main_faults", "main_causal",
           "main_serve", "main_ingest"]


def main_run(argv: Optional[List[str]] = None) -> int:
    """Simulate an experiment configuration and write its trace."""
    from repro.experiments.configs import experiment_names, make_app, make_cluster
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import MODES, Measurement, write_trace
    from repro.sim import CostModel, Engine

    parser = argparse.ArgumentParser(prog="repro-run", description=main_run.__doc__)
    parser.add_argument("experiment", choices=experiment_names())
    parser.add_argument("--mode", choices=list(MODES), default="tsc")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, help="trace output (.json.gz)")
    args = parser.parse_args(argv)

    app = make_app(args.experiment)
    cluster = make_cluster(args.experiment)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=args.seed))
    result = Engine(app, cluster, cost, measurement=Measurement(args.mode)).run()
    print(f"{args.experiment} [{args.mode}] runtime {result.runtime:.4f}s, "
          f"{result.trace.n_events} events, {result.trace.n_locations} locations")
    for phase, dur in sorted(result.phase_times.items()):
        print(f"  phase {phase}: {dur:.4f}s")
    out = args.output or f"{args.experiment}-{args.mode}-s{args.seed}.trace.json.gz"
    from repro import obs

    manifest = obs.build_manifest(
        "trace",
        {
            "experiment": args.experiment,
            "mode": args.mode,
            "seed": args.seed,
            "version": obs.package_version(),
        },
        environment=obs.default_environment(),
    )
    write_trace(result.trace, out, manifest=manifest)
    print(f"trace written to {out} (manifest {manifest['hash'][:12]})")
    return 0


def main_analyze(argv: Optional[List[str]] = None) -> int:
    """Analyze a trace archive into a profile (Scalasca analogue)."""
    from repro.analysis import analyze_trace
    from repro.analysis.metrics import group_totals
    from repro.clocks import timestamp_trace
    from repro.cube import write_profile
    from repro.measure import read_trace

    parser = argparse.ArgumentParser(prog="repro-analyze", description=main_analyze.__doc__)
    parser.add_argument("trace", help="trace archive written by repro-run")
    parser.add_argument("--mode", default=None, help="override the timestamp mode")
    parser.add_argument("--counter-seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, help="profile output (.json.gz)")
    parser.add_argument("--report", action="store_true",
                        help="print the full text report (metric tree, hot "
                             "call paths, load balance)")
    args = parser.parse_args(argv)

    trace = read_trace(args.trace)
    tt = timestamp_trace(trace, args.mode, counter_seed=args.counter_seed)
    profile = analyze_trace(tt)
    print(f"analyzed {trace.n_events} events [{tt.mode}]")
    if args.report:
        from repro.analysis import render_report

        print(render_report(profile))
    else:
        for k, v in group_totals(profile).items():
            print(f"  {k:14s} {v:6.1f} %T")
    out = args.output or args.trace.replace(".trace.", ".profile.")
    write_profile(profile, out)
    print(f"profile written to {out}")
    return 0


def main_score(argv: Optional[List[str]] = None) -> int:
    """Generalized Jaccard score J_(M,C) of two profiles."""
    from repro.cube import read_profile
    from repro.scoring import jaccard_metric_callpath

    parser = argparse.ArgumentParser(prog="repro-score", description=main_score.__doc__)
    parser.add_argument("profile_a")
    parser.add_argument("profile_b")
    args = parser.parse_args(argv)
    a = read_profile(args.profile_a)
    b = read_profile(args.profile_b)
    print(f"J_(M,C) = {jaccard_metric_callpath(a, b):.4f}")
    return 0


def main_report(argv: Optional[List[str]] = None) -> int:
    """Regenerate the paper's tables and figures (uses the result cache)."""
    from repro.experiments import reports

    all_items = {
        "table1": reports.table1_overheads,
        "table2": reports.table2_tealeaf,
        "fig1": lambda seed=0: reports.fig1_metric_tree(),
        "fig2": reports.fig2_minife_init,
        "fig3": reports.fig3_jaccard_minife_lulesh,
        "fig4": reports.fig4_jaccard_tealeaf,
        "fig5": reports.fig5_minife_comp,
        "fig6": reports.fig6_minife_waitnxn,
        "fig7": reports.fig7_minife2_paradigms,
        "fig8": reports.fig8_lulesh1_paradigms,
        "fig9": reports.fig9_lulesh1_comp_and_delay,
    }
    parser = argparse.ArgumentParser(prog="repro-report", description=main_report.__doc__)
    parser.add_argument("items", nargs="*", default=list(all_items),
                        choices=list(all_items) + [[]], help="which tables/figures")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=None,
                        help="processes per measurement campaign (default: "
                             "the REPRO_WORKERS environment variable, else 1)")
    args = parser.parse_args(argv)
    if args.workers is not None:
        import os

        os.environ["REPRO_WORKERS"] = str(args.workers)
    for item in args.items or list(all_items):
        _data, text = all_items[item](seed=args.seed)
        print(text)
        print()

    from repro import obs

    session = obs.active()
    if session is not None:
        # One counter block per experiment campaign the run touched,
        # plus the global span/manifest summary (docs/observability.md).
        print(session.summary_text())
    return 0


def _simulate_for_races(program, cluster=None):
    """Run ``program`` once and return its RawTrace.

    Used by ``repro-lint --races`` on program targets: the race detector
    works on recorded traces, so programs are executed first (fixed
    noise seed; vector-clock concurrency does not depend on the
    realization anyway).  ``cluster`` defaults to the small test
    cluster, which fits every fixture; experiment programs pass their
    configured cluster.
    """
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.machine.presets import small_test_cluster
    from repro.measure import Measurement
    from repro.sim import CostModel, Engine

    if cluster is None:
        cluster = small_test_cluster()
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=0))
    engine = Engine(program, cluster, cost, measurement=Measurement("lt1"))
    return engine.run().trace


def main_lint(argv: Optional[List[str]] = None) -> int:
    """Static program linter, determinism prover and trace race detector.

    ``repro-lint NAME...`` dry-runs the named experiment programs (or
    lint fixtures via ``--fixture``) and reports MPI/OpenMP misuse;
    ``--determinism`` additionally runs the static determinism prover
    (DET rules + per-clock-mode bit-identity certificate) and
    ``--races`` the happened-before race detector (RACE rules) on a
    one-shot simulation of each program; ``repro-lint --trace ARCHIVE``
    sanitizes a recorded trace archive against the happened-before
    invariants for every clock mode (plus ``--races`` on the archive).
    Exit status: 0 clean, 1 findings of error severity (or warnings
    under ``--strict``), 2 usage error.
    """
    import json as _json

    from repro.verify import (
        FIXTURES,
        analyze_determinism,
        find_races,
        fixture_names,
        lint_program,
        make_fixture,
        sanitize_trace,
        worst_severity,
    )

    parser = argparse.ArgumentParser(prog="repro-lint", description=main_lint.__doc__)
    parser.add_argument("names", nargs="*",
                        help="experiment names to lint (see repro-run); "
                             "'all' lints every experiment")
    parser.add_argument("--trace", action="append", default=[],
                        metavar="ARCHIVE",
                        help="sanitize a trace archive written by repro-run "
                             "(repeatable)")
    parser.add_argument("--fixture", action="append", default=[],
                        metavar="NAME",
                        help="lint a built-in buggy fixture program "
                             f"(one of: {', '.join(fixture_names())})")
    parser.add_argument("--selftest", action="store_true",
                        help="lint every built-in fixture and check that "
                             "exactly the expected rules fire")
    parser.add_argument("--determinism", action="store_true",
                        help="also run the static determinism prover on "
                             "each program and print its certificate")
    parser.add_argument("--races", action="store_true",
                        help="also run the vector-clock race detector "
                             "(programs are simulated once; traces are "
                             "checked directly)")
    parser.add_argument("--mode", action="append", default=[],
                        help="restrict --trace timestamp checks to these "
                             "clock modes (repeatable; default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    args = parser.parse_args(argv)

    if args.json:
        args.format = "json"
    if not (args.names or args.trace or args.fixture or args.selftest):
        parser.error("nothing to lint: give experiment names, --trace, "
                     "--fixture or --selftest")

    if args.selftest:
        selftest_ok = True
        for fx in FIXTURES.values():
            got = lint_program(fx.make()).rule_ids()
            if got != set(fx.expected_rules):
                selftest_ok = False
                print(f"selftest {fx.name}: expected "
                      f"{sorted(fx.expected_rules)}, got {sorted(got)}")
        print(f"selftest: {len(FIXTURES)} fixtures "
              f"{'ok' if selftest_ok else 'FAILED'}")
        if not selftest_ok:
            return 1

    # Collect program targets (label, Program) and trace targets.
    programs = []
    names = list(args.names)
    if "all" in names:
        from repro.experiments.configs import experiment_names

        names = experiment_names()
    clusters = {}  # label -> cluster for the --races simulation
    for name in names:
        from repro.experiments.configs import (
            experiment_names,
            make_app,
            make_cluster,
        )

        if name not in experiment_names():
            parser.error(f"unknown experiment {name!r}; "
                         f"known: {experiment_names()}")
        programs.append((name, make_app(name)))
        clusters[name] = make_cluster(name)
    for name in args.fixture:
        try:
            programs.append((f"fixture:{name}", make_fixture(name)))
        except KeyError as exc:
            parser.error(str(exc))

    from repro.measure.config import validate_mode

    try:
        modes = tuple(validate_mode(m) for m in args.mode) or None
    except ValueError as exc:
        parser.error(str(exc))

    failed = False
    results = []  # one dict per target, printed at the end

    def _diag_json(d):
        return {
            "rule": d.rule_id,
            "severity": d.severity,
            "message": d.message,
            "rank": d.rank,
            "location": d.location,
            "call_path": list(d.call_path),
            "action_index": d.action_index,
            "mode": d.mode,
            "witness": list(d.witness),
            "hint": d.hint,
        }

    for label, program in programs:
        diagnostics = []
        entry = {"target": label, "kind": "program"}
        text = []

        lint = lint_program(program)
        diagnostics.extend(lint.diagnostics)
        text.append(lint.format())

        if args.determinism:
            det = analyze_determinism(program)
            diagnostics.extend(det.diagnostics)
            text.append(det.report())
            entry["determinism"] = {
                "order_deterministic": det.order_deterministic,
                "generator_deterministic": det.generator_deterministic,
                "n_sites": len(det.sites),
                "n_racy_sites": det.n_racy_sites,
                "mode_verdicts": dict(det.mode_verdicts),
                "certificate_sha256": det.certificate.get("hash"),
            }

        if args.races:
            # The engine refuses programs the linter already rejects
            # (deadlocks hang, leaked requests trip the online checks),
            # so only simulate lint-clean programs.
            if any(d.severity == "error" for d in lint.diagnostics):
                text.append(f"{label}: race check skipped "
                            "(lint errors prevent simulation)")
                entry["races"] = {"skipped": "lint errors"}
            else:
                races = find_races(
                    _simulate_for_races(program, clusters.get(label))
                )
                diagnostics.extend(races.diagnostics)
                text.append(races.format())
                entry["races"] = {
                    "has_races": races.has_races,
                    "wildcard_sites": dict(races.wildcard_sites),
                    "suppressed": dict(races.suppressed),
                }

        worst = worst_severity(diagnostics)
        bad = worst == "error" or (args.strict and worst == "warning")
        failed |= bad
        entry["ok"] = not bad
        entry["diagnostics"] = [_diag_json(d) for d in diagnostics]
        results.append((entry, "\n".join(text)))

    for path in args.trace:
        from repro.measure import read_trace

        try:
            trace = read_trace(path)
        except OSError as exc:
            parser.error(f"cannot read trace archive {path!r}: {exc}")
        diagnostics = []
        entry = {"target": path, "kind": "trace"}
        text = []

        san = sanitize_trace(trace, modes=modes)
        diagnostics.extend(san.diagnostics)
        text.append(san.format())
        if san.suppressed:
            entry["suppressed"] = dict(san.suppressed)

        if args.races:
            races = find_races(trace)
            diagnostics.extend(races.diagnostics)
            text.append(races.format())
            entry["races"] = {
                "has_races": races.has_races,
                "wildcard_sites": dict(races.wildcard_sites),
                "suppressed": dict(races.suppressed),
            }

        worst = worst_severity(diagnostics)
        bad = worst == "error" or (args.strict and worst == "warning")
        failed |= bad
        entry["ok"] = not bad
        entry["diagnostics"] = [_diag_json(d) for d in diagnostics]
        results.append((entry, "\n".join(text)))

    for entry, text in results:
        if args.format == "json":
            print(_json.dumps(entry))
        else:
            print(text)
    return 1 if failed else 0


def main_bench(argv: Optional[List[str]] = None) -> int:
    """Time the toolchain's hot paths and write ``BENCH_repro.json``.

    With ``--baseline``, any gated wall-time more than ``--threshold``
    times its baseline value fails the run (exit 1) -- the CI smoke gate.
    """
    from pathlib import Path

    from repro.bench import (
        campaign_warnings,
        compare_to_baseline,
        load_bench,
        render_comparison_markdown,
        run_benchmarks,
        write_bench,
    )

    parser = argparse.ArgumentParser(prog="repro-bench", description=main_bench.__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller fixture and fewer repetitions (CI)")
    parser.add_argument("-o", "--output", default="BENCH_repro.json",
                        help="result file (default: %(default)s)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="compare against a committed baseline bench file")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="regression factor that fails the gate "
                             "(default: %(default)s)")
    parser.add_argument("--min-engine-speedup", type=float, default=0.0,
                        metavar="X",
                        help="fail unless the vectorized engine is at least "
                             "X times faster than the legacy walk in this "
                             "same run (0 disables; CI uses 1.5)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the campaign benchmark "
                             "(default: %(default)s)")
    parser.add_argument("--compare", default=None, metavar="PATH",
                        help="write a markdown comparison table against this "
                             "baseline bench file (the CI artifact; does not "
                             "gate -- use --baseline for gating)")
    parser.add_argument("--compare-output", default="BENCH_compare.md",
                        metavar="PATH",
                        help="where --compare writes the markdown table "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    doc = run_benchmarks(quick=args.quick, workers=args.workers)
    write_bench(doc, Path(args.output))
    print(f"bench results written to {args.output}")
    for warning in campaign_warnings(doc):
        print(f"WARNING {warning}")

    if args.compare:
        compare_base = load_bench(Path(args.compare))
        if compare_base is None:
            print(f"cannot read comparison baseline {args.compare!r}")
            return 2
        md = render_comparison_markdown(doc, compare_base, args.threshold)
        Path(args.compare_output).write_text(md)
        print(f"comparison table written to {args.compare_output}")

    if args.baseline or args.min_engine_speedup > 0.0:
        if args.baseline:
            baseline = load_bench(Path(args.baseline))
            if baseline is None:
                print(f"cannot read baseline {args.baseline!r}")
                return 2
        else:
            baseline = doc  # self-comparison: only the speedup gate applies
        problems = compare_to_baseline(
            doc, baseline, args.threshold,
            min_engine_speedup=args.min_engine_speedup)
        if problems:
            for p in problems:
                print(f"REGRESSION {p}")
            return 1
        print(f"no regressions vs {args.baseline or 'self'} "
              f"(threshold {args.threshold:g}x)")
    return 0


def _load_cli_manifest(path: str, parser: argparse.ArgumentParser) -> dict:
    """Provenance manifest of any supported artifact, for ``repro-obs diff``.

    Dispatches on the artifact: ``.npz``/gzipped trace archives carry the
    manifest in their header, observability archives carry the manifests
    they collected (the first is compared), and plain JSON files are
    treated as raw manifest documents.
    """
    import json as _json
    from pathlib import Path

    from repro import obs

    try:
        if path.endswith(".npz") or path.endswith(".gz"):
            from repro.measure import read_manifest

            manifest = read_manifest(path)
            if manifest is None:
                parser.error(f"{path}: trace archive has no embedded manifest")
            return manifest
        doc = _json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        parser.error(f"cannot read {path!r}: {exc}")
    fmt = doc.get("format")
    if fmt == obs.MANIFEST_FORMAT:
        return doc
    if fmt == obs.ARCHIVE_FORMAT:
        manifests = doc.get("manifests", [])
        if not manifests:
            parser.error(f"{path}: observability archive collected no manifests")
        return manifests[0]
    parser.error(f"{path}: neither a manifest, an obs archive nor a trace "
                 f"archive (format={fmt!r})")


def main_obs(argv: Optional[List[str]] = None) -> int:
    """Inspect observability archives and provenance manifests.

    ``repro-obs summary ARCHIVE`` prints per-experiment counters, span
    wall times and collected manifests of an archive written via
    ``REPRO_OBS=1`` / ``ObsSession.save``; ``repro-obs export ARCHIVE
    --chrome`` converts it to Chrome trace-event JSON (load in
    ui.perfetto.dev or chrome://tracing); ``repro-obs diff A B`` compares
    the provenance manifests of two artifacts and exits 1 when their
    configuration hashes differ.
    """
    import json as _json
    from pathlib import Path

    from repro import obs

    parser = argparse.ArgumentParser(prog="repro-obs", description=main_obs.__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    p_sum = sub.add_parser("summary", help="per-experiment counters + span table")
    p_sum.add_argument("archive")
    p_exp = sub.add_parser("export", help="convert an archive for other tools")
    p_exp.add_argument("archive",
                       help="obs archive, or a .shards trace archive "
                            "(streams with --chrome)")
    p_exp.add_argument("--chrome", action="store_true",
                       help="write Chrome trace-event JSON (Perfetto)")
    p_exp.add_argument("-o", "--output", default=None,
                       help="output path (default: ARCHIVE.chrome.json)")
    p_diff = sub.add_parser("diff", help="compare two provenance manifests")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    args = parser.parse_args(argv)

    if args.cmd == "summary":
        print(obs.summary_text(obs.load_archive(args.archive)))
        return 0
    if args.cmd == "export":
        if args.archive.endswith(".shards"):
            # an engine-trace shard archive, not an obs archive: stream
            # it shard-at-a-time into Chrome trace events
            if not args.chrome:
                parser.error(f"{args.archive}: shard archives only export "
                             "with --chrome")
            from repro.measure.shards import open_sharded_trace

            sharded = open_sharded_trace(args.archive)
            out = args.output or args.archive + ".chrome.json"
            n = obs.write_trace_chrome(out, [obs.trace_chrome_events(sharded)])
            print(f"chrome trace written to {out} ({n} events, peak "
                  f"{sharded.stats.peak_resident_rows} resident rows; "
                  "open in ui.perfetto.dev)")
            return 0
        doc = obs.load_archive(args.archive)
        if args.chrome:
            out = args.output or args.archive + ".chrome.json"
            Path(out).write_text(_json.dumps(obs.to_chrome(doc)) + "\n")
            print(f"chrome trace written to {out} (open in ui.perfetto.dev)")
        else:
            print(obs.span_table(doc))
            print()
            print(obs.metrics_table(doc))
        return 0
    # diff
    ma = _load_cli_manifest(args.a, parser)
    mb = _load_cli_manifest(args.b, parser)
    for line in obs.diff_manifests(ma, mb):
        print(line)
    if ma.get("hash") == mb.get("hash"):
        print(f"manifests match (hash {ma.get('hash', '')[:12]})")
        return 0
    return 1


def main_faults(argv: Optional[List[str]] = None) -> int:
    """Fault sweep: fixed fault realization, varying machine noise.

    Runs the checkpointed ring application through the simulated
    checkpoint/restart protocol under injected faults (crashes, message
    loss/duplication, degraded links, stragglers), once per noise seed,
    and reports whether each clock mode's recovered trace is
    bit-identical across the noise repetitions, cross-checked against
    the static determinism certificate.  Exit status: 0 when every
    deterministic logical mode is bit-identical, all traces sanitize
    cleanly and the certificate agrees with observation, 1 otherwise.
    """
    from repro.experiments.faultsweep import default_fault_config, run_fault_sweep
    from repro.machine.faults import FaultConfig
    from repro.measure import MODES
    from repro.measure.config import validate_mode

    parser = argparse.ArgumentParser(prog="repro-faults",
                                     description=main_faults.__doc__)
    parser.add_argument("--fault-seed", type=int, default=99,
                        help="seed of the fault realization "
                             "(default: %(default)s)")
    parser.add_argument("--reps", type=int, default=3,
                        help="noise repetitions per mode (default: %(default)s)")
    parser.add_argument("--noise-seed", type=int, default=3,
                        help="first noise seed; rep r uses noise-seed + r "
                             "(default: %(default)s)")
    parser.add_argument("--mode", action="append", default=[],
                        help="restrict to these clock modes (repeatable; "
                             "default: all)")
    parser.add_argument("--intensity", type=float, default=1.0,
                        help="scale every fault probability by this factor "
                             "(default: %(default)s)")
    parser.add_argument("--max-restarts", type=int, default=8,
                        help="give up past this many restarts per run "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    try:
        modes = tuple(validate_mode(m) for m in args.mode) or tuple(MODES)
    except ValueError as exc:
        parser.error(str(exc))
    config: FaultConfig = default_fault_config().scaled(args.intensity)
    result = run_fault_sweep(
        fault_seed=args.fault_seed,
        reps=args.reps,
        base_noise_seed=args.noise_seed,
        modes=modes,
        fault_config=config,
        max_restarts=args.max_restarts,
    )
    print(result.report())
    ok = result.deterministic_ok and result.certificate_ok is not False
    return 0 if ok else 1


def _load_trace_like(path: str):
    """Open a trace archive: ``.shards`` streams, ``.json.gz`` loads."""
    if str(path).endswith(".shards"):
        from repro.measure.shards import open_sharded_trace

        return open_sharded_trace(path)
    from repro.measure import read_trace

    return read_trace(path)


def main_causal(argv: Optional[List[str]] = None) -> int:
    """Causal profiler over recorded traces.

    ``repro-causal blame TRACE`` builds the happened-before DAG, extracts
    the critical path and attributes every wait state back to the
    compute/transfer edges that caused it (writes a JSON report and
    optionally a Cube blame profile for ``repro-score``/``cube.diff``).
    ``repro-causal align REF OTHER...`` warps other runs' timelines onto
    the reference run's collective markers and streams one overlaid
    Chrome trace (Perfetto-loadable).  ``repro-causal whatif TRACE
    --scale REGION=F ...`` predicts the edited run's logical timeline,
    optionally validated bit-for-bit against a full engine
    re-simulation.  ``repro-causal delayprop`` runs the delay
    propagation/decay experiment (Afzal/Hager/Wellein wavefront).  See
    ``docs/causal.md``.
    """
    import json as _json

    parser = argparse.ArgumentParser(prog="repro-causal",
                                     description=main_causal.__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_blame = sub.add_parser("blame", help="critical path + wait-state blame")
    p_blame.add_argument("trace", help="trace archive (.json.gz or .shards)")
    p_blame.add_argument("--mode", default=None,
                         help="clock mode (default: the trace's own)")
    p_blame.add_argument("--counter-seed", type=int, default=0)
    p_blame.add_argument("--top", type=int, default=10,
                         help="critical-path rows to print (default: %(default)s)")
    p_blame.add_argument("-o", "--output", default=None,
                         help="JSON report path (default: TRACE.blame.json)")
    p_blame.add_argument("--profile", default=None,
                         help="also write the Cube blame profile here")

    p_align = sub.add_parser("align", help="overlay runs on one timeline")
    p_align.add_argument("reference", help="reference trace archive")
    p_align.add_argument("others", nargs="+", help="trace archives to align")
    p_align.add_argument("-o", "--output", default="aligned.chrome.json",
                         help="Chrome trace output (default: %(default)s)")

    p_what = sub.add_parser("whatif", help="edited-cost replay prediction")
    p_what.add_argument("trace", help="trace archive (.json.gz or .shards)")
    p_what.add_argument("--mode", default=None,
                        help="replay mode (default: the trace's own; must be "
                             "a deterministic logical mode)")
    p_what.add_argument("--scale", action="append", default=[],
                        metavar="REGION=FACTOR",
                        help="scale a region's work (repeatable)")
    p_what.add_argument("--scale-rank", action="append", default=[],
                        metavar="RANK=FACTOR",
                        help="scale a whole rank's work (repeatable)")
    p_what.add_argument("--drop", action="append", default=[], metavar="REGION",
                        help="drop a region's work entirely (repeatable)")
    p_what.add_argument("--validate", default=None, metavar="EXPERIMENT",
                        help="validate against a fresh engine run of this "
                             "experiment configuration")
    p_what.add_argument("--seed", type=int, default=0,
                        help="noise seed of the validation re-run")
    p_what.add_argument("-o", "--output", default=None,
                        help="JSON result path (default: print only)")

    p_dp = sub.add_parser("delayprop", help="delay propagation/decay study")
    p_dp.add_argument("--mode", default="ltbb")
    p_dp.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    p_dp.add_argument("--iters", type=int, default=10)
    p_dp.add_argument("--delay-rank", type=int, default=0)
    p_dp.add_argument("--delay-iter", type=int, default=2)
    p_dp.add_argument("--delay-units", type=float, default=200.0)
    p_dp.add_argument("--no-whatif", action="store_true",
                      help="skip the drop-region what-if cross-check")
    p_dp.add_argument("-o", "--output", default=None,
                      help="JSON result path (default: print only)")
    args = parser.parse_args(argv)

    if args.cmd == "blame":
        from repro.causal import blame_profile, build_dag, critical_path_table
        from repro.cube import write_profile

        trace = _load_trace_like(args.trace)
        dag = build_dag(trace, args.mode, counter_seed=args.counter_seed)
        prof = blame_profile(dag)
        cp = dag.critical_path()
        print(f"mode {dag.mode}: {dag.n_events} events, {dag.n_nodes} sync "
              f"nodes, makespan {dag.makespan:g}, total wait "
              f"{dag.total_wait():g}")
        print(f"critical path: {len(cp)} nodes, fingerprint "
              f"{dag.critical_path_fingerprint()[:16]}")
        rows = critical_path_table(dag, top=args.top)
        if rows:
            width = max(len(r[0]) for r in rows)
            print(f"{'call path':<{width}}  {'hops':>5}  "
                  f"{'work':>12}  {'wait':>12}")
            for path, hops, work, wait in rows:
                print(f"{path:<{width}}  {hops:>5}  {work:>12g}  {wait:>12g}")
        report = {
            "trace": args.trace,
            "mode": dag.mode,
            "makespan": dag.makespan,
            "total_wait": dag.total_wait(),
            "critical_path_len": len(cp),
            "critical_path_fingerprint": dag.critical_path_fingerprint(),
            "rows": [{"path": p, "hops": h, "work": wk, "wait": wt}
                     for p, h, wk, wt in rows],
            "blame": {
                metric: sum(prof.cells(metric).values())
                for metric in prof.metrics
            },
        }
        out = args.output or args.trace + ".blame.json"
        with open(out, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"blame report written to {out}")
        if args.profile:
            write_profile(prof, args.profile)
            print(f"blame profile written to {args.profile}")
        return 0

    if args.cmd == "align":
        from repro.causal import ClockAligner
        from repro.obs import trace_chrome_events, write_trace_chrome

        reference = _load_trace_like(args.reference)
        aligner = ClockAligner(reference)
        if aligner.n_markers() == 0:
            parser.error(f"{args.reference}: no alignment markers "
                         "(collectives/restarts) in the reference trace")
        exports = [trace_chrome_events(reference, label="ref")]
        pid_stride = max(r for r, _t in reference.locations) + 1
        for k, path in enumerate(args.others):
            other = _load_trace_like(path)
            aligned = aligner.align(other, label=f"run{k + 1}")
            print(f"{path}: raw skew {aligner.raw_skew(other):g} -> residual "
                  f"{aligner.residual_skew(aligned):g} "
                  f"({len(aligner.ref_markers)} marker locations)")
            exports.append(trace_chrome_events(
                aligned.trace, map_t=aligned.map_t,
                pid_offset=(k + 1) * pid_stride, label=aligned.label))
        n = write_trace_chrome(args.output, exports)
        print(f"{n} events written to {args.output} (open in ui.perfetto.dev)")
        return 0

    if args.cmd == "whatif":
        from repro.causal import (
            drop_region,
            run_whatif,
            scale_rank,
            scale_region,
            validate_whatif,
        )

        edits = []
        try:
            for spec in args.scale:
                region, _, factor = spec.rpartition("=")
                edits.append(scale_region(region, float(factor)))
            for spec in args.scale_rank:
                rank, _, factor = spec.rpartition("=")
                edits.append(scale_rank(int(rank), float(factor)))
        except ValueError as exc:
            parser.error(f"bad edit spec: {exc}")
        edits.extend(drop_region(region) for region in args.drop)
        if not edits:
            parser.error("no edits given (--scale/--scale-rank/--drop)")
        trace = _load_trace_like(args.trace)
        result = run_whatif(trace, edits, args.mode)
        for e in result.edits:
            print(f"edit: {e.describe()}")
        print(f"mode {result.mode}: makespan {result.baseline_makespan:g} -> "
              f"{result.makespan:g} (speedup {result.speedup:.4g})")
        doc = result.to_json()
        if args.validate:
            from repro.experiments.configs import make_app, make_cluster
            from repro.machine.noise import NoiseConfig, NoiseModel
            from repro.measure import Measurement
            from repro.sim import CostModel, Engine

            def rerun():
                cluster = make_cluster(args.validate)
                cost = CostModel(cluster,
                                 noise=NoiseModel(NoiseConfig(),
                                                  seed=args.seed))
                return Engine(make_app(args.validate), cluster, cost,
                              measurement=Measurement(trace.mode)).run().trace

            v = validate_whatif(result, rerun)
            doc["validation"] = v.to_json()
            print(f"engine re-simulation oracle: "
                  f"{'bit-identical' if v.ok else 'MISMATCH'} "
                  f"(max |diff| {v.max_abs_diff:g})")
            if not v.ok:
                return 1
        if args.output:
            with open(args.output, "w") as fh:
                _json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"what-if result written to {args.output}")
        return 0

    # delayprop
    from repro.experiments.delayprop import run_delay_propagation
    from repro.measure.config import NOISY_MODES

    result = run_delay_propagation(
        mode=args.mode,
        seeds=args.seeds,
        iters=args.iters,
        delay_rank=args.delay_rank,
        delay_iter=args.delay_iter,
        delay_units=args.delay_units,
        check_whatif=not args.no_whatif,
    )
    print(result.report())
    if args.output:
        with open(args.output, "w") as fh:
            _json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"delayprop result written to {args.output}")
    ok = True
    if result.mode not in NOISY_MODES and not result.seed_invariant:
        ok = False
    if result.whatif_ok is not None and not all(result.whatif_ok.values()):
        ok = False
    return 0 if ok else 1


def main_serve(argv: Optional[List[str]] = None) -> int:
    """Run or exercise the analysis service (see ``docs/serving.md``).

    ``repro-serve run`` boots the asyncio HTTP service over the shared
    result cache; ``repro-serve load HOST:PORT EXPERIMENT`` drives the
    cold/warm/coalesced load phases against a running service and
    prints the latency/identity report.
    """
    import asyncio as _asyncio
    import json as _json

    parser = argparse.ArgumentParser(prog="repro-serve",
                                     description=main_serve.__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="boot the service")
    p_run.add_argument("--host", default="127.0.0.1")
    p_run.add_argument("--port", type=int, default=8337)
    p_run.add_argument("--workers", type=int, default=None,
                       help="pool size (default: REPRO_WORKERS, else 1)")
    p_run.add_argument("--cache-dir", default=None,
                       help="store root (default: the workflow cache)")
    p_run.add_argument("--cache-max-bytes", type=int, default=None,
                       help="LRU budget (default: REPRO_CACHE_MAX_BYTES)")
    p_run.add_argument("--queue-limit", type=int, default=64)
    p_run.add_argument("--tenant-rate", type=float, default=20.0,
                       help="quota tokens/second per tenant")
    p_run.add_argument("--tenant-burst", type=float, default=40.0)

    p_load = sub.add_parser("load", help="cold/warm/coalesced load phases")
    p_load.add_argument("target", help="HOST:PORT of a running service")
    p_load.add_argument("experiment")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--coalesce", type=int, default=4,
                        help="concurrent clients in the coalesced phase")
    p_load.add_argument("--json", action="store_true",
                        help="print the raw report document")
    args = parser.parse_args(argv)

    if args.cmd == "run":
        from repro.serve.service import ServeConfig, run_service

        run_service(ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            cache_dir=args.cache_dir, cache_max_bytes=args.cache_max_bytes,
            queue_limit=args.queue_limit, tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
        ))
        return 0

    # load
    from repro.serve.client import format_load_report, run_load

    host, _sep, port = args.target.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"target must be HOST:PORT, got {args.target!r}")
    report = _asyncio.run(run_load(host, int(port), args.experiment,
                                   seed=args.seed, coalesce=args.coalesce))
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_load_report(report))
    ok = report["warm_identical"] and report["coalesce_identical"] \
        and report["coalesce_statuses"] == [200]
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_report())


def main_ingest(argv: Optional[List[str]] = None) -> int:
    """Hardened ingestion of untrusted foreign traces (``docs/ingest.md``).

    ``repro-ingest convert INPUT`` parses/salvages a Chrome trace-event
    JSON or ``repro-commops-1`` file under hard resource caps, prints
    the ingest report and (for Chrome inputs) writes a canonical trace
    archive; rejected inputs are quarantined as ``*.corrupt-N``.
    ``repro-ingest replay INPUT`` additionally replays the result --
    logical-clock finals for traces, a full engine run for comm-op
    programs.  ``repro-ingest fuzz`` runs the seeded corpus-mutation
    fuzzer asserting the parse/repair/reject contract.

    Exit status: 0 accepted, 2 rejected, 1 contract violation (fuzz).
    """
    import json as _json

    parser = argparse.ArgumentParser(prog="repro-ingest",
                                     description=main_ingest.__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    def add_common(p):
        p.add_argument("input", help="foreign trace file (.json/.json.gz)")
        p.add_argument("--format", choices=("chrome", "commops"),
                       default=None, help="skip format sniffing")
        p.add_argument("--no-quarantine", action="store_true",
                       help="leave rejected inputs in place")
        p.add_argument("--max-bytes", type=int, default=None)
        p.add_argument("--max-events", type=int, default=None)
        p.add_argument("--timeout", type=float, default=None,
                       help="wall-clock cap in seconds")
        p.add_argument("--report", default=None,
                       help="write the JSON ingest report here")

    p_conv = sub.add_parser("convert", help="parse/salvage + archive")
    add_common(p_conv)
    p_conv.add_argument("-o", "--output", default=None,
                        help="canonical archive path "
                             "(default: INPUT.ingested.trace.json.gz)")

    p_rep = sub.add_parser("replay", help="ingest + replay")
    add_common(p_rep)
    p_rep.add_argument("--mode", default=None,
                       help="clock/measurement mode (default: the "
                            "trace's own; 'tsc' for programs)")
    p_rep.add_argument("--seed", type=int, default=1)

    p_fuzz = sub.add_parser("fuzz", help="corpus-mutation fuzzer")
    p_fuzz.add_argument("-n", "--n-per-corpus", type=int, default=200)
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--json", action="store_true",
                        help="print machine-readable stats")

    args = parser.parse_args(argv)

    if args.cmd == "fuzz":
        from repro.ingest.fuzz import run_fuzz

        stats = run_fuzz(n_per_corpus=args.n_per_corpus, seed=args.seed,
                         progress=lambda msg: print(msg, file=sys.stderr))
        if args.json:
            print(_json.dumps({
                "n_inputs": stats.n_inputs,
                "accepted": stats.accepted,
                "repaired": stats.repaired,
                "rejected": stats.rejected,
                "rule_counts": stats.rule_counts,
                "failures": [f.reason for f in stats.failures],
            }, indent=2, sort_keys=True))
        else:
            print(stats.format())
        return 0 if stats.ok else 1

    from repro.ingest import IngestError, IngestLimits, ingest_file

    kw = {}
    if args.max_bytes is not None:
        kw["max_bytes"] = args.max_bytes
    if args.max_events is not None:
        kw["max_events"] = args.max_events
    if args.timeout is not None:
        kw["timeout_seconds"] = args.timeout
    limits = IngestLimits(**kw) if kw else IngestLimits()

    def emit(report):
        print(report.format())
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")

    try:
        result = ingest_file(args.input, fmt=args.format, limits=limits,
                             quarantine=not args.no_quarantine)
    except IngestError as exc:
        emit(exc.report)
        if exc.report.quarantine_path:
            print(f"quarantined: {exc.report.quarantine_path}",
                  file=sys.stderr)
        return 2
    emit(result.report)

    if args.cmd == "convert":
        if result.kind == "trace":
            from repro.measure import write_trace

            out = args.output or f"{args.input}.ingested.trace.json.gz"
            write_trace(result.trace, out)
            print(f"wrote {out}")
        else:
            from repro.ingest.commops import commops_doc

            out = args.output or f"{args.input}.ingested.commops.json"
            with open(out, "w", encoding="utf-8") as fh:
                _json.dump(commops_doc(result.program), fh)
                fh.write("\n")
            print(f"wrote {out}")
        return 0

    # replay
    if result.kind == "trace":
        from repro.ingest.replay import replay_clock_finals

        finals = replay_clock_finals(result.trace, mode=args.mode)
        mode = args.mode or result.trace.mode
        print(f"replayed {result.trace.n_locations} location(s) "
              f"under {mode}:")
        for loc, final in enumerate(finals):
            rank, thread = result.trace.locations[loc]
            print(f"  rank {rank} thread {thread}: final={final:.9g}")
    else:
        from repro.ingest.replay import replay_program

        sim = replay_program(result.program, mode=args.mode,
                             seed=args.seed)
        print(f"replayed {result.program.n_ranks}-rank program "
              f"({result.program.n_ops} op(s)): "
              f"runtime={sim.runtime:.9g}s")
    return 0
