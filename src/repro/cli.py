"""Command-line tools.

* ``repro-run``      -- simulate one configuration under one mode and write
  the trace archive.
* ``repro-analyze``  -- analyze a trace archive into a Cube profile.
* ``repro-score``    -- generalized Jaccard score of two profiles.
* ``repro-report``   -- regenerate the paper's tables/figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main_run", "main_analyze", "main_score", "main_report"]


def main_run(argv: Optional[List[str]] = None) -> int:
    """Simulate an experiment configuration and write its trace."""
    from repro.experiments.configs import experiment_names, make_app, make_cluster
    from repro.machine.noise import NoiseConfig, NoiseModel
    from repro.measure import MODES, Measurement, write_trace
    from repro.sim import CostModel, Engine

    parser = argparse.ArgumentParser(prog="repro-run", description=main_run.__doc__)
    parser.add_argument("experiment", choices=experiment_names())
    parser.add_argument("--mode", choices=list(MODES), default="tsc")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, help="trace output (.json.gz)")
    args = parser.parse_args(argv)

    app = make_app(args.experiment)
    cluster = make_cluster(args.experiment)
    cost = CostModel(cluster, noise=NoiseModel(NoiseConfig(), seed=args.seed))
    result = Engine(app, cluster, cost, measurement=Measurement(args.mode)).run()
    print(f"{args.experiment} [{args.mode}] runtime {result.runtime:.4f}s, "
          f"{result.trace.n_events} events, {result.trace.n_locations} locations")
    for phase, dur in sorted(result.phase_times.items()):
        print(f"  phase {phase}: {dur:.4f}s")
    out = args.output or f"{args.experiment}-{args.mode}-s{args.seed}.trace.json.gz"
    write_trace(result.trace, out)
    print(f"trace written to {out}")
    return 0


def main_analyze(argv: Optional[List[str]] = None) -> int:
    """Analyze a trace archive into a profile (Scalasca analogue)."""
    from repro.analysis import analyze_trace
    from repro.analysis.metrics import group_totals
    from repro.clocks import timestamp_trace
    from repro.cube import write_profile
    from repro.measure import read_trace

    parser = argparse.ArgumentParser(prog="repro-analyze", description=main_analyze.__doc__)
    parser.add_argument("trace", help="trace archive written by repro-run")
    parser.add_argument("--mode", default=None, help="override the timestamp mode")
    parser.add_argument("--counter-seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None, help="profile output (.json.gz)")
    parser.add_argument("--report", action="store_true",
                        help="print the full text report (metric tree, hot "
                             "call paths, load balance)")
    args = parser.parse_args(argv)

    trace = read_trace(args.trace)
    tt = timestamp_trace(trace, args.mode, counter_seed=args.counter_seed)
    profile = analyze_trace(tt)
    print(f"analyzed {trace.n_events} events [{tt.mode}]")
    if args.report:
        from repro.analysis import render_report

        print(render_report(profile))
    else:
        for k, v in group_totals(profile).items():
            print(f"  {k:14s} {v:6.1f} %T")
    out = args.output or args.trace.replace(".trace.", ".profile.")
    write_profile(profile, out)
    print(f"profile written to {out}")
    return 0


def main_score(argv: Optional[List[str]] = None) -> int:
    """Generalized Jaccard score J_(M,C) of two profiles."""
    from repro.cube import read_profile
    from repro.scoring import jaccard_metric_callpath

    parser = argparse.ArgumentParser(prog="repro-score", description=main_score.__doc__)
    parser.add_argument("profile_a")
    parser.add_argument("profile_b")
    args = parser.parse_args(argv)
    a = read_profile(args.profile_a)
    b = read_profile(args.profile_b)
    print(f"J_(M,C) = {jaccard_metric_callpath(a, b):.4f}")
    return 0


def main_report(argv: Optional[List[str]] = None) -> int:
    """Regenerate the paper's tables and figures (uses the result cache)."""
    from repro.experiments import reports

    all_items = {
        "table1": reports.table1_overheads,
        "table2": reports.table2_tealeaf,
        "fig1": lambda seed=0: reports.fig1_metric_tree(),
        "fig2": reports.fig2_minife_init,
        "fig3": reports.fig3_jaccard_minife_lulesh,
        "fig4": reports.fig4_jaccard_tealeaf,
        "fig5": reports.fig5_minife_comp,
        "fig6": reports.fig6_minife_waitnxn,
        "fig7": reports.fig7_minife2_paradigms,
        "fig8": reports.fig8_lulesh1_paradigms,
        "fig9": reports.fig9_lulesh1_comp_and_delay,
    }
    parser = argparse.ArgumentParser(prog="repro-report", description=main_report.__doc__)
    parser.add_argument("items", nargs="*", default=list(all_items),
                        choices=list(all_items) + [[]], help="which tables/figures")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    for item in args.items or list(all_items):
        _data, text = all_items[item](seed=args.seed)
        print(text)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_report())
