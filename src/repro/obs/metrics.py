"""Zero-overhead-when-disabled metrics: counters, gauges, histograms.

The registry hands out plain mutable metric objects keyed by ``(name,
labels)``.  When observability is disabled (the default), the module-level
helpers in :mod:`repro.obs` return the shared *null* singletons instead,
whose operations are literal no-ops -- no branch on a flag inside the hot
path, no allocation, no state.  Instrumented code therefore binds its
metric objects once (e.g. in ``Engine.__init__``) and calls ``.inc()``
unconditionally; the cost of a disabled counter is one no-op method call.

Snapshots are plain JSON-able dicts so per-worker registries can cross a
process-pool boundary and be merged back into the parent's registry
(counters add, gauges last-write-wins, histograms add bucket-wise).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds (bytes-ish / generic magnitudes)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    #: alias so call sites read naturally for bulk updates
    add = inc


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)


class Histogram:
    """Fixed-bucket histogram with sum/count (Prometheus-style)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last bucket = +inf
        self.sum = 0.0
        self.count = 0

    def observe(self, x: float) -> None:
        i = 0
        for b in self.bounds:
            if x <= b:
                break
            i += 1
        self.counts[i] += 1
        self.sum += x
        self.count += 1


class _NullCounter:
    """Shared do-nothing counter handed out while observability is off."""

    __slots__ = ()
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass

    add = inc


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, v: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    sum = 0.0
    count = 0

    def observe(self, x: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """All metrics of one observability session, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- creation / lookup -------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter()
        return c

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge()
        return g

    def histogram(self, name: str, bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(bounds)
        return h

    def value(self, name: str, **labels) -> Optional[float]:
        """Current value of a counter or gauge, or ``None`` if absent."""
        key = (name, _label_key(labels))
        m = self._counters.get(key) or self._gauges.get(key)
        return None if m is None else m.value

    def totals(self, prefix: str = "") -> Dict[str, float]:
        """Counter values summed over label sets, for names under ``prefix``."""
        out: Dict[str, float] = {}
        for (name, _lk), c in self._counters.items():
            if name.startswith(prefix):
                out[name] = out.get(name, 0.0) + c.value
        return out

    # -- (de)serialisation / merging ---------------------------------------
    def snapshot(self) -> dict:
        """JSON-able dump of every metric (stable ordering)."""

        def rows(d, extra):
            return [
                {"name": name, "labels": dict(lk), **extra(m)}
                for (name, lk), m in sorted(d.items())
            ]

        return {
            "counters": rows(self._counters, lambda c: {"value": c.value}),
            "gauges": rows(self._gauges, lambda g: {"value": g.value}),
            "histograms": rows(self._histograms, lambda h: {
                "bounds": list(h.bounds),
                "counts": list(h.counts),
                "sum": h.sum,
                "count": h.count,
            }),
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a worker registry snapshot into this registry.

        Counters and histogram cells add; gauges take the incoming value.
        """
        for row in snapshot.get("counters", ()):
            self.counter(row["name"], **row["labels"]).inc(row["value"])
        for row in snapshot.get("gauges", ()):
            self.gauge(row["name"], **row["labels"]).set(row["value"])
        for row in snapshot.get("histograms", ()):
            h = self.histogram(row["name"], bounds=tuple(row["bounds"]),
                               **row["labels"])
            if tuple(row["bounds"]) != h.bounds:
                raise ValueError(
                    f"histogram {row['name']!r}: bucket bounds mismatch on merge"
                )
            for i, n in enumerate(row["counts"]):
                h.counts[i] += n
            h.sum += row["sum"]
            h.count += row["count"]
