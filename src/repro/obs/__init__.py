"""repro.obs: metrics, structured tracing and provenance for the pipeline.

The instrumentation layer of the reproduction itself: a zero-overhead-
when-disabled metrics registry (:mod:`repro.obs.metrics`), span-based
self-tracing with Chrome trace-event export (:mod:`repro.obs.spans`,
:mod:`repro.obs.export`), and provenance manifests tying every artifact
to its inputs (:mod:`repro.obs.provenance`).  See
``docs/observability.md`` for the architecture and the Perfetto how-to.

Typical use::

    from repro import obs

    session = obs.enable()                # or REPRO_OBS=1 in the env
    with obs.span("replay", mode="ltbb"):
        ...
    obs.counter("sim.events_emitted").add(n)
    session.save("obs_trace.json")        # repro-obs summary/export/diff
"""

from repro.obs.export import (
    CHROME_REQUIRED_KEYS,
    metrics_table,
    prometheus_text,
    span_table,
    summary_text,
    to_chrome,
    trace_chrome_events,
    write_trace_chrome,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.provenance import (
    MANIFEST_FORMAT,
    build_manifest,
    default_environment,
    diff_manifests,
    manifest_hash,
    package_version,
)
from repro.obs.session import (
    ARCHIVE_FORMAT,
    ObsSession,
    active,
    counter,
    disable,
    enable,
    gauge,
    histogram,
    labels,
    load_archive,
    scoped,
    span,
)
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder

__all__ = [
    "ObsSession",
    "ARCHIVE_FORMAT",
    "active",
    "enable",
    "disable",
    "scoped",
    "labels",
    "counter",
    "gauge",
    "histogram",
    "span",
    "load_archive",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "DEFAULT_BUCKETS",
    "Span",
    "SpanRecorder",
    "to_chrome",
    "trace_chrome_events",
    "write_trace_chrome",
    "span_table",
    "metrics_table",
    "summary_text",
    "prometheus_text",
    "CHROME_REQUIRED_KEYS",
    "MANIFEST_FORMAT",
    "build_manifest",
    "manifest_hash",
    "diff_manifests",
    "default_environment",
    "package_version",
]
