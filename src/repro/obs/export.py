"""Exports and renderers for observability archives.

All functions here operate on the plain-JSON *archive* documents produced
by :meth:`repro.obs.session.ObsSession.snapshot` (``repro-obs-1``), so
the ``repro-obs`` CLI can work on saved files without a live session.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Tuple

__all__ = [
    "to_chrome",
    "span_table",
    "metrics_table",
    "summary_text",
    "CHROME_REQUIRED_KEYS",
]

#: keys every exported Chrome trace event carries (validated by the CI
#: obs-smoke job and the suite)
CHROME_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def to_chrome(doc: Mapping) -> dict:
    """Chrome trace-event JSON (Perfetto-loadable) from an obs archive.

    Spans become complete (``ph: "X"``) events with microsecond
    timestamps; nesting renders via Perfetto's flame layout (same
    pid/tid, enclosing time ranges).  Counters are appended as one
    terminal counter (``ph: "C"``) sample per metric so totals show up
    as tracks alongside the spans.
    """
    spans = doc.get("spans", [])
    events = []
    t_end = 0.0
    for s in spans:
        events.append({
            "name": s["name"],
            "cat": "repro.obs",
            "ph": "X",
            "ts": s["t0"] * 1e6,
            "dur": (s["t1"] - s["t0"]) * 1e6,
            "pid": s["pid"],
            "tid": s["pid"],
            "args": s.get("args", {}),
        })
        t_end = max(t_end, s["t1"])
    for row in doc.get("metrics", {}).get("counters", []):
        events.append({
            "name": row["name"] + _fmt_labels(row["labels"]),
            "cat": "repro.obs.metrics",
            "ph": "C",
            "ts": t_end * 1e6,
            "dur": 0.0,
            "pid": 0,
            "tid": 0,
            "args": {"value": row["value"]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": doc.get("format", "repro-obs-1")},
    }


def _span_aggregate(spans: List[Mapping]) -> "OrderedDict[str, Tuple[int, float]]":
    agg: "OrderedDict[str, Tuple[int, float]]" = OrderedDict()
    for s in spans:
        n, total = agg.get(s["name"], (0, 0.0))
        agg[s["name"]] = (n + 1, total + (s["t1"] - s["t0"]))
    return agg


def span_table(doc: Mapping) -> str:
    """Flat per-phase wall-clock table aggregated over span names."""
    agg = _span_aggregate(doc.get("spans", []))
    if not agg:
        return "(no spans recorded)"
    width = max(len(n) for n in agg)
    lines = [f"{'phase':<{width}}  {'count':>6}  {'wall s':>10}  {'mean ms':>10}"]
    for name, (n, total) in agg.items():
        lines.append(
            f"{name:<{width}}  {n:>6}  {total:>10.4f}  {total / n * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def metrics_table(doc: Mapping) -> str:
    """Counter/gauge table (histograms render count/sum)."""
    metrics = doc.get("metrics", {})
    rows: List[Tuple[str, str]] = []
    for row in metrics.get("counters", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"{row['value']:g}"))
    for row in metrics.get("gauges", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"{row['value']:g} (gauge)"))
    for row in metrics.get("histograms", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"n={row['count']} sum={row['sum']:g} (histogram)"))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def _experiment_blocks(doc: Mapping) -> "OrderedDict[str, List[Tuple[str, str]]]":
    """Counters grouped by their ``experiment`` label (ungrouped last)."""
    blocks: "OrderedDict[str, List[Tuple[str, str]]]" = OrderedDict()
    for row in doc.get("metrics", {}).get("counters", []):
        labels = dict(row["labels"])
        exp = labels.pop("experiment", None) or "(global)"
        blocks.setdefault(exp, []).append(
            (row["name"] + _fmt_labels(labels), f"{row['value']:g}")
        )
    return blocks


def summary_text(doc: Mapping) -> str:
    """The ``repro-obs summary`` / ``repro-report`` rendering."""
    out = ["== observability summary =="]
    blocks = _experiment_blocks(doc)
    globals_block = blocks.pop("(global)", None)
    for exp, rows in blocks.items():
        out.append(f"\n-- experiment {exp} --")
        width = max(len(k) for k, _ in rows)
        out.extend(f"  {k:<{width}}  {v}" for k, v in rows)
    if globals_block:
        out.append("\n-- global counters --")
        width = max(len(k) for k, _ in globals_block)
        out.extend(f"  {k:<{width}}  {v}" for k, v in globals_block)
    out.append("\n-- wall time per phase --")
    out.append(span_table(doc))
    manifests = doc.get("manifests", [])
    if manifests:
        out.append("\n-- run manifests --")
        for m in manifests:
            cfg = m.get("config", {})
            out.append(f"  {m.get('kind')}: "
                       f"{cfg.get('experiment', '?')} seed={cfg.get('seed', '?')} "
                       f"hash={m.get('hash', '')[:12]}")
    return "\n".join(out)
