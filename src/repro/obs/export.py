"""Exports and renderers for observability archives.

All functions here operate on the plain-JSON *archive* documents produced
by :meth:`repro.obs.session.ObsSession.snapshot` (``repro-obs-1``), so
the ``repro-obs`` CLI can work on saved files without a live session --
plus the streaming **engine-trace** exporter
(:func:`trace_chrome_events` / :func:`write_trace_chrome`), which turns
a recorded application trace (``RawTrace`` or out-of-core
``ShardedTrace``) into the same Chrome trace-event JSON with bounded
memory, one event at a time.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Callable, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "to_chrome",
    "span_table",
    "metrics_table",
    "summary_text",
    "prometheus_text",
    "trace_chrome_events",
    "write_trace_chrome",
    "CHROME_REQUIRED_KEYS",
    "CHROME_RAW_FORMAT",
]

#: keys every exported Chrome trace event carries (validated by the CI
#: obs-smoke job and the suite)
CHROME_REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def to_chrome(doc: Mapping) -> dict:
    """Chrome trace-event JSON (Perfetto-loadable) from an obs archive.

    Spans become complete (``ph: "X"``) events with microsecond
    timestamps; nesting renders via Perfetto's flame layout (same
    pid/tid, enclosing time ranges).  Counters are appended as one
    terminal counter (``ph: "C"``) sample per metric so totals show up
    as tracks alongside the spans.
    """
    spans = doc.get("spans", [])
    events = []
    t_end = 0.0
    for s in spans:
        events.append({
            "name": s["name"],
            "cat": "repro.obs",
            "ph": "X",
            "ts": s["t0"] * 1e6,
            "dur": (s["t1"] - s["t0"]) * 1e6,
            "pid": s["pid"],
            "tid": s["pid"],
            "args": s.get("args", {}),
        })
        t_end = max(t_end, s["t1"])
    for row in doc.get("metrics", {}).get("counters", []):
        events.append({
            "name": row["name"] + _fmt_labels(row["labels"]),
            "cat": "repro.obs.metrics",
            "ph": "C",
            "ts": t_end * 1e6,
            "dur": 0.0,
            "pid": 0,
            "tid": 0,
            "args": {"value": row["value"]},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"format": doc.get("format", "repro-obs-1")},
    }


#: format tag of the lossless per-event records embedded by
#: ``trace_chrome_events(..., embed_raw=True)``; :mod:`repro.ingest`
#: recognizes it and reconstructs the original trace bit-exactly
CHROME_RAW_FORMAT = "repro-chrome-raw-1"

_RAW_DELTA_FIELDS = ("omp_iters", "bb", "stmt", "instr",
                     "burst_calls", "omp_calls")


def trace_chrome_events(
    trace_like,
    map_t: Optional[Callable[[int, float], float]] = None,
    pid_offset: int = 0,
    label: str = "",
    embed_raw: bool = False,
) -> Iterator[dict]:
    """Yield Chrome trace events for an engine trace, one at a time.

    Consumes ``trace_like.merged()`` -- a ``ShardedTrace`` therefore
    streams shard-at-a-time with bounded memory.  Region enter/leave
    pairs become complete (``ph: "X"``) events, call bursts span their
    aggregated interval, and fault/restart records become instants.
    ``map_t(loc, t)`` optionally warps timestamps (cross-run alignment,
    :mod:`repro.causal.align`); ``pid_offset``/``label`` give each
    exported run its own process namespace so several runs overlay on
    one Perfetto timeline.

    ``embed_raw=True`` makes the export *lossless*: alongside the
    visible events, one ``cat: "repro.raw"`` record per trace event
    carries the full event payload (kind, region id, exact float64
    timestamps, aux, work delta) plus a ``repro_trace`` metadata header
    with the region table and location map.  Perfetto ignores the extra
    records; :mod:`repro.ingest` reconstructs the original
    ``RawTrace`` from them bit-exactly (JSON ``repr`` round-trips
    float64), which is what makes Chrome export a real interchange
    format rather than a one-way visualization.  Raw records always
    carry the *unwarped* timestamps.
    """
    # local imports keep repro.obs importable without the sim package
    from repro.sim.events import (
        BURST,
        ENTER,
        EVENT_NAMES,
        FAULT,
        LEAVE,
        RESTART,
    )

    regions = trace_like.regions
    locations = trace_like.locations
    warp = map_t if map_t is not None else (lambda _loc, t: t)

    if embed_raw:
        yield {"name": "repro_trace", "cat": "repro.meta", "ph": "M",
               "ts": 0.0, "pid": pid_offset, "tid": 0,
               "args": {"format": CHROME_RAW_FORMAT,
                        "mode": trace_like.mode,
                        "runtime": trace_like.runtime,
                        "locations": [list(lt) for lt in locations],
                        "regions": list(regions.names),
                        "paradigms": list(regions.paradigms)}}

    for loc, (rank, thread) in enumerate(locations):
        name = f"rank {rank}"
        if label:
            name = f"{label} {name}"
        yield {"name": "process_name", "ph": "M", "pid": pid_offset + rank,
               "tid": thread, "ts": 0.0,
               "args": {"name": name}}

    stacks: List[List[Tuple[int, float]]] = [[] for _ in locations]
    for loc, ev in trace_like.merged():
        et = ev.etype
        if embed_raw:
            rank, thread = locations[loc]
            args = {"loc": loc, "etype": et, "region": ev.region, "t": ev.t}
            if ev.t_enter:
                args["t_enter"] = ev.t_enter
            if ev.aux is not None:
                args["aux"] = (list(ev.aux) if isinstance(ev.aux, tuple)
                               else ev.aux)
            if not ev.delta.is_empty:
                args["delta"] = {f: v for f in _RAW_DELTA_FIELDS
                                 if (v := getattr(ev.delta, f)) != 0.0}
            yield {"name": EVENT_NAMES.get(et, str(et)), "cat": "repro.raw",
                   "ph": "i", "ts": ev.t * 1e6, "s": "t",
                   "pid": pid_offset + rank, "tid": thread, "args": args}
        if et == ENTER:
            stacks[loc].append((ev.region, ev.t))
            continue
        rank, thread = locations[loc]
        pid = pid_offset + rank
        if et == LEAVE:
            if not stacks[loc]:
                continue
            rid, t0 = stacks[loc].pop()
            w0 = warp(loc, t0)
            yield {
                "name": regions.name(rid),
                "cat": regions.paradigm(rid),
                "ph": "X",
                "ts": w0 * 1e6,
                "dur": (warp(loc, ev.t) - w0) * 1e6,
                "pid": pid,
                "tid": thread,
            }
        elif et == BURST:
            w0 = warp(loc, ev.t_enter)
            yield {
                "name": regions.name(ev.region),
                "cat": regions.paradigm(ev.region),
                "ph": "X",
                "ts": w0 * 1e6,
                "dur": (warp(loc, ev.t) - w0) * 1e6,
                "pid": pid,
                "tid": thread,
            }
        elif et == FAULT or et == RESTART:
            yield {
                "name": regions.name(ev.region) if ev.region >= 0
                else ("RESTART" if et == RESTART else "FAULT"),
                "cat": "fault",
                "ph": "i",
                "ts": warp(loc, ev.t) * 1e6,
                "s": "g",
                "pid": pid,
                "tid": thread,
            }
    # unclosed regions (program end inside a region): close at last seen t
    for loc, stk in enumerate(stacks):
        rank, thread = locations[loc]
        while stk:
            rid, t0 = stk.pop()
            w0 = warp(loc, t0)
            yield {
                "name": regions.name(rid),
                "cat": regions.paradigm(rid),
                "ph": "X",
                "ts": w0 * 1e6,
                "dur": 0.0,
                "pid": pid_offset + rank,
                "tid": thread,
            }


def write_trace_chrome(path, exports) -> int:
    """Stream one or more trace exports into a Chrome trace JSON file.

    ``exports`` is an iterable of event iterators (e.g. several
    :func:`trace_chrome_events` calls for aligned runs); events are
    written incrementally, so the peak memory is one event, not the
    trace.  Returns the number of events written.
    """
    n = 0
    with open(path, "w") as fh:
        fh.write('{"traceEvents":[')
        for events in exports:
            for ev in events:
                if n:
                    fh.write(",")
                fh.write(json.dumps(ev))
                n += 1
        fh.write('],"displayTimeUnit":"ms"}\n')
    return n


def _span_aggregate(spans: List[Mapping]) -> "OrderedDict[str, Tuple[int, float]]":
    agg: "OrderedDict[str, Tuple[int, float]]" = OrderedDict()
    for s in spans:
        n, total = agg.get(s["name"], (0, 0.0))
        agg[s["name"]] = (n + 1, total + (s["t1"] - s["t0"]))
    return agg


def span_table(doc: Mapping) -> str:
    """Flat per-phase wall-clock table aggregated over span names."""
    agg = _span_aggregate(doc.get("spans", []))
    if not agg:
        return "(no spans recorded)"
    width = max(len(n) for n in agg)
    lines = [f"{'phase':<{width}}  {'count':>6}  {'wall s':>10}  {'mean ms':>10}"]
    for name, (n, total) in agg.items():
        lines.append(
            f"{name:<{width}}  {n:>6}  {total:>10.4f}  {total / n * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def metrics_table(doc: Mapping) -> str:
    """Counter/gauge table (histograms render count/sum)."""
    metrics = doc.get("metrics", {})
    rows: List[Tuple[str, str]] = []
    for row in metrics.get("counters", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"{row['value']:g}"))
    for row in metrics.get("gauges", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"{row['value']:g} (gauge)"))
    for row in metrics.get("histograms", []):
        rows.append((row["name"] + _fmt_labels(row["labels"]),
                     f"n={row['count']} sum={row['sum']:g} (histogram)"))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(k) for k, _ in rows)
    return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def _prom_name(name: str) -> str:
    """Registry names are dotted; Prometheus wants ``[a-zA-Z0-9_:]``."""
    return "".join(c if c.isalnum() or c in "_:" else "_" for c in name)


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(doc: Mapping) -> str:
    """Prometheus exposition-format rendering of an obs snapshot.

    Operates on the same ``repro-obs-1`` document as every other export,
    so the service's ``/metrics`` endpoint and offline archives render
    identically.  Dotted registry names map to underscored Prometheus
    names (``serve.cache_hits`` -> ``serve_cache_hits``); histograms
    emit cumulative ``_bucket`` series plus ``_sum``/``_count``.
    """
    metrics = doc.get("metrics", {})
    lines: List[str] = []
    typed: set = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for row in metrics.get("counters", []):
        name = _prom_name(row["name"])
        header(name, "counter")
        lines.append(f"{name}{_prom_labels(row['labels'])} {row['value']:g}")
    for row in metrics.get("gauges", []):
        name = _prom_name(row["name"])
        header(name, "gauge")
        lines.append(f"{name}{_prom_labels(row['labels'])} {row['value']:g}")
    for row in metrics.get("histograms", []):
        name = _prom_name(row["name"])
        header(name, "histogram")
        labels = row["labels"]
        cum = 0
        for bound, count in zip(row["bounds"], row["counts"]):
            cum += count
            le = 'le="%g"' % bound
            lines.append(f"{name}_bucket{_prom_labels(labels, le)} {cum}")
        inf = 'le="+Inf"'
        lines.append(f"{name}_bucket{_prom_labels(labels, inf)} {row['count']}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {row['sum']:g}")
        lines.append(f"{name}_count{_prom_labels(labels)} {row['count']}")
    return "\n".join(lines) + "\n"


def _experiment_blocks(doc: Mapping) -> "OrderedDict[str, List[Tuple[str, str]]]":
    """Counters grouped by their ``experiment`` label (ungrouped last)."""
    blocks: "OrderedDict[str, List[Tuple[str, str]]]" = OrderedDict()
    for row in doc.get("metrics", {}).get("counters", []):
        labels = dict(row["labels"])
        exp = labels.pop("experiment", None) or "(global)"
        blocks.setdefault(exp, []).append(
            (row["name"] + _fmt_labels(labels), f"{row['value']:g}")
        )
    return blocks


def summary_text(doc: Mapping) -> str:
    """The ``repro-obs summary`` / ``repro-report`` rendering."""
    out = ["== observability summary =="]
    blocks = _experiment_blocks(doc)
    globals_block = blocks.pop("(global)", None)
    for exp, rows in blocks.items():
        out.append(f"\n-- experiment {exp} --")
        width = max(len(k) for k, _ in rows)
        out.extend(f"  {k:<{width}}  {v}" for k, v in rows)
    if globals_block:
        out.append("\n-- global counters --")
        width = max(len(k) for k, _ in globals_block)
        out.extend(f"  {k:<{width}}  {v}" for k, v in globals_block)
    out.append("\n-- wall time per phase --")
    out.append(span_table(doc))
    manifests = doc.get("manifests", [])
    if manifests:
        out.append("\n-- run manifests --")
        for m in manifests:
            cfg = m.get("config", {})
            out.append(f"  {m.get('kind')}: "
                       f"{cfg.get('experiment', '?')} seed={cfg.get('seed', '?')} "
                       f"hash={m.get('hash', '')[:12]}")
    return "\n".join(out)
