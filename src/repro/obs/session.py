"""The observability session: metrics + spans + manifests, one per process.

A session bundles a :class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.spans.SpanRecorder` and the provenance manifests of
the runs it observed.  Exactly one session is *active* per process at a
time; the module-level helpers (:func:`counter`, :func:`span`, ...)
dispatch to it and degrade to shared no-op singletons when none is
active, which is what makes disabled observability free.

Activation paths:

* ``REPRO_OBS=1`` in the environment -- a session is created lazily on
  first use and its archive is written to ``REPRO_OBS_OUT`` (default
  ``obs_trace.json``) at interpreter exit.
* :func:`enable` / :func:`disable` -- explicit programmatic control.
* :func:`scoped` -- temporarily swap the active session (used by the
  workflow's ``obs=`` argument and by pool workers, which observe each
  task under a fresh session and ship its snapshot back to the parent).
"""

from __future__ import annotations

import json
import os
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.spans import NULL_SPAN, SpanRecorder

__all__ = [
    "ObsSession",
    "ARCHIVE_FORMAT",
    "active",
    "enable",
    "disable",
    "scoped",
    "labels",
    "counter",
    "gauge",
    "histogram",
    "span",
    "load_archive",
]

ARCHIVE_FORMAT = "repro-obs-1"

#: truthy spellings accepted for ``REPRO_OBS``
_TRUE = {"1", "true", "yes", "on"}


class ObsSession:
    """One process's observability state (see module docstring)."""

    def __init__(self, t_base: Optional[float] = None) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(t_base=t_base)
        self.manifests: List[dict] = []
        self._label_ctx: Dict[str, str] = {}

    # -- instrumentation entry points --------------------------------------
    def counter(self, name: str, **labels_kw):
        return self.metrics.counter(name, **{**self._label_ctx, **labels_kw})

    def gauge(self, name: str, **labels_kw):
        return self.metrics.gauge(name, **{**self._label_ctx, **labels_kw})

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS, **labels_kw):
        return self.metrics.histogram(
            name, bounds=bounds, **{**self._label_ctx, **labels_kw}
        )

    def span(self, name: str, **args):
        return self.spans.span(name, **args)

    @contextmanager
    def labels(self, **labels_kw):
        """Apply default labels to metrics created inside the block."""
        prev = self._label_ctx
        self._label_ctx = {**prev, **{k: str(v) for k, v in labels_kw.items()}}
        try:
            yield
        finally:
            self._label_ctx = prev

    def add_manifest(self, manifest: dict) -> None:
        self.manifests.append(manifest)

    # -- archive / merging --------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "format": ARCHIVE_FORMAT,
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.snapshot(),
            "manifests": list(self.manifests),
        }

    def merge_worker(self, doc: dict) -> None:
        """Fold one worker task's snapshot back into this session."""
        self.metrics.merge(doc.get("metrics", {}))
        self.spans.merge(doc.get("spans", []))
        for m in doc.get("manifests", ()):
            self.manifests.append(m)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.snapshot(), indent=1) + "\n")

    def summary_text(self) -> str:
        from repro.obs.export import summary_text

        return summary_text(self.snapshot())


def load_archive(path: Union[str, Path]) -> dict:
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != ARCHIVE_FORMAT:
        raise ValueError(f"{path}: not a {ARCHIVE_FORMAT} archive")
    return doc


# ---------------------------------------------------------------------------
# the active session
# ---------------------------------------------------------------------------

_ACTIVE: Optional[ObsSession] = None
_ENV_CHECKED = False


def _maybe_enable_from_env() -> None:
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    if os.environ.get("REPRO_OBS", "").strip().lower() not in _TRUE:
        return
    _ACTIVE = ObsSession()
    import atexit

    atexit.register(_dump_env_session, _ACTIVE)


def _dump_env_session(session: ObsSession) -> None:
    if _ACTIVE is not session:  # superseded by enable()/disable()
        return
    out = os.environ.get("REPRO_OBS_OUT", "obs_trace.json")
    try:
        session.save(out)
        print(f"[repro.obs] archive written to {out}", file=sys.stderr)
    except OSError as exc:  # pragma: no cover - exit-path best effort
        print(f"[repro.obs] cannot write {out}: {exc}", file=sys.stderr)


def active() -> Optional[ObsSession]:
    """The process's active session, or ``None`` when observability is off."""
    if _ACTIVE is None and not _ENV_CHECKED:
        _maybe_enable_from_env()
    return _ACTIVE


def enable(session: Optional[ObsSession] = None) -> ObsSession:
    """Activate (and return) ``session``, creating one if needed."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    _ACTIVE = session if session is not None else ObsSession()
    return _ACTIVE


def disable() -> None:
    """Deactivate observability for this process."""
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    _ACTIVE = None


@contextmanager
def scoped(session: Optional[ObsSession]):
    """Make ``session`` (or ``None`` = disabled) active inside the block."""
    global _ACTIVE, _ENV_CHECKED
    prev_active, prev_checked = _ACTIVE, _ENV_CHECKED
    _ACTIVE, _ENV_CHECKED = session, True
    try:
        yield session
    finally:
        _ACTIVE, _ENV_CHECKED = prev_active, prev_checked


@contextmanager
def labels(**labels_kw):
    """Label context on the active session; no-op when disabled."""
    s = active()
    if s is None:
        yield
    else:
        with s.labels(**labels_kw):
            yield


def counter(name: str, **labels_kw):
    s = active()
    return NULL_COUNTER if s is None else s.counter(name, **labels_kw)


def gauge(name: str, **labels_kw):
    s = active()
    return NULL_GAUGE if s is None else s.gauge(name, **labels_kw)


def histogram(name: str, bounds=DEFAULT_BUCKETS, **labels_kw):
    s = active()
    return NULL_HISTOGRAM if s is None else s.histogram(name, bounds=bounds,
                                                        **labels_kw)


def span(name: str, **args):
    s = active()
    return NULL_SPAN if s is None else s.span(name, **args)
