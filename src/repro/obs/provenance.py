"""Provenance manifests: trace any artifact back to its inputs.

A manifest is a small JSON document with two parts:

* ``config`` -- everything that *determines* the artifact (experiment
  name, seeds, spec geometry, clock modes, package/cache versions).  The
  manifest ``hash`` is the SHA-256 of the canonical JSON encoding of
  ``{"kind": ..., "config": ...}``, so the same configuration always
  hashes identically, across machines and across runs.
* ``environment`` -- circumstances that do *not* change the result
  (worker count of a bit-identical parallel campaign, interpreter and
  NumPy versions).  Deliberately excluded from the hash.

Manifests are attached to :class:`~repro.experiments.workflow.
ExperimentResult` (and its disk cache), embedded in trace archives by
:func:`repro.measure.io.write_trace`, and collected on the active
observability session; ``repro-obs diff`` compares two of them.
"""

from __future__ import annotations

import hashlib
import json
import platform
from typing import List, Mapping, Optional

__all__ = [
    "MANIFEST_FORMAT",
    "build_manifest",
    "manifest_hash",
    "diff_manifests",
    "default_environment",
    "package_version",
]

MANIFEST_FORMAT = "repro-manifest-1"


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def manifest_hash(kind: str, config: Mapping) -> str:
    doc = canonical_json({"kind": kind, "config": config})
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def package_version() -> str:
    from repro import __version__  # lazy: avoid a package-import cycle

    return __version__


def default_environment(**extra) -> dict:
    """Hash-exempt environment block (python/numpy versions + extras)."""
    import numpy as np

    env = {
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    env.update(extra)
    return env


def build_manifest(kind: str, config: Mapping,
                   environment: Optional[Mapping] = None) -> dict:
    """Assemble a manifest; ``config`` must be JSON-serialisable."""
    config = json.loads(canonical_json(config))  # normalise (tuples->lists)
    return {
        "format": MANIFEST_FORMAT,
        "kind": kind,
        "config": config,
        "hash": manifest_hash(kind, config),
        "environment": dict(environment or {}),
    }


def diff_manifests(a: Mapping, b: Mapping) -> List[str]:
    """Human-readable differences between two manifests.

    An empty list means the manifests describe the same configuration
    (environment-only differences are reported but prefixed with ``env:``
    and do not affect the hash comparison callers typically gate on).
    """
    lines: List[str] = []
    if a.get("kind") != b.get("kind"):
        lines.append(f"kind: {a.get('kind')!r} != {b.get('kind')!r}")
    ca, cb = a.get("config", {}), b.get("config", {})
    for key in sorted(set(ca) | set(cb)):
        va, vb = ca.get(key, "<absent>"), cb.get(key, "<absent>")
        if va != vb:
            lines.append(f"config.{key}: {va!r} != {vb!r}")
    if a.get("hash") != b.get("hash") and not lines:
        lines.append(f"hash: {a.get('hash')} != {b.get('hash')}")
    ea, eb = a.get("environment", {}), b.get("environment", {})
    for key in sorted(set(ea) | set(eb)):
        va, vb = ea.get(key, "<absent>"), eb.get(key, "<absent>")
        if va != vb:
            lines.append(f"env: {key}: {va!r} != {vb!r}")
    return lines
