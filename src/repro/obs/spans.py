"""Span-based self-tracing: nested wall-clock phases per process.

A *span* is one timed phase (``with obs.span("replay", mode="ltbb"):``).
Spans nest via a per-recorder stack, carry free-form ``args``, and record
the process id, so spans collected in pool workers merge into the parent
recorder and still render as separate Perfetto tracks.  Timestamps are
``time.perf_counter()`` seconds relative to the recorder's ``t_base``;
forked workers inherit the parent's base (``CLOCK_MONOTONIC`` is
system-wide), which keeps all process timelines aligned in the export.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

__all__ = ["Span", "SpanRecorder", "NULL_SPAN"]


class Span:
    """One timed phase; ``duration`` is valid after the ``with`` block."""

    __slots__ = ("name", "args", "t0", "t1", "pid", "depth", "parent")

    def __init__(self, name: str, args: dict, t0: float, pid: int,
                 depth: int, parent: int) -> None:
        self.name = name
        self.args = args
        self.t0 = t0
        self.t1 = t0
        self.pid = pid
        self.depth = depth
        #: index of the enclosing span in the recorder, -1 at top level
        self.parent = parent

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_doc(self) -> dict:
        return {
            "name": self.name,
            "args": self.args,
            "t0": self.t0,
            "t1": self.t1,
            "pid": self.pid,
            "depth": self.depth,
            "parent": self.parent,
        }


class _NullSpan:
    """Reusable no-op context manager for the disabled path."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager that opens/closes one span on a recorder."""

    __slots__ = ("_rec", "_span")

    def __init__(self, rec: "SpanRecorder", span: Span) -> None:
        self._rec = rec
        self._span = span

    @property
    def duration(self) -> float:
        return self._span.duration

    def __enter__(self) -> Span:
        rec = self._rec
        rec._stack.append(len(rec.records))
        rec.records.append(self._span)
        self._span.t0 = self._span.t1 = time.perf_counter() - rec.t_base
        return self._span

    def __exit__(self, *exc) -> bool:
        self._span.t1 = time.perf_counter() - self._rec.t_base
        self._rec._stack.pop()
        return False


class SpanRecorder:
    """Collects finished spans of one session (and merged worker spans)."""

    def __init__(self, t_base: Optional[float] = None) -> None:
        self.t_base = time.perf_counter() if t_base is None else t_base
        self.records: List[Span] = []
        self._stack: List[int] = []

    def span(self, name: str, **args) -> _ActiveSpan:
        parent = self._stack[-1] if self._stack else -1
        depth = len(self._stack)
        return _ActiveSpan(
            self, Span(name, args, 0.0, os.getpid(), depth, parent)
        )

    # -- (de)serialisation / merging ---------------------------------------
    def snapshot(self) -> List[dict]:
        return [s.to_doc() for s in self.records]

    def merge(self, docs: List[dict]) -> None:
        """Append spans snapshotted in another process.

        Parent links are re-based onto this recorder; cross-process nesting
        is preserved because a worker snapshot is self-contained.
        """
        base = len(self.records)
        for d in docs:
            parent = d["parent"]
            s = Span(d["name"], dict(d["args"]), d["t0"], d["pid"],
                     d["depth"], parent + base if parent >= 0 else -1)
            s.t1 = d["t1"]
            self.records.append(s)
