"""Hardened ingestion of untrusted real-world traces.

Everything produced outside this process is hostile until proven
otherwise: the pipeline parses foreign Chrome trace-event JSON and
``repro-commops-1`` comm-op logs under hard resource caps, repairs what
it can (recording every repair as an ING diagnostic in an
:class:`IngestReport`), quarantines what it cannot, and only ever hands
the rest of the system traces that pass the sanitizer and programs that
pass the linter.  See ``docs/ingest.md``.
"""

from repro.ingest.limits import IngestBudget, IngestCapError, IngestLimits
from repro.ingest.pipeline import (
    IngestResult,
    ingest_bytes,
    ingest_file,
    sniff_format,
)
from repro.ingest.report import IngestError, IngestReport

__all__ = [
    "IngestBudget",
    "IngestCapError",
    "IngestLimits",
    "IngestResult",
    "IngestError",
    "IngestReport",
    "ingest_bytes",
    "ingest_file",
    "sniff_format",
]
